# Empty compiler generated dependencies file for elliptic_advisor.
# This may be replaced when dependencies are built.
