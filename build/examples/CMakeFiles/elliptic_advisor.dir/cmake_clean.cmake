file(REMOVE_RECURSE
  "CMakeFiles/elliptic_advisor.dir/elliptic_advisor.cpp.o"
  "CMakeFiles/elliptic_advisor.dir/elliptic_advisor.cpp.o.d"
  "elliptic_advisor"
  "elliptic_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elliptic_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
