# Empty dependencies file for ar_filter_exploration.
# This may be replaced when dependencies are built.
