file(REMOVE_RECURSE
  "CMakeFiles/ar_filter_exploration.dir/ar_filter_exploration.cpp.o"
  "CMakeFiles/ar_filter_exploration.dir/ar_filter_exploration.cpp.o.d"
  "ar_filter_exploration"
  "ar_filter_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_filter_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
