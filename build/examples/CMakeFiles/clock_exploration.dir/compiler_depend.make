# Empty compiler generated dependencies file for clock_exploration.
# This may be replaced when dependencies are built.
