file(REMOVE_RECURSE
  "CMakeFiles/clock_exploration.dir/clock_exploration.cpp.o"
  "CMakeFiles/clock_exploration.dir/clock_exploration.cpp.o.d"
  "clock_exploration"
  "clock_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
