# Empty dependencies file for auto_partition_demo.
# This may be replaced when dependencies are built.
