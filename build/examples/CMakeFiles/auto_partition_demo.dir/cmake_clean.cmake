file(REMOVE_RECURSE
  "CMakeFiles/auto_partition_demo.dir/auto_partition_demo.cpp.o"
  "CMakeFiles/auto_partition_demo.dir/auto_partition_demo.cpp.o.d"
  "auto_partition_demo"
  "auto_partition_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_partition_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
