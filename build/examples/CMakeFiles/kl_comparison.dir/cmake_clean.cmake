file(REMOVE_RECURSE
  "CMakeFiles/kl_comparison.dir/kl_comparison.cpp.o"
  "CMakeFiles/kl_comparison.dir/kl_comparison.cpp.o.d"
  "kl_comparison"
  "kl_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
