# Empty compiler generated dependencies file for kl_comparison.
# This may be replaced when dependencies are built.
