# Empty dependencies file for chop_cli.
# This may be replaced when dependencies are built.
