file(REMOVE_RECURSE
  "CMakeFiles/chop_cli.dir/chop_cli.cpp.o"
  "CMakeFiles/chop_cli.dir/chop_cli.cpp.o.d"
  "chop_cli"
  "chop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
