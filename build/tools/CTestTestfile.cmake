# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_fir4 "/root/repo/build/tools/chop_cli" "/root/repo/examples/specs/fir4.chop" "--guideline")
set_tests_properties(cli_fir4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fir4_enumeration "/root/repo/build/tools/chop_cli" "/root/repo/examples/specs/fir4.chop" "--heuristic=E")
set_tests_properties(cli_fir4_enumeration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_diffeq "/root/repo/build/tools/chop_cli" "/root/repo/examples/specs/diffeq.chop")
set_tests_properties(cli_diffeq PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_diffeq_auto "/root/repo/build/tools/chop_cli" "/root/repo/examples/specs/diffeq.chop" "--auto")
set_tests_properties(cli_diffeq_auto PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_keep_all "/root/repo/build/tools/chop_cli" "/root/repo/examples/specs/fir4.chop" "--keep-all")
set_tests_properties(cli_keep_all PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_artifacts "/root/repo/build/tools/chop_cli" "/root/repo/examples/specs/fir4.chop" "--save=cli_roundtrip.chop" "--report=cli_report.md" "--dot=cli_graph.dot")
set_tests_properties(cli_artifacts PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/chop_cli")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_parse_error "/root/repo/build/tools/chop_cli" "/root/repo/README.md")
set_tests_properties(cli_parse_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
