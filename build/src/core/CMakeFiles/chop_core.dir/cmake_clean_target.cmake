file(REMOVE_RECURSE
  "libchop_core.a"
)
