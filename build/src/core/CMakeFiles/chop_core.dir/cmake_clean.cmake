file(REMOVE_RECURSE
  "CMakeFiles/chop_core.dir/auto_partition.cpp.o"
  "CMakeFiles/chop_core.dir/auto_partition.cpp.o.d"
  "CMakeFiles/chop_core.dir/clock_explorer.cpp.o"
  "CMakeFiles/chop_core.dir/clock_explorer.cpp.o.d"
  "CMakeFiles/chop_core.dir/integration.cpp.o"
  "CMakeFiles/chop_core.dir/integration.cpp.o.d"
  "CMakeFiles/chop_core.dir/memory_optimizer.cpp.o"
  "CMakeFiles/chop_core.dir/memory_optimizer.cpp.o.d"
  "CMakeFiles/chop_core.dir/partitioning.cpp.o"
  "CMakeFiles/chop_core.dir/partitioning.cpp.o.d"
  "CMakeFiles/chop_core.dir/recorder.cpp.o"
  "CMakeFiles/chop_core.dir/recorder.cpp.o.d"
  "CMakeFiles/chop_core.dir/search.cpp.o"
  "CMakeFiles/chop_core.dir/search.cpp.o.d"
  "CMakeFiles/chop_core.dir/session.cpp.o"
  "CMakeFiles/chop_core.dir/session.cpp.o.d"
  "CMakeFiles/chop_core.dir/transfer.cpp.o"
  "CMakeFiles/chop_core.dir/transfer.cpp.o.d"
  "libchop_core.a"
  "libchop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
