# Empty compiler generated dependencies file for chop_core.
# This may be replaced when dependencies are built.
