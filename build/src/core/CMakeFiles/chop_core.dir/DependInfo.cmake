
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auto_partition.cpp" "src/core/CMakeFiles/chop_core.dir/auto_partition.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/auto_partition.cpp.o.d"
  "/root/repo/src/core/clock_explorer.cpp" "src/core/CMakeFiles/chop_core.dir/clock_explorer.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/clock_explorer.cpp.o.d"
  "/root/repo/src/core/integration.cpp" "src/core/CMakeFiles/chop_core.dir/integration.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/integration.cpp.o.d"
  "/root/repo/src/core/memory_optimizer.cpp" "src/core/CMakeFiles/chop_core.dir/memory_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/memory_optimizer.cpp.o.d"
  "/root/repo/src/core/partitioning.cpp" "src/core/CMakeFiles/chop_core.dir/partitioning.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/partitioning.cpp.o.d"
  "/root/repo/src/core/recorder.cpp" "src/core/CMakeFiles/chop_core.dir/recorder.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/recorder.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/chop_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/search.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/chop_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/session.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/core/CMakeFiles/chop_core.dir/transfer.cpp.o" "gcc" "src/core/CMakeFiles/chop_core.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/chop_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/chop_library.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/chop_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/chop_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/bad/CMakeFiles/chop_bad.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/chop_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
