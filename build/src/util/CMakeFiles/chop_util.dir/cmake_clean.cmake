file(REMOVE_RECURSE
  "CMakeFiles/chop_util.dir/csv.cpp.o"
  "CMakeFiles/chop_util.dir/csv.cpp.o.d"
  "CMakeFiles/chop_util.dir/statval.cpp.o"
  "CMakeFiles/chop_util.dir/statval.cpp.o.d"
  "CMakeFiles/chop_util.dir/table.cpp.o"
  "CMakeFiles/chop_util.dir/table.cpp.o.d"
  "libchop_util.a"
  "libchop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
