file(REMOVE_RECURSE
  "libchop_util.a"
)
