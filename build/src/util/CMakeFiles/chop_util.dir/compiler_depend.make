# Empty compiler generated dependencies file for chop_util.
# This may be replaced when dependencies are built.
