# Empty dependencies file for chop_baseline.
# This may be replaced when dependencies are built.
