file(REMOVE_RECURSE
  "libchop_baseline.a"
)
