
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/kernighan_lin.cpp" "src/baseline/CMakeFiles/chop_baseline.dir/kernighan_lin.cpp.o" "gcc" "src/baseline/CMakeFiles/chop_baseline.dir/kernighan_lin.cpp.o.d"
  "/root/repo/src/baseline/partition_builders.cpp" "src/baseline/CMakeFiles/chop_baseline.dir/partition_builders.cpp.o" "gcc" "src/baseline/CMakeFiles/chop_baseline.dir/partition_builders.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/chop_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
