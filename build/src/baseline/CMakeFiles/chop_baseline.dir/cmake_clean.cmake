file(REMOVE_RECURSE
  "CMakeFiles/chop_baseline.dir/kernighan_lin.cpp.o"
  "CMakeFiles/chop_baseline.dir/kernighan_lin.cpp.o.d"
  "CMakeFiles/chop_baseline.dir/partition_builders.cpp.o"
  "CMakeFiles/chop_baseline.dir/partition_builders.cpp.o.d"
  "libchop_baseline.a"
  "libchop_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
