file(REMOVE_RECURSE
  "libchop_schedule.a"
)
