
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/op_schedule.cpp" "src/schedule/CMakeFiles/chop_schedule.dir/op_schedule.cpp.o" "gcc" "src/schedule/CMakeFiles/chop_schedule.dir/op_schedule.cpp.o.d"
  "/root/repo/src/schedule/register_demand.cpp" "src/schedule/CMakeFiles/chop_schedule.dir/register_demand.cpp.o" "gcc" "src/schedule/CMakeFiles/chop_schedule.dir/register_demand.cpp.o.d"
  "/root/repo/src/schedule/task_schedule.cpp" "src/schedule/CMakeFiles/chop_schedule.dir/task_schedule.cpp.o" "gcc" "src/schedule/CMakeFiles/chop_schedule.dir/task_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/chop_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
