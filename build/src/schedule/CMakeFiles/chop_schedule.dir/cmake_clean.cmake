file(REMOVE_RECURSE
  "CMakeFiles/chop_schedule.dir/op_schedule.cpp.o"
  "CMakeFiles/chop_schedule.dir/op_schedule.cpp.o.d"
  "CMakeFiles/chop_schedule.dir/register_demand.cpp.o"
  "CMakeFiles/chop_schedule.dir/register_demand.cpp.o.d"
  "CMakeFiles/chop_schedule.dir/task_schedule.cpp.o"
  "CMakeFiles/chop_schedule.dir/task_schedule.cpp.o.d"
  "libchop_schedule.a"
  "libchop_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
