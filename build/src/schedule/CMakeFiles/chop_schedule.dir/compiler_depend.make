# Empty compiler generated dependencies file for chop_schedule.
# This may be replaced when dependencies are built.
