
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/memory.cpp" "src/chip/CMakeFiles/chop_chip.dir/memory.cpp.o" "gcc" "src/chip/CMakeFiles/chop_chip.dir/memory.cpp.o.d"
  "/root/repo/src/chip/mosis_packages.cpp" "src/chip/CMakeFiles/chop_chip.dir/mosis_packages.cpp.o" "gcc" "src/chip/CMakeFiles/chop_chip.dir/mosis_packages.cpp.o.d"
  "/root/repo/src/chip/package.cpp" "src/chip/CMakeFiles/chop_chip.dir/package.cpp.o" "gcc" "src/chip/CMakeFiles/chop_chip.dir/package.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
