file(REMOVE_RECURSE
  "CMakeFiles/chop_chip.dir/memory.cpp.o"
  "CMakeFiles/chop_chip.dir/memory.cpp.o.d"
  "CMakeFiles/chop_chip.dir/mosis_packages.cpp.o"
  "CMakeFiles/chop_chip.dir/mosis_packages.cpp.o.d"
  "CMakeFiles/chop_chip.dir/package.cpp.o"
  "CMakeFiles/chop_chip.dir/package.cpp.o.d"
  "libchop_chip.a"
  "libchop_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
