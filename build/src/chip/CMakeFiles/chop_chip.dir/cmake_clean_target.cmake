file(REMOVE_RECURSE
  "libchop_chip.a"
)
