# Empty compiler generated dependencies file for chop_chip.
# This may be replaced when dependencies are built.
