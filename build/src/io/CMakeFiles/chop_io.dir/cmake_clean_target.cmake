file(REMOVE_RECURSE
  "libchop_io.a"
)
