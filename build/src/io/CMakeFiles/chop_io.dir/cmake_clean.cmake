file(REMOVE_RECURSE
  "CMakeFiles/chop_io.dir/report.cpp.o"
  "CMakeFiles/chop_io.dir/report.cpp.o.d"
  "CMakeFiles/chop_io.dir/spec_format.cpp.o"
  "CMakeFiles/chop_io.dir/spec_format.cpp.o.d"
  "CMakeFiles/chop_io.dir/spec_writer.cpp.o"
  "CMakeFiles/chop_io.dir/spec_writer.cpp.o.d"
  "libchop_io.a"
  "libchop_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
