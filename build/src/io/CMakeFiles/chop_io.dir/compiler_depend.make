# Empty compiler generated dependencies file for chop_io.
# This may be replaced when dependencies are built.
