file(REMOVE_RECURSE
  "libchop_dfg.a"
)
