# Empty compiler generated dependencies file for chop_dfg.
# This may be replaced when dependencies are built.
