
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/analysis.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/analysis.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/analysis.cpp.o.d"
  "/root/repo/src/dfg/benchmarks.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/benchmarks.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/benchmarks.cpp.o.d"
  "/root/repo/src/dfg/dot.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/dot.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/dot.cpp.o.d"
  "/root/repo/src/dfg/generator.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/generator.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/generator.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/subgraph.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/subgraph.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/subgraph.cpp.o.d"
  "/root/repo/src/dfg/unroll.cpp" "src/dfg/CMakeFiles/chop_dfg.dir/unroll.cpp.o" "gcc" "src/dfg/CMakeFiles/chop_dfg.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
