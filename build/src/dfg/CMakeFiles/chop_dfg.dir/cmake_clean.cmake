file(REMOVE_RECURSE
  "CMakeFiles/chop_dfg.dir/analysis.cpp.o"
  "CMakeFiles/chop_dfg.dir/analysis.cpp.o.d"
  "CMakeFiles/chop_dfg.dir/benchmarks.cpp.o"
  "CMakeFiles/chop_dfg.dir/benchmarks.cpp.o.d"
  "CMakeFiles/chop_dfg.dir/dot.cpp.o"
  "CMakeFiles/chop_dfg.dir/dot.cpp.o.d"
  "CMakeFiles/chop_dfg.dir/generator.cpp.o"
  "CMakeFiles/chop_dfg.dir/generator.cpp.o.d"
  "CMakeFiles/chop_dfg.dir/graph.cpp.o"
  "CMakeFiles/chop_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/chop_dfg.dir/subgraph.cpp.o"
  "CMakeFiles/chop_dfg.dir/subgraph.cpp.o.d"
  "CMakeFiles/chop_dfg.dir/unroll.cpp.o"
  "CMakeFiles/chop_dfg.dir/unroll.cpp.o.d"
  "libchop_dfg.a"
  "libchop_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
