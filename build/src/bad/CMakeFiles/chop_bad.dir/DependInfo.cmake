
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bad/controller_model.cpp" "src/bad/CMakeFiles/chop_bad.dir/controller_model.cpp.o" "gcc" "src/bad/CMakeFiles/chop_bad.dir/controller_model.cpp.o.d"
  "/root/repo/src/bad/datapath_model.cpp" "src/bad/CMakeFiles/chop_bad.dir/datapath_model.cpp.o" "gcc" "src/bad/CMakeFiles/chop_bad.dir/datapath_model.cpp.o.d"
  "/root/repo/src/bad/latency_model.cpp" "src/bad/CMakeFiles/chop_bad.dir/latency_model.cpp.o" "gcc" "src/bad/CMakeFiles/chop_bad.dir/latency_model.cpp.o.d"
  "/root/repo/src/bad/power_model.cpp" "src/bad/CMakeFiles/chop_bad.dir/power_model.cpp.o" "gcc" "src/bad/CMakeFiles/chop_bad.dir/power_model.cpp.o.d"
  "/root/repo/src/bad/prediction.cpp" "src/bad/CMakeFiles/chop_bad.dir/prediction.cpp.o" "gcc" "src/bad/CMakeFiles/chop_bad.dir/prediction.cpp.o.d"
  "/root/repo/src/bad/predictor.cpp" "src/bad/CMakeFiles/chop_bad.dir/predictor.cpp.o" "gcc" "src/bad/CMakeFiles/chop_bad.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/chop_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/chop_library.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/chop_schedule.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
