file(REMOVE_RECURSE
  "CMakeFiles/chop_bad.dir/controller_model.cpp.o"
  "CMakeFiles/chop_bad.dir/controller_model.cpp.o.d"
  "CMakeFiles/chop_bad.dir/datapath_model.cpp.o"
  "CMakeFiles/chop_bad.dir/datapath_model.cpp.o.d"
  "CMakeFiles/chop_bad.dir/latency_model.cpp.o"
  "CMakeFiles/chop_bad.dir/latency_model.cpp.o.d"
  "CMakeFiles/chop_bad.dir/power_model.cpp.o"
  "CMakeFiles/chop_bad.dir/power_model.cpp.o.d"
  "CMakeFiles/chop_bad.dir/prediction.cpp.o"
  "CMakeFiles/chop_bad.dir/prediction.cpp.o.d"
  "CMakeFiles/chop_bad.dir/predictor.cpp.o"
  "CMakeFiles/chop_bad.dir/predictor.cpp.o.d"
  "libchop_bad.a"
  "libchop_bad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_bad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
