# Empty dependencies file for chop_bad.
# This may be replaced when dependencies are built.
