file(REMOVE_RECURSE
  "libchop_bad.a"
)
