file(REMOVE_RECURSE
  "libchop_library.a"
)
