file(REMOVE_RECURSE
  "CMakeFiles/chop_library.dir/component_library.cpp.o"
  "CMakeFiles/chop_library.dir/component_library.cpp.o.d"
  "CMakeFiles/chop_library.dir/experiment_library.cpp.o"
  "CMakeFiles/chop_library.dir/experiment_library.cpp.o.d"
  "CMakeFiles/chop_library.dir/module_set.cpp.o"
  "CMakeFiles/chop_library.dir/module_set.cpp.o.d"
  "libchop_library.a"
  "libchop_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chop_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
