
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/library/component_library.cpp" "src/library/CMakeFiles/chop_library.dir/component_library.cpp.o" "gcc" "src/library/CMakeFiles/chop_library.dir/component_library.cpp.o.d"
  "/root/repo/src/library/experiment_library.cpp" "src/library/CMakeFiles/chop_library.dir/experiment_library.cpp.o" "gcc" "src/library/CMakeFiles/chop_library.dir/experiment_library.cpp.o.d"
  "/root/repo/src/library/module_set.cpp" "src/library/CMakeFiles/chop_library.dir/module_set.cpp.o" "gcc" "src/library/CMakeFiles/chop_library.dir/module_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/chop_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
