# Empty compiler generated dependencies file for chop_library.
# This may be replaced when dependencies are built.
