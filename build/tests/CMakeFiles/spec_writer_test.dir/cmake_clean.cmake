file(REMOVE_RECURSE
  "CMakeFiles/spec_writer_test.dir/spec_writer_test.cpp.o"
  "CMakeFiles/spec_writer_test.dir/spec_writer_test.cpp.o.d"
  "spec_writer_test"
  "spec_writer_test.pdb"
  "spec_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
