# Empty dependencies file for spec_writer_test.
# This may be replaced when dependencies are built.
