
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/umbrella_test.cpp" "tests/CMakeFiles/umbrella_test.dir/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/umbrella_test.dir/umbrella_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bad/CMakeFiles/chop_bad.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/chop_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/chop_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/chop_library.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/chop_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/chop_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/chop_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
