file(REMOVE_RECURSE
  "CMakeFiles/task_schedule_test.dir/task_schedule_test.cpp.o"
  "CMakeFiles/task_schedule_test.dir/task_schedule_test.cpp.o.d"
  "task_schedule_test"
  "task_schedule_test.pdb"
  "task_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
