# Empty compiler generated dependencies file for task_schedule_test.
# This may be replaced when dependencies are built.
