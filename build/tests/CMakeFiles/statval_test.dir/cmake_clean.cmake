file(REMOVE_RECURSE
  "CMakeFiles/statval_test.dir/statval_test.cpp.o"
  "CMakeFiles/statval_test.dir/statval_test.cpp.o.d"
  "statval_test"
  "statval_test.pdb"
  "statval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
