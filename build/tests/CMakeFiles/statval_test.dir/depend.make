# Empty dependencies file for statval_test.
# This may be replaced when dependencies are built.
