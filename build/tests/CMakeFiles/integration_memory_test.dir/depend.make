# Empty dependencies file for integration_memory_test.
# This may be replaced when dependencies are built.
