file(REMOVE_RECURSE
  "CMakeFiles/integration_memory_test.dir/integration_memory_test.cpp.o"
  "CMakeFiles/integration_memory_test.dir/integration_memory_test.cpp.o.d"
  "integration_memory_test"
  "integration_memory_test.pdb"
  "integration_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
