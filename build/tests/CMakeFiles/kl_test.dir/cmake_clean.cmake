file(REMOVE_RECURSE
  "CMakeFiles/kl_test.dir/kl_test.cpp.o"
  "CMakeFiles/kl_test.dir/kl_test.cpp.o.d"
  "kl_test"
  "kl_test.pdb"
  "kl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
