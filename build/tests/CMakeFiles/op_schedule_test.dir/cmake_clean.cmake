file(REMOVE_RECURSE
  "CMakeFiles/op_schedule_test.dir/op_schedule_test.cpp.o"
  "CMakeFiles/op_schedule_test.dir/op_schedule_test.cpp.o.d"
  "op_schedule_test"
  "op_schedule_test.pdb"
  "op_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
