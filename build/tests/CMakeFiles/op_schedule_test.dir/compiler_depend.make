# Empty compiler generated dependencies file for op_schedule_test.
# This may be replaced when dependencies are built.
