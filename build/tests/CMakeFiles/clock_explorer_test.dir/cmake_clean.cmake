file(REMOVE_RECURSE
  "CMakeFiles/clock_explorer_test.dir/clock_explorer_test.cpp.o"
  "CMakeFiles/clock_explorer_test.dir/clock_explorer_test.cpp.o.d"
  "clock_explorer_test"
  "clock_explorer_test.pdb"
  "clock_explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
