# Empty dependencies file for session_guideline_test.
# This may be replaced when dependencies are built.
