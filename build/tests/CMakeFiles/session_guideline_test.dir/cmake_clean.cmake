file(REMOVE_RECURSE
  "CMakeFiles/session_guideline_test.dir/session_guideline_test.cpp.o"
  "CMakeFiles/session_guideline_test.dir/session_guideline_test.cpp.o.d"
  "session_guideline_test"
  "session_guideline_test.pdb"
  "session_guideline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_guideline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
