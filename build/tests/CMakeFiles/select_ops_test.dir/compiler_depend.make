# Empty compiler generated dependencies file for select_ops_test.
# This may be replaced when dependencies are built.
