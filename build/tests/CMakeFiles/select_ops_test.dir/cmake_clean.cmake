file(REMOVE_RECURSE
  "CMakeFiles/select_ops_test.dir/select_ops_test.cpp.o"
  "CMakeFiles/select_ops_test.dir/select_ops_test.cpp.o.d"
  "select_ops_test"
  "select_ops_test.pdb"
  "select_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
