file(REMOVE_RECURSE
  "CMakeFiles/spec_format_test.dir/spec_format_test.cpp.o"
  "CMakeFiles/spec_format_test.dir/spec_format_test.cpp.o.d"
  "spec_format_test"
  "spec_format_test.pdb"
  "spec_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
