# Empty dependencies file for spec_format_test.
# This may be replaced when dependencies are built.
