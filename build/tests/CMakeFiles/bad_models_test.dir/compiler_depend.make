# Empty compiler generated dependencies file for bad_models_test.
# This may be replaced when dependencies are built.
