file(REMOVE_RECURSE
  "CMakeFiles/bad_models_test.dir/bad_models_test.cpp.o"
  "CMakeFiles/bad_models_test.dir/bad_models_test.cpp.o.d"
  "bad_models_test"
  "bad_models_test.pdb"
  "bad_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bad_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
