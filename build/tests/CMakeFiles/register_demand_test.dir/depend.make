# Empty dependencies file for register_demand_test.
# This may be replaced when dependencies are built.
