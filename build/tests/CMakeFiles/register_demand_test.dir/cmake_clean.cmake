file(REMOVE_RECURSE
  "CMakeFiles/register_demand_test.dir/register_demand_test.cpp.o"
  "CMakeFiles/register_demand_test.dir/register_demand_test.cpp.o.d"
  "register_demand_test"
  "register_demand_test.pdb"
  "register_demand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_demand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
