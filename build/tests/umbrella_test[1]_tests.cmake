add_test([=[Umbrella.EverythingLinks]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.EverythingLinks]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EverythingLinks]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.EverythingLinks)
