# Empty dependencies file for bench_baseline_kl.
# This may be replaced when dependencies are built.
