file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_kl.dir/bench_baseline_kl.cpp.o"
  "CMakeFiles/bench_baseline_kl.dir/bench_baseline_kl.cpp.o.d"
  "bench_baseline_kl"
  "bench_baseline_kl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
