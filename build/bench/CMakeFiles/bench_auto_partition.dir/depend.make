# Empty dependencies file for bench_auto_partition.
# This may be replaced when dependencies are built.
