file(REMOVE_RECURSE
  "CMakeFiles/bench_auto_partition.dir/bench_auto_partition.cpp.o"
  "CMakeFiles/bench_auto_partition.dir/bench_auto_partition.cpp.o.d"
  "bench_auto_partition"
  "bench_auto_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auto_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
