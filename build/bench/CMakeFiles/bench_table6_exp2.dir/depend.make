# Empty dependencies file for bench_table6_exp2.
# This may be replaced when dependencies are built.
