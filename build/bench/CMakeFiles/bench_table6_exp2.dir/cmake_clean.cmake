file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_exp2.dir/bench_table6_exp2.cpp.o"
  "CMakeFiles/bench_table6_exp2.dir/bench_table6_exp2.cpp.o.d"
  "bench_table6_exp2"
  "bench_table6_exp2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_exp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
