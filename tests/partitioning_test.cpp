// Tests for the partitioning model and the §2.7 modification groups.
#include "core/partitioning.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"

namespace chop::core {
namespace {

std::vector<chip::ChipInstance> two_chips() {
  return {{"c0", chip::mosis_package_84()}, {"c1", chip::mosis_package_84()}};
}

TEST(Partitioning, ValidTwoWayPartitioning) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  EXPECT_NO_THROW(pt.validate());
  EXPECT_EQ(pt.partitions().size(), 2u);
}

TEST(Partitioning, NeedsAtLeastOneChip) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  EXPECT_THROW(Partitioning(ar.graph, {}), Error);
}

TEST(Partitioning, RejectsUnassignedOperations) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  pt.add_partition("P1", ar.layer_span(0, 3), 0);  // half the graph only
  EXPECT_THROW(pt.validate(), Error);
}

TEST(Partitioning, RejectsDoubleAssignment) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  pt.add_partition("P1", ar.all_operations(), 0);
  pt.add_partition("P2", ar.layer_span(0, 0), 1);
  EXPECT_THROW(pt.validate(), Error);
}

TEST(Partitioning, RejectsBoundaryMembers) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  auto members = ar.all_operations();
  members.push_back(0);  // node 0 is the carry primary input
  pt.add_partition("P1", members, 0);
  EXPECT_THROW(pt.validate(), Error);
}

TEST(Partitioning, RejectsNonexistentChip) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  EXPECT_THROW(pt.add_partition("P1", ar.all_operations(), 7), Error);
}

TEST(Partitioning, RejectsMutualDependency) {
  // Split the AR filter so data flows P1 -> P2 -> P1: layers 0-1 and 4-5
  // in one partition, 2-3 and 6-7 in the other.
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  auto a = ar.layer_span(0, 1);
  const auto a2 = ar.layer_span(4, 5);
  a.insert(a.end(), a2.begin(), a2.end());
  auto b = ar.layer_span(2, 3);
  const auto b2 = ar.layer_span(6, 7);
  b.insert(b.end(), b2.begin(), b2.end());
  pt.add_partition("P1", a, 0);
  pt.add_partition("P2", b, 1);
  EXPECT_THROW(pt.validate(), Error);
}

TEST(Partitioning, MultiplePartitionsPerChipAllowed) {
  // "there can be multiple partitions assigned to a single chip" — and
  // same-chip partitions may depend on each other as long as no cycles.
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto cuts = dfg::ar_three_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 0);
  pt.add_partition("P3", cuts[2], 1);
  EXPECT_NO_THROW(pt.validate());
  EXPECT_EQ(pt.partitions_on_chip(0).size(), 2u);
  EXPECT_EQ(pt.partitions_on_chip(1).size(), 1u);
}

TEST(Partitioning, MoveOperationBetweenPartitions) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  // Move the last op of P1's section 2 adds into P2 — still acyclic.
  const dfg::NodeId op = cuts[0].back();
  pt.move_operation(op, 1);
  EXPECT_NO_THROW(pt.validate());
  EXPECT_EQ(pt.partitions()[0].members.size(), cuts[0].size() - 1);
  EXPECT_EQ(pt.partitions()[1].members.size(), cuts[1].size() + 1);
}

TEST(Partitioning, MoveOperationIsIdempotentWithinPartition) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  pt.move_operation(cuts[0][0], 0);
  EXPECT_EQ(pt.partitions()[0].members.size(), cuts[0].size());
}

TEST(Partitioning, MoveOperationErrors) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  pt.add_partition("P1", ar.all_operations(), 0);
  EXPECT_THROW(pt.move_operation(ar.all_operations()[0], 5), Error);
  EXPECT_THROW(pt.move_operation(0, 0), Error);  // input is not assigned
}

TEST(Partitioning, CannotEmptyAPartitionByMigration) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto all = ar.all_operations();
  pt.add_partition("P1", {all[0]}, 0);
  std::vector<dfg::NodeId> rest(all.begin() + 1, all.end());
  pt.add_partition("P2", rest, 1);
  EXPECT_THROW(pt.move_operation(all[0], 1), Error);
}

TEST(Partitioning, MovePartitionToChip) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  pt.add_partition("P1", ar.all_operations(), 0);
  pt.move_partition_to_chip(0, 1);
  EXPECT_EQ(pt.partitions()[0].chip, 1);
  EXPECT_THROW(pt.move_partition_to_chip(0, 9), Error);
  EXPECT_THROW(pt.move_partition_to_chip(4, 0), Error);
}

TEST(Partitioning, ReplaceChipPackage) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  pt.add_partition("P1", ar.all_operations(), 0);
  pt.replace_chip_package(0, chip::mosis_package_64());
  EXPECT_EQ(pt.chips()[0].package.pin_count, 64);
  EXPECT_THROW(pt.replace_chip_package(9, chip::mosis_package_64()), Error);
}

TEST(Partitioning, MemoryPlacementChanges) {
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 300.0, 5000.0, 3});
  mem.blocks.push_back({"M_B", 16, 256, 1, 300.0, 5000.0, 3});
  mem.chip_of_block = {0, chip::kOffTheShelfChip};
  Partitioning pt(arm.graph, two_chips(), mem);
  pt.add_partition("P1", arm.all_operations(), 0);
  EXPECT_NO_THROW(pt.validate());
  pt.set_memory_placement(1, 1);
  EXPECT_EQ(pt.memory().placement(1), 1);
  EXPECT_THROW(pt.set_memory_placement(9, 0), Error);
  EXPECT_THROW(pt.set_memory_placement(0, 9), Error);
}

TEST(Partitioning, SubgraphMatchesMembers) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  const dfg::Subgraph sub = pt.subgraph(0);
  EXPECT_EQ(sub.graph.operation_count(), cuts[0].size());
  EXPECT_THROW(pt.subgraph(5), Error);
}

TEST(Partitioning, PartitionOfNodeView) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, two_chips());
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  const auto owner = pt.partition_of_node();
  for (dfg::NodeId id : cuts[0]) {
    EXPECT_EQ(owner[static_cast<std::size_t>(id)], 0);
  }
  for (dfg::NodeId id : cuts[1]) {
    EXPECT_EQ(owner[static_cast<std::size_t>(id)], 1);
  }
}

}  // namespace
}  // namespace chop::core
