// Tests for src/exact/: the implicit-enumeration certification solver and
// its standalone checker. The Certify suite is the paper-sweep contract
// ISSUE 9 asks for — every Fig-7/Fig-8 experiment configuration whose
// eligible space fits the cap is proven optimal with a checker-verified
// certificate — and the rest of the file drives the adversarial side:
// tampered certificates must be rejected, and a corrupted heuristic bound
// slack must leave the exact frontier untouched.
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "core/eval/bound_state.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "exact/checker.hpp"
#include "exact/solver.hpp"
#include "library/experiment_library.hpp"

namespace chop {
namespace {

/// The bench/common.hpp experiment recipe, restated locally: tests do not
/// include bench/ headers.
enum class Experiment { One, Two };

const lib::ComponentLibrary& experiment_library() {
  static const lib::ComponentLibrary library = lib::dac91_experiment_library();
  return library;
}

core::ChopSession make_experiment_session(Experiment exp, int nparts,
                                          chip::ChipPackage pkg) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), pkg});
  }
  core::Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1
          ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
          : (nparts == 2 ? dfg::ar_two_way_cut(ar) : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  core::ChopConfig config;
  if (exp == Experiment::One) {
    config.style.clocking = bad::ClockingStyle::SingleCycle;
    config.clocks = {300.0, 10, 1};
    config.constraints = {30000.0, 30000.0};
  } else {
    config.style.clocking = bad::ClockingStyle::MultiCycle;
    config.clocks = {300.0, 1, 1};
    config.constraints = {20000.0, 20000.0};
  }
  return core::ChopSession(experiment_library(), std::move(pt), config);
}

core::SearchResult run_enumeration(const core::ChopSession& session) {
  core::CandidateEvaluator evaluator(0);
  core::SearchOptions opt;
  opt.heuristic = core::Heuristic::Enumeration;
  opt.evaluator = &evaluator;
  return session.search(opt);
}

/// Solves the session's eligible space exactly and demands the full
/// contract: frontier == heuristic designs point for point, coverage
/// equation, checker-accepted certificate. Returns the exact result for
/// further inspection.
exact::ExactResult certify_session(core::ChopSession& session) {
  session.predict_partitions();
  const core::EvalContext ctx = session.make_eval_context();
  const auto& lists = session.predictions().eligible;
  const exact::ExactResult proven = exact::solve(ctx, lists, {});
  EXPECT_FALSE(proven.truncated);

  const core::SearchResult heuristic = run_enumeration(session);
  EXPECT_EQ(proven.frontier.size(), heuristic.designs.size());
  for (std::size_t i = 0;
       i < std::min(proven.frontier.size(), heuristic.designs.size()); ++i) {
    EXPECT_EQ(proven.frontier[i].choice, heuristic.designs[i].choice)
        << "frontier point " << i;
    EXPECT_EQ(proven.frontier[i].ii_main,
              heuristic.designs[i].integration.ii_main);
    EXPECT_EQ(proven.frontier[i].delay_main,
              heuristic.designs[i].integration.system_delay_main);
  }

  std::size_t pruned_leaves = 0;
  for (const exact::BoundProof& p : proven.certificate.proofs) {
    pruned_leaves += p.leaves;
  }
  EXPECT_EQ(proven.visited + pruned_leaves, proven.space);

  const exact::CheckResult check =
      exact::verify_certificate(ctx, lists, proven.certificate);
  EXPECT_TRUE(check.ok) << check.detail;
  return proven;
}

// --- the paper sweeps ------------------------------------------------------

TEST(Certify, Fig7Experiment1Sweep) {
  // Figure 7's experiment-1 configurations: 1..3 chips, both MOSIS
  // packages. Certification runs on the level-1-pruned eligible lists —
  // the same lists the default search walks.
  std::size_t nontrivial = 0;
  for (int pkg_index = 1; pkg_index <= 2; ++pkg_index) {
    for (int nparts = 1; nparts <= 3; ++nparts) {
      SCOPED_TRACE("pkg " + std::to_string(pkg_index) + " nparts " +
                   std::to_string(nparts));
      core::ChopSession session = make_experiment_session(
          Experiment::One, nparts,
          pkg_index == 1 ? chip::mosis_package_64() : chip::mosis_package_84());
      const exact::ExactResult proven = certify_session(session);
      if (proven.space > 1) ++nontrivial;
    }
  }
  EXPECT_GE(nontrivial, 4u);
}

TEST(Certify, Fig8Experiment2Sweep) {
  std::size_t nontrivial = 0;
  for (int pkg_index = 1; pkg_index <= 2; ++pkg_index) {
    for (int nparts = 1; nparts <= 3; ++nparts) {
      SCOPED_TRACE("pkg " + std::to_string(pkg_index) + " nparts " +
                   std::to_string(nparts));
      core::ChopSession session = make_experiment_session(
          Experiment::Two, nparts,
          pkg_index == 1 ? chip::mosis_package_64() : chip::mosis_package_84());
      const exact::ExactResult proven = certify_session(session);
      if (proven.space > 1) ++nontrivial;
    }
  }
  EXPECT_GE(nontrivial, 4u);
}

// --- solver properties -----------------------------------------------------

TEST(Certify, DeterministicCertificateBytes) {
  core::ChopSession session =
      make_experiment_session(Experiment::Two, 2, chip::mosis_package_84());
  session.predict_partitions();
  const core::EvalContext ctx = session.make_eval_context();
  const auto& lists = session.predictions().eligible;
  const exact::ExactResult a = exact::solve(ctx, lists, {});
  const exact::ExactResult b = exact::solve(ctx, lists, {});
  std::ostringstream text_a, text_b;
  exact::write_certificate(a.certificate, text_a);
  exact::write_certificate(b.certificate, text_b);
  EXPECT_EQ(text_a.str(), text_b.str());
  EXPECT_FALSE(text_a.str().empty());
}

TEST(Certify, TruncatesOverTheLeafCap) {
  core::ChopSession session =
      make_experiment_session(Experiment::Two, 2, chip::mosis_package_84());
  session.predict_partitions();
  const core::EvalContext ctx = session.make_eval_context();
  const auto& lists = session.predictions().eligible;
  exact::ExactOptions options;
  options.max_leaves = 1;
  const exact::ExactResult truncated = exact::solve(ctx, lists, options);
  EXPECT_TRUE(truncated.truncated);
  EXPECT_TRUE(truncated.frontier.empty());
  EXPECT_TRUE(truncated.certificate.proofs.empty());
  EXPECT_EQ(truncated.visited, 0u);
}

TEST(Certify, ImmuneToCorruptedHeuristicSlack) {
  // The exact solver never reads the branch-and-bound slack, so the same
  // inadmissible factor chop_fuzz injects must leave its frontier
  // byte-identical — that independence is the whole point of the oracle.
  core::ChopSession session =
      make_experiment_session(Experiment::Two, 2, chip::mosis_package_84());
  session.predict_partitions();
  const core::EvalContext ctx = session.make_eval_context();
  const auto& lists = session.predictions().eligible;
  const exact::ExactResult clean = exact::solve(ctx, lists, {});
  core::set_bound_slack_for_testing(1.25);
  const exact::ExactResult corrupted_env = exact::solve(ctx, lists, {});
  core::set_bound_slack_for_testing(core::kBoundSlack);

  std::ostringstream clean_text, corrupted_text;
  exact::write_certificate(clean.certificate, clean_text);
  exact::write_certificate(corrupted_env.certificate, corrupted_text);
  EXPECT_EQ(clean_text.str(), corrupted_text.str());
  const exact::CheckResult check =
      exact::verify_certificate(ctx, lists, corrupted_env.certificate);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST(Certify, EmptyFrontierWhenInfeasible) {
  // Impossible budgets: the certificate must prove that NO feasible
  // design exists (empty frontier, full coverage), not merely fail.
  core::ChopSession session =
      make_experiment_session(Experiment::Two, 2, chip::mosis_package_84());
  core::ChopConfig config = session.config();
  config.constraints.performance_ns = 1.0;
  config.constraints.delay_ns = 1.0;
  core::ChopSession tight(experiment_library(), session.partitioning(),
                          config);
  tight.predict_partitions();
  const core::EvalContext ctx = tight.make_eval_context();
  const auto& lists = tight.predictions().eligible;
  const exact::ExactResult proven = exact::solve(ctx, lists, {});
  EXPECT_FALSE(proven.truncated);
  EXPECT_TRUE(proven.frontier.empty());
  const exact::CheckResult check =
      exact::verify_certificate(ctx, lists, proven.certificate);
  EXPECT_TRUE(check.ok) << check.detail;
}

// --- the checker must reject tampering -------------------------------------

class CertifyTamper : public ::testing::Test {
 protected:
  void SetUp() override {
    session_.emplace(
        make_experiment_session(Experiment::Two, 2, chip::mosis_package_84()));
    session_->predict_partitions();
    ctx_.emplace(session_->make_eval_context());
    proven_ = exact::solve(*ctx_, lists(), {});
    ASSERT_FALSE(proven_.truncated);
    ASSERT_FALSE(proven_.frontier.empty());
    ASSERT_FALSE(proven_.certificate.proofs.empty());
    ASSERT_TRUE(exact::verify_certificate(*ctx_, lists(), proven_.certificate)
                    .ok);
  }

  const std::vector<std::vector<bad::DesignPrediction>>& lists() const {
    return session_->predictions().eligible;
  }

  std::string reject(const exact::Certificate& cert) {
    const exact::CheckResult check =
        exact::verify_certificate(*ctx_, lists(), cert);
    EXPECT_FALSE(check.ok);
    return check.detail;
  }

  std::optional<core::ChopSession> session_;
  std::optional<core::EvalContext> ctx_;
  exact::ExactResult proven_;
};

TEST_F(CertifyTamper, WrongFingerprint) {
  exact::Certificate cert = proven_.certificate;
  cert.context_fingerprint ^= 1;
  EXPECT_NE(reject(cert).find("fingerprint"), std::string::npos);
}

TEST_F(CertifyTamper, DroppedProofBreaksCoverage) {
  exact::Certificate cert = proven_.certificate;
  cert.proofs.pop_back();
  EXPECT_NE(reject(cert).find("coverage"), std::string::npos);
}

TEST_F(CertifyTamper, InflatedVisitedBreaksCoverage) {
  exact::Certificate cert = proven_.certificate;
  cert.visited += 1;
  EXPECT_NE(reject(cert).find("coverage"), std::string::npos);
}

TEST_F(CertifyTamper, CorruptedWitnessCoordinates) {
  exact::Certificate cert = proven_.certificate;
  cert.frontier.front().delay_main += 1;
  EXPECT_NE(reject(cert).find("replays"), std::string::npos);
}

TEST_F(CertifyTamper, DuplicatedRegionOverlaps) {
  exact::Certificate cert = proven_.certificate;
  // Keep the coverage equation satisfied so the overlap check itself has
  // to catch the duplicate.
  exact::BoundProof duplicate = cert.proofs.front();
  cert.proofs.push_back(duplicate);
  ASSERT_GE(cert.visited, duplicate.leaves);
  cert.visited -= duplicate.leaves;
  EXPECT_NE(reject(cert).find("overlap"), std::string::npos);
}

TEST_F(CertifyTamper, NonStaircaseFrontier) {
  exact::Certificate cert = proven_.certificate;
  cert.frontier.push_back(cert.frontier.front());
  EXPECT_FALSE(
      exact::verify_certificate(*ctx_, lists(), cert).ok);
}

}  // namespace
}  // namespace chop
