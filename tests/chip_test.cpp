// Tests for chip packages (Table 2) and the memory subsystem model.
#include <gtest/gtest.h>

#include "chip/memory.hpp"
#include "chip/mosis_packages.hpp"

namespace chop::chip {
namespace {

TEST(MosisPackages, MatchTable2) {
  const ChipPackage p64 = mosis_package_64();
  const ChipPackage p84 = mosis_package_84();
  EXPECT_EQ(p64.pin_count, 64);
  EXPECT_EQ(p84.pin_count, 84);
  for (const ChipPackage* p : {&p64, &p84}) {
    EXPECT_DOUBLE_EQ(p->width_mil, 311.02);
    EXPECT_DOUBLE_EQ(p->height_mil, 362.20);
    EXPECT_DOUBLE_EQ(p->pad_delay, 25.0);
    EXPECT_DOUBLE_EQ(p->io_pad_area, 297.60);
  }
}

TEST(ChipPackage, ProjectAndUsableArea) {
  const ChipPackage p = mosis_package_84();
  EXPECT_NEAR(p.project_area(), 311.02 * 362.20, 1e-9);
  EXPECT_NEAR(p.usable_area(), p.project_area() - 84 * 297.60, 1e-9);
  EXPECT_GT(p.usable_area(), 0.0);
}

TEST(ChipPackage, SignalPinsExcludeInfrastructure) {
  ChipPackage p = mosis_package_64();
  EXPECT_EQ(p.signal_pins(), 64 - p.infrastructure_pins);
}

TEST(ChipPackage, ValidateCatchesNonsense) {
  ChipPackage p = mosis_package_64();
  p.pin_count = 0;
  EXPECT_THROW(p.validate(), Error);

  p = mosis_package_64();
  p.width_mil = -1;
  EXPECT_THROW(p.validate(), Error);

  p = mosis_package_64();
  p.infrastructure_pins = 64;
  EXPECT_THROW(p.validate(), Error);

  p = mosis_package_64();
  p.io_pad_area = 1e9;  // pads eat the whole die
  EXPECT_THROW(p.validate(), Error);
}

TEST(MemoryModule, Validate) {
  MemoryModule m;
  m.name = "M_A";
  EXPECT_NO_THROW(m.validate());
  m.word_bits = 0;
  EXPECT_THROW(m.validate(), Error);
  m.word_bits = 16;
  m.ports = 0;
  EXPECT_THROW(m.validate(), Error);
}

TEST(MemorySubsystem, PlacementLookup) {
  MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 80.0, 5000.0, 3});
  mem.blocks.push_back({"M_B", 32, 128, 2, 60.0, 8000.0, 3});
  mem.chip_of_block = {1, kOffTheShelfChip};
  EXPECT_NO_THROW(mem.validate(2));
  EXPECT_EQ(mem.placement(0), 1);
  EXPECT_EQ(mem.placement(1), kOffTheShelfChip);
  EXPECT_THROW(mem.placement(5), Error);
}

TEST(MemorySubsystem, ValidateCatchesBadPlacement) {
  MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 80.0, 5000.0, 3});
  mem.chip_of_block = {7};
  EXPECT_THROW(mem.validate(2), Error);
  mem.chip_of_block = {};
  EXPECT_THROW(mem.validate(2), Error);
}

}  // namespace
}  // namespace chop::chip
