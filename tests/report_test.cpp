// Tests for the Markdown report renderer.
#include "io/report.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::io {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

core::ChopSession ar_session(bool with_memory = false) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  static const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  const dfg::BenchmarkGraph& bg = with_memory ? arm : ar;
  chip::MemorySubsystem memory;
  if (with_memory) {
    memory.blocks.push_back({"coeff", 16, 64, 1, 300.0, 4000.0, 3});
    memory.blocks.push_back({"spill", 16, 256, 1, 300.0, 6000.0, 3});
    memory.chip_of_block = {0, chip::kOffTheShelfChip};
  }
  core::Partitioning pt(bg.graph,
                        {{"c0", chip::mosis_package_84()},
                         {"c1", chip::mosis_package_84()}},
                        memory);
  pt.add_partition("P1", bg.layer_span(0, 3), 0);
  pt.add_partition("P2", bg.layer_span(4, bg.layers.size() - 1), 1);
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, with_memory ? 60000.0 : 30000.0};
  return core::ChopSession(library(), std::move(pt), config);
}

TEST(Report, ContainsAllSections) {
  core::ChopSession session = ar_session();
  const core::PredictionStats stats = session.predict_partitions();
  const core::SearchResult result = session.search({});
  const std::string report = render_report_string(session, stats, result);
  EXPECT_NE(report.find("# CHOP partitioning report"), std::string::npos);
  EXPECT_NE(report.find("## Partitioning"), std::string::npos);
  EXPECT_NE(report.find("## Prediction and search statistics"),
            std::string::npos);
  EXPECT_NE(report.find("## Feasible designs"), std::string::npos);
  EXPECT_NE(report.find("guideline"), std::string::npos);
  EXPECT_NE(report.find("| P1 | c0 |"), std::string::npos);
  EXPECT_NE(report.find("Per-chip budgets"), std::string::npos);
}

TEST(Report, MemoryTableRendered) {
  core::ChopSession session = ar_session(true);
  const core::PredictionStats stats = session.predict_partitions();
  const core::SearchResult result = session.search({});
  const std::string report = render_report_string(session, stats, result);
  EXPECT_NE(report.find("| Memory block |"), std::string::npos);
  EXPECT_NE(report.find("off-the-shelf chip"), std::string::npos);
}

TEST(Report, InfeasibleSessionSaysSo) {
  core::ChopSession session = ar_session();
  session.set_constraints({100.0, 100.0});
  const core::PredictionStats stats = session.predict_partitions();
  const core::SearchResult result = session.search({});
  const std::string report = render_report_string(session, stats, result);
  EXPECT_NE(report.find("No feasible partitioning"), std::string::npos);
  EXPECT_EQ(report.find("guideline"), std::string::npos);
}

TEST(Report, OptionsControlContent) {
  core::ChopSession session = ar_session();
  const core::PredictionStats stats = session.predict_partitions();
  const core::SearchResult result = session.search({});
  ReportOptions options;
  options.title = "Custom Title";
  options.include_guidelines = false;
  options.include_transfers = false;
  const std::string report =
      render_report_string(session, stats, result, options);
  EXPECT_NE(report.find("# Custom Title"), std::string::npos);
  EXPECT_EQ(report.find("module library of"), std::string::npos);
  EXPECT_EQ(report.find("| Transfer |"), std::string::npos);
}

TEST(Report, MaxDesignsLimitsDetailSections) {
  core::ChopSession session = ar_session();
  const core::PredictionStats stats = session.predict_partitions();
  const core::SearchResult result = session.search({});
  ReportOptions options;
  options.max_designs = 0;
  const std::string report =
      render_report_string(session, stats, result, options);
  EXPECT_EQ(report.find("— guideline"), std::string::npos);
  // The summary table still lists every design.
  EXPECT_NE(report.find("## Feasible designs"), std::string::npos);
}

}  // namespace
}  // namespace chop::io
