// Direct unit tests for the SharedFrontier edge cases the adversarial
// parallel-search suite reaches only probabilistically: empty wave
// commits, epoch probes on an untouched frontier, commit fold-order
// independence, publication racing a record-cap exhaustion, and a space
// that degenerates to a single work unit.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "chip/mosis_packages.hpp"
#include "core/eval/bound_state.hpp"
#include "core/recorder.hpp"
#include "core/search.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

TEST(SharedFrontier, EmptyWaveCommitIsANoOp) {
  SharedFrontier shared;
  EXPECT_EQ(shared.commit(), 0u);
  EXPECT_EQ(shared.epoch(), 0u);

  // A wave that published nothing must not bump the epoch even after
  // earlier waves did.
  shared.publish(10, 20);
  EXPECT_EQ(shared.commit(), 1u);
  const std::uint64_t after_first = shared.epoch();
  EXPECT_GT(after_first, 0u);
  EXPECT_EQ(shared.commit(), 0u);
  EXPECT_EQ(shared.epoch(), after_first);
}

TEST(SharedFrontier, EpochProbeOnAnUntouchedFrontierPullsNothing) {
  SharedFrontier shared;
  std::uint64_t seen = 0;
  ParetoFrontier dest;
  EXPECT_FALSE(shared.snapshot(seen, dest));
  EXPECT_EQ(seen, 0u);
  EXPECT_TRUE(dest.empty());

  // Staged-but-uncommitted points stay invisible: the probe is still the
  // one-atomic-load cheap path.
  shared.publish(5, 5);
  EXPECT_FALSE(shared.snapshot(seen, dest));
  EXPECT_TRUE(dest.empty());
}

TEST(SharedFrontier, CommitBumpsTheEpochOnlyWhenSomethingTightens) {
  SharedFrontier shared;
  shared.publish(10, 20);
  ASSERT_EQ(shared.commit(), 1u);
  const std::uint64_t epoch = shared.epoch();

  // A wave of weakly dominated finds commits zero points and leaves the
  // epoch alone, so later units keep taking the cheap snapshot path.
  shared.publish(10, 20);
  shared.publish(12, 25);
  EXPECT_EQ(shared.commit(), 0u);
  EXPECT_EQ(shared.epoch(), epoch);

  std::uint64_t seen = epoch;
  ParetoFrontier dest;
  EXPECT_FALSE(shared.snapshot(seen, dest));
}

TEST(SharedFrontier, SnapshotPullsOnceThenGoesQuiet) {
  SharedFrontier shared;
  shared.publish(10, 30);
  shared.publish(20, 15);
  shared.commit();

  std::uint64_t seen = 0;
  ParetoFrontier dest;
  EXPECT_TRUE(shared.snapshot(seen, dest));
  ASSERT_EQ(dest.size(), 2u);
  EXPECT_TRUE(dest.dominates_strictly(10, 31));
  EXPECT_FALSE(shared.snapshot(seen, dest));
}

TEST(SharedFrontier, CommitFoldOrderDoesNotChangeTheStaircase) {
  const std::vector<std::pair<Cycles, Cycles>> wave = {
      {10, 50}, {20, 40}, {30, 30}, {20, 45}, {10, 50}, {5, 60}, {30, 25}};
  std::vector<std::vector<std::pair<Cycles, Cycles>>> staircases;
  for (const std::uint64_t seed : {0ull, 1ull, 7ull, 1234567ull}) {
    SharedFrontier::set_commit_shuffle_for_testing(seed);
    SharedFrontier shared;
    for (const auto& p : wave) shared.publish(p.first, p.second);
    shared.commit();
    std::uint64_t seen = 0;
    ParetoFrontier dest;
    EXPECT_TRUE(shared.snapshot(seen, dest));
    staircases.push_back(dest.points());
  }
  SharedFrontier::set_commit_shuffle_for_testing(0);
  for (std::size_t i = 1; i < staircases.size(); ++i) {
    EXPECT_EQ(staircases[i], staircases[0]) << "shuffle seed index " << i;
  }
}

TEST(SharedFrontier, ConcurrentPublicationStagesEveryFind) {
  SharedFrontier shared;
  ParetoFrontier serial;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, t] {
      for (int i = 0; i < kPerThread; ++i) {
        shared.publish(1 + (t * kPerThread + i) % 37,
                       100 - (t * 7 + i * 3) % 61);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      serial.insert(1 + (t * kPerThread + i) % 37, 100 - (t * 7 + i * 3) % 61);
    }
  }
  shared.commit();
  std::uint64_t seen = 0;
  ParetoFrontier dest;
  ASSERT_TRUE(shared.snapshot(seen, dest));
  EXPECT_EQ(dest.points(), serial.points());
}

/// Ready-to-search session on the AR filter (the Figure-7 experiment).
ChopSession fig7_session(int nparts) {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), chip::mosis_package_84()});
  }
  Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1 ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
                  : dfg::ar_two_way_cut(ar);
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(lib, std::move(pt), config);
}

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.feasible_raw, b.feasible_raw);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.pruned_subtrees, b.pruned_subtrees);
  EXPECT_EQ(a.bound_skipped_leaves, b.bound_skipped_leaves);
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].choice, b.designs[i].choice) << "design " << i;
  }
  EXPECT_EQ(a.recorder.total(), b.recorder.total());
  EXPECT_EQ(a.recorder.unique(), b.recorder.unique());
}

/// A space degenerated to one candidate per partition plans exactly one
/// work unit: waves are singletons, every commit after the first find is
/// empty, and snapshots can never pull another unit's work. Shared-on
/// must match shared-off and serial byte for byte.
TEST(SharedFrontierSearch, SingleUnitSpaceIsInvariantUnderSharing) {
  ChopSession session = fig7_session(2);
  session.predict_partitions();
  PartitionPredictions pred;
  for (const auto& list : session.predictions().eligible) {
    ASSERT_FALSE(list.empty());
    pred.eligible.push_back({list.front()});
    pred.raw.push_back({list.front()});
  }
  const EvalContext ctx = session.make_eval_context();

  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  const SearchResult serial = find_feasible_implementations(ctx, pred, opt);
  EXPECT_EQ(serial.trials, 1u);

  for (const int threads : {2, 4}) {
    for (const bool shared : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shared=" + std::to_string(shared));
      SearchOptions popt = opt;
      popt.threads = threads;
      popt.shared_frontier = shared;
      expect_identical(serial,
                       find_feasible_implementations(ctx, pred, popt));
    }
  }
}

/// Units that hit the record cap stop *before* evaluating their next leaf
/// while other units keep publishing into the shared frontier. The race
/// must not leak into the merged result: capped parallel runs are
/// byte-identical to the capped serial run at any thread count, twice.
TEST(SharedFrontierSearch, PublicationRacingRecordCapStaysDeterministic) {
  ChopSession session = fig7_session(2);
  session.predict_partitions();

  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.record_all = true;
  opt.max_trials = 40;  // Well under the Fig-7 two-way space.

  const SearchResult serial = session.search(opt);
  EXPECT_TRUE(serial.truncated);
  EXPECT_EQ(serial.trials, 40u);

  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SearchOptions popt = opt;
    popt.threads = threads;
    popt.shared_frontier = true;
    const SearchResult first = session.search(popt);
    const SearchResult second = session.search(popt);
    expect_identical(serial, first);
    expect_identical(first, second);
  }
}

}  // namespace
}  // namespace chop::core
