// Tests for ASAP/ALAP level analysis, mobility and critical path.
#include "dfg/analysis.hpp"

#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"

namespace chop::dfg {
namespace {

// a chain: in -> add -> mul -> add -> out
Graph chain() {
  Graph g("chain");
  const NodeId in = g.add_input("in", 16);
  const NodeId a1 = g.add_op(OpKind::Add, 16, {in, in}, "a1");
  const NodeId m = g.add_op(OpKind::Mul, 16, {a1, a1}, "m");
  const NodeId a2 = g.add_op(OpKind::Add, 16, {m, in}, "a2");
  g.add_output("y", a2);
  return g;
}

TEST(Analysis, UnitLatenciesMarkOnlyFunctionalUnits) {
  Graph g = chain();
  const auto lat = unit_latencies(g);
  int ones = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (lat[i] == 1) {
      ++ones;
      EXPECT_TRUE(needs_functional_unit(g.node(static_cast<NodeId>(i)).kind));
    } else {
      EXPECT_EQ(lat[i], 0);
    }
  }
  EXPECT_EQ(ones, 3);
}

TEST(Analysis, ChainCriticalPath) {
  Graph g = chain();
  EXPECT_EQ(operation_depth(g), 3);
}

TEST(Analysis, AsapBeforeAlap) {
  Graph g = chain();
  const auto lat = unit_latencies(g);
  const Levels lv = compute_levels(g, lat);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_LE(lv.asap[i], lv.alap[i]) << "node " << i;
    EXPECT_GE(lv.mobility(static_cast<NodeId>(i)), 0);
  }
}

TEST(Analysis, CriticalChainHasZeroMobility) {
  Graph g = chain();
  const auto lat = unit_latencies(g);
  const Levels lv = compute_levels(g, lat);
  // All three ops form the only chain: zero mobility everywhere.
  for (NodeId id : g.nodes_of_kind(OpKind::Add)) {
    EXPECT_EQ(lv.mobility(id), 0);
  }
  for (NodeId id : g.nodes_of_kind(OpKind::Mul)) {
    EXPECT_EQ(lv.mobility(id), 0);
  }
}

TEST(Analysis, OffCriticalOpHasMobility) {
  Graph g("fork");
  const NodeId in = g.add_input("in", 16);
  const NodeId a = g.add_op(OpKind::Add, 16, {in, in}, "a");
  const NodeId b = g.add_op(OpKind::Mul, 16, {a, a}, "b");
  const NodeId c = g.add_op(OpKind::Add, 16, {b, a}, "c");
  const NodeId side = g.add_op(OpKind::Add, 16, {in, in}, "side");
  const NodeId d = g.add_op(OpKind::Add, 16, {c, side}, "d");
  g.add_output("y", d);
  const auto lat = unit_latencies(g);
  const Levels lv = compute_levels(g, lat);
  EXPECT_EQ(lv.length, 4);
  EXPECT_GT(lv.mobility(side), 0);
  EXPECT_EQ(lv.mobility(a), 0);
}

TEST(Analysis, MultiCycleLatenciesStretchThePath) {
  Graph g = chain();
  std::vector<Cycles> lat(g.node_count(), 0);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const OpKind k = g.node(static_cast<NodeId>(i)).kind;
    if (k == OpKind::Mul) lat[i] = 10;
    if (k == OpKind::Add) lat[i] = 1;
  }
  EXPECT_EQ(critical_path(g, lat), 12);
}

TEST(Analysis, RejectsWrongLatencySize) {
  Graph g = chain();
  std::vector<Cycles> lat(g.node_count() - 1, 1);
  EXPECT_THROW(compute_levels(g, lat), Error);
}

TEST(Analysis, ArLatticeDepthIsEight) {
  const BenchmarkGraph ar = ar_lattice_filter();
  EXPECT_EQ(operation_depth(ar.graph), 8);
}

TEST(Analysis, Fir16DepthIsFive) {
  const BenchmarkGraph fir = fir16();
  EXPECT_EQ(operation_depth(fir.graph), 5);
}

TEST(Analysis, AlapEqualsAsapOnPureChain) {
  // For a pure chain every node is critical: asap == alap.
  Graph g("pure");
  NodeId prev = g.add_input("in", 16);
  for (int i = 0; i < 6; ++i) {
    prev = g.add_op(i % 2 ? OpKind::Add : OpKind::Mul, 16, {prev, prev});
  }
  g.add_output("y", prev);
  const auto lat = unit_latencies(g);
  const Levels lv = compute_levels(g, lat);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (needs_functional_unit(g.node(static_cast<NodeId>(i)).kind)) {
      EXPECT_EQ(lv.asap[i], lv.alap[i]);
    }
  }
}

}  // namespace
}  // namespace chop::dfg
