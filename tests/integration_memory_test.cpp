// System-level memory behaviour: port contention between partitions,
// off-the-shelf memory chips, access-time effects and bandwidth-driven
// feasibility — the memory half of §2.5's integration model, beyond what
// the AR filter exercises.
#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/graph.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

/// Two independent pipelines, each streaming `reads` words from the same
/// memory block 0, combining them, and writing one result to block 1.
struct SharedMemoryFixture {
  dfg::Graph graph{"shared_memory"};
  std::vector<dfg::NodeId> pipe_a;
  std::vector<dfg::NodeId> pipe_b;

  explicit SharedMemoryFixture(int reads_per_pipe = 4) {
    using dfg::OpKind;
    for (int pipe = 0; pipe < 2; ++pipe) {
      std::vector<dfg::NodeId>& ops = pipe == 0 ? pipe_a : pipe_b;
      const auto x = graph.add_input("x" + std::to_string(pipe), 16);
      dfg::NodeId acc = dfg::kNoNode;
      for (int r = 0; r < reads_per_pipe; ++r) {
        const auto rd = graph.add_mem_read(
            0, 16, dfg::kNoNode,
            "rd" + std::to_string(pipe) + "_" + std::to_string(r));
        ops.push_back(rd);
        const auto mul = graph.add_op(OpKind::Mul, 16, {rd, x});
        ops.push_back(mul);
        if (acc == dfg::kNoNode) {
          acc = mul;
        } else {
          acc = graph.add_op(OpKind::Add, 16, {acc, mul});
          ops.push_back(acc);
        }
      }
      const auto wr = graph.add_mem_write(1, acc, dfg::kNoNode,
                                          "wr" + std::to_string(pipe));
      ops.push_back(wr);
      graph.add_output("y" + std::to_string(pipe), acc);
    }
    graph.validate();
  }
};

ChopSession make_session(const SharedMemoryFixture& f, int ports,
                         int mem_chip_a = 0) {
  chip::MemorySubsystem memory;
  memory.blocks.push_back(
      {"stream", 16, 1024, ports, 300.0, 8000.0, 3});
  memory.blocks.push_back({"result", 16, 64, 2, 300.0, 2000.0, 3});
  memory.chip_of_block = {mem_chip_a, chip::kOffTheShelfChip};
  Partitioning pt(f.graph,
                  {{"c0", chip::mosis_package_84()},
                   {"c1", chip::mosis_package_84()}},
                  memory);
  pt.add_partition("pipeA", f.pipe_a, 0);
  pt.add_partition("pipeB", f.pipe_b, 1);
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {90000.0, 120000.0};
  return ChopSession(library(), std::move(pt), config);
}

TEST(IntegrationMemory, PortContentionGatesFeasibility) {
  // With one port, pipeA's PU occupies the local port for its whole run
  // while pipeB's remote read also needs it: the steady-state (modulo)
  // schedule cannot share it, and integration rejects the combination.
  // A second port resolves the conflict.
  const SharedMemoryFixture f;
  ChopSession one = make_session(f, /*ports=*/1);
  const PredictionStats stats = one.predict_partitions();
  EXPECT_GT(stats.feasible, 0u);  // level-1 cannot see cross-chip conflicts
  const SearchResult r1 = one.search({});
  EXPECT_TRUE(r1.designs.empty());

  ChopSession two = make_session(f, /*ports=*/2);
  two.predict_partitions();
  const SearchResult r2 = two.search({});
  ASSERT_FALSE(r2.designs.empty());
}

TEST(IntegrationMemory, MorePortsNeverHurt) {
  const SharedMemoryFixture f;
  ChopSession one = make_session(f, 1);
  one.predict_partitions();
  ChopSession two = make_session(f, 2);
  two.predict_partitions();
  const SearchResult r1 = one.search({});
  const SearchResult r2 = two.search({});
  ASSERT_FALSE(r2.designs.empty());
  if (!r1.designs.empty()) {
    EXPECT_LE(r2.designs.front().integration.system_delay_main,
              r1.designs.front().integration.system_delay_main);
  }
}

TEST(IntegrationMemory, RemoteBlockCreatesPinTraffic) {
  // Block 0 on chip 0: pipeB (chip 1) must reach it across pins while
  // pipeA reads it locally.
  const SharedMemoryFixture f;
  ChopSession session = make_session(f, 2, /*mem_chip_a=*/0);
  session.predict_partitions();
  const auto transfers = session.transfer_tasks();
  int remote_reads = 0, local_reads = 0;
  for (const DataTransfer& t : transfers) {
    if (t.kind != DataTransfer::Kind::MemoryRead) continue;
    (t.crosses_pins() ? remote_reads : local_reads)++;
  }
  EXPECT_EQ(remote_reads, 1);
  EXPECT_EQ(local_reads, 1);
  const SearchResult r = session.search({});
  EXPECT_FALSE(r.designs.empty());
}

TEST(IntegrationMemory, MemoryAreaChargesItsChip) {
  const SharedMemoryFixture f;
  ChopSession session = make_session(f, 2, 0);
  session.predict_partitions();
  const SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const IntegrationResult& d = r.designs.front().integration;
  // chip0 hosts the 8000 mil^2 stream macro; chip1 hosts none.
  const double area0 = d.chip_area[0].likely();
  const double area1 = d.chip_area[1].likely();
  // The partitions are symmetric, so the macro should make chip0 heavier
  // unless the selected implementations differ wildly.
  EXPECT_GT(area0 + 1.0, 8000.0);
  (void)area1;
}

TEST(IntegrationMemory, WritesFollowTheProducer) {
  // A memory write transfer must be scheduled after its producing PU:
  // system delay covers the write.
  const SharedMemoryFixture f;
  ChopSession session = make_session(f, 2);
  session.predict_partitions();
  const SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const IntegrationResult& d = r.designs.front().integration;
  Cycles max_pu_latency = 0;
  for (const auto& list : session.predictions().eligible) {
    (void)list;
  }
  for (const TransferPlan& t : d.transfers) {
    if (t.task.kind == DataTransfer::Kind::MemoryWrite &&
        t.task.crosses_pins()) {
      max_pu_latency = std::max(max_pu_latency, t.transfer_cycles);
    }
  }
  EXPECT_GT(d.system_delay_main, max_pu_latency);
}

}  // namespace
}  // namespace chop::core
