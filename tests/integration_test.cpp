// Tests for system-integration prediction (§2.5-§2.6): rate-mismatch rule,
// pin bandwidth and the data-clash rule, buffer sizing, per-chip area
// accumulation, clock adjustment and the probabilistic feasibility checks.
#include "core/integration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"

namespace chop::core {
namespace {

using bad::DesignPrediction;
using bad::DesignStyle;

std::vector<chip::ChipInstance> chips(int n, chip::ChipPackage pkg =
                                                 chip::mosis_package_84()) {
  std::vector<chip::ChipInstance> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({"c" + std::to_string(i), pkg});
  }
  return out;
}

/// Hand-built prediction with controlled characteristics.
DesignPrediction pred(DesignStyle style, Cycles ii, Cycles latency,
                      double area) {
  DesignPrediction p;
  p.style = style;
  p.module_set_label = "test";
  p.fu_alloc[dfg::OpKind::Mul] = 1;
  p.stages = latency;
  p.ii_dp = ii;
  p.ii_main = ii;
  p.latency_main = latency;
  p.register_bits = 64;
  p.total_area = StatVal(area * 0.9, area, area * 1.1);
  p.clock_overhead_ns = 5.0;
  return p;
}

struct Fixture {
  dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  bad::ClockSpec clocks{300.0, 10, 1};
  DesignConstraints constraints{30000.0, 30000.0};
  FeasibilityCriteria criteria;

  /// Bundles `pt` with its transfer tasks and this fixture's config.
  EvalContext context(const Partitioning& pt) const {
    return EvalContext(pt, create_transfer_tasks(pt), clocks, constraints,
                       criteria);
  }
};

TEST(Integration, FeasibleTwoChipDesign) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(2));
  const auto cuts = dfg::ar_two_way_cut(f.ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  pt.validate();

  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 30, 30, 40000.0);
  const DesignPrediction b = pred(DesignStyle::Nonpipelined, 30, 30, 40000.0);
  const IntegrationResult r = integrate(f.context(pt), {&a, &b}, 30);
  ASSERT_TRUE(r.feasible) << r.reason;
  EXPECT_EQ(r.ii_main, 30);
  // System delay: both PUs plus the inter-chip and env transfers.
  EXPECT_GT(r.system_delay_main, 60);
  EXPECT_LT(r.system_delay_main, 90);
  // Clock stretched by partition overhead plus pin-mux charge.
  EXPECT_GT(r.clock_ns(), 300.0);
  EXPECT_LT(r.clock_ns(), 330.0);
  EXPECT_TRUE(r.violated_chips.empty());
}

TEST(Integration, RateMismatchRule) {
  const DesignPrediction p40 = pred(DesignStyle::Pipelined, 40, 80, 1000.0);
  const DesignPrediction p50 = pred(DesignStyle::Pipelined, 50, 80, 1000.0);
  const DesignPrediction np60 =
      pred(DesignStyle::Nonpipelined, 60, 60, 1000.0);
  EXPECT_FALSE(rates_compatible({&p40, &p50}));
  EXPECT_TRUE(rates_compatible({&p40, &p40}));
  EXPECT_TRUE(rates_compatible({&p40, &np60}));
  EXPECT_TRUE(rates_compatible({&np60, &np60}));
}

TEST(Integration, CombinationIiIsSlowestPartition) {
  const DesignPrediction fast = pred(DesignStyle::Nonpipelined, 20, 20, 1.0);
  const DesignPrediction slow = pred(DesignStyle::Nonpipelined, 70, 70, 1.0);
  EXPECT_EQ(combination_ii({&fast, &slow}), 70);
}

TEST(Integration, MismatchedSelectionRejected) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(2));
  const auto cuts = dfg::ar_two_way_cut(f.ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  const DesignPrediction a = pred(DesignStyle::Pipelined, 30, 60, 1000.0);
  const DesignPrediction b = pred(DesignStyle::Pipelined, 40, 60, 1000.0);
  const IntegrationResult r = integrate(f.context(pt), {&a, &b}, 40);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.reason.find("mismatch"), std::string::npos);
}

TEST(Integration, PartitionSlowerThanSystemIiRejected) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(1));
  pt.add_partition("P1", f.ar.all_operations(), 0);
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 80, 80, 1000.0);
  const IntegrationResult r = integrate(f.context(pt), {&a}, 40);
  EXPECT_FALSE(r.feasible);
}

TEST(Integration, AreaViolationNamesChips) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(2));
  const auto cuts = dfg::ar_two_way_cut(f.ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  const DesignPrediction big =
      pred(DesignStyle::Nonpipelined, 30, 30, 120000.0);  // over 84-pin die
  const DesignPrediction ok = pred(DesignStyle::Nonpipelined, 30, 30, 1000.0);
  const IntegrationResult r = integrate(f.context(pt), {&big, &ok}, 30);
  EXPECT_FALSE(r.feasible);
  ASSERT_EQ(r.violated_chips.size(), 1u);
  EXPECT_EQ(r.violated_chips[0], 0);
}

TEST(Integration, DataClashRuleRejectsSlowTransfers) {
  // A tiny II makes the 9-value input transfer longer than the interval.
  Fixture f;
  Partitioning pt(f.ar.graph, chips(1));
  pt.add_partition("P1", f.ar.all_operations(), 0);
  const DesignPrediction a = pred(DesignStyle::Pipelined, 2, 30, 1000.0);
  const IntegrationResult r = integrate(f.context(pt), {&a}, 2);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.reason.find("initiation interval"), std::string::npos);
}

TEST(Integration, BufferFormulaMatchesPaper) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(2));
  const auto cuts = dfg::ar_two_way_cut(f.ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 30, 30, 1000.0);
  const IntegrationResult r = integrate(f.context(pt), {&a, &a}, 30);
  ASSERT_TRUE(r.feasible) << r.reason;
  for (const TransferPlan& plan : r.transfers) {
    if (!plan.task.crosses_pins()) continue;
    const double d = static_cast<double>(plan.task.bits);
    const double w = static_cast<double>(plan.wait_cycles);
    const double x = static_cast<double>(plan.transfer_cycles);
    const double l = 30.0;
    const Bits expected =
        static_cast<Bits>(std::ceil(d * (std::ceil(w / l) + x / l)));
    EXPECT_EQ(plan.buffer_bits, expected) << plan.task.name;
    EXPECT_GE(plan.pins, 1);
    EXPECT_LE(plan.transfer_cycles, 30);
    EXPECT_GT(plan.controller.product_terms, 0);
    EXPECT_GT(plan.module_area.likely(), 0.0);
  }
}

TEST(Integration, FewerPinsLongerTransfers) {
  // The paper: "Using 64 rather than 84 pin chip packaging causes a slight
  // increase in the system delay ... mainly due to longer data transfer
  // times of inputs and outputs." Use a wide graph so the effect shows.
  dfg::Graph g("wide");
  std::vector<dfg::NodeId> sums;
  for (int i = 0; i < 12; ++i) {
    const auto x = g.add_input("x" + std::to_string(i), 16);
    const auto y = g.add_input("y" + std::to_string(i), 16);
    const auto s = g.add_op(dfg::OpKind::Add, 16, {x, y});
    g.add_output("o" + std::to_string(i), s);
    sums.push_back(s);
  }
  g.validate();

  auto delay_with = [&](chip::ChipPackage pkg) {
    Partitioning pt(g, chips(1, pkg));
    pt.add_partition("P1", sums, 0);
    const DesignPrediction a =
        pred(DesignStyle::Nonpipelined, 30, 30, 1000.0);
    const DesignConstraints loose{60000.0, 60000.0};
    const EvalContext ctx(pt, create_transfer_tasks(pt),
                          bad::ClockSpec{300.0, 10, 1}, loose,
                          FeasibilityCriteria{});
    const IntegrationResult r = integrate(ctx, {&a}, 30);
    EXPECT_TRUE(r.feasible) << r.reason;
    return r.system_delay_main;
  };
  EXPECT_GT(delay_with(chip::mosis_package_64()),
            delay_with(chip::mosis_package_84()));
}

TEST(Integration, OnChipMemoryAreaCharged) {
  Fixture f;
  chip::MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 300.0, 9000.0, 3});
  mem.chip_of_block = {0};
  Partitioning pt(f.ar.graph, chips(1), mem);
  pt.add_partition("P1", f.ar.all_operations(), 0);
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 40, 40, 1000.0);
  const IntegrationResult r = integrate(f.context(pt), {&a}, 40);
  ASSERT_TRUE(r.feasible) << r.reason;
  EXPECT_GE(r.chip_area[0].likely(), 9000.0 + 1000.0);
}

TEST(Integration, PerformanceConstraintUsesAdjustedClock) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(1));
  pt.add_partition("P1", f.ar.all_operations(), 0);
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 90, 90, 1000.0);
  // 90 cycles x ~305 ns > 27000: tighten the budget to force a perf fail.
  f.constraints = DesignConstraints{27000.0, 90000.0};
  const IntegrationResult r = integrate(f.context(pt), {&a}, 90);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.reason.find("performance"), std::string::npos);
}

TEST(Integration, DelayCheckedAtEightyPercent) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(1));
  pt.add_partition("P1", f.ar.all_operations(), 0);
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 60, 60, 1000.0);
  const IntegrationResult ok = integrate(f.context(pt), {&a}, 60);
  ASSERT_TRUE(ok.feasible) << ok.reason;
  // Shrink the delay budget to just below the likely value: the 80%
  // criterion must reject it.
  f.constraints.delay_ns = ok.delay_ns.likely() - 1.0;
  const IntegrationResult no = integrate(f.context(pt), {&a}, 60);
  EXPECT_FALSE(no.feasible);
}

TEST(Integration, ValidatesArguments) {
  Fixture f;
  Partitioning pt(f.ar.graph, chips(1));
  pt.add_partition("P1", f.ar.all_operations(), 0);
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 30, 30, 1.0);
  const EvalContext ctx = f.context(pt);
  EXPECT_THROW(integrate(ctx, {}, 30), Error);
  EXPECT_THROW(integrate(ctx, {&a}, 0), Error);
}

}  // namespace
}  // namespace chop::core
