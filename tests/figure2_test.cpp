// Reproduces the structure of the paper's Figure 2/Figure 3 example: five
// partitions and two memory units on a four-chip design, exercising the
// §2.4 structural claims verbatim:
//   * "there can be multiple partitions assigned to a single chip",
//   * "partitions assigned to the same chip may or may not have
//     dependencies on each other, as long as there are no cycles",
//   * "memory blocks can be assigned to the same chips as partitions",
//   * "the use of off-the-shelf memory chips is allowed",
//   * "cyclic data flow is allowed among chips (see Chip 4 in Figure 2)" —
//     the partition quotient graph is acyclic even though the chip-level
//     flow is cyclic.
#include <gtest/gtest.h>

#include <set>

#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/generator.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

/// A five-stage workload whose stages we can assign like Figure 2:
/// P1 -> P2 -> P3 -> P4 -> P5 as a chain plus a P1 -> P4 shortcut, with
/// memory traffic from P2 (block M_A) and P5 (block M_B).
struct Figure2Fixture {
  dfg::Graph graph{"figure2"};
  std::vector<std::vector<dfg::NodeId>> stage;  // 5 partitions

  Figure2Fixture() {
    using dfg::OpKind;
    const auto in1 = graph.add_input("in1", 16);
    const auto in2 = graph.add_input("in2", 16);

    // P1: two products from the primary inputs.
    const auto p1a = graph.add_op(OpKind::Mul, 16, {in1, in2}, "p1a");
    const auto p1b = graph.add_op(OpKind::Add, 16, {in1, in2}, "p1b");
    stage.push_back({p1a, p1b});

    // P2: consumes P1 and reads coefficient memory M_A (block 0).
    const auto rd = graph.add_mem_read(0, 16, dfg::kNoNode, "rdA");
    const auto p2a = graph.add_op(OpKind::Mul, 16, {p1a, rd}, "p2a");
    const auto p2b = graph.add_op(OpKind::Add, 16, {p2a, p1b}, "p2b");
    stage.push_back({rd, p2a, p2b});

    // P3: a little reduction.
    const auto p3a = graph.add_op(OpKind::Add, 16, {p2b, p1b}, "p3a");
    const auto p3b = graph.add_op(OpKind::Mul, 16, {p3a, p2a}, "p3b");
    stage.push_back({p3a, p3b});

    // P4: consumes P3 and the P1 shortcut.
    const auto p4a = graph.add_op(OpKind::Add, 16, {p3b, p1a}, "p4a");
    stage.push_back({p4a});

    // P5: final stage, writes result memory M_B (block 1).
    const auto p5a = graph.add_op(OpKind::Mul, 16, {p4a, p3a}, "p5a");
    const auto wr = graph.add_mem_write(1, p5a, dfg::kNoNode, "wrB");
    stage.push_back({p5a, wr});

    graph.add_output("y", p5a);
    graph.validate();
  }
};

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

/// The Figure 2 assignment: chip1 <- P1; chip2 <- P2 (+M_A on chip);
/// chip3 <- P3; chip4 <- P4 AND P5; M_B off-the-shelf.
Partitioning figure2_partitioning(const Figure2Fixture& f) {
  chip::MemorySubsystem memory;
  memory.blocks.push_back({"M_A", 16, 64, 1, 300.0, 4000.0, 3});
  memory.blocks.push_back({"M_B", 16, 256, 1, 300.0, 0.0, 3});
  memory.chip_of_block = {1, chip::kOffTheShelfChip};

  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < 4; ++c) {
    chips.push_back({"chip" + std::to_string(c + 1),
                     chip::mosis_package_84()});
  }
  Partitioning pt(f.graph, std::move(chips), memory);
  pt.add_partition("P1", f.stage[0], 0);
  pt.add_partition("P2", f.stage[1], 1);
  pt.add_partition("P3", f.stage[2], 2);
  pt.add_partition("P4", f.stage[3], 3);
  pt.add_partition("P5", f.stage[4], 3);  // two partitions on chip 4
  return pt;
}

TEST(Figure2, StructureValidates) {
  const Figure2Fixture f;
  Partitioning pt = figure2_partitioning(f);
  EXPECT_NO_THROW(pt.validate());
  EXPECT_EQ(pt.partitions_on_chip(3).size(), 2u);
}

TEST(Figure2, SameChipDependentPartitionsAllowed) {
  // P4 -> P5 is a dependency within chip 4 — allowed (no cycle).
  const Figure2Fixture f;
  Partitioning pt = figure2_partitioning(f);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  bool found_same_chip = false;
  for (const DataTransfer& t : transfers) {
    if (t.kind == DataTransfer::Kind::Interpartition &&
        t.src_partition == 3 && t.dst_partition == 4) {
      found_same_chip = true;
      EXPECT_FALSE(t.crosses_pins());
    }
  }
  EXPECT_TRUE(found_same_chip);
}

TEST(Figure2, EndToEndFeasibility) {
  const Figure2Fixture f;
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {60000.0, 60000.0};
  ChopSession session(library(), figure2_partitioning(f), config);
  const PredictionStats stats = session.predict_partitions();
  EXPECT_GT(stats.feasible, 0u);
  const SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  // Five PU tasks plus transfers integrate into a consistent system.
  EXPECT_GT(r.designs.front().integration.system_delay_main,
            r.designs.front().integration.ii_main);
}

TEST(Figure2, ChipLevelCycleIsAccepted) {
  // Reassign so the chip-level flow is cyclic while partitions stay
  // acyclic: P1 on chipA, P2 on chipB, P3 back on chipA, P4+P5 on chipB.
  // Data flows A -> B -> A -> B: cyclic between chips, fine per §2.3.
  const Figure2Fixture f;
  chip::MemorySubsystem memory;
  memory.blocks.push_back({"M_A", 16, 64, 1, 300.0, 4000.0, 3});
  memory.blocks.push_back({"M_B", 16, 256, 1, 300.0, 0.0, 3});
  memory.chip_of_block = {0, chip::kOffTheShelfChip};
  Partitioning pt(f.graph,
                  {{"chipA", chip::mosis_package_84()},
                   {"chipB", chip::mosis_package_84()}},
                  memory);
  pt.add_partition("P1", f.stage[0], 0);
  pt.add_partition("P2", f.stage[1], 1);
  pt.add_partition("P3", f.stage[2], 0);
  pt.add_partition("P4", f.stage[3], 1);
  pt.add_partition("P5", f.stage[4], 1);
  EXPECT_NO_THROW(pt.validate());

  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {60000.0, 60000.0};
  ChopSession session(library(), std::move(pt), config);
  session.predict_partitions();
  const SearchResult r = session.search({});
  EXPECT_FALSE(r.designs.empty());
}

TEST(Figure2, MemoryControlPinsOnBothSides) {
  // M_A lives on chip2 and is accessed only from chip2 (P2): no control
  // pins needed anywhere. Move P2 to chip1: now chip1 (accessor) and
  // chip2 (owner) both reserve M_A's select lines.
  const Figure2Fixture f;
  Partitioning pt = figure2_partitioning(f);
  pt.move_partition_to_chip(1, 0);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  const auto reserved = reserved_control_pins(pt, transfers, 0);
  EXPECT_GE(reserved[0], 3);  // accessor side: M_A select/R-W
  EXPECT_GE(reserved[1], 3);  // owner side
}

TEST(Figure2, TaskGraphMatchesFigure3Shape) {
  // Figure 3's task graph: PU tasks for P1..P5 plus data transfer tasks
  // including memory traffic. Count the task population.
  const Figure2Fixture f;
  Partitioning pt = figure2_partitioning(f);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  int env_in = 0, env_out = 0, inter = 0, mem = 0;
  for (const DataTransfer& t : transfers) {
    switch (t.kind) {
      case DataTransfer::Kind::InputDelivery: ++env_in; break;
      case DataTransfer::Kind::OutputCollection: ++env_out; break;
      case DataTransfer::Kind::Interpartition: ++inter; break;
      default: ++mem; break;
    }
  }
  EXPECT_EQ(env_in, 1);   // only P1 consumes primary inputs
  EXPECT_EQ(env_out, 1);  // only P5 produces the output
  // P1->P2, P1->P3, P1->P4, P2->P3, P2->P4?, P3->P4, P3->P5, P4->P5...
  EXPECT_GE(inter, 5);
  EXPECT_EQ(mem, 2);  // M_A read, M_B write
}

}  // namespace
}  // namespace chop::core
