// Replays the checked-in seed corpus under tests/data/fuzz/ through the
// full oracle battery. Each spec is a shrunk repro from a historical
// fault-injection run: small, structurally interesting (multi-chip,
// memory, degenerate depths), and green on healthy code. A regression
// that flips any oracle here comes with a ready-made minimal repro.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/search.hpp"
#include "core/session.hpp"
#include "exact/checker.hpp"
#include "exact/solver.hpp"
#include "io/spec_format.hpp"
#include "io/spec_writer.hpp"
#include "testing/oracles.hpp"

namespace chop::testing {
namespace {

class FuzzCorpus : public ::testing::TestWithParam<const char*> {};

std::string corpus_path(const char* name) {
  return std::string(CHOP_SOURCE_DIR) + "/tests/data/fuzz/" + name;
}

TEST_P(FuzzCorpus, ReplaysGreenThroughTheOracleBattery) {
  const io::Project project = io::parse_project_file(corpus_path(GetParam()));
  OracleLimits limits;
  const ScenarioReport report = run_oracles(project, limits);
  ASSERT_FALSE(report.skipped) << "corpus spec grew past the search cap";
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? std::string("?")
                                   : report.failures.front().oracle + ": " +
                                         report.failures.front().detail);
  EXPECT_GT(report.designs, 0u);
}

// Every corpus spec must certify: the heuristic enumeration frontier and
// the exact solver's proven non-inferior set agree point for point, and
// the emitted certificate replays through the standalone checker. This is
// the same agreement the exact_certification oracle enforces, asserted
// here directly so a divergence names the offending corpus file.
TEST_P(FuzzCorpus, HeuristicFrontierMatchesTheExactProof) {
  const io::Project project = io::parse_project_file(corpus_path(GetParam()));
  core::ChopSession session = project.make_session();
  session.predict_partitions();

  core::SearchOptions opt;
  opt.heuristic = core::Heuristic::Enumeration;
  const core::SearchResult heuristic = session.search(opt);

  const core::EvalContext ctx = session.make_eval_context();
  const auto& lists = session.predictions().eligible;
  const exact::ExactResult proven = exact::solve(ctx, lists, {});
  ASSERT_FALSE(proven.truncated);

  ASSERT_EQ(proven.frontier.size(), heuristic.designs.size());
  for (std::size_t i = 0; i < proven.frontier.size(); ++i) {
    EXPECT_EQ(proven.frontier[i].choice, heuristic.designs[i].choice)
        << "frontier point " << i;
  }

  const exact::CheckResult check =
      exact::verify_certificate(ctx, lists, proven.certificate);
  EXPECT_TRUE(check.ok) << check.detail;
}

TEST_P(FuzzCorpus, RoundTripsByteExactly) {
  const std::string path = corpus_path(GetParam());
  const io::Project project = io::parse_project_file(path);
  const std::string once = io::write_project_string(project);
  EXPECT_EQ(once, io::write_project_string(io::parse_project_string(once)));
}

INSTANTIATE_TEST_SUITE_P(
    Specs, FuzzCorpus,
    ::testing::Values("shrunk_1300445148949823415.chop",
                      "shrunk_16231458606770151736.chop",
                      "shrunk_17042461277914890279.chop",
                      "shrunk_17510280810347979414.chop",
                      "shrunk_6945414144905019519.chop",
                      // Promoted from injected-slack runs; together they
                      // cover all four incremental-delta kinds and keep
                      // the shared-frontier broadcast path hot.
                      "shrunk_10640280093745372453.chop",
                      "shrunk_13980639709301214031.chop",
                      "shrunk_17591122925923343966.chop",
                      "shrunk_1866356336161053402.chop",
                      "shrunk_2203954451272897496.chop"));

}  // namespace
}  // namespace chop::testing
