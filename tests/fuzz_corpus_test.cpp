// Replays the checked-in seed corpus under tests/data/fuzz/ through the
// full oracle battery. Each spec is a shrunk repro from a historical
// fault-injection run: small, structurally interesting (multi-chip,
// memory, degenerate depths), and green on healthy code. A regression
// that flips any oracle here comes with a ready-made minimal repro.
#include <gtest/gtest.h>

#include <string>

#include "io/spec_format.hpp"
#include "io/spec_writer.hpp"
#include "testing/oracles.hpp"

namespace chop::testing {
namespace {

class FuzzCorpus : public ::testing::TestWithParam<const char*> {};

std::string corpus_path(const char* name) {
  return std::string(CHOP_SOURCE_DIR) + "/tests/data/fuzz/" + name;
}

TEST_P(FuzzCorpus, ReplaysGreenThroughTheOracleBattery) {
  const io::Project project = io::parse_project_file(corpus_path(GetParam()));
  OracleLimits limits;
  const ScenarioReport report = run_oracles(project, limits);
  ASSERT_FALSE(report.skipped) << "corpus spec grew past the search cap";
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? std::string("?")
                                   : report.failures.front().oracle + ": " +
                                         report.failures.front().detail);
  EXPECT_GT(report.designs, 0u);
}

TEST_P(FuzzCorpus, RoundTripsByteExactly) {
  const std::string path = corpus_path(GetParam());
  const io::Project project = io::parse_project_file(path);
  const std::string once = io::write_project_string(project);
  EXPECT_EQ(once, io::write_project_string(io::parse_project_string(once)));
}

INSTANTIATE_TEST_SUITE_P(
    Specs, FuzzCorpus,
    ::testing::Values("shrunk_1300445148949823415.chop",
                      "shrunk_16231458606770151736.chop",
                      "shrunk_17042461277914890279.chop",
                      "shrunk_17510280810347979414.chop",
                      "shrunk_6945414144905019519.chop"));

}  // namespace
}  // namespace chop::testing
