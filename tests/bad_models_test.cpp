// Tests for BAD's component models: operation latency binding, datapath
// (register/mux) estimation, and the PLA controller model.
#include <gtest/gtest.h>

#include "bad/controller_model.hpp"
#include "bad/datapath_model.hpp"
#include "bad/latency_model.hpp"
#include "dfg/analysis.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/subgraph.hpp"
#include "library/experiment_library.hpp"
#include "library/module_set.hpp"
#include "schedule/op_schedule.hpp"

namespace chop::bad {
namespace {

using dfg::OpKind;

lib::ModuleSet set_for(const lib::ComponentLibrary& lib, int adder, int mul) {
  lib::ModuleSet set;
  set.choose(OpKind::Add, lib.modules_for(OpKind::Add)[static_cast<std::size_t>(adder)]);
  set.choose(OpKind::Mul, lib.modules_for(OpKind::Mul)[static_cast<std::size_t>(mul)]);
  return set;
}

TEST(LatencyModel, SingleCycleEligibility) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  ClockSpec clocks{300.0, 10, 1};  // datapath period 3000 ns

  // mul2 (2950 ns) fits a 3000 ns cycle with small overhead; mul3
  // (7370 ns) never does.
  const auto ok =
      operation_latencies(ar.graph, set_for(lib, 1, 1),
                          ClockingStyle::SingleCycle, clocks, 20.0);
  ASSERT_TRUE(ok.has_value());
  for (std::size_t i = 0; i < ar.graph.node_count(); ++i) {
    const dfg::Node& n = ar.graph.node(static_cast<dfg::NodeId>(i));
    EXPECT_EQ((*ok)[i], dfg::needs_functional_unit(n.kind) ? 1 : 0);
  }
  const auto bad =
      operation_latencies(ar.graph, set_for(lib, 1, 2),
                          ClockingStyle::SingleCycle, clocks, 20.0);
  EXPECT_FALSE(bad.has_value());
}

TEST(LatencyModel, SingleCycleOverheadCanDisqualify) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  ClockSpec clocks{300.0, 10, 1};
  // mul2 = 2950; overhead 60 pushes past the 3000 ns period.
  const auto bad =
      operation_latencies(ar.graph, set_for(lib, 1, 1),
                          ClockingStyle::SingleCycle, clocks, 60.0);
  EXPECT_FALSE(bad.has_value());
}

TEST(LatencyModel, MultiCycleCeil) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  ClockSpec clocks{300.0, 1, 1};
  const auto lat =
      operation_latencies(ar.graph, set_for(lib, 1, 1),
                          ClockingStyle::MultiCycle, clocks, 17.0);
  ASSERT_TRUE(lat.has_value());
  for (std::size_t i = 0; i < ar.graph.node_count(); ++i) {
    const dfg::Node& n = ar.graph.node(static_cast<dfg::NodeId>(i));
    if (n.kind == OpKind::Mul) {
      EXPECT_EQ((*lat)[i], 10);  // ceil((2950+17)/300)
    } else if (n.kind == OpKind::Add) {
      EXPECT_EQ((*lat)[i], 1);  // ceil((53+17)/300)
    }
  }
}

TEST(LatencyModel, MemoryAccessTime) {
  dfg::Graph g("m");
  const auto r = g.add_mem_read(0, 16, dfg::kNoNode, "rd");
  const auto a = g.add_op(OpKind::Add, 16, {r, r});
  g.add_output("y", a);
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  lib::ModuleSet set;
  set.choose(OpKind::Add, lib.modules_for(OpKind::Add)[0]);
  ClockSpec clocks{300.0, 1, 1};
  // 650 ns access -> 3 cycles.
  const auto lat = operation_latencies(g, set, ClockingStyle::MultiCycle,
                                       clocks, 10.0, {650.0});
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ((*lat)[static_cast<std::size_t>(r)], 3);
}

TEST(DatapathModel, MuxCountMatchesSharingFormula) {
  // The paper's own §3.1 numbers validate the formula
  // (ops - units) * 2 * width + register bits: partition 1 had 8 muls on
  // 4 multipliers, 4 adds on 3 adders, 104 register bits -> 349 muxes.
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto cuts = dfg::ar_two_way_cut(ar);
  const dfg::Subgraph p1 = dfg::induced_subgraph(ar.graph, cuts[0]);
  const auto lat = dfg::unit_latencies(p1.graph);
  std::map<OpKind, int> alloc{{OpKind::Mul, 4}, {OpKind::Add, 3}};
  sched::ResourceLimits limits;
  limits.fu = alloc;
  const sched::OpSchedule s = sched::list_schedule(p1.graph, lat, limits);
  const DatapathEstimate dp =
      estimate_datapath(p1.graph, lat, s, alloc, lib);
  const double expected_sharing = (8 - 4) * 2 * 16 + (6 - 3) * 2 * 16;
  EXPECT_NEAR(dp.mux_count.likely(),
              expected_sharing + static_cast<double>(dp.register_bits), 1.0);
  EXPECT_GT(dp.register_bits, 0);
  EXPECT_GT(dp.steering_delay, 0.0);
}

TEST(DatapathModel, NoSharingNoSharingMuxes) {
  // As many units as ops: only register-write muxes remain.
  dfg::Graph g("p");
  const auto a = g.add_input("a", 16);
  const auto m1 = g.add_op(OpKind::Mul, 16, {a, a});
  const auto m2 = g.add_op(OpKind::Mul, 16, {m1, a});
  g.add_output("y", m2);
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const auto lat = dfg::unit_latencies(g);
  std::map<OpKind, int> alloc{{OpKind::Mul, 2}};
  sched::ResourceLimits limits;
  limits.fu = alloc;
  const sched::OpSchedule s = sched::list_schedule(g, lat, limits);
  const DatapathEstimate dp = estimate_datapath(g, lat, s, alloc, lib);
  EXPECT_DOUBLE_EQ(dp.mux_count.likely(),
                   static_cast<double>(dp.register_bits));
}

TEST(DatapathModel, MoreSharingMoreSteeringLevels) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto lat = dfg::unit_latencies(ar.graph);
  auto levels_for = [&](int units) {
    std::map<OpKind, int> alloc{{OpKind::Mul, units}, {OpKind::Add, units}};
    sched::ResourceLimits limits;
    limits.fu = alloc;
    const sched::OpSchedule s = sched::list_schedule(ar.graph, lat, limits);
    return estimate_datapath(ar.graph, lat, s, alloc, lib).mux_levels;
  };
  EXPECT_GE(levels_for(1), levels_for(8));
}

TEST(ControllerModel, PlaAreaScalesWithPersonality) {
  const lib::TechnologyParams tech;
  const PlaEstimate small = size_pla(4, 8, 10, tech);
  const PlaEstimate big = size_pla(8, 16, 40, tech);
  EXPECT_GT(big.area.likely(), small.area.likely());
  EXPECT_GT(big.delay, small.delay);
  EXPECT_THROW(size_pla(0, 8, 10, tech), Error);
}

TEST(ControllerModel, MoreStatesBiggerController) {
  const lib::TechnologyParams tech;
  const PlaEstimate c8 = estimate_controller(8, 4, 8, 100, tech);
  const PlaEstimate c32 = estimate_controller(32, 4, 8, 100, tech);
  EXPECT_GT(c32.area.likely(), c8.area.likely());
  EXPECT_GT(c32.product_terms, c8.product_terms);
  EXPECT_THROW(estimate_controller(0, 1, 1, 1, tech), Error);
}

TEST(ControllerModel, TransferControllerTracksTransferTime) {
  const lib::TechnologyParams tech;
  const PlaEstimate quick = estimate_transfer_controller(0, 1, 16, tech);
  const PlaEstimate slow = estimate_transfer_controller(10, 8, 64, tech);
  EXPECT_GT(slow.area.likely(), quick.area.likely());
  EXPECT_THROW(estimate_transfer_controller(0, 0, 16, tech), Error);
}

TEST(ControllerModel, AreaTripletOrdered) {
  const lib::TechnologyParams tech;
  const PlaEstimate pla = size_pla(6, 12, 20, tech);
  EXPECT_LT(pla.area.lo(), pla.area.likely());
  EXPECT_LT(pla.area.likely(), pla.area.hi());
}

}  // namespace
}  // namespace chop::bad
