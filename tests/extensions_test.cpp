// Tests for the paper's §5 extensions implemented in this reproduction:
// power consumption prediction/constraints and scan-testability overhead.
#include <gtest/gtest.h>

#include "bad/power_model.hpp"
#include "bad/predictor.hpp"
#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop {
namespace {

using dfg::OpKind;

// ---- power model units ----

TEST(PowerModel, AreaDerivedModulePower) {
  lib::TechnologyParams tech;
  lib::ModuleSpec measured{"m", OpKind::Mul, 16, 10000.0, 100.0, 42.0};
  lib::ModuleSpec derived{"d", OpKind::Mul, 16, 10000.0, 100.0, 0.0};
  EXPECT_DOUBLE_EQ(bad::module_active_power_mw(measured, tech), 42.0);
  EXPECT_DOUBLE_EQ(bad::module_active_power_mw(derived, tech),
                   10000.0 * tech.power_per_area_mw);
}

TEST(PowerModel, BusyCyclesByKind) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<Cycles> lat(ar.graph.node_count(), 0);
  for (std::size_t i = 0; i < ar.graph.node_count(); ++i) {
    const dfg::Node& n = ar.graph.node(static_cast<dfg::NodeId>(i));
    if (n.kind == OpKind::Mul) lat[i] = 10;
    if (n.kind == OpKind::Add) lat[i] = 1;
  }
  const auto busy = bad::busy_cycles_by_kind(ar.graph, lat);
  EXPECT_EQ(busy.at(OpKind::Mul), 160);
  EXPECT_EQ(busy.at(OpKind::Add), 12);
}

TEST(PowerModel, HigherUtilizationMorePower) {
  const lib::ComponentLibrary library = lib::dac91_experiment_library();
  lib::TechnologyParams tech;
  lib::ModuleSet set;
  set.choose(OpKind::Mul, library.modules_for(OpKind::Mul)[1]);
  std::map<OpKind, int> alloc{{OpKind::Mul, 2}};
  std::map<OpKind, Cycles> busy{{OpKind::Mul, 16}};
  // Same hardware, tighter II -> higher utilization -> more power.
  const StatVal tight = bad::estimate_datapath_power(set, alloc, busy, 8,
                                                     1000.0, tech);
  const StatVal loose = bad::estimate_datapath_power(set, alloc, busy, 32,
                                                     1000.0, tech);
  EXPECT_GT(tight.likely(), loose.likely());
  // Idle floor: even a fully idle pool draws the idle fraction.
  const StatVal idle = bad::estimate_datapath_power(set, alloc, {}, 32,
                                                    0.0, tech);
  EXPECT_GT(idle.likely(), 0.0);
}

TEST(PowerModel, TransferPowerScalesWithDuty) {
  lib::TechnologyParams tech;
  const StatVal busy = bad::estimate_transfer_power(32, 10, 20, 500.0, tech);
  const StatVal rare = bad::estimate_transfer_power(32, 1, 20, 500.0, tech);
  EXPECT_GT(busy.likely(), rare.likely());
  EXPECT_THROW(bad::estimate_transfer_power(32, 1, 0, 0.0, tech), Error);
}

// ---- power through the whole stack ----

core::ChopSession ar_session(int nparts, core::DesignConstraints constraints,
                             bad::TestabilityOptions testability = {}) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  static const lib::ComponentLibrary library = lib::dac91_experiment_library();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), chip::mosis_package_84()});
  }
  core::Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1
          ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
          : dfg::ar_two_way_cut(ar);
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = constraints;
  config.testability = testability;
  return core::ChopSession(library, std::move(pt), config);
}

TEST(PowerExtension, PredictionsCarryPower) {
  core::ChopSession session = ar_session(1, {30000.0, 30000.0});
  session.predict_partitions();
  for (const auto& p : session.predictions().raw[0]) {
    EXPECT_GT(p.power_mw.likely(), 0.0);
    EXPECT_LE(p.power_mw.lo(), p.power_mw.likely());
  }
}

TEST(PowerExtension, IntegrationAccumulatesChipPower) {
  core::ChopSession session = ar_session(2, {30000.0, 30000.0});
  session.predict_partitions();
  const core::SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const auto& d = r.designs.front().integration;
  ASSERT_EQ(d.chip_power_mw.size(), 2u);
  EXPECT_GT(d.chip_power_mw[0].likely(), 0.0);
  EXPECT_GT(d.chip_power_mw[1].likely(), 0.0);
  EXPECT_NEAR(d.system_power_mw.likely(),
              d.chip_power_mw[0].likely() + d.chip_power_mw[1].likely(),
              1e-9);
}

TEST(PowerExtension, UnconstrainedByDefault) {
  // Zero budgets must behave exactly like the paper's baseline.
  core::ChopSession session = ar_session(2, {30000.0, 30000.0});
  session.predict_partitions();
  EXPECT_FALSE(session.config().constraints.power_constrained());
  EXPECT_FALSE(session.search({}).designs.empty());
}

TEST(PowerExtension, TightBudgetKillsFeasibility) {
  core::DesignConstraints constraints{30000.0, 30000.0};
  constraints.system_power_mw = 1.0;  // absurd: ~1 mW for 28 operations
  core::ChopSession session = ar_session(2, constraints);
  const core::PredictionStats stats = session.predict_partitions();
  EXPECT_EQ(stats.feasible, 0u);  // level-1 power pruning
  EXPECT_TRUE(session.search({}).designs.empty());
}

TEST(PowerExtension, ChipBudgetSelectsSerialDesigns) {
  // Find an intermediate chip power budget: feasible, but only with a
  // more serial (lower-power) implementation than the unconstrained best.
  core::ChopSession free_session = ar_session(2, {30000.0, 30000.0});
  free_session.predict_partitions();
  const core::SearchResult free_result = free_session.search({});
  ASSERT_FALSE(free_result.designs.empty());
  const double free_power =
      free_result.designs.front().integration.system_power_mw.likely();

  core::DesignConstraints constrained{30000.0, 30000.0};
  constrained.system_power_mw = free_power * 0.85;
  core::ChopSession tight = ar_session(2, constrained);
  tight.predict_partitions();
  const core::SearchResult tight_result = tight.search({});
  if (!tight_result.designs.empty()) {
    const auto& d = tight_result.designs.front().integration;
    EXPECT_LE(d.system_power_mw.likely(), free_power);
    EXPECT_GE(d.ii_main, free_result.designs.front().integration.ii_main);
  }
}

// ---- testability extension ----

TEST(TestabilityExtension, ValidatesOptions) {
  bad::TestabilityOptions bad_opts;
  bad_opts.register_area_factor = 0.5;
  EXPECT_THROW(bad_opts.validate(), Error);
  bad_opts = {};
  bad_opts.test_pins_per_chip = -1;
  EXPECT_THROW(bad_opts.validate(), Error);
}

TEST(TestabilityExtension, ScanGrowsAreaAndOverhead) {
  core::ChopSession plain = ar_session(1, {30000.0, 30000.0});
  plain.predict_partitions();
  bad::TestabilityOptions scan;
  scan.scan_design = true;
  core::ChopSession tested = ar_session(1, {30000.0, 30000.0}, scan);
  tested.predict_partitions();

  const auto& p0 = plain.predictions().raw[0];
  const auto& p1 = tested.predictions().raw[0];
  ASSERT_EQ(p0.size(), p1.size());
  for (std::size_t i = 0; i < p0.size(); ++i) {
    EXPECT_GT(p1[i].register_area.likely(), p0[i].register_area.likely());
    EXPECT_GT(p1[i].controller_area.likely(), p0[i].controller_area.likely());
    EXPECT_GT(p1[i].total_area.likely(), p0[i].total_area.likely());
    EXPECT_GT(p1[i].clock_overhead_ns, p0[i].clock_overhead_ns);
  }
}

TEST(TestabilityExtension, ScanCostsFeasibilityHeadroom) {
  // Same constraints: the scan design has fewer (or equal) feasible
  // predictions and an equal-or-worse best II.
  core::ChopSession plain = ar_session(2, {30000.0, 30000.0});
  const core::PredictionStats sp = plain.predict_partitions();
  bad::TestabilityOptions scan;
  scan.scan_design = true;
  core::ChopSession tested = ar_session(2, {30000.0, 30000.0}, scan);
  const core::PredictionStats st = tested.predict_partitions();
  EXPECT_LE(st.feasible, sp.feasible);

  const core::SearchResult rp = plain.search({});
  const core::SearchResult rt = tested.search({});
  ASSERT_FALSE(rp.designs.empty());
  if (!rt.designs.empty()) {
    EXPECT_GE(rt.designs.front().integration.ii_main,
              rp.designs.front().integration.ii_main);
    EXPECT_GE(rt.designs.front().integration.clock_ns(),
              rp.designs.front().integration.clock_ns());
  }
}

TEST(TestabilityExtension, TestPinsShrinkBandwidth) {
  // Reserving scan pins lengthens (or keeps) transfers: compare delays.
  bad::TestabilityOptions scan;
  scan.scan_design = true;
  scan.test_pins_per_chip = 40;  // exaggerate so the effect must show
  core::ChopSession plain = ar_session(2, {30000.0, 60000.0});
  plain.predict_partitions();
  core::ChopSession tested = ar_session(2, {30000.0, 60000.0}, scan);
  tested.predict_partitions();
  const core::SearchResult rp = plain.search({});
  const core::SearchResult rt = tested.search({});
  ASSERT_FALSE(rp.designs.empty());
  ASSERT_FALSE(rt.designs.empty());
  EXPECT_GE(rt.designs.front().integration.system_delay_main,
            rp.designs.front().integration.system_delay_main);
}

}  // namespace
}  // namespace chop
