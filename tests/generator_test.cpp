// Property tests for the random DAG generator: every generated graph must
// be a valid CHOP workload with the requested shape, deterministically.
#include "dfg/generator.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "dfg/analysis.hpp"

namespace chop::dfg {
namespace {

TEST(RandomDag, MatchesRequestedOperationCount) {
  Rng rng(42);
  RandomDagSpec spec;
  spec.operations = 30;
  spec.depth = 5;
  const BenchmarkGraph bg = random_dag(rng, spec);
  EXPECT_EQ(bg.graph.operation_count(), 30u);
}

TEST(RandomDag, RealizesRequestedDepth) {
  Rng rng(42);
  RandomDagSpec spec;
  spec.operations = 24;
  spec.depth = 6;
  const BenchmarkGraph bg = random_dag(rng, spec);
  EXPECT_EQ(operation_depth(bg.graph), 6);
  EXPECT_EQ(bg.layers.size(), 6u);
}

TEST(RandomDag, DeterministicForSeed) {
  RandomDagSpec spec;
  spec.operations = 20;
  spec.depth = 4;
  Rng a(7), b(7);
  const BenchmarkGraph ga = random_dag(a, spec);
  const BenchmarkGraph gb = random_dag(b, spec);
  ASSERT_EQ(ga.graph.node_count(), gb.graph.node_count());
  for (std::size_t i = 0; i < ga.graph.node_count(); ++i) {
    EXPECT_EQ(ga.graph.node(static_cast<NodeId>(i)).kind,
              gb.graph.node(static_cast<NodeId>(i)).kind);
  }
}

TEST(RandomDag, MulFractionExtremes) {
  Rng rng(9);
  RandomDagSpec spec;
  spec.operations = 40;
  spec.depth = 4;
  spec.mul_fraction = 0.0;
  EXPECT_EQ(random_dag(rng, spec).graph.count_of_kind(OpKind::Mul), 0u);
  spec.mul_fraction = 1.0;
  EXPECT_EQ(random_dag(rng, spec).graph.count_of_kind(OpKind::Add), 0u);
}

TEST(RandomDag, RejectsBadSpecs) {
  Rng rng(1);
  RandomDagSpec spec;
  spec.operations = 0;
  EXPECT_THROW(random_dag(rng, spec), Error);
  spec.operations = 4;
  spec.depth = 9;
  EXPECT_THROW(random_dag(rng, spec), Error);
  spec.depth = 2;
  spec.mul_fraction = 1.5;
  EXPECT_THROW(random_dag(rng, spec), Error);
}

struct DagSweep {
  int operations;
  int depth;
  double mul_fraction;
  std::uint64_t seed;
};

class RandomDagProperty : public ::testing::TestWithParam<DagSweep> {};

TEST_P(RandomDagProperty, AlwaysValidWithRequestedShape) {
  const DagSweep& p = GetParam();
  Rng rng(p.seed);
  RandomDagSpec spec;
  spec.operations = p.operations;
  spec.depth = p.depth;
  spec.mul_fraction = p.mul_fraction;
  const BenchmarkGraph bg = random_dag(rng, spec);
  EXPECT_NO_THROW(bg.graph.validate());
  EXPECT_EQ(bg.graph.operation_count(),
            static_cast<std::size_t>(p.operations));
  EXPECT_EQ(operation_depth(bg.graph), p.depth);
  // Every op has exactly two operands and every sink is exposed.
  for (std::size_t i = 0; i < bg.graph.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (needs_functional_unit(bg.graph.node(id).kind)) {
      EXPECT_EQ(bg.graph.fanin(id).size(), 2u);
      EXPECT_FALSE(bg.graph.fanout(id).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDagProperty,
    ::testing::Values(DagSweep{4, 1, 0.5, 1}, DagSweep{8, 2, 0.3, 2},
                      DagSweep{16, 4, 0.5, 3}, DagSweep{24, 6, 0.4, 4},
                      DagSweep{40, 8, 0.6, 5}, DagSweep{64, 4, 0.2, 6},
                      DagSweep{100, 10, 0.5, 7}, DagSweep{5, 5, 0.9, 8}));

TEST(RandomDagScale, TenThousandOpsStaysLinear) {
  // Generation-scale guard: building a 10k-op graph must stay in linear
  // territory. The node/edge counts are pinned for this seed so a silent
  // change in generator behavior (e.g. dangling-output handling) shows up
  // as a diff, and the wall-time bound is generous enough for CI/TSan
  // while still catching quadratic blowups (which take minutes here).
  const auto start = std::chrono::steady_clock::now();
  Rng rng(1234);
  RandomDagSpec spec;
  spec.operations = 10000;
  spec.depth = 40;
  spec.width = 16;
  const BenchmarkGraph bg = random_dag(rng, spec);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(bg.graph.operation_count(), 10000u);
  EXPECT_EQ(bg.graph.node_count(), 13409u);
  EXPECT_EQ(bg.graph.edge_count(), 23405u);
  EXPECT_NO_THROW(bg.graph.validate());
  EXPECT_LT(ms, 10000.0) << "10k-op generation took " << ms
                         << " ms - quadratic regression?";
}

TEST(RandomDagScale, HundredThousandOpsValidates) {
  Rng rng(99);
  RandomDagSpec spec;
  spec.operations = 100000;
  spec.depth = 60;
  spec.width = 24;
  const BenchmarkGraph bg = random_dag(rng, spec);
  EXPECT_EQ(bg.graph.operation_count(), 100000u);
  EXPECT_NO_THROW(bg.graph.validate());
}

}  // namespace
}  // namespace chop::dfg
