// Tests for the small utilities: deterministic RNG, table printer, CSV
// writer, timer.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace chop {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsBadRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2, 1), Error);
}

TEST(Rng, SingletonRangeConsumesNoState) {
  // The lo == hi fast path must not advance the generator: inserting a
  // degenerate draw into a sequence cannot reshuffle everything after it.
  Rng a(99), b(99);
  (void)a.uniform(7, 7);
  EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(Rng, BoundedIsUnbiasedAcrossANonPowerOfTwoSpan) {
  // Rejection sampling (not modulo) over a span that does not divide
  // 2^64: each of the 12 buckets should get close to n/12 draws. With
  // n = 120000 the expected count is 10000 and the standard deviation is
  // ~96, so +/-5% is a > 60-sigma band — deterministic for a fixed seed
  // and loose enough to never flake if the seed changes.
  Rng rng(2024);
  constexpr int kBuckets = 12;
  constexpr int kDraws = 120000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.bounded(kBuckets)]++;
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], kDraws / kBuckets * 95 / 100) << "bucket " << b;
    EXPECT_LT(counts[b], kDraws / kBuckets * 105 / 100) << "bucket " << b;
  }
}

TEST(Rng, UniformCoversExtremeRanges) {
  // Signed ranges spanning more than half the uint64 space exercise the
  // wraparound arithmetic in the span computation.
  Rng rng(5);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform(std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max());
    saw_negative = saw_negative || v < 0;
    saw_positive = saw_positive || v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"Name", "Count"});
  t.row("alpha", 1);
  t.row("b", 12345);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Name   Count"), std::string::npos);
  EXPECT_NE(out.find("-----  -----"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      12345"), std::string::npos);
}

TEST(TablePrinter, FormatsDoubles) {
  TablePrinter t({"v"});
  t.row(2.0);       // integral value: no decimals
  t.row(2.5);       // fractional: two decimals
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("\n2\n"), std::string::npos);
  EXPECT_NE(os.str().find("2.50"), std::string::npos);
}

TEST(TablePrinter, RejectsArityMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TablePrinter, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row("x");
  t.row("y");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(CsvWriter, PlainCells) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter csv({"x"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvWriter, RejectsArityMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), Error);
}

TEST(Timer, MeasuresNonnegativeElapsed) {
  Timer t;
  EXPECT_GE(t.elapsed_ms(), 0.0);
  t.reset();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace chop
