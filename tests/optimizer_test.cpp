// Tests for the automated designer-loop extensions: memory placement
// optimization and automatic constraint-driven partitioning.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chip/mosis_packages.hpp"
#include "core/auto_partition.hpp"
#include "core/memory_optimizer.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

ChopConfig exp1_config() {
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return config;
}

// ---- memory placement optimization ----

ChopSession memory_session() {
  static const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem memory;
  memory.blocks.push_back({"coeff", 16, 64, 1, 300.0, 4000.0, 3});
  memory.blocks.push_back({"spill", 16, 256, 1, 300.0, 6000.0, 3});
  // Deliberately poor start: both blocks off-chip.
  memory.chip_of_block = {chip::kOffTheShelfChip, chip::kOffTheShelfChip};
  std::vector<chip::ChipInstance> chips{
      {"c0", chip::mosis_package_84()}, {"c1", chip::mosis_package_84()}};
  Partitioning pt(arm.graph, std::move(chips), memory);
  const auto cuts = dfg::ar_two_way_cut(dfg::ar_lattice_filter());
  // The memory variant appends its ops in an extra layer; rebuild cuts
  // from the variant's own layers: sections 1-2 / sections 3-4 + mem ops.
  Partitioning fresh(arm.graph,
                     {{"c0", chip::mosis_package_84()},
                      {"c1", chip::mosis_package_84()}},
                     pt.memory());
  (void)cuts;
  static const dfg::BenchmarkGraph& bg = arm;
  fresh.add_partition("P1", bg.layer_span(0, 3), 0);
  fresh.add_partition("P2", bg.layer_span(4, bg.layers.size() - 1), 1);
  ChopConfig config = exp1_config();
  config.constraints = {30000.0, 60000.0};
  return ChopSession(library(), std::move(fresh), config);
}

TEST(MemoryOptimizer, EvaluatesAllPlacements) {
  ChopSession session = memory_session();
  MemoryPlacementOptions options;
  const MemoryPlacementResult r = optimize_memory_placement(session, options);
  // 2 blocks x (2 chips + off-shelf) = 9 placements.
  EXPECT_EQ(r.evaluated, 9u);
  EXPECT_FALSE(r.truncated);
  ASSERT_EQ(r.placement.size(), 2u);
  // The winner is installed in the session.
  EXPECT_EQ(session.partitioning().memory().chip_of_block, r.placement);
}

TEST(MemoryOptimizer, NeverWorseThanStart) {
  ChopSession session = memory_session();
  session.predict_partitions();
  const SearchResult start = session.search({});
  const MemoryPlacementResult r = optimize_memory_placement(session);
  if (!start.designs.empty()) {
    ASSERT_FALSE(r.search.designs.empty());
    EXPECT_LE(r.search.designs.front().integration.ii_main,
              start.designs.front().integration.ii_main);
  }
}

TEST(MemoryOptimizer, RespectsOffTheShelfToggle) {
  ChopSession session = memory_session();
  MemoryPlacementOptions options;
  options.allow_off_the_shelf = false;
  const MemoryPlacementResult r = optimize_memory_placement(session, options);
  EXPECT_EQ(r.evaluated, 4u);  // 2 blocks x 2 chips
  for (int placement : r.placement) {
    EXPECT_NE(placement, chip::kOffTheShelfChip);
  }
}

TEST(MemoryOptimizer, CapTruncates) {
  ChopSession session = memory_session();
  MemoryPlacementOptions options;
  options.max_placements = 3;
  const MemoryPlacementResult r = optimize_memory_placement(session, options);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.evaluated, 3u);
}

TEST(MemoryOptimizer, NoBlocksIsANoOp) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, {{"c0", chip::mosis_package_84()}});
  pt.add_partition("P1", ar.all_operations(), 0);
  ChopSession session(library(), std::move(pt), exp1_config());
  const MemoryPlacementResult r = optimize_memory_placement(session);
  EXPECT_EQ(r.evaluated, 1u);
  EXPECT_TRUE(r.placement.empty());
}

// ---- automatic partitioning ----

TEST(AutoPartition, FindsFeasibleTwoChipCut) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const AutoPartitionResult r = auto_partition(
      ar.graph, library(),
      {{"c0", chip::mosis_package_84()}, {"c1", chip::mosis_package_84()}},
      {}, exp1_config());
  EXPECT_TRUE(r.feasible());
  ASSERT_EQ(r.members.size(), 2u);
  // All 28 operations covered, disjointly.
  std::set<dfg::NodeId> seen;
  for (const auto& part : r.members) {
    for (dfg::NodeId id : part) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), 28u);
  EXPECT_GE(r.evaluations, 1u);
  EXPECT_FALSE(r.log.empty());
  // Matches (or beats) the paper's manual 2-way result of II=30.
  EXPECT_LE(r.search.designs.front().integration.ii_main, 30);
}

TEST(AutoPartition, SingleChipDegenerates) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const AutoPartitionResult r = auto_partition(
      ar.graph, library(), {{"c0", chip::mosis_package_84()}}, {},
      exp1_config());
  ASSERT_EQ(r.members.size(), 1u);
  EXPECT_EQ(r.members[0].size(), 28u);
  EXPECT_EQ(r.accepted_moves, 0);  // no boundary to move across
  EXPECT_TRUE(r.feasible());
}

TEST(AutoPartition, LogNarratesDecisions) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const AutoPartitionResult r = auto_partition(
      ar.graph, library(),
      {{"c0", chip::mosis_package_84()}, {"c1", chip::mosis_package_84()}},
      {}, exp1_config());
  ASSERT_GE(r.log.size(), 2u);
  EXPECT_NE(r.log.front().find("seed"), std::string::npos);
  EXPECT_NE(r.log.back().find("final"), std::string::npos);
  EXPECT_EQ(static_cast<int>(r.log.size()) - 2, r.accepted_moves);
}

TEST(AutoPartition, IterationCapHonored) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  AutoPartitionOptions options;
  options.max_iterations = 0;
  const AutoPartitionResult r = auto_partition(
      ar.graph, library(),
      {{"c0", chip::mosis_package_84()}, {"c1", chip::mosis_package_84()}},
      {}, exp1_config(), options);
  EXPECT_EQ(r.accepted_moves, 0);
  // One evaluation per seed restart, no migrations.
  EXPECT_LE(r.evaluations, 3u);
  EXPECT_GE(r.evaluations, 1u);
}

TEST(AutoPartition, HandlesMemoryWorkload) {
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem memory;
  memory.blocks.push_back({"coeff", 16, 64, 1, 300.0, 4000.0, 3});
  memory.blocks.push_back({"spill", 16, 256, 1, 300.0, 6000.0, 3});
  memory.chip_of_block = {0, 1};
  ChopConfig config = exp1_config();
  config.constraints = {30000.0, 60000.0};
  const AutoPartitionResult r = auto_partition(
      arm.graph, library(),
      {{"c0", chip::mosis_package_84()}, {"c1", chip::mosis_package_84()}},
      memory, config);
  // Memory ops must be covered too (33 operations total).
  std::size_t total = 0;
  for (const auto& part : r.members) total += part.size();
  EXPECT_EQ(total, arm.graph.operation_count() + 3);  // + 2 reads, 1 write
}

TEST(AutoPartition, RejectsBadOptions) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  AutoPartitionOptions options;
  options.max_candidates_per_iteration = 0;
  EXPECT_THROW(auto_partition(ar.graph, library(),
                              {{"c0", chip::mosis_package_84()}}, {},
                              exp1_config(), options),
               Error);
  EXPECT_THROW(
      auto_partition(ar.graph, library(), {}, {}, exp1_config()), Error);
}

}  // namespace
}  // namespace chop::core
