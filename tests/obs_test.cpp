// Tests for the chop_obs observability layer: trace spans and sinks,
// metric counters/gauges/histograms, and the search-progress observer
// wired through core::SearchOptions. The Chrome trace output is validated
// by parsing it back with a minimal JSON reader.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace chop {
namespace {

// --- a minimal JSON reader, just enough to validate trace output ----------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the whole input; fails the test (via ok_) on any syntax error.
  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word, JsonValue& out, JsonValue value) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    out = std::move(value);
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': return string(out);
      case 't': return literal("true", out, JsonValue{true});
      case 'f': return literal("false", out, JsonValue{false});
      case 'n': return literal("null", out, JsonValue{nullptr});
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    JsonObject obj;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      out = JsonValue{std::move(obj)};
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue val;
      if (!value(val)) return false;
      obj[key.str()] = std::move(val);
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; break; }
      return false;
    }
    out = JsonValue{std::move(obj)};
    return true;
  }

  bool array(JsonValue& out) {
    JsonArray arr;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      out = JsonValue{std::move(arr)};
      return true;
    }
    while (true) {
      JsonValue val;
      if (!value(val)) return false;
      arr.push_back(std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; break; }
      return false;
    }
    out = JsonValue{std::move(arr)};
    return true;
  }

  bool string(JsonValue& out) {
    ++pos_;  // '"'
    std::string str;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': str += '"'; break;
          case '\\': str += '\\'; break;
          case 'n': str += '\n'; break;
          case 'r': str += '\r'; break;
          case 't': str += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // keep escapes opaque; validity is what matters
            str += '?';
            break;
          default: return false;
        }
        ++pos_;
      } else {
        str += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    out = JsonValue{std::move(str)};
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out = JsonValue{std::stod(s_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- tracing ---------------------------------------------------------------

/// Captures events in memory for assertions.
class RecordingSink : public obs::TraceSink {
 public:
  void event(const obs::TraceEvent& e) override { events.push_back(e); }
  std::vector<obs::TraceEvent> events;
};

/// Installs a sink for the test body and always uninstalls on scope exit,
/// so a failing assertion cannot leak a dangling sink into later tests.
class SinkGuard {
 public:
  explicit SinkGuard(obs::TraceSink* sink) { obs::install_trace_sink(sink); }
  ~SinkGuard() { obs::install_trace_sink(nullptr); }
};

TEST(Trace, DisabledSinkIsNoop) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    obs::TraceSpan span("noop");
    span.arg("k", 1);
    obs::trace_instant("noop.instant");
  }
  // Installing a sink afterwards must not surface anything recorded
  // while disabled.
  RecordingSink sink;
  SinkGuard guard(&sink);
  EXPECT_TRUE(obs::trace_enabled());
  EXPECT_TRUE(sink.events.empty());
}

TEST(Trace, SpanNestingTimestampsContain) {
  RecordingSink sink;
  SinkGuard guard(&sink);
  {
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
      inner.arg("depth", 2);
    }
  }
  ASSERT_EQ(sink.events.size(), 2u);
  // Complete events emit at destruction: inner first, then outer.
  const obs::TraceEvent& inner = sink.events[0];
  const obs::TraceEvent& outer = sink.events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.phase, 'X');
  EXPECT_EQ(outer.phase, 'X');
  // The inner interval lies within the outer interval.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_EQ(inner.args_json, "\"depth\":2");
}

TEST(Trace, SpanDroppedWhenSinkUninstalledMidSpan) {
  RecordingSink sink;
  obs::install_trace_sink(&sink);
  obs::TraceSpan span("orphan");
  obs::install_trace_sink(nullptr);
  span.finish();
  EXPECT_TRUE(sink.events.empty());
}

TEST(Trace, ChromeTraceJsonParsesBack) {
  std::ostringstream os;
  {
    obs::ChromeTraceSink sink(os);
    SinkGuard guard(&sink);
    obs::TraceSpan a("alpha \"quoted\"\nname");
    a.arg("count", 3);
    a.arg("label", "x\"y");
    a.finish();
    obs::trace_instant("beta");
    sink.flush();
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
  ASSERT_TRUE(root.is_object());
  const auto it = root.object().find("traceEvents");
  ASSERT_NE(it, root.object().end());
  ASSERT_TRUE(it->second.is_array());
  const JsonArray& events = it->second.array();
  ASSERT_EQ(events.size(), 2u);
  const JsonObject& alpha = events[0].object();
  EXPECT_EQ(alpha.at("name").str(), "alpha \"quoted\"\nname");
  EXPECT_EQ(alpha.at("ph").str(), "X");
  EXPECT_GE(alpha.at("dur").number(), 0.0);
  EXPECT_EQ(alpha.at("args").object().at("count").number(), 3.0);
  EXPECT_EQ(alpha.at("args").object().at("label").str(), "x\"y");
  EXPECT_EQ(events[1].object().at("ph").str(), "i");
}

TEST(Trace, JsonlSinkOneObjectPerLine) {
  std::ostringstream os;
  {
    obs::JsonlTraceSink sink(os);
    SinkGuard guard(&sink);
    obs::TraceSpan("first").finish();
    obs::trace_instant("second");
  }
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue v;
    ASSERT_TRUE(JsonParser(line).parse(v)) << line;
    ASSERT_TRUE(v.is_object());
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CounterMath) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramMath) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0);
  // Quantiles are bucket estimates: exact at the extremes, monotone and
  // within the observed range in between.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  double last = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
    EXPECT_GE(v, last);
    last = v;
  }
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Metrics, HistogramHandlesNonPositiveSamples) {
  obs::Histogram h;
  h.observe(0.0);
  h.observe(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Metrics, RegistryReferencesAreStableAcrossReset) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.counter");
  obs::Counter& again = registry.counter("test.counter");
  EXPECT_EQ(&c, &again);
  c.add(7);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed
  c.add(1);
  EXPECT_EQ(registry.counter("test.counter").value(), 1u);
}

TEST(Metrics, SnapshotRendersJsonCsvTable) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(2.5);
  registry.histogram("c.hist_ms").observe(10.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("b.gauge"), 2.5);
  EXPECT_EQ(snap.histograms.at("c.hist_ms").count, 1u);

  // The JSON dump must parse back and contain every metric.
  JsonValue root;
  ASSERT_TRUE(JsonParser(snap.to_json()).parse(root)) << snap.to_json();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.object().at("counters").object().at("a.count").number(), 3.0);
  EXPECT_EQ(root.object().at("gauges").object().at("b.gauge").number(), 2.5);
  const JsonObject& hist =
      root.object().at("histograms").object().at("c.hist_ms").object();
  EXPECT_EQ(hist.at("count").number(), 1.0);
  EXPECT_EQ(hist.at("min").number(), 10.0);

  // Table and CSV renderings carry one row per metric.
  const std::string table = snap.to_table();
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("c.hist_ms"), std::string::npos);
  std::ostringstream csv;
  snap.to_csv().write(csv);
  EXPECT_NE(csv.str().find("b.gauge"), std::string::npos);
}

// --- search-progress observer ----------------------------------------------

/// Builds a ready-to-search 2-partition session on the AR filter
/// (experiment-1 configuration — a small, fully feasible space).
core::ChopSession small_session() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips{{"chip0", chip::mosis_package_84()},
                                        {"chip1", chip::mosis_package_84()}};
  core::Partitioning pt(ar.graph, std::move(chips));
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return core::ChopSession(lib, std::move(pt), config);
}

/// Counts every callback and checks per-trial invariants.
class CountingObserver : public obs::SearchObserver {
 public:
  void on_trial(const obs::SearchProgress& p) override {
    ++trials_seen;
    EXPECT_EQ(p.trials, trials_seen);  // every trial reported, in order
    if (p.trial_feasible) {
      ++feasible_seen;
      EXPECT_STREQ(p.reason, "");
    }
    EXPECT_EQ(p.feasible, feasible_seen);
    if (p.feasible > 0) {
      EXPECT_GE(p.best_ii, 0);
    }
    last_best_ii = p.best_ii;
  }
  void on_done(const obs::SearchProgress& p) override {
    ++done_calls;
    done_trials = p.trials;
    done_feasible = p.feasible;
  }

  std::size_t trials_seen = 0;
  std::size_t feasible_seen = 0;
  long long last_best_ii = -1;
  int done_calls = 0;
  std::size_t done_trials = 0;
  std::size_t done_feasible = 0;
};

TEST(SearchObserver, SeesEveryEnumerationTrial) {
  core::ChopSession session = small_session();
  session.predict_partitions();
  CountingObserver observer;
  core::SearchOptions options;
  options.heuristic = core::Heuristic::Enumeration;
  options.observer = &observer;
  const core::SearchResult result = session.search(options);
  EXPECT_GT(result.trials, 0u);
  EXPECT_EQ(observer.trials_seen, result.trials);
  EXPECT_EQ(observer.feasible_seen, result.feasible_raw);
  EXPECT_EQ(observer.done_calls, 1);
  EXPECT_EQ(observer.done_trials, result.trials);
  EXPECT_EQ(observer.done_feasible, result.feasible_raw);
  ASSERT_FALSE(result.designs.empty());
  EXPECT_EQ(observer.last_best_ii,
            result.designs.front().integration.ii_main);
}

TEST(SearchObserver, SeesEveryIterativeTrial) {
  core::ChopSession session = small_session();
  session.predict_partitions();
  CountingObserver observer;
  core::SearchOptions options;
  options.heuristic = core::Heuristic::Iterative;
  options.observer = &observer;
  const core::SearchResult result = session.search(options);
  EXPECT_GT(result.trials, 0u);
  EXPECT_EQ(observer.trials_seen, result.trials);
  EXPECT_EQ(observer.feasible_seen, result.feasible_raw);
  EXPECT_EQ(observer.done_calls, 1);
}

TEST(SearchMetrics, GlobalCountersTrackSearch) {
  obs::MetricsRegistry::global().reset();
  core::ChopSession session = small_session();
  const core::PredictionStats stats = session.predict_partitions();
  core::SearchOptions options;
  options.heuristic = core::Heuristic::Enumeration;
  const core::SearchResult result = session.search(options);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("search.trials"), result.trials);
  EXPECT_EQ(snap.counters.at("search.feasible"), result.feasible_raw);
  EXPECT_EQ(snap.counters.at("search.pruned_inferior"),
            result.feasible_raw - result.designs.size());
  // Level-1 drops split by cause; together they account for every raw
  // prediction that did not survive.
  EXPECT_EQ(snap.counters.at("search.pruned_infeasible") +
                snap.counters.at("search.pruned_pareto"),
            stats.total - stats.feasible);
  EXPECT_EQ(snap.counters.at("bad.predictions_raw"), stats.total);
  EXPECT_EQ(snap.counters.at("bad.predictions_eligible"), stats.feasible);
  EXPECT_GE(snap.counters.at("integration.attempts"), result.trials);
  EXPECT_GT(snap.counters.at("integration.transfer_tasks"), 0u);
  EXPECT_EQ(snap.histograms.at("session.predict_ms").count, 1u);
  EXPECT_GT(snap.histograms.at("session.predict_ms").sum, 0.0);
}

TEST(ProgressPrinter, PrintsThrottledAndFinal) {
  std::ostringstream os;
  obs::ProgressPrinter printer(os, 2);
  obs::SearchProgress p;
  p.trials = 1;
  p.reason = "area";
  printer.on_trial(p);  // 1 % 2 != 0: suppressed
  EXPECT_TRUE(os.str().empty());
  p.trials = 2;
  printer.on_trial(p);
  EXPECT_NE(os.str().find("trials=2"), std::string::npos);
  EXPECT_NE(os.str().find("area"), std::string::npos);
  p.trials = 7;
  p.feasible = 3;
  p.best_ii = 30;
  p.best_delay = 67;
  p.trial_feasible = true;
  printer.on_done(p);
  EXPECT_NE(os.str().find("done"), std::string::npos);
  EXPECT_NE(os.str().find("best II=30"), std::string::npos);
}

}  // namespace
}  // namespace chop
