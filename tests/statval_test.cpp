// Tests for the statistical triplet algebra and triangular-CDF feasibility
// analysis (paper §2.6).
#include "util/statval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/properties.hpp"
#include "util/rng.hpp"

namespace chop {
namespace {

/// Deterministic random triplet with occasional degenerate shapes (exact
/// values, mode pinned to a bound) so the property checks cover the edge
/// branches of the triangular CDF.
StatVal random_triplet(Rng& rng) {
  const double lo = static_cast<double>(rng.uniform(-50, 200));
  const double spread = static_cast<double>(rng.uniform(0, 80));
  const double hi = lo + spread;
  double likely = lo + static_cast<double>(rng.uniform01()) * spread;
  if (rng.chance(0.15)) likely = lo;
  if (rng.chance(0.15)) likely = hi;
  return StatVal(lo, likely, hi);
}

TEST(StatVal, DefaultIsZero) {
  const StatVal v;
  EXPECT_EQ(v.lo(), 0.0);
  EXPECT_EQ(v.likely(), 0.0);
  EXPECT_EQ(v.hi(), 0.0);
  EXPECT_TRUE(v.exact());
}

TEST(StatVal, ExactConstructor) {
  const StatVal v(42.0);
  EXPECT_TRUE(v.exact());
  EXPECT_EQ(v.mean(), 42.0);
  EXPECT_EQ(v.spread(), 0.0);
}

TEST(StatVal, RejectsUnorderedTriplet) {
  EXPECT_THROW(StatVal(2.0, 1.0, 3.0), Error);
  EXPECT_THROW(StatVal(1.0, 3.0, 2.0), Error);
}

TEST(StatVal, MeanOfTriangular) {
  const StatVal v(0.0, 3.0, 6.0);
  EXPECT_DOUBLE_EQ(v.mean(), 3.0);
  EXPECT_DOUBLE_EQ(v.spread(), 3.0);
}

TEST(StatVal, CdfAtBounds) {
  const StatVal v(10.0, 20.0, 40.0);
  EXPECT_DOUBLE_EQ(v.cdf(10.0), 0.0);
  EXPECT_DOUBLE_EQ(v.cdf(40.0), 1.0);
  EXPECT_DOUBLE_EQ(v.cdf(5.0), 0.0);
  EXPECT_DOUBLE_EQ(v.cdf(100.0), 1.0);
}

TEST(StatVal, CdfAtMode) {
  // At the mode the CDF equals (mode-lo)/(hi-lo).
  const StatVal v(0.0, 10.0, 40.0);
  EXPECT_NEAR(v.cdf(10.0), 0.25, 1e-12);
}

TEST(StatVal, CdfSymmetricTriangle) {
  const StatVal v(0.0, 5.0, 10.0);
  EXPECT_NEAR(v.cdf(5.0), 0.5, 1e-12);
  EXPECT_NEAR(v.cdf(2.5), 0.125, 1e-12);
  EXPECT_NEAR(v.cdf(7.5), 0.875, 1e-12);
}

TEST(StatVal, CdfDegenerateExact) {
  const StatVal v(7.0);
  EXPECT_DOUBLE_EQ(v.cdf(6.999), 0.0);
  EXPECT_DOUBLE_EQ(v.cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(v.cdf(7.001), 1.0);
}

TEST(StatVal, CdfModeAtLowerBound) {
  // Mode at lo: pure descending leg.
  const StatVal v(0.0, 0.0, 10.0);
  EXPECT_NEAR(v.cdf(5.0), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(v.cdf(10.0), 1.0);
}

TEST(StatVal, CdfModeAtUpperBound) {
  // Mode at hi: pure ascending leg.
  const StatVal v(0.0, 10.0, 10.0);
  EXPECT_NEAR(v.cdf(5.0), 0.25, 1e-12);
}

TEST(StatVal, SatisfiesFullProbabilityNeedsUpperBound) {
  const StatVal v(10.0, 20.0, 30.0);
  EXPECT_TRUE(v.satisfies(30.0, 1.0));
  EXPECT_FALSE(v.satisfies(29.99, 1.0));
}

TEST(StatVal, SatisfiesEightyPercent) {
  const StatVal v(0.0, 5.0, 10.0);
  // CDF(7.5) = 0.875 >= 0.8; CDF(6) = 1 - 16/100... compute: 1-(4*4)/(10*5)=0.68.
  EXPECT_TRUE(v.satisfies(7.5, 0.8));
  EXPECT_FALSE(v.satisfies(6.0, 0.8));
}

TEST(StatVal, SatisfiesRejectsBadProbability) {
  const StatVal v(1.0);
  EXPECT_THROW(v.satisfies(1.0, -0.1), Error);
  EXPECT_THROW(v.satisfies(1.0, 1.5), Error);
}

TEST(StatVal, AdditionIsComponentwise) {
  const StatVal a(1.0, 2.0, 3.0);
  const StatVal b(10.0, 20.0, 30.0);
  const StatVal sum = a + b;
  EXPECT_EQ(sum, StatVal(11.0, 22.0, 33.0));
}

TEST(StatVal, PlusEqualsAccumulates) {
  StatVal acc;
  acc += StatVal(1.0, 2.0, 3.0);
  acc += StatVal(1.0, 2.0, 3.0);
  EXPECT_EQ(acc, StatVal(2.0, 4.0, 6.0));
}

TEST(StatVal, ScalingByNonnegativeFactor) {
  const StatVal v(1.0, 2.0, 3.0);
  EXPECT_EQ(v * 2.0, StatVal(2.0, 4.0, 6.0));
  EXPECT_EQ(v * 0.0, StatVal(0.0, 0.0, 0.0));
  EXPECT_THROW(v * -1.0, Error);
}

TEST(StatVal, MaxIsComponentwise) {
  const StatVal a(1.0, 5.0, 6.0);
  const StatVal b(2.0, 3.0, 7.0);
  EXPECT_EQ(StatVal::max(a, b), StatVal(2.0, 5.0, 7.0));
}

TEST(StatVal, ScalarSubtraction) {
  const StatVal v(10.0, 20.0, 30.0);
  EXPECT_EQ(v - 5.0, StatVal(5.0, 15.0, 25.0));
}

// ---- property sweep: CDF is a valid, monotone CDF for many triplets ----

struct TripletCase {
  double lo, likely, hi;
};

class CdfProperty : public ::testing::TestWithParam<TripletCase> {};

TEST_P(CdfProperty, MonotoneNondecreasingAndBounded) {
  const auto& p = GetParam();
  const StatVal v(p.lo, p.likely, p.hi);
  double prev = -1.0;
  for (int i = -5; i <= 55; ++i) {
    const double x = p.lo + (p.hi - p.lo) * (static_cast<double>(i) / 50.0);
    const double c = v.cdf(x);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    EXPECT_GE(c, prev - 1e-12) << "CDF must be nondecreasing at x=" << x;
    prev = c;
  }
  EXPECT_DOUBLE_EQ(v.cdf(p.hi + 1.0), 1.0);
}

TEST_P(CdfProperty, SatisfiesConsistentWithCdf) {
  const auto& p = GetParam();
  const StatVal v(p.lo, p.likely, p.hi);
  const double mid = (p.lo + p.hi) / 2.0;
  EXPECT_EQ(v.satisfies(mid, 0.5), v.cdf(mid) >= 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Triplets, CdfProperty,
    ::testing::Values(TripletCase{0.0, 1.0, 2.0}, TripletCase{0.0, 0.0, 2.0},
                      TripletCase{0.0, 2.0, 2.0}, TripletCase{-5.0, 0.0, 5.0},
                      TripletCase{100.0, 250.0, 300.0},
                      TripletCase{1e6, 1.5e6, 4e6},
                      TripletCase{0.0, 0.1, 10.0}));

// --- Randomized algebra properties, via the reusable checks shared with
// the chop_fuzz statval oracle (src/testing/properties.hpp). Each check
// returns nullopt on success or a description of the first violation.

TEST(StatValProperty, SumCommutativeAndAssociative) {
  Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    const StatVal a = random_triplet(rng);
    const StatVal b = random_triplet(rng);
    const StatVal c = random_triplet(rng);
    EXPECT_EQ(testing::check_sum_commutative(a, b), std::nullopt);
    EXPECT_EQ(testing::check_sum_associative(a, b, c), std::nullopt);
  }
}

TEST(StatValProperty, MaxDominatesAndCommutes) {
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const StatVal a = random_triplet(rng);
    const StatVal b = random_triplet(rng);
    EXPECT_EQ(testing::check_max_monotone(a, b), std::nullopt);
  }
}

TEST(StatValProperty, CdfIsAProperDistribution) {
  Rng rng(57);
  for (int i = 0; i < 500; ++i) {
    const StatVal v = random_triplet(rng);
    EXPECT_EQ(testing::check_cdf_bounds(v), std::nullopt)
        << "triplet (" << v.lo() << ", " << v.likely() << ", " << v.hi()
        << ")";
  }
}

TEST(StatValProperty, SatisfiesMonotoneInTheBound) {
  Rng rng(91);
  for (int i = 0; i < 300; ++i) {
    const StatVal v = random_triplet(rng);
    for (const double prob : {0.5, 0.8, 1.0}) {
      EXPECT_EQ(testing::check_satisfies_monotone(v, prob), std::nullopt)
          << "triplet (" << v.lo() << ", " << v.likely() << ", " << v.hi()
          << ") prob " << prob;
    }
  }
}

TEST(StatValProperty, SumsCloseUnderTheAlgebra) {
  // Sums of valid triplets stay valid (lo <= likely <= hi), so chained
  // accumulation in the integrator can never produce an unordered triplet.
  Rng rng(113);
  StatVal acc;
  for (int i = 0; i < 200; ++i) {
    acc += random_triplet(rng);
    EXPECT_LE(acc.lo(), acc.likely());
    EXPECT_LE(acc.likely(), acc.hi());
  }
}

// ---- the branch-lean scalar path and the SoA bank must be bit-identical
// ---- to the StatVal member functions they replace on the hot path

TEST(StatValProperty, FreeTriangularFunctionsMatchMemberGrid) {
  Rng rng(20260808);
  for (int t = 0; t < 200; ++t) {
    const StatVal sv = random_triplet(rng);
    // Probe well outside, at, and between every interesting point of the
    // support, plus random interior points.
    std::vector<double> grid = {sv.lo() - 1.0,
                                sv.lo(),
                                (sv.lo() + sv.likely()) / 2.0,
                                sv.likely(),
                                (sv.likely() + sv.hi()) / 2.0,
                                sv.hi(),
                                sv.hi() + 1.0};
    for (int i = 0; i < 5; ++i) {
      grid.push_back(sv.lo() + rng.uniform01() * (sv.hi() - sv.lo() + 2.0) -
                     1.0);
    }
    for (const double x : grid) {
      EXPECT_EQ(triangular_cdf(sv.lo(), sv.likely(), sv.hi(), x), sv.cdf(x))
          << sv << " at " << x;
      for (const double prob : {0.5, 0.8, 1.0}) {
        EXPECT_EQ(triangular_satisfies(sv.lo(), sv.likely(), sv.hi(), x, prob),
                  sv.satisfies(x, prob))
            << sv << " limit " << x << " prob " << prob;
      }
    }
  }
}

TEST(StatBank, AccumulatesBitIdenticalToStatVal) {
  Rng rng(777);
  constexpr std::size_t kSlots = 7;
  StatBank bank;
  bank.assign(kSlots);
  std::vector<StatVal> reference(kSlots);
  for (int round = 0; round < 50; ++round) {
    const std::size_t slot = static_cast<std::size_t>(rng.uniform(0, 6));
    const StatVal v = random_triplet(rng);
    if (round % 3 == 0) {
      bank.add(slot, v);
    } else if (round % 3 == 1) {
      bank.add(slot, v.lo(), v.likely(), v.hi());
    } else {
      const double exact = v.likely();
      bank.add_exact(slot, exact);
      reference[slot] += StatVal(exact);
      continue;
    }
    reference[slot] += v;
  }
  for (std::size_t i = 0; i < kSlots; ++i) {
    // Same additions in the same order: exactly equal, not just close.
    EXPECT_EQ(bank.get(i), reference[i]) << "slot " << i;
    EXPECT_EQ(bank.lo(i), reference[i].lo());
    EXPECT_EQ(bank.likely(i), reference[i].likely());
    EXPECT_EQ(bank.hi(i), reference[i].hi());
    for (const double prob : {0.5, 0.8, 1.0}) {
      const double limit = reference[i].likely() + 1.0;
      EXPECT_EQ(bank.satisfies(i, limit, prob),
                reference[i].satisfies(limit, prob));
    }
  }
}

TEST(StatBank, AssignResetsToZero) {
  StatBank bank;
  bank.assign(2);
  bank.add(1, StatVal(1.0, 2.0, 3.0));
  bank.assign(3);
  EXPECT_EQ(bank.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bank.get(i), StatVal());
  }
}

}  // namespace
}  // namespace chop
