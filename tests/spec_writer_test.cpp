// Round-trip tests for the `.chop` writer: parse(write(p)) must be
// behaviorally equivalent to p.
#include "io/spec_writer.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::io {
namespace {

Project ar_project() {
  Project p;
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  p.graph = ar.graph;
  p.library = lib::dac91_experiment_library();
  p.chips = {{"c0", chip::mosis_package_84()},
             {"c1", chip::mosis_package_84()}};
  const auto cuts = dfg::ar_two_way_cut(ar);
  p.partitions.push_back({"P1", cuts[0], 0});
  p.partitions.push_back({"P2", cuts[1], 1});
  p.config.style.clocking = bad::ClockingStyle::SingleCycle;
  p.config.clocks = {300.0, 10, 1};
  p.config.constraints = {30000.0, 30000.0};
  return p;
}

Project memory_project() {
  Project p;
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  p.graph = arm.graph;
  p.library = lib::dac91_experiment_library();
  p.chips = {{"c0", chip::mosis_package_84()}};
  p.memory.blocks.push_back({"coeff", 16, 64, 1, 300.0, 4000.0, 3});
  p.memory.blocks.push_back({"spill", 16, 256, 2, 300.0, 6000.0, 4});
  p.memory.chip_of_block = {0, chip::kOffTheShelfChip};
  p.partitions.push_back({"P1", arm.all_operations(), 0});
  p.config.style.clocking = bad::ClockingStyle::MultiCycle;
  p.config.clocks = {300.0, 1, 1};
  p.config.constraints = {60000.0, 90000.0};
  p.config.constraints.system_power_mw = 400.0;
  p.config.testability.scan_design = true;
  return p;
}

TEST(SpecWriter, RoundTripPreservesStructure) {
  const Project original = ar_project();
  const Project parsed = parse_project_string(write_project_string(original));

  EXPECT_EQ(parsed.graph.name(), original.graph.name());
  EXPECT_EQ(parsed.graph.node_count(), original.graph.node_count());
  EXPECT_EQ(parsed.graph.edge_count(), original.graph.edge_count());
  for (dfg::OpKind k : {dfg::OpKind::Input, dfg::OpKind::Mul,
                        dfg::OpKind::Add, dfg::OpKind::Output}) {
    EXPECT_EQ(parsed.graph.count_of_kind(k), original.graph.count_of_kind(k));
  }
  EXPECT_EQ(parsed.library.modules().size(),
            original.library.modules().size());
  EXPECT_EQ(parsed.chips.size(), original.chips.size());
  ASSERT_EQ(parsed.partitions.size(), original.partitions.size());
  for (std::size_t p = 0; p < parsed.partitions.size(); ++p) {
    EXPECT_EQ(parsed.partitions[p].members.size(),
              original.partitions[p].members.size());
    EXPECT_EQ(parsed.partitions[p].chip, original.partitions[p].chip);
  }
}

TEST(SpecWriter, RoundTripPreservesBehaviour) {
  // The acid test: both projects must produce identical search outcomes.
  const Project original = ar_project();
  const Project parsed = parse_project_string(write_project_string(original));

  core::ChopSession s1 = original.make_session();
  core::ChopSession s2 = parsed.make_session();
  const core::PredictionStats st1 = s1.predict_partitions();
  const core::PredictionStats st2 = s2.predict_partitions();
  // Node renumbering changes scheduler tie-breaks, so raw counts may
  // wobble a little — but not by much, and outcomes must agree.
  EXPECT_NEAR(static_cast<double>(st1.total), static_cast<double>(st2.total),
              0.05 * static_cast<double>(st1.total));

  const core::SearchResult r1 = s1.search({});
  const core::SearchResult r2 = s2.search({});
  ASSERT_FALSE(r1.designs.empty());
  ASSERT_FALSE(r2.designs.empty());
  EXPECT_EQ(r1.designs.front().integration.ii_main,
            r2.designs.front().integration.ii_main);
}

TEST(SpecWriter, RoundTripMemoryPowerScan) {
  const Project original = memory_project();
  const Project parsed = parse_project_string(write_project_string(original));

  ASSERT_EQ(parsed.memory.blocks.size(), 2u);
  EXPECT_EQ(parsed.memory.placement(0), 0);
  EXPECT_EQ(parsed.memory.placement(1), chip::kOffTheShelfChip);
  EXPECT_EQ(parsed.memory.blocks[1].ports, 2);
  EXPECT_EQ(parsed.memory.blocks[1].control_pins, 4);
  EXPECT_EQ(parsed.graph.count_of_kind(dfg::OpKind::MemRead), 2u);
  EXPECT_EQ(parsed.graph.count_of_kind(dfg::OpKind::MemWrite), 1u);
  EXPECT_DOUBLE_EQ(parsed.config.constraints.system_power_mw, 400.0);
  EXPECT_TRUE(parsed.config.testability.scan_design);
  EXPECT_EQ(parsed.config.style.clocking, bad::ClockingStyle::MultiCycle);
}

TEST(SpecWriter, ConstantsSurvive) {
  const Project original = ar_project();
  const Project parsed = parse_project_string(write_project_string(original));
  int constants = 0;
  for (std::size_t i = 0; i < parsed.graph.node_count(); ++i) {
    const dfg::Node& n = parsed.graph.node(static_cast<dfg::NodeId>(i));
    if (n.kind == dfg::OpKind::Input && n.constant) ++constants;
  }
  EXPECT_EQ(constants, 16);
}

TEST(SpecWriter, WritesParseableFileToDisk) {
  const Project original = ar_project();
  const std::string path = ::testing::TempDir() + "/roundtrip.chop";
  write_project_file(original, path);
  const Project parsed = parse_project_file(path);
  EXPECT_EQ(parsed.graph.node_count(), original.graph.node_count());
}

TEST(SpecWriter, DoubleRoundTripIsStable) {
  const Project original = memory_project();
  const std::string once = write_project_string(original);
  const std::string twice =
      write_project_string(parse_project_string(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace chop::io
