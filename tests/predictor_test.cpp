// Tests for the BAD predictor driver: sweep coverage, prediction sanity,
// Pareto filtering, and behaviour across styles and clockings.
#include "bad/predictor.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dfg/benchmarks.hpp"
#include "dfg/generator.hpp"
#include "dfg/subgraph.hpp"
#include "library/experiment_library.hpp"

namespace chop::bad {
namespace {

using dfg::OpKind;

PredictionRequest ar_request(const dfg::Graph& g,
                             const lib::ComponentLibrary& lib,
                             ClockingStyle clocking) {
  PredictionRequest req;
  req.graph = &g;
  req.library = &lib;
  req.style.clocking = clocking;
  req.clocks = clocking == ClockingStyle::SingleCycle
                   ? ClockSpec{300.0, 10, 1}
                   : ClockSpec{300.0, 1, 1};
  req.max_ii_dp = clocking == ClockingStyle::SingleCycle ? 10 : 66;
  return req;
}

TEST(Predictor, ProducesPredictionsForArFilter) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Predictor predictor;
  const auto preds = predictor.predict(
      ar_request(ar.graph, lib, ClockingStyle::SingleCycle));
  EXPECT_GT(preds.size(), 50u);
  for (const auto& p : preds) {
    EXPECT_GE(p.stages, 1);
    EXPECT_GE(p.ii_dp, 1);
    EXPECT_LE(p.ii_dp, p.stages);
    EXPECT_EQ(p.ii_main, p.ii_dp * 10);
    EXPECT_EQ(p.latency_main, p.stages * 10);
    EXPECT_GT(p.total_area.likely(), 0.0);
    EXPECT_LE(p.total_area.lo(), p.total_area.likely());
    EXPECT_LE(p.total_area.likely(), p.total_area.hi());
    EXPECT_GT(p.clock_overhead_ns, 0.0);
    EXPECT_FALSE(p.module_set_label.empty());
    EXPECT_FALSE(p.fu_alloc.empty());
  }
}

TEST(Predictor, SingleCycleExcludesOversizedModules) {
  // mul3 (7370 ns) cannot run single-cycle on a 3000 ns datapath clock.
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Predictor predictor;
  const auto preds = predictor.predict(
      ar_request(ar.graph, lib, ClockingStyle::SingleCycle));
  for (const auto& p : preds) {
    EXPECT_EQ(p.module_set_label.find("mul3"), std::string::npos);
  }
}

TEST(Predictor, MultiCycleAdmitsAllModuleSets) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Predictor predictor;
  const auto preds = predictor.predict(
      ar_request(ar.graph, lib, ClockingStyle::MultiCycle));
  std::set<std::string> sets;
  for (const auto& p : preds) sets.insert(p.module_set_label);
  EXPECT_EQ(sets.size(), 9u);  // all 3x3 module-set configurations
}

TEST(Predictor, PipelinedVariantsEnumerated) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Predictor predictor;
  const auto preds = predictor.predict(
      ar_request(ar.graph, lib, ClockingStyle::SingleCycle));
  int pipelined = 0, nonpipelined = 0;
  for (const auto& p : preds) {
    if (p.style == DesignStyle::Pipelined) {
      ++pipelined;
      EXPECT_LT(p.ii_dp, p.stages);
    } else {
      ++nonpipelined;
      EXPECT_EQ(p.ii_dp, p.stages);
    }
  }
  EXPECT_GT(pipelined, 0);
  EXPECT_GT(nonpipelined, 0);
}

TEST(Predictor, DisallowPipeliningHonored) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  PredictionRequest req = ar_request(ar.graph, lib, ClockingStyle::SingleCycle);
  req.style.allow_pipelining = false;
  Predictor predictor;
  for (const auto& p : predictor.predict(req)) {
    EXPECT_EQ(p.style, DesignStyle::Nonpipelined);
  }
}

TEST(Predictor, MaxIiCapRespected) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  PredictionRequest req = ar_request(ar.graph, lib, ClockingStyle::MultiCycle);
  req.max_ii_dp = 12;
  Predictor predictor;
  for (const auto& p : predictor.predict(req)) {
    if (p.style == DesignStyle::Pipelined) EXPECT_LE(p.ii_dp, 12);
  }
}

TEST(Predictor, MemoryAccessesRecorded) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  PredictionRequest req = ar_request(arm.graph, lib, ClockingStyle::MultiCycle);
  req.memory_ports = {{0, 1}, {1, 1}};
  req.memory_access_time = {300.0, 300.0};
  Predictor predictor;
  const auto preds = predictor.predict(req);
  ASSERT_FALSE(preds.empty());
  for (const auto& p : preds) {
    EXPECT_EQ(p.memory_accesses.at(0), 2);  // two coefficient reads
    EXPECT_EQ(p.memory_accesses.at(1), 1);  // one spill write
    EXPECT_EQ(p.total_memory_accesses(), 3);
  }
}

TEST(Predictor, RejectsMalformedRequests) {
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Predictor predictor;
  PredictionRequest req;
  EXPECT_THROW(predictor.predict(req), Error);  // no graph
  req.graph = &ar.graph;
  EXPECT_THROW(predictor.predict(req), Error);  // no library
  req.library = &lib;
  req.clocks.main_clock = -1;
  EXPECT_THROW(predictor.predict(req), Error);  // bad clock
}

TEST(Predictor, RejectsUncoveredGraph) {
  lib::ComponentLibrary adders_only;
  adders_only.add({"a", OpKind::Add, 16, 100.0, 30.0});
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Predictor predictor;
  EXPECT_THROW(
      predictor.predict(ar_request(ar.graph, adders_only,
                                   ClockingStyle::MultiCycle)),
      Error);
}

TEST(Predictor, RejectsBadOptions) {
  EXPECT_THROW(Predictor(PredictorOptions{{}}), Error);
  EXPECT_THROW(Predictor(PredictorOptions{{0}}), Error);
}

TEST(ParetoFilter, RemovesDominatedWithinStyle) {
  DesignPrediction cheap_slow;
  cheap_slow.style = DesignStyle::Nonpipelined;
  cheap_slow.ii_main = 80;
  cheap_slow.latency_main = 80;
  cheap_slow.total_area = StatVal(100.0);

  DesignPrediction fat_slow = cheap_slow;  // dominated: same speed, bigger
  fat_slow.total_area = StatVal(200.0);

  DesignPrediction fast = cheap_slow;  // incomparable: faster but bigger
  fast.ii_main = 40;
  fast.latency_main = 40;
  fast.total_area = StatVal(150.0);

  const auto kept = pareto_filter({cheap_slow, fat_slow, fast});
  EXPECT_EQ(kept.size(), 2u);
}

TEST(ParetoFilter, StylesAreIncomparable) {
  DesignPrediction pipe;
  pipe.style = DesignStyle::Pipelined;
  pipe.ii_main = 40;
  pipe.latency_main = 80;
  pipe.total_area = StatVal(100.0);

  DesignPrediction nonpipe;  // worse on every axis but nonpipelined
  nonpipe.style = DesignStyle::Nonpipelined;
  nonpipe.ii_main = 80;
  nonpipe.latency_main = 80;
  nonpipe.total_area = StatVal(100.0);

  EXPECT_FALSE(dominates(pipe, nonpipe));
  EXPECT_EQ(pareto_filter({pipe, nonpipe}).size(), 2u);
}

TEST(ParetoFilter, DropsExactTiesOnce) {
  DesignPrediction a;
  a.style = DesignStyle::Nonpipelined;
  a.ii_main = 10;
  a.latency_main = 10;
  a.total_area = StatVal(50.0);
  const auto kept = pareto_filter({a, a, a});
  EXPECT_EQ(kept.size(), 1u);
}

TEST(Prediction, SummaryMentionsDecisions) {
  DesignPrediction p;
  p.style = DesignStyle::Pipelined;
  p.module_set_label = "add2+mul3";
  p.fu_alloc[OpKind::Add] = 3;
  p.fu_alloc[OpKind::Mul] = 4;
  p.stages = 5;
  p.ii_main = 30;
  p.latency_main = 50;
  const std::string s = p.summary();
  EXPECT_NE(s.find("pipelined"), std::string::npos);
  EXPECT_NE(s.find("add2+mul3"), std::string::npos);
  EXPECT_NE(s.find("3xadd"), std::string::npos);
  EXPECT_NE(s.find("4xmul"), std::string::npos);
}

// Property: for every random workload, BAD output is internally coherent.
class PredictorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredictorProperty, AllPredictionsCoherent) {
  Rng rng(GetParam());
  dfg::RandomDagSpec spec;
  spec.operations = 20;
  spec.depth = 5;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, spec);
  const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  Predictor predictor;
  const auto preds = predictor.predict(
      ar_request(bg.graph, lib, ClockingStyle::MultiCycle));
  ASSERT_FALSE(preds.empty());
  for (const auto& p : preds) {
    EXPECT_LE(p.ii_main, p.latency_main);
    EXPECT_GT(p.register_bits, 0);
    const double parts = p.fu_area.likely() + p.register_area.likely() +
                         p.mux_area.likely() + p.controller_area.likely() +
                         p.wiring_area.likely();
    EXPECT_NEAR(p.total_area.likely(), parts, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace chop::bad
