// End-to-end property tests: random workloads crossed with random (but
// repaired-valid) partitionings, run through the complete pipeline. Every
// feasible design CHOP reports must actually satisfy the constraints it
// was checked against — recomputed here from first principles.
#include <gtest/gtest.h>

#include "baseline/partition_builders.hpp"
#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/generator.hpp"
#include "library/experiment_library.hpp"
#include "library/module_set.hpp"

namespace chop {
namespace {

struct Instance {
  std::uint64_t seed;
  int operations;
  int depth;
  int chips;
};

class EndToEnd : public ::testing::TestWithParam<Instance> {
 protected:
  core::ChopSession build_session() {
    const Instance& p = GetParam();
    rng_ = Rng(p.seed);
    dfg::RandomDagSpec spec;
    spec.operations = p.operations;
    spec.depth = p.depth;
    spec.extra_inputs = 6;
    graph_ = dfg::random_dag(rng_, spec);

    auto parts = baseline::make_acyclic(
        graph_.graph,
        baseline::random_partition(graph_.all_operations(), p.chips, rng_));
    std::vector<chip::ChipInstance> chips;
    for (std::size_t c = 0; c < parts.size(); ++c) {
      chips.push_back({"c" + std::to_string(c), chip::mosis_package_84()});
    }
    core::Partitioning pt(graph_.graph, std::move(chips));
    for (std::size_t i = 0; i < parts.size(); ++i) {
      pt.add_partition("P" + std::to_string(i + 1), parts[i],
                       static_cast<int>(i));
    }
    core::ChopConfig config;
    config.style.clocking = bad::ClockingStyle::SingleCycle;
    config.clocks = {300.0, 10, 1};
    config.constraints = {60000.0, 120000.0};
    static const lib::ComponentLibrary library =
        lib::dac91_experiment_library();
    return core::ChopSession(library, std::move(pt), config);
  }

  Rng rng_{0};
  dfg::BenchmarkGraph graph_;
};

TEST_P(EndToEnd, FeasibleDesignsSatisfyTheirConstraints) {
  core::ChopSession session = build_session();
  session.predict_partitions();
  for (core::Heuristic h :
       {core::Heuristic::Enumeration, core::Heuristic::Iterative}) {
    core::SearchOptions options;
    options.heuristic = h;
    const core::SearchResult result = session.search(options);
    const auto& constraints = session.config().constraints;
    const auto& criteria = session.config().criteria;
    for (const core::GlobalDesign& d : result.designs) {
      const core::IntegrationResult& r = d.integration;
      ASSERT_TRUE(r.feasible);
      // Performance at probability 1.0: upper bound within budget.
      EXPECT_LE(r.performance_ns.hi(), constraints.performance_ns);
      // Delay at 80%.
      EXPECT_GE(r.delay_ns.cdf(constraints.delay_ns),
                criteria.delay_prob - 1e-9);
      // Chip areas at probability 1.0.
      for (std::size_t c = 0; c < r.chip_area.size(); ++c) {
        EXPECT_LE(
            r.chip_area[c].hi(),
            session.partitioning().chips()[c].package.usable_area() + 1e-6);
      }
      // Data-clash rule: every pin-crossing transfer fits in the II.
      for (const core::TransferPlan& t : r.transfers) {
        if (t.task.crosses_pins()) {
          EXPECT_LE(t.transfer_cycles, r.ii_main);
          EXPECT_GE(t.pins, 1);
        }
      }
      // The system interval covers every selected implementation.
      EXPECT_GE(r.ii_main, 1);
      EXPECT_GE(r.system_delay_main, r.ii_main == 1 ? 1 : 0);
      // Guideline rendering never crashes on a real design.
      EXPECT_FALSE(session.guideline(d).empty());
    }
  }
}

TEST_P(EndToEnd, SearchIsDeterministic) {
  core::ChopSession a = build_session();
  core::ChopSession b = build_session();
  a.predict_partitions();
  b.predict_partitions();
  core::SearchOptions options;
  options.heuristic = core::Heuristic::Iterative;
  const core::SearchResult ra = a.search(options);
  const core::SearchResult rb = b.search(options);
  EXPECT_EQ(ra.trials, rb.trials);
  ASSERT_EQ(ra.designs.size(), rb.designs.size());
  for (std::size_t i = 0; i < ra.designs.size(); ++i) {
    EXPECT_EQ(ra.designs[i].integration.ii_main,
              rb.designs[i].integration.ii_main);
    EXPECT_EQ(ra.designs[i].choice, rb.designs[i].choice);
  }
}

TEST_P(EndToEnd, IterativeNeverBeatsEnumerationOnBestIi) {
  // Enumeration is exhaustive over the eligible lists; the iterative walk
  // can only match or be slower on the best initiation interval.
  core::ChopSession session = build_session();
  session.predict_partitions();
  core::SearchOptions e;
  e.heuristic = core::Heuristic::Enumeration;
  core::SearchOptions i;
  i.heuristic = core::Heuristic::Iterative;
  const core::SearchResult re = session.search(e);
  const core::SearchResult ri = session.search(i);
  if (!ri.designs.empty()) {
    ASSERT_FALSE(re.designs.empty());
    EXPECT_LE(re.designs.front().integration.ii_main,
              ri.designs.front().integration.ii_main);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, EndToEnd,
    ::testing::Values(Instance{501, 16, 4, 2}, Instance{502, 24, 6, 2},
                      Instance{503, 24, 4, 3}, Instance{504, 32, 8, 2},
                      Instance{505, 40, 5, 3}, Instance{506, 12, 3, 2},
                      Instance{507, 48, 8, 3}, Instance{508, 20, 10, 2}));

// ---- diffeq with the extended library ----

TEST(Diffeq, CountsAndDepth) {
  const dfg::BenchmarkGraph dq = dfg::diffeq();
  EXPECT_EQ(dq.graph.count_of_kind(dfg::OpKind::Mul), 6u);
  EXPECT_EQ(dq.graph.count_of_kind(dfg::OpKind::Add), 2u);
  EXPECT_EQ(dq.graph.count_of_kind(dfg::OpKind::Sub), 2u);
  EXPECT_EQ(dq.graph.count_of_kind(dfg::OpKind::Compare), 1u);
}

TEST(Diffeq, ExtendedLibraryCoversIt) {
  const lib::ComponentLibrary extended = lib::dac91_extended_library();
  const dfg::BenchmarkGraph dq = dfg::diffeq();
  EXPECT_TRUE(extended.covers(lib::functional_kinds(dq.graph)));
  // Plain Table 1 does not.
  EXPECT_FALSE(lib::dac91_experiment_library().covers(
      lib::functional_kinds(dq.graph)));
}

TEST(Diffeq, PartitionsAndRunsEndToEnd) {
  const dfg::BenchmarkGraph dq = dfg::diffeq();
  const lib::ComponentLibrary extended = lib::dac91_extended_library();
  core::Partitioning pt(dq.graph, {{"c0", chip::mosis_package_84()},
                                   {"c1", chip::mosis_package_84()}});
  pt.add_partition("front", dq.layer_span(0, 1), 0);
  pt.add_partition("back", dq.layer_span(2, 3), 1);
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  core::ChopSession session(extended, std::move(pt), config);
  const core::PredictionStats stats = session.predict_partitions();
  // Module sets now span 3 adders x 3 muls x 2 subs (x 1 cmp) per side.
  EXPECT_GT(stats.total, 0u);
  const core::SearchResult r = session.search({});
  EXPECT_FALSE(r.designs.empty());
}

TEST(Diffeq, ModuleSetEnumerationSpansAllKinds) {
  const lib::ComponentLibrary extended = lib::dac91_extended_library();
  const dfg::BenchmarkGraph dq = dfg::diffeq();
  const auto kinds = lib::functional_kinds(dq.graph);
  // add(3) x mul(3) x sub(2) x cmp(1) = 18 module sets.
  EXPECT_EQ(lib::enumerate_module_sets(extended, kinds).size(), 18u);
}

}  // namespace
}  // namespace chop
