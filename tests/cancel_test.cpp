// Cooperative cancellation and wall-clock deadlines in the search core
// (SearchOptions::cancel / ::deadline): cancelled searches return valid
// partial results flagged `cancelled`, never crash, and a cancel source
// that never fires leaves results byte-identical to a plain run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "core/session.hpp"
#include "obs/observer.hpp"
#include "serve/protocol.hpp"
#include "testing/scenario.hpp"

namespace chop {
namespace {

using core::Heuristic;
using core::SearchOptions;
using core::SearchResult;

io::Project test_project(std::uint64_t seed = 7) {
  testing::ScenarioKnobs knobs;
  knobs.seed = seed;
  knobs.normalize();
  return testing::build_scenario(knobs);
}

/// A deterministic scenario with a design space large enough to cancel
/// partway through (dozens of enumeration trials).
io::Project wide_project() {
  testing::ScenarioKnobs knobs;
  knobs.seed = 31;
  knobs.operations = 30;
  knobs.depth = 5;
  knobs.chips = 3;
  knobs.partitions = 3;
  knobs.modules_per_op = 4;
  knobs.performance_ns = 300000;
  knobs.delay_ns = 300000;
  knobs.normalize();
  return testing::build_scenario(knobs);
}

SearchResult run(const io::Project& project, const SearchOptions& options) {
  core::ChopSession session = project.make_session();
  session.predict_partitions();
  return session.search(options);
}

/// Raises the shared cancel flag after a fixed number of trials.
class CancelAfter : public obs::SearchObserver {
 public:
  CancelAfter(std::atomic<bool>& flag, std::size_t after)
      : flag_(flag), after_(after) {}
  void on_trial(const obs::SearchProgress& progress) override {
    if (progress.trials >= after_) flag_.store(true);
  }

 private:
  std::atomic<bool>& flag_;
  std::size_t after_;
};

TEST(SearchCancel, PastDeadlineYieldsImmediateEmptyCancelledResult) {
  const io::Project project = test_project();
  for (const Heuristic h : {Heuristic::Enumeration, Heuristic::Iterative}) {
    SearchOptions options;
    options.heuristic = h;
    options.deadline =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    const SearchResult result = run(project, options);
    EXPECT_TRUE(result.cancelled);
    EXPECT_TRUE(result.designs.empty());
    EXPECT_EQ(result.trials, 0u);
  }
}

TEST(SearchCancel, PreRaisedFlagYieldsImmediateCancelledResult) {
  const io::Project project = test_project();
  std::atomic<bool> cancel{true};
  for (const Heuristic h : {Heuristic::Enumeration, Heuristic::Iterative}) {
    SearchOptions options;
    options.heuristic = h;
    options.cancel = &cancel;
    const SearchResult result = run(project, options);
    EXPECT_TRUE(result.cancelled);
    EXPECT_TRUE(result.designs.empty());
    EXPECT_EQ(result.trials, 0u);
  }
}

TEST(SearchCancel, ObserverRaisedFlagStopsEnumerationEarly) {
  const io::Project project = wide_project();
  SearchOptions full;
  full.heuristic = Heuristic::Enumeration;
  full.bound_pruning = false;  // deterministic full trial count
  const SearchResult reference = run(project, full);
  ASSERT_GT(reference.trials, 8u) << "scenario too small to cancel midway";

  std::atomic<bool> cancel{false};
  CancelAfter observer(cancel, 2);
  SearchOptions options = full;
  options.cancel = &cancel;
  options.observer = &observer;
  const SearchResult result = run(project, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_GE(result.trials, 2u);
  EXPECT_LT(result.trials, reference.trials);
  // Partial results are real evaluations, not fabrications.
  for (const core::GlobalDesign& design : result.designs) {
    EXPECT_TRUE(design.integration.feasible);
  }
}

TEST(SearchCancel, ObserverRaisedFlagStopsIterativeEarly) {
  const io::Project project = wide_project();
  SearchOptions full;
  full.heuristic = Heuristic::Iterative;
  const SearchResult reference = run(project, full);
  if (reference.trials < 2) GTEST_SKIP() << "iterative run too short";

  std::atomic<bool> cancel{false};
  CancelAfter observer(cancel, 1);
  SearchOptions options = full;
  options.cancel = &cancel;
  options.observer = &observer;
  const SearchResult result = run(project, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(result.trials, reference.trials);
}

TEST(SearchCancel, UnfiredCancelSourcesLeaveResultsByteIdentical) {
  const io::Project project = test_project(13);
  std::atomic<bool> cancel{false};  // never raised
  for (const Heuristic h : {Heuristic::Enumeration, Heuristic::Iterative}) {
    for (const int threads : {1, 2}) {
      if (h == Heuristic::Iterative && threads > 1) continue;
      SearchOptions plain;
      plain.heuristic = h;
      plain.threads = threads;
      SearchOptions armed = plain;
      armed.cancel = &cancel;
      armed.deadline =
          std::chrono::steady_clock::now() + std::chrono::hours(24);
      const SearchResult a = run(project, plain);
      const SearchResult b = run(project, armed);
      EXPECT_FALSE(b.cancelled);
      EXPECT_EQ(serve::render_search_result(a).dump(),
                serve::render_search_result(b).dump());
    }
  }
}

TEST(SearchCancel, ParallelEnumerationHonorsCancelWithoutCrashing) {
  const io::Project project = wide_project();
  std::atomic<bool> cancel{false};
  CancelAfter observer(cancel, 2);
  SearchOptions options;
  options.heuristic = Heuristic::Enumeration;
  options.threads = 4;
  options.bound_pruning = false;
  options.cancel = &cancel;
  options.observer = &observer;
  const SearchResult result = run(project, options);
  // The flag is raised from the in-order merge; with several workers the
  // whole (small) space may already be evaluated by then, in which case
  // the search legitimately completes. Either way: valid result, no crash.
  if (!result.cancelled) {
    SearchOptions plain = options;
    plain.cancel = nullptr;
    plain.observer = nullptr;
    EXPECT_EQ(serve::render_search_result(result).dump(),
              serve::render_search_result(run(project, plain)).dump());
  }
  for (const core::GlobalDesign& design : result.designs) {
    EXPECT_TRUE(design.integration.feasible);
  }
}

}  // namespace
}  // namespace chop
