// Tests for the incremental evaluation pipeline: EvalDelta application,
// DeltaImpact classification, revision tracking, and the contract that
// apply()+research() is byte-identical (through the serve rendering,
// counters included) to a cold session built at the same state.
#include "core/eval/eval_delta.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chip/mosis_packages.hpp"
#include "core/integration.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace chop::core {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

ChopSession make_session(int nparts,
                         chip::ChipPackage pkg = chip::mosis_package_84()) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), pkg});
  }
  Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1
          ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
          : (nparts == 2 ? dfg::ar_two_way_cut(ar) : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(library(), std::move(pt), config);
}

std::string rendered(const SearchResult& r) {
  return serve::render_search_result(r).dump();
}

std::uint64_t counter(const std::string& name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

/// A node that can legally migrate to the next partition, or kNoNode.
dfg::NodeId find_movable(const Partitioning& pt, int* dest_out) {
  const auto& partitions = pt.partitions();
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    if (partitions[p].members.size() < 2) continue;
    const int dest = static_cast<int>((p + 1) % partitions.size());
    for (const dfg::NodeId op : partitions[p].members) {
      Partitioning probe = pt;
      try {
        probe.move_operation(op, dest);
        probe.validate();
      } catch (const Error&) {
        continue;
      }
      *dest_out = dest;
      return op;
    }
  }
  return dfg::kNoNode;
}

// ---- DeltaImpact classification ----

TEST(EvalDelta, NoopDeltaReportsNoopAndSkipsAllWork) {
  ChopSession s = make_session(2);
  s.predict_partitions();
  const SearchOptions opt;
  const SearchResult base = s.research(opt);

  // Re-stating the current constraints changes no fingerprint.
  const DeltaImpact impact =
      s.apply(EvalDelta::set_constraints(s.config().constraints));
  EXPECT_TRUE(impact.noop);
  EXPECT_EQ(impact.dirty_count(), 0u);
  EXPECT_EQ(impact.old_fingerprint, impact.new_fingerprint);

  const std::uint64_t attempts = counter("integration.attempts");
  const std::uint64_t noops = counter("eval.delta_noop_research");
  const SearchResult again = s.research(opt);
  EXPECT_EQ(counter("integration.attempts"), attempts)
      << "a no-op research must not integrate anything";
  EXPECT_EQ(counter("eval.delta_noop_research"), noops + 1);
  EXPECT_EQ(rendered(base), rendered(again));
}

TEST(EvalDelta, ConstraintChangeIsConstraintsOnly) {
  ChopSession s = make_session(2);
  DesignConstraints c = s.config().constraints;
  c.performance_ns = 27000.0;
  const DeltaImpact impact = s.apply(EvalDelta::set_constraints(c));
  EXPECT_FALSE(impact.noop);
  EXPECT_TRUE(impact.constraints_only);
  EXPECT_NE(impact.old_fingerprint, impact.new_fingerprint);
}

TEST(EvalDelta, ClockChangeDirtiesEveryPartition) {
  ChopSession s = make_session(3);
  bad::ClockSpec clocks = s.config().clocks;
  clocks.main_clock = 330.0;
  const DeltaImpact impact =
      s.apply(EvalDelta::set_clocking(s.config().style, clocks));
  EXPECT_FALSE(impact.noop);
  EXPECT_FALSE(impact.constraints_only);
  ASSERT_EQ(impact.dirty_partitions.size(), 3u);
  EXPECT_EQ(impact.dirty_count(), 3u);
}

TEST(EvalDelta, MoveDirtiesOnlyTheTouchedPartitions) {
  ChopSession s = make_session(3);
  int dest = 0;
  const dfg::NodeId op = find_movable(s.partitioning(), &dest);
  ASSERT_NE(op, dfg::kNoNode);
  const DeltaImpact impact = s.apply(EvalDelta::move_operation(op, dest));
  EXPECT_FALSE(impact.noop);
  ASSERT_EQ(impact.dirty_partitions.size(), 3u);
  EXPECT_EQ(impact.dirty_count(), 2u)
      << "a migration touches exactly source and destination";
}

TEST(EvalDelta, RevisionsIncreaseMonotonically) {
  ChopSession s = make_session(2);
  EXPECT_EQ(s.revision(), 0u);
  const DeltaImpact first =
      s.apply(EvalDelta::set_constraints(s.config().constraints));
  EXPECT_EQ(first.revision, 1u);
  EXPECT_EQ(s.revision(), 1u);
  DesignConstraints c = s.config().constraints;
  c.performance_ns = 27000.0;
  const DeltaImpact second = s.apply(EvalDelta::set_constraints(c));
  EXPECT_EQ(second.revision, 2u);
}

TEST(EvalDelta, InvalidTargetsThrow) {
  ChopSession s = make_session(2);
  EXPECT_THROW(
      s.apply(EvalDelta::replace_chip_package(9, chip::mosis_package_64())),
      Error);
  EXPECT_THROW(s.apply(EvalDelta::move_operation(dfg::NodeId{99999}, 0)),
               Error);
  EXPECT_THROW(s.apply(EvalDelta::move_operation(dfg::NodeId{0}, 7)), Error);
}

// ---- the equality oracle: incremental must be byte-identical to cold ----

TEST(EvalDelta, EachDeltaKindMatchesColdResearch) {
  struct Case {
    std::string name;
    EvalDelta delta;
  };
  ChopSession probe = make_session(2);
  DesignConstraints tighter = probe.config().constraints;
  tighter.performance_ns = 27000.0;
  bad::ClockSpec slower = probe.config().clocks;
  slower.main_clock = 330.0;
  const std::vector<Case> cases = {
      {"replace_package",
       EvalDelta::replace_chip_package(0, chip::mosis_package_64())},
      {"set_clocking", EvalDelta::set_clocking(probe.config().style, slower)},
      {"set_constraints", EvalDelta::set_constraints(tighter)},
  };
  for (const Case& c : cases) {
    ChopSession warm = make_session(2);
    warm.predict_partitions();
    const SearchOptions opt;
    (void)warm.research(opt);
    warm.apply(c.delta);
    const SearchResult incremental = warm.research(opt);

    ChopSession cold = make_session(2);
    cold.apply(c.delta);
    cold.predict_partitions();
    const SearchResult reference = cold.search(opt);
    EXPECT_EQ(rendered(incremental), rendered(reference)) << c.name;
  }
}

TEST(EvalDelta, StackedDeltasAcrossRevisionsMatchCold) {
  ChopSession warm = make_session(2);
  warm.predict_partitions();
  const SearchOptions opt;
  (void)warm.research(opt);

  DesignConstraints tighter = warm.config().constraints;
  tighter.performance_ns = 27000.0;
  const EvalDelta first = EvalDelta::set_constraints(tighter);
  const EvalDelta second =
      EvalDelta::replace_chip_package(0, chip::mosis_package_64());

  warm.apply(first);
  (void)warm.research(opt);
  warm.apply(second);
  const SearchResult incremental = warm.research(opt);
  EXPECT_EQ(warm.revision(), 2u);

  ChopSession cold = make_session(2);
  cold.apply(first);
  cold.apply(second);
  cold.predict_partitions();
  const SearchResult reference = cold.search(opt);
  EXPECT_EQ(rendered(incremental), rendered(reference));
}

TEST(EvalDelta, RoundTripRestoresTheBaseResult) {
  ChopSession s = make_session(2);
  s.predict_partitions();
  const SearchOptions opt;
  const SearchResult base = s.research(opt);

  DesignConstraints tighter = s.config().constraints;
  tighter.performance_ns = 27000.0;
  s.apply(EvalDelta::set_constraints(tighter));
  (void)s.research(opt);
  s.apply(EvalDelta::set_constraints({30000.0, 30000.0}));

  const std::uint64_t attempts = counter("integration.attempts");
  const SearchResult restored = s.research(opt);
  EXPECT_EQ(rendered(base), rendered(restored));
  EXPECT_EQ(counter("integration.attempts"), attempts)
      << "reverting to an already-evaluated state must hit the caches";
}

// ---- cache reuse across revisions ----

TEST(EvalDelta, ConstraintsOnlyDeltaReusesRawPredictions) {
  ChopSession s = make_session(2);
  s.predict_partitions();
  const SearchOptions opt;
  (void)s.research(opt);

  // Tighten the delay budget, not performance: the performance budget
  // feeds the pipelined-II enumeration cap, so tightening it legitimately
  // re-runs BAD. A delay change leaves the prediction environment intact.
  DesignConstraints tighter = s.config().constraints;
  tighter.delay_ns = 27000.0;
  s.apply(EvalDelta::set_constraints(tighter));
  const std::uint64_t reused = counter("eval.delta_predict_reused");
  const std::uint64_t core_hits = counter("eval.delta_core_hits");
  (void)s.research(opt);
  EXPECT_EQ(counter("eval.delta_predict_reused"), reused + 2)
      << "a delay budget change must not re-run BAD";
  EXPECT_GT(counter("eval.delta_core_hits"), core_hits)
      << "memoized integration cores stay valid under a constraints-only "
         "delta";
}

TEST(EvalDelta, ClockDeltaRecomputesEveryPrediction) {
  ChopSession s = make_session(2);
  s.predict_partitions();
  const SearchOptions opt;
  (void)s.research(opt);

  bad::ClockSpec slower = s.config().clocks;
  slower.main_clock = 330.0;
  s.apply(EvalDelta::set_clocking(s.config().style, slower));
  const std::uint64_t recomputed = counter("eval.delta_predict_recomputed");
  (void)s.research(opt);
  EXPECT_EQ(counter("eval.delta_predict_recomputed"), recomputed + 2)
      << "an all-dirty delta degenerates to the cold prediction path";
}

TEST(EvalDelta, BoundColumnsReusedWhenRevisited) {
  ChopSession s = make_session(2);
  s.predict_partitions();
  const SearchOptions opt;
  (void)s.research(opt);

  DesignConstraints tighter = s.config().constraints;
  tighter.performance_ns = 27000.0;
  s.apply(EvalDelta::set_constraints(tighter));
  (void)s.research(opt);
  s.apply(EvalDelta::set_constraints({30000.0, 30000.0}));
  // Back at the base state: its bound-table columns are still memoized
  // (research at base ran before), so nothing needs rebuilding — but the
  // round trip is served from the result cache without touching tables at
  // all. Re-ask at the tightened state after evicting the result key by
  // toggling once more: columns for that state were built above.
  const std::uint64_t reused = counter("eval.delta_bound_cols_reused");
  (void)s.research(opt);
  s.apply(EvalDelta::set_constraints(tighter));
  (void)s.research(opt);
  EXPECT_GE(counter("eval.delta_bound_cols_reused"), reused);
}

// ---- the core/verdict split ----

TEST(EvalDelta, IntegrateEqualsCoreThenVerdict) {
  ChopSession s = make_session(2);
  s.predict_partitions();
  const EvalContext ctx = s.make_eval_context();
  const auto& eligible = s.predictions().eligible;
  ASSERT_EQ(eligible.size(), 2u);
  ASSERT_FALSE(eligible[0].empty());
  ASSERT_FALSE(eligible[1].empty());
  // Walk a few combinations, not just the head of each list.
  for (std::size_t i = 0; i < eligible[0].size(); i += 3) {
    for (std::size_t j = 0; j < eligible[1].size(); j += 3) {
      const std::vector<const bad::DesignPrediction*> selection = {
          &eligible[0][i], &eligible[1][j]};
      const Cycles ii = combination_ii(selection);
      const IntegrationResult direct = integrate(ctx, selection, ii);
      const IntegrationResult split =
          apply_verdict(ctx, integrate_core(ctx, selection, ii));
      EXPECT_EQ(direct.feasible, split.feasible);
      EXPECT_EQ(direct.ii_main, split.ii_main);
      EXPECT_EQ(direct.system_delay_main, split.system_delay_main);
      EXPECT_EQ(direct.reason, split.reason);
      EXPECT_EQ(direct.violated_chips, split.violated_chips);
      EXPECT_EQ(direct.performance_ns, split.performance_ns);
      EXPECT_EQ(direct.delay_ns, split.delay_ns);
      EXPECT_EQ(direct.adjusted_clock_ns, split.adjusted_clock_ns);
      EXPECT_EQ(direct.system_power_mw, split.system_power_mw);
      ASSERT_EQ(direct.chip_area.size(), split.chip_area.size());
      for (std::size_t c = 0; c < direct.chip_area.size(); ++c) {
        EXPECT_EQ(direct.chip_area[c], split.chip_area[c]);
      }
    }
  }
}

}  // namespace
}  // namespace chop::core
