// Tests for the behavioral data flow graph IR: builders, structural
// validation, topological ordering, and the constant-input semantics.
#include "dfg/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace chop::dfg {
namespace {

Graph small_graph() {
  Graph g("small");
  const NodeId a = g.add_input("a", 16);
  const NodeId b = g.add_input("b", 16);
  const NodeId m = g.add_op(OpKind::Mul, 16, {a, b}, "m");
  const NodeId s = g.add_op(OpKind::Add, 16, {m, a}, "s");
  g.add_output("y", s);
  return g;
}

TEST(Graph, BuildsAndValidates) {
  Graph g = small_graph();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 5u);
}

TEST(Graph, CountsByKind) {
  Graph g = small_graph();
  EXPECT_EQ(g.count_of_kind(OpKind::Input), 2u);
  EXPECT_EQ(g.count_of_kind(OpKind::Mul), 1u);
  EXPECT_EQ(g.count_of_kind(OpKind::Add), 1u);
  EXPECT_EQ(g.count_of_kind(OpKind::Output), 1u);
  EXPECT_EQ(g.operation_count(), 2u);
}

TEST(Graph, NodesOfKind) {
  Graph g = small_graph();
  const auto muls = g.nodes_of_kind(OpKind::Mul);
  ASSERT_EQ(muls.size(), 1u);
  EXPECT_EQ(g.node(muls[0]).name, "m");
}

TEST(Graph, EdgesCarrySourceWidth) {
  Graph g("w");
  const NodeId a = g.add_input("a", 8);
  const NodeId b = g.add_input("b", 8);
  const NodeId m = g.add_op(OpKind::Mul, 24, {a, b});
  g.add_output("y", m);
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    EXPECT_EQ(edge.width, g.node(edge.src).width);
  }
}

TEST(Graph, FaninPreservesOperandOrder) {
  Graph g("ops");
  const NodeId a = g.add_input("a", 16);
  const NodeId b = g.add_input("b", 16);
  const NodeId s = g.add_op(OpKind::Sub, 16, {b, a});
  const auto& fanin = g.fanin(s);
  ASSERT_EQ(fanin.size(), 2u);
  EXPECT_EQ(g.edge(fanin[0]).src, b);
  EXPECT_EQ(g.edge(fanin[1]).src, a);
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  Graph g = small_graph();
  const auto order = g.topological_order();
  std::vector<int> pos(g.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    EXPECT_LT(pos[static_cast<std::size_t>(edge.src)],
              pos[static_cast<std::size_t>(edge.dst)]);
  }
}

TEST(Graph, ConstantInputsFlagged) {
  Graph g("c");
  const NodeId k = g.add_constant_input("k", 16);
  const NodeId x = g.add_input("x", 16);
  EXPECT_TRUE(g.node(k).constant);
  EXPECT_FALSE(g.node(x).constant);
}

TEST(Graph, TotalInputBitsExcludesConstants) {
  Graph g("c");
  const NodeId k = g.add_constant_input("k", 16);
  const NodeId x = g.add_input("x", 16);
  const NodeId m = g.add_op(OpKind::Mul, 16, {k, x});
  g.add_output("y", m);
  EXPECT_EQ(g.total_input_bits(), 16);
  EXPECT_EQ(g.total_output_bits(), 16);
}

TEST(Graph, MemoryOpsRequireBlock) {
  Graph g("m");
  EXPECT_THROW(g.add_mem_read(-1, 16), Error);
  const NodeId r = g.add_mem_read(0, 16, kNoNode, "rd");
  EXPECT_EQ(g.node(r).memory_block, 0);
  EXPECT_THROW(g.add_mem_write(-2, r), Error);
}

TEST(Graph, MemoryReadWithAddress) {
  Graph g("m");
  const NodeId a = g.add_input("addr", 8);
  const NodeId r = g.add_mem_read(1, 16, a);
  g.add_mem_write(2, r, a);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ValidateRejectsWrongArity) {
  Graph g("bad");
  const NodeId a = g.add_input("a", 16);
  // add_op enforces >=1 operand, so build a unary Add via the API and
  // expect validate to flag it.
  g.add_op(OpKind::Add, 16, {a});
  EXPECT_THROW(g.validate(), Error);
}

TEST(Graph, ValidateRejectsUnaryMul) {
  Graph g("bad");
  const NodeId a = g.add_input("a", 16);
  g.add_op(OpKind::Mul, 16, {a, a, a});
  EXPECT_THROW(g.validate(), Error);
}

TEST(Graph, SelectNeedsThreeOperands) {
  Graph g("sel");
  const NodeId c = g.add_input("c", 1);
  const NodeId a = g.add_input("a", 16);
  const NodeId b = g.add_input("b", 16);
  const NodeId s = g.add_op(OpKind::Select, 16, {c, a, b});
  g.add_output("y", s);
  EXPECT_NO_THROW(g.validate());

  Graph h("sel2");
  const NodeId p = h.add_input("p", 16);
  const NodeId q = h.add_input("q", 16);
  h.add_op(OpKind::Select, 16, {p, q});
  EXPECT_THROW(h.validate(), Error);
}

TEST(Graph, RejectsZeroWidth) {
  Graph g("z");
  EXPECT_THROW(g.add_input("a", 0), Error);
  const NodeId a = g.add_input("a", 16);
  EXPECT_THROW(g.add_op(OpKind::Add, 0, {a, a}), Error);
}

TEST(Graph, RejectsDedicatedKindsInAddOp) {
  Graph g("k");
  const NodeId a = g.add_input("a", 16);
  EXPECT_THROW(g.add_op(OpKind::Input, 16, {a}), Error);
  EXPECT_THROW(g.add_op(OpKind::MemRead, 16, {a}), Error);
}

TEST(Graph, NeedsFunctionalUnitClassification) {
  EXPECT_TRUE(needs_functional_unit(OpKind::Add));
  EXPECT_TRUE(needs_functional_unit(OpKind::Mul));
  EXPECT_TRUE(needs_functional_unit(OpKind::Div));
  EXPECT_TRUE(needs_functional_unit(OpKind::Compare));
  EXPECT_FALSE(needs_functional_unit(OpKind::Input));
  EXPECT_FALSE(needs_functional_unit(OpKind::Output));
  EXPECT_FALSE(needs_functional_unit(OpKind::Select));
  EXPECT_FALSE(needs_functional_unit(OpKind::MemRead));
}

TEST(Graph, KindNamesAreStable) {
  EXPECT_EQ(to_string(OpKind::Add), "add");
  EXPECT_EQ(to_string(OpKind::Mul), "mul");
  EXPECT_EQ(to_string(OpKind::MemWrite), "mem_write");
}

}  // namespace
}  // namespace chop::dfg
