// Concurrency stress for chop_serve, run under TSan in CI: M client
// threads hammer one ChopServer with N jobs each (two distinct projects,
// so the evaluator pool juggles two fingerprints), every result must be
// byte-identical to a direct single-process ChopSession run, and the
// shared evaluation cache must show cross-job hits. A second test mixes
// concurrent submits with concurrent cancels and an eventual drain —
// nothing may crash, deadlock, or leave a job non-terminal.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "testing/scenario.hpp"

namespace chop {
namespace {

io::Project stress_project(std::uint64_t seed) {
  testing::ScenarioKnobs knobs;
  knobs.seed = seed;
  knobs.normalize();
  return testing::build_scenario(knobs);
}

std::string direct_render(const io::Project& project,
                          const serve::JobOptions& job) {
  core::ChopSession session = project.make_session();
  session.predict_partitions();
  core::SearchOptions search;
  search.heuristic = job.heuristic;
  search.threads = job.threads;
  search.prune = !job.keep_all;
  search.bound_pruning = job.bound_pruning && !job.keep_all;
  search.max_trials = job.max_trials;
  return serve::render_search_result(session.search(search)).dump();
}

TEST(ServeStress, ConcurrentClientsGetByteIdenticalResults) {
  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 4;

  const io::Project projects[2] = {stress_project(7), stress_project(21)};
  serve::JobOptions job;
  job.heuristic = core::Heuristic::Enumeration;
  const std::string expected[2] = {direct_render(projects[0], job),
                                   direct_render(projects[1], job)};

  serve::ServerOptions options;
  options.workers = 4;
  options.queue_capacity = kClients * kJobsPerClient;
  serve::ChopServer server(options);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        const int which = (c + j) % 2;
        const serve::SubmitOutcome out = server.submit(projects[which], job);
        if (out.status != serve::SubmitStatus::Accepted) {
          failures.fetch_add(1);
          continue;
        }
        const serve::JobView view =
            server.view(out.id, /*wait_terminal=*/true);
        if (view.state != serve::JobState::Done) {
          failures.fetch_add(1);
          continue;
        }
        if (view.result_json != expected[which]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed,
            static_cast<std::uint64_t>(kClients * kJobsPerClient));
  // 32 jobs over 2 fingerprints: 30 reuses, and the warm cache must have
  // produced cross-job hits.
  EXPECT_EQ(stats.evaluator_pool.created, 2u);
  EXPECT_EQ(stats.evaluator_pool.reused,
            static_cast<std::uint64_t>(kClients * kJobsPerClient - 2));
  EXPECT_GT(stats.eval_cache.hits, 0u);
}

TEST(ServeStress, ConcurrentSubmitCancelShutdownNeverWedges) {
  const io::Project project = stress_project(11);
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  serve::ChopServer server(options);

  constexpr int kJobs = 32;
  std::mutex ids_mu;
  std::vector<std::string> ids;        // accepted, guarded by ids_mu
  std::atomic<int> submitted_total{0};
  std::atomic<bool> submitters_done{false};

  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (;;) {
        const int slot = submitted_total.fetch_add(1);
        if (slot >= kJobs) return;
        serve::JobOptions job;
        job.priority = slot % 3;
        const serve::SubmitOutcome out = server.submit(project, job);
        if (out.status == serve::SubmitStatus::Accepted) {
          std::lock_guard<std::mutex> lock(ids_mu);
          ids.push_back(out.id);
        }
      }
    });
  }
  // Cancel racers: chase whatever ids have been accepted so far.
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 2; ++t) {
    cancellers.emplace_back([&, t] {
      std::size_t seen = 0;
      while (!submitters_done.load() || seen > 0) {
        std::vector<std::string> snapshot;
        {
          std::lock_guard<std::mutex> lock(ids_mu);
          snapshot = ids;
        }
        seen = 0;
        for (std::size_t i = t; i < snapshot.size(); i += 2) {
          server.cancel(snapshot[i]);
          ++seen;
        }
        if (submitters_done.load()) break;
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  submitters_done.store(true);
  for (std::thread& t : cancellers) t.join();

  server.shutdown(true);
  std::vector<std::string> accepted;
  {
    std::lock_guard<std::mutex> lock(ids_mu);
    accepted = ids;
  }
  for (const std::string& id : accepted) {
    const serve::JobView view = server.view(id);
    ASSERT_TRUE(view.found) << id;
    EXPECT_TRUE(is_terminal(view.state)) << id;
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace chop
