// Control constructs through the pipeline: Select nodes (the data-flow
// rendering of if/else, §2.2's "data flow graph (with added control
// constructs)") consume no functional unit — they synthesize to steering
// multiplexers — but must flow through scheduling, datapath estimation,
// partitioning and integration like any other operation.
#include <gtest/gtest.h>

#include "bad/predictor.hpp"
#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/analysis.hpp"
#include "library/experiment_library.hpp"

namespace chop {
namespace {

using dfg::OpKind;

/// max(|a*b|, c) flavoured kernel: products, a compare, and two selects.
struct SelectFixture {
  dfg::Graph graph{"select_kernel"};
  std::vector<dfg::NodeId> ops;

  SelectFixture() {
    const auto a = graph.add_input("a", 16);
    const auto b = graph.add_input("b", 16);
    const auto c = graph.add_input("c", 16);
    const auto m1 = graph.add_op(OpKind::Mul, 16, {a, b}, "m1");
    const auto m2 = graph.add_op(OpKind::Mul, 16, {b, c}, "m2");
    const auto cmp = graph.add_op(OpKind::Compare, 1, {m1, m2}, "cmp");
    const auto sel1 = graph.add_op(OpKind::Select, 16, {cmp, m1, m2}, "sel1");
    const auto add = graph.add_op(OpKind::Add, 16, {sel1, c}, "add");
    const auto sel2 = graph.add_op(OpKind::Select, 16, {cmp, add, sel1},
                                   "sel2");
    graph.add_output("y", sel2);
    graph.validate();
    ops = {m1, m2, cmp, sel1, add, sel2};
  }
};

const lib::ComponentLibrary& extended() {
  static const lib::ComponentLibrary lib = lib::dac91_extended_library();
  return lib;
}

TEST(SelectOps, ZeroLatencyInSchedules) {
  const SelectFixture f;
  const auto lat = dfg::unit_latencies(f.graph);
  for (dfg::NodeId id : f.graph.nodes_of_kind(OpKind::Select)) {
    EXPECT_EQ(lat[static_cast<std::size_t>(id)], 0);
  }
  // Depth counts only FU ops: mul -> cmp -> add = 3.
  EXPECT_EQ(dfg::operation_depth(f.graph), 3);
}

TEST(SelectOps, CountedAsSteeringMuxes) {
  const SelectFixture f;
  bad::PredictionRequest req;
  req.graph = &f.graph;
  req.library = &extended();
  req.style.clocking = bad::ClockingStyle::SingleCycle;
  req.clocks = {300.0, 10, 1};
  req.max_ii_dp = 10;
  bad::Predictor predictor;
  const auto preds = predictor.predict(req);
  ASSERT_FALSE(preds.empty());
  for (const auto& p : preds) {
    // At least the two 16-bit selects' worth of muxes beyond registers.
    EXPECT_GE(p.mux_count_likely, 32.0);
  }
}

TEST(SelectOps, PartitionableAndFeasible) {
  const SelectFixture f;
  core::Partitioning pt(f.graph, {{"c0", chip::mosis_package_84()},
                                  {"c1", chip::mosis_package_84()}});
  pt.add_partition("front", {f.ops[0], f.ops[1], f.ops[2]}, 0);
  pt.add_partition("back", {f.ops[3], f.ops[4], f.ops[5]}, 1);
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  core::ChopSession session(extended(), std::move(pt), config);
  session.predict_partitions();
  const core::SearchResult r = session.search({});
  EXPECT_FALSE(r.designs.empty());
}

TEST(SelectOps, SelectsMustBeAssignedToPartitions) {
  const SelectFixture f;
  core::Partitioning pt(f.graph, {{"c0", chip::mosis_package_84()}});
  // Leave sel2 out: validation must reject the partitioning.
  pt.add_partition("p", {f.ops[0], f.ops[1], f.ops[2], f.ops[3], f.ops[4]},
                   0);
  EXPECT_THROW(pt.validate(), Error);
}

TEST(SelectOps, CrossPartitionSelectValueTransfers) {
  const SelectFixture f;
  core::Partitioning pt(f.graph, {{"c0", chip::mosis_package_84()},
                                  {"c1", chip::mosis_package_84()}});
  pt.add_partition("front", {f.ops[0], f.ops[1], f.ops[2], f.ops[3]}, 0);
  pt.add_partition("back", {f.ops[4], f.ops[5]}, 1);
  pt.validate();
  const auto transfers = core::create_transfer_tasks(pt);
  // sel1's value (16b) and cmp's bit cross the cut.
  Bits inter_bits = 0;
  for (const auto& t : transfers) {
    if (t.kind == core::DataTransfer::Kind::Interpartition) {
      inter_bits += t.bits;
    }
  }
  EXPECT_EQ(inter_bits, 17);
}

}  // namespace
}  // namespace chop
