// QuantileSketch accuracy and determinism tests: rank error against exact
// percentiles on uniform/exponential/bimodal data, exactness below the
// buffer size, merge correctness, and the byte-identical repeatability
// the sketch's no-RNG compaction guarantees (the property that makes it
// safe under TSan and deterministic across daemon runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "obs/quantile.hpp"

namespace chop::obs {
namespace {

/// Exact percentile under the sketch's convention: the smallest value
/// whose cumulative count reaches ceil(q * n).
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::min(std::max<std::size_t>(rank, 1), values.size()) - 1];
}

/// Fraction of samples <= v: the rank the estimate actually lands on.
double rank_of(const std::vector<double>& values, double v) {
  std::size_t below = 0;
  for (double x : values) {
    if (x <= v) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(values.size());
}

void expect_rank_accurate(const std::vector<double>& values,
                          const QuantileSketch& sketch, double q,
                          double tolerance) {
  const double estimate = sketch.quantile(q);
  const double rank = rank_of(values, estimate);
  EXPECT_NEAR(rank, q, tolerance)
      << "q=" << q << " estimate=" << estimate << " landed on rank " << rank;
}

TEST(QuantileSketch, EmptyReturnsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_EQ(sketch.quantile(0.99), 0.0);
}

TEST(QuantileSketch, ExactBelowBufferSize) {
  QuantileSketch sketch;  // k = 512: no compaction below 512 samples
  std::vector<double> values;
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  for (int i = 0; i < 500; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    sketch.add(v);
  }
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(sketch.quantile(q), exact_quantile(values, q)) << "q=" << q;
  }
}

TEST(QuantileSketch, ExtremesAlwaysExact) {
  QuantileSketch sketch;
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(50.0, 10.0);
  double lo = 1e300;
  double hi = -1e300;
  for (int i = 0; i < 50000; ++i) {
    const double v = dist(rng);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sketch.add(v);
  }
  EXPECT_EQ(sketch.quantile(0.0), lo);
  EXPECT_EQ(sketch.quantile(1.0), hi);
  EXPECT_EQ(sketch.min(), lo);
  EXPECT_EQ(sketch.max(), hi);
}

TEST(QuantileSketch, UniformRankAccuracy) {
  QuantileSketch sketch;
  std::vector<double> values;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 100000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    sketch.add(v);
  }
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    expect_rank_accurate(values, sketch, q, 0.02);
  }
}

TEST(QuantileSketch, HeavyTailRankAccuracy) {
  // Exponential-ish latency shape: most mass near zero, long tail — the
  // distribution the log2-bucket histogram this sketch replaced could not
  // resolve (a p99 and p99.9 in the same bucket).
  QuantileSketch sketch;
  std::vector<double> values;
  std::mt19937 rng(7);
  std::exponential_distribution<double> dist(1.0);
  for (int i = 0; i < 100000; ++i) {
    const double v = dist(rng) * 10.0;
    values.push_back(v);
    sketch.add(v);
  }
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    expect_rank_accurate(values, sketch, q, 0.02);
  }
  // The tail quantiles must actually be distinct values.
  EXPECT_GT(sketch.quantile(0.999), sketch.quantile(0.99));
  EXPECT_GT(sketch.quantile(0.99), sketch.quantile(0.5));
}

TEST(QuantileSketch, BimodalRankAccuracy) {
  QuantileSketch sketch;
  std::vector<double> values;
  std::mt19937 rng(23);
  std::normal_distribution<double> fast(1.0, 0.1);
  std::normal_distribution<double> slow(100.0, 5.0);
  for (int i = 0; i < 60000; ++i) {
    const double v = (i % 10 == 0) ? slow(rng) : fast(rng);
    values.push_back(v);
    sketch.add(v);
  }
  for (double q : {0.5, 0.89, 0.95, 0.99}) {
    expect_rank_accurate(values, sketch, q, 0.02);
  }
}

TEST(QuantileSketch, DeterministicAcrossRuns) {
  // No RNG in compaction: identical input streams must produce identical
  // estimates, bit for bit.
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 1000.0);
  std::vector<double> stream;
  for (int i = 0; i < 20000; ++i) stream.push_back(dist(rng));

  QuantileSketch a;
  QuantileSketch b;
  for (double v : stream) a.add(v);
  for (double v : stream) b.add(v);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeMatchesCombinedStream) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> all;
  QuantileSketch left;
  QuantileSketch right;
  for (int i = 0; i < 30000; ++i) {
    const double v = dist(rng);
    all.push_back(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    expect_rank_accurate(all, left, q, 0.03);
  }
  EXPECT_EQ(left.quantile(0.0), exact_quantile(all, 0.0));
  EXPECT_EQ(left.quantile(1.0), exact_quantile(all, 1.0));
}

TEST(QuantileSketch, MergeEmptyIsNoOp) {
  QuantileSketch sketch;
  for (int i = 0; i < 1000; ++i) sketch.add(static_cast<double>(i));
  const double before = sketch.quantile(0.5);
  QuantileSketch empty;
  sketch.merge(empty);
  EXPECT_EQ(sketch.quantile(0.5), before);
  EXPECT_EQ(sketch.count(), 1000u);

  empty.merge(sketch);
  EXPECT_EQ(empty.count(), 1000u);
  EXPECT_EQ(empty.quantile(0.5), before);
}

TEST(QuantileSketch, IgnoresNaNAndResets) {
  QuantileSketch sketch;
  sketch.add(std::nan(""));
  EXPECT_EQ(sketch.count(), 0u);
  sketch.add(5.0);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.quantile(0.5), 5.0);
  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
}

TEST(QuantileSketch, MonotoneInQ) {
  QuantileSketch sketch;
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 25000; ++i) sketch.add(dist(rng));
  double prev = sketch.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = sketch.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

}  // namespace
}  // namespace chop::obs
