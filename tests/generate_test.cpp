// Tests for the multilevel partition-generation engine (src/gen): the
// coarsener's structural invariants, the generate portfolio's behavior,
// and — load-bearing for the whole subsystem — the determinism contract:
// byte-identical results at any thread count, including under adversarial
// scheduling. (Suite names match the CI TSan regex `Generate|Coarsen`.)
#include "gen/generate.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <sstream>

#include "baseline/partition_builders.hpp"
#include "chip/mosis_packages.hpp"
#include "core/eval/thread_pool.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/generator.hpp"
#include "gen/coarsen.hpp"
#include "library/experiment_library.hpp"

namespace chop::gen {
namespace {

dfg::BenchmarkGraph test_workload(std::uint64_t seed, int operations = 24,
                                  int depth = 6) {
  Rng rng(seed);
  dfg::RandomDagSpec spec;
  spec.operations = operations;
  spec.depth = depth;
  spec.extra_inputs = 6;
  return dfg::random_dag(rng, spec);
}

core::ChopConfig test_config() {
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {60000.0, 120000.0};
  return config;
}

std::vector<chip::ChipInstance> test_chips(int k) {
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < k; ++c) {
    chips.push_back({"c" + std::to_string(c), chip::mosis_package_84()});
  }
  return chips;
}

/// Full-content digest of a result; byte-equality across runs/threads is
/// the determinism contract.
std::string digest(const GenerateResult& r) {
  std::ostringstream os;
  os << r.starts_run << "|" << r.starts_killed << "|" << r.evaluations << "|"
     << r.gated << "|" << r.levels << "|" << r.coarsest_vertices << "|"
     << r.cancelled << "\n";
  for (const FrontierPoint& p : r.frontier) {
    os << p.ii << "," << p.delay << "," << p.area << "," << p.start << ":";
    for (const auto& part : p.members) {
      for (const dfg::NodeId id : part) os << id << " ";
      os << ";";
    }
    for (const std::size_t c : p.choice) os << c << " ";
    os << "\n";
  }
  for (const auto& part : r.members) {
    for (const dfg::NodeId id : part) os << id << " ";
    os << ";";
  }
  os << "\n";
  for (const std::string& line : r.log) os << line << "\n";
  return std::move(os).str();
}

// --- Coarsener invariants (satellite: coarsener tests) -----------------

TEST(Coarsen, MatchingIsValidPartitionOfVertices) {
  const dfg::BenchmarkGraph bg = test_workload(11, 32, 6);
  const CoarseGraph g =
      build_operation_graph(bg.graph, bg.all_operations());
  Rng rng(3);
  const std::vector<int> match = heavy_edge_matching(g, rng);
  ASSERT_EQ(match.size(), g.vertex_count());
  // Involution covering every vertex: groups of size one or two.
  for (std::size_t v = 0; v < match.size(); ++v) {
    const auto m = static_cast<std::size_t>(match[v]);
    ASSERT_LT(m, match.size());
    EXPECT_EQ(static_cast<std::size_t>(match[m]), v);
  }
  // Matched pairs must actually be neighbors.
  for (std::size_t v = 0; v < match.size(); ++v) {
    const auto m = static_cast<std::size_t>(match[v]);
    if (m == v) continue;
    bool adjacent = false;
    for (const auto& [u, w] : g.adjacency[v]) {
      (void)w;
      if (static_cast<std::size_t>(u) == m) adjacent = true;
    }
    EXPECT_TRUE(adjacent) << "matched non-neighbors " << v << "," << m;
  }
}

TEST(Coarsen, TransferWeightConservedLevelToLevel) {
  const dfg::BenchmarkGraph bg = test_workload(12, 48, 8);
  CoarsenOptions options;
  options.min_vertices = 4;
  const Hierarchy h = coarsen(bg.graph, bg.all_operations(), options);
  ASSERT_GE(h.level_count(), 1u);
  const Bits base_total =
      h.base.total_edge_bits() + h.base.total_internal_bits();
  int weight_total = std::accumulate(h.base.weight.begin(),
                                     h.base.weight.end(), 0);
  for (std::size_t l = 1; l <= h.level_count(); ++l) {
    const CoarseGraph& g = h.at(l);
    // Every bit of transfer traffic is either still an edge or folded
    // into some vertex's internal traffic — contraction never loses any.
    EXPECT_EQ(g.total_edge_bits() + g.total_internal_bits(), base_total)
        << "level " << l;
    EXPECT_EQ(std::accumulate(g.weight.begin(), g.weight.end(), 0),
              weight_total)
        << "level " << l;
    EXPECT_LT(g.vertex_count(), h.at(l - 1).vertex_count());
  }
}

TEST(Coarsen, ProjectionRoundTripsCutExactly) {
  const dfg::BenchmarkGraph bg = test_workload(13, 40, 5);
  CoarsenOptions options;
  options.min_vertices = 6;
  const Hierarchy h = coarsen(bg.graph, bg.all_operations(), options);
  ASSERT_GE(h.level_count(), 1u);
  const std::size_t top = h.level_count();
  // An arbitrary coarse 3-way cut...
  std::vector<int> coarse(h.coarsest().vertex_count());
  for (std::size_t v = 0; v < coarse.size(); ++v) {
    coarse[v] = static_cast<int>(v % 3);
  }
  // ...projects down with identical cut traffic at every level: cutting
  // between coarse vertices and cutting between their fine members is the
  // same set of spec values.
  const Bits coarse_cut = h.coarsest().cut_bits(coarse);
  std::vector<int> assignment = coarse;
  for (std::size_t l = top; l >= 1; --l) {
    assignment = h.project_one(l, assignment);
    EXPECT_EQ(h.at(l - 1).cut_bits(assignment), coarse_cut) << "level " << l;
  }
  EXPECT_EQ(assignment, h.project_to_base(top, coarse));
  // members_of inverts the assignment without losing an operation.
  const auto members = h.members_of(assignment, 3);
  std::set<dfg::NodeId> seen;
  for (const auto& part : members) {
    for (const dfg::NodeId id : part) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), h.ops.size());
}

TEST(Coarsen, DeterministicForSeed) {
  const dfg::BenchmarkGraph bg = test_workload(14, 32, 6);
  CoarsenOptions options;
  options.seed = 9;
  const Hierarchy a = coarsen(bg.graph, bg.all_operations(), options);
  const Hierarchy b = coarsen(bg.graph, bg.all_operations(), options);
  ASSERT_EQ(a.level_count(), b.level_count());
  for (std::size_t l = 0; l < a.level_count(); ++l) {
    EXPECT_EQ(a.levels[l].parent, b.levels[l].parent);
    EXPECT_EQ(a.levels[l].graph.adjacency, b.levels[l].graph.adjacency);
    EXPECT_EQ(a.levels[l].graph.weight, b.levels[l].graph.weight);
  }
}

// --- Portfolio behavior -------------------------------------------------

TEST(Generate, FindsFeasibleFrontierOnDiffeq) {
  // diffeq uses Sub/Compare ops, which only the extended library covers.
  const dfg::BenchmarkGraph bg = dfg::diffeq();
  static const lib::ComponentLibrary library =
      lib::dac91_extended_library();
  GenerateOptions options;
  options.num_starts = 3;
  const GenerateResult r = generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), options);
  EXPECT_TRUE(r.feasible());
  EXPECT_EQ(r.starts_run, 3u);
  EXPECT_GT(r.evaluations, 0u);
  ASSERT_FALSE(r.members.empty());
  // The result's search corresponds to the best cut and found designs.
  EXPECT_FALSE(r.search.designs.empty());
  // Frontier is sorted by (ii, delay, area) and non-dominated.
  for (std::size_t i = 1; i < r.frontier.size(); ++i) {
    const FrontierPoint& a = r.frontier[i - 1];
    const FrontierPoint& b = r.frontier[i];
    EXPECT_LE(a.ii, b.ii);
    const bool dominates = a.ii <= b.ii && a.delay <= b.delay &&
                           a.area <= b.area;
    EXPECT_FALSE(dominates) << "frontier point " << i << " dominated";
  }
}

TEST(Generate, DominatesOrEqualsLevelOrderBaseline) {
  const dfg::BenchmarkGraph bg = test_workload(21, 28, 7);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  const GenerateResult r = generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), {});
  ASSERT_TRUE(r.feasible());
  // Evaluate the plain level-order cut directly through the same pipeline.
  const auto baseline_members = baseline::level_order_partition(
      bg.graph, bg.graph.partitionable_operations(), 2);
  core::Partitioning pt(bg.graph, test_chips(2));
  for (std::size_t p = 0; p < baseline_members.size(); ++p) {
    pt.add_partition("P" + std::to_string(p + 1), baseline_members[p],
                     static_cast<int>(p));
  }
  core::ChopSession session(library, std::move(pt), test_config());
  session.predict_partitions();
  core::SearchOptions search;
  search.heuristic = core::Heuristic::Iterative;
  const core::SearchResult baseline = session.search(search);
  // Start 0 evaluates exactly this cut first, so every baseline design is
  // dominated-or-equaled by the returned frontier.
  for (const core::GlobalDesign& d : baseline.designs) {
    bool covered = false;
    for (const FrontierPoint& p : r.frontier) {
      if (p.ii <= d.integration.ii_main &&
          p.delay <= d.integration.system_delay_main) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "baseline design II=" << d.integration.ii_main
                         << " delay=" << d.integration.system_delay_main
                         << " not covered by the generated frontier";
  }
}

TEST(Generate, BudgetCapsEvaluationsPerStart) {
  const dfg::BenchmarkGraph bg = test_workload(22, 32, 6);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  GenerateOptions options;
  options.num_starts = 2;
  options.budget = 3;
  const GenerateResult r = generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), options);
  // Per-start budget of 3 plus the final authoritative re-evaluation.
  EXPECT_LE(r.evaluations, 2u * 3u + 1u);
}

TEST(Generate, CancelReturnsPartialResult) {
  const dfg::BenchmarkGraph bg = test_workload(23, 32, 6);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  std::atomic<bool> cancel{true};  // pre-cancelled: stops at first check
  GenerateOptions options;
  options.num_starts = 4;
  options.cancel = &cancel;
  const GenerateResult r = generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), options);
  EXPECT_TRUE(r.cancelled);
  ASSERT_FALSE(r.members.empty());  // still a valid (partial) answer
}

TEST(Generate, SharedEvaluatorGetsCrossStartHits) {
  const dfg::BenchmarkGraph bg = test_workload(24, 24, 6);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  core::CandidateEvaluator evaluator;
  GenerateOptions options;
  options.num_starts = 3;
  options.search.evaluator = &evaluator;
  const GenerateResult r = generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), options);
  ASSERT_TRUE(r.feasible());
  // The final re-evaluation of the winning cut replays integrations the
  // winning start just computed, so shared-cache hits are guaranteed.
  EXPECT_GT(evaluator.stats().hits, 0u);
}

// --- Determinism contract ----------------------------------------------

TEST(GenerateDeterminism, ByteIdenticalAcrossThreadCounts) {
  const dfg::BenchmarkGraph bg = test_workload(31, 28, 7);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  std::string reference;
  for (const int threads : {1, 2, 4, 8}) {
    GenerateOptions options;
    options.num_starts = 6;
    options.threads = threads;
    options.wave_size = 3;
    const GenerateResult r = generate_partitions(
        bg.graph, library, test_chips(3), {}, test_config(), options);
    const std::string d = digest(r);
    if (reference.empty()) {
      reference = d;
    } else {
      EXPECT_EQ(d, reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(GenerateDeterminism, ByteIdenticalOnExternalPool) {
  const dfg::BenchmarkGraph bg = test_workload(32, 24, 6);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  GenerateOptions serial;
  serial.num_starts = 4;
  const std::string reference = digest(generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), serial));
  core::ThreadPool pool(4);
  GenerateOptions pooled = serial;
  pooled.pool = &pool;
  pooled.threads = 4;
  EXPECT_EQ(digest(generate_partitions(bg.graph, library, test_chips(2), {},
                                       test_config(), pooled)),
            reference);
}

TEST(GenerateDeterminism, ByteIdenticalUnderAdversarialScheduling) {
  const dfg::BenchmarkGraph bg = test_workload(33, 24, 6);
  static const lib::ComponentLibrary library =
      lib::dac91_experiment_library();
  GenerateOptions options;
  options.num_starts = 6;
  options.wave_size = 3;
  options.threads = 4;
  const GenerateResult fair = generate_partitions(
      bg.graph, library, test_chips(2), {}, test_config(), options);
  const std::string reference = digest(fair);
  for (const std::uint64_t seed : {0xfeedu, 0xbeefu, 0xcafeu, 0xf00du}) {
    core::ThreadPool::set_scheduler_chaos_for_testing(seed);
    const GenerateResult chaotic = generate_partitions(
        bg.graph, library, test_chips(2), {}, test_config(), options);
    core::ThreadPool::set_scheduler_chaos_for_testing(0);
    EXPECT_EQ(digest(chaotic), reference) << "chaos seed " << seed;
  }
}

}  // namespace
}  // namespace chop::gen
