// Tests for resource-constrained list scheduling and Sehwa-style modulo
// (pipeline) scheduling, including property sweeps over random graphs.
#include "schedule/op_schedule.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dfg/benchmarks.hpp"
#include "dfg/generator.hpp"

namespace chop::sched {
namespace {

using dfg::OpKind;

/// Checks every precedence edge: consumer starts after producer finishes.
void expect_precedence_respected(const dfg::Graph& g,
                                 std::span<const Cycles> lat,
                                 const OpSchedule& s) {
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const dfg::Edge& edge = g.edge(static_cast<dfg::EdgeId>(e));
    const auto src = static_cast<std::size_t>(edge.src);
    const auto dst = static_cast<std::size_t>(edge.dst);
    EXPECT_GE(s.start[dst], s.start[src] + lat[src])
        << "edge " << edge.src << "->" << edge.dst;
  }
}

/// Checks per-cycle (and per-phase when ii > 0) resource usage.
void expect_resources_respected(const dfg::Graph& g,
                                std::span<const Cycles> lat,
                                const OpSchedule& s,
                                const ResourceLimits& limits, Cycles ii) {
  std::map<OpKind, std::map<Cycles, int>> usage;
  std::map<OpKind, std::map<Cycles, int>> phase_usage;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const dfg::Node& n = g.node(static_cast<dfg::NodeId>(i));
    if (!dfg::needs_functional_unit(n.kind) || lat[i] == 0) continue;
    for (Cycles c = s.start[i]; c < s.start[i] + lat[i]; ++c) {
      usage[n.kind][c]++;
    }
    if (ii > 0) {
      const Cycles span = std::min(lat[i], ii);
      for (Cycles j = 0; j < span; ++j) {
        phase_usage[n.kind][(s.start[i] + j) % ii]++;
      }
    }
  }
  for (const auto& [kind, per_cycle] : usage) {
    auto it = limits.fu.find(kind);
    if (it == limits.fu.end()) continue;
    for (const auto& [cycle, used] : per_cycle) {
      EXPECT_LE(used, it->second)
          << dfg::to_string(kind) << " oversubscribed at cycle " << cycle;
    }
  }
  for (const auto& [kind, per_phase] : phase_usage) {
    auto it = limits.fu.find(kind);
    if (it == limits.fu.end()) continue;
    for (const auto& [phase, used] : per_phase) {
      EXPECT_LE(used, it->second)
          << dfg::to_string(kind) << " modulo-oversubscribed, phase " << phase;
    }
  }
}

TEST(ListSchedule, SerialSingleUnit) {
  const dfg::BenchmarkGraph fir = dfg::fir16();
  const auto lat = dfg::unit_latencies(fir.graph);
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = 1;
  limits.fu[OpKind::Add] = 1;
  const OpSchedule s = list_schedule(fir.graph, lat, limits);
  ASSERT_TRUE(s.feasible);
  // 31 unit-latency ops on one mul + one add: length at least 16 (muls
  // serialized) and at most 31 (everything serialized).
  EXPECT_GE(s.length, 16);
  EXPECT_LE(s.length, 31);
  expect_precedence_respected(fir.graph, lat, s);
  expect_resources_respected(fir.graph, lat, s, limits, 0);
}

TEST(ListSchedule, UnlimitedResourcesReachAsapLength) {
  const dfg::BenchmarkGraph fir = dfg::fir16();
  const auto lat = dfg::unit_latencies(fir.graph);
  const OpSchedule s = list_schedule(fir.graph, lat, ResourceLimits{});
  EXPECT_EQ(s.length, 5);  // the critical path
}

TEST(ListSchedule, MoreUnitsNeverLengthen) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto lat = dfg::unit_latencies(ar.graph);
  Cycles prev = 1 << 20;
  for (int units = 1; units <= 8; ++units) {
    ResourceLimits limits;
    limits.fu[OpKind::Mul] = units;
    limits.fu[OpKind::Add] = units;
    const OpSchedule s = list_schedule(ar.graph, lat, limits);
    EXPECT_LE(s.length, prev) << units << " units lengthened the schedule";
    prev = s.length;
  }
}

TEST(ListSchedule, MultiCycleLatencyBlocksUnit) {
  // One multiplier with 10-cycle muls: two independent muls serialize.
  dfg::Graph g("mm");
  const auto a = g.add_input("a", 16);
  const auto b = g.add_input("b", 16);
  const auto m1 = g.add_op(OpKind::Mul, 16, {a, b});
  const auto m2 = g.add_op(OpKind::Mul, 16, {a, b});
  g.add_output("y1", m1);
  g.add_output("y2", m2);
  std::vector<Cycles> lat(g.node_count(), 0);
  lat[static_cast<std::size_t>(m1)] = 10;
  lat[static_cast<std::size_t>(m2)] = 10;
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = 1;
  const OpSchedule s = list_schedule(g, lat, limits);
  EXPECT_EQ(s.length, 20);
}

TEST(ListSchedule, MemoryPortContention) {
  dfg::Graph g("mem");
  const auto r1 = g.add_mem_read(0, 16, dfg::kNoNode, "r1");
  const auto r2 = g.add_mem_read(0, 16, dfg::kNoNode, "r2");
  const auto s1 = g.add_op(OpKind::Add, 16, {r1, r2});
  g.add_output("y", s1);
  std::vector<Cycles> lat(g.node_count(), 0);
  lat[static_cast<std::size_t>(r1)] = 1;
  lat[static_cast<std::size_t>(r2)] = 1;
  lat[static_cast<std::size_t>(s1)] = 1;
  ResourceLimits one_port;
  one_port.memory_ports[0] = 1;
  one_port.fu[OpKind::Add] = 1;
  EXPECT_EQ(list_schedule(g, lat, one_port).length, 3);
  ResourceLimits two_ports;
  two_ports.memory_ports[0] = 2;
  two_ports.fu[OpKind::Add] = 1;
  EXPECT_EQ(list_schedule(g, lat, two_ports).length, 2);
}

TEST(MinInitiationInterval, ResourceBound) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto lat = dfg::unit_latencies(ar.graph);
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = 4;
  limits.fu[OpKind::Add] = 3;
  // 16 muls / 4 = 4; 12 adds / 3 = 4.
  EXPECT_EQ(min_initiation_interval(ar.graph, lat, limits), 4);
  limits.fu[OpKind::Mul] = 3;
  EXPECT_EQ(min_initiation_interval(ar.graph, lat, limits), 6);
}

TEST(PipelineSchedule, AchievesMinIiOnArFilter) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto lat = dfg::unit_latencies(ar.graph);
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = 4;
  limits.fu[OpKind::Add] = 3;
  const Cycles ii = min_initiation_interval(ar.graph, lat, limits);
  const OpSchedule s = pipeline_schedule(ar.graph, lat, limits, ii);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.initiation_interval, ii);
  expect_precedence_respected(ar.graph, lat, s);
  expect_resources_respected(ar.graph, lat, s, limits, ii);
}

TEST(PipelineSchedule, InfeasibleBelowResourceBound) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto lat = dfg::unit_latencies(ar.graph);
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = 2;
  limits.fu[OpKind::Add] = 2;
  // min II = 8; ask for 4.
  const OpSchedule s = pipeline_schedule(ar.graph, lat, limits, 4);
  EXPECT_FALSE(s.feasible);
}

TEST(PipelineSchedule, RejectsNonpositiveIi) {
  const dfg::BenchmarkGraph fir = dfg::fir16();
  const auto lat = dfg::unit_latencies(fir.graph);
  EXPECT_THROW(pipeline_schedule(fir.graph, lat, ResourceLimits{}, 0), Error);
}

TEST(ListSchedule, RejectsWrongLatencySize) {
  const dfg::BenchmarkGraph fir = dfg::fir16();
  std::vector<Cycles> lat(3, 1);
  EXPECT_THROW(list_schedule(fir.graph, lat, ResourceLimits{}), Error);
}

// ---- property sweep over random graphs ----

struct SchedCase {
  int ops;
  int depth;
  int mul_units;
  int add_units;
  std::uint64_t seed;
};

class ScheduleProperty : public ::testing::TestWithParam<SchedCase> {};

TEST_P(ScheduleProperty, ListScheduleValid) {
  const SchedCase& p = GetParam();
  Rng rng(p.seed);
  dfg::RandomDagSpec spec;
  spec.operations = p.ops;
  spec.depth = p.depth;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, spec);
  const auto lat = dfg::unit_latencies(bg.graph);
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = p.mul_units;
  limits.fu[OpKind::Add] = p.add_units;
  const OpSchedule s = list_schedule(bg.graph, lat, limits);
  ASSERT_TRUE(s.feasible);
  EXPECT_GE(s.length, static_cast<Cycles>(p.depth));
  expect_precedence_respected(bg.graph, lat, s);
  expect_resources_respected(bg.graph, lat, s, limits, 0);
}

TEST_P(ScheduleProperty, PipelineScheduleValidAtFeasibleIi) {
  const SchedCase& p = GetParam();
  Rng rng(p.seed);
  dfg::RandomDagSpec spec;
  spec.operations = p.ops;
  spec.depth = p.depth;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, spec);
  const auto lat = dfg::unit_latencies(bg.graph);
  ResourceLimits limits;
  limits.fu[OpKind::Mul] = p.mul_units;
  limits.fu[OpKind::Add] = p.add_units;
  const Cycles min_ii = min_initiation_interval(bg.graph, lat, limits);
  for (Cycles ii = min_ii; ii <= min_ii + 2; ++ii) {
    const OpSchedule s = pipeline_schedule(bg.graph, lat, limits, ii);
    if (!s.feasible) continue;  // greedy modulo scheduling may miss min II
    expect_precedence_respected(bg.graph, lat, s);
    expect_resources_respected(bg.graph, lat, s, limits, ii);
  }
  // Far above the bound the schedule must exist.
  const OpSchedule relaxed = pipeline_schedule(
      bg.graph, lat, limits, min_ii + static_cast<Cycles>(p.ops));
  EXPECT_TRUE(relaxed.feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleProperty,
    ::testing::Values(SchedCase{8, 2, 1, 1, 11}, SchedCase{16, 4, 2, 2, 12},
                      SchedCase{24, 6, 2, 3, 13}, SchedCase{32, 4, 4, 2, 14},
                      SchedCase{48, 8, 3, 3, 15}, SchedCase{64, 8, 4, 4, 16},
                      SchedCase{20, 10, 1, 2, 17},
                      SchedCase{40, 5, 8, 8, 18}));

}  // namespace
}  // namespace chop::sched
