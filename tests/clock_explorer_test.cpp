// Tests for the clock/style exploration advisor.
#include "core/clock_explorer.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

ChopSession ar_session() {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, {{"c0", chip::mosis_package_84()},
                             {"c1", chip::mosis_package_84()}});
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(library(), std::move(pt), config);
}

TEST(ClockCandidate, LabelIsReadable) {
  ClockCandidate c;
  c.style.clocking = bad::ClockingStyle::MultiCycle;
  c.clocks = {250.0, 2, 1};
  EXPECT_EQ(c.label(), "multi-cycle 250ns x2/x1");
  c.style.allow_pipelining = false;
  EXPECT_NE(c.label().find("nopipe"), std::string::npos);
}

TEST(ClockExplorer, DefaultCandidatesCoverBothExperiments) {
  const auto candidates = default_clock_candidates(300.0);
  ASSERT_GE(candidates.size(), 4u);
  bool has_exp1 = false, has_exp2 = false;
  for (const ClockCandidate& c : candidates) {
    if (c.style.clocking == bad::ClockingStyle::SingleCycle &&
        c.clocks.datapath_multiplier == 10) {
      has_exp1 = true;
    }
    if (c.style.clocking == bad::ClockingStyle::MultiCycle &&
        c.clocks.datapath_multiplier == 1) {
      has_exp2 = true;
    }
  }
  EXPECT_TRUE(has_exp1);
  EXPECT_TRUE(has_exp2);
}

TEST(ClockExplorer, SweepsAllCandidates) {
  ChopSession session = ar_session();
  const auto candidates = default_clock_candidates(300.0);
  const ClockExplorationResult r = explore_clocks(session, candidates);
  EXPECT_EQ(r.points.size(), candidates.size());
  ASSERT_NE(r.best(), nullptr);
  // The session is left on the winning candidate, ready for search.
  EXPECT_EQ(session.config().clocks.datapath_multiplier,
            r.best()->candidate.clocks.datapath_multiplier);
  EXPECT_NO_THROW(session.search({}));
}

TEST(ClockExplorer, MultiCycleWinsOnAbsolutePerformance) {
  // The paper's §3.2 claim: the faster effective datapath clock of the
  // multi-cycle style yields better absolute performance.
  ChopSession session = ar_session();
  const ClockExplorationResult r =
      explore_clocks(session, default_clock_candidates(300.0));
  ASSERT_NE(r.best(), nullptr);
  EXPECT_EQ(r.best()->candidate.style.clocking,
            bad::ClockingStyle::MultiCycle);
}

TEST(ClockExplorer, FasterDatapathClockMoreDesignPossibilities) {
  // §3.2: "The faster the data path clock, the more design possibilities
  // exist for a given set of design constraints." Comparable points: the
  // coarse experiment-1 clocking vs the fine multi-cycle clockings (the
  // single-cycle style at intermediate multipliers also loses module
  // *eligibility*, which cuts the other way and is tested separately in
  // bad_models_test).
  ChopSession session = ar_session();
  std::vector<ClockCandidate> candidates(3);
  candidates[0].style.clocking = bad::ClockingStyle::SingleCycle;
  candidates[0].clocks = {300.0, 10, 1};  // coarse: 3000 ns datapath steps
  candidates[1].style.clocking = bad::ClockingStyle::MultiCycle;
  candidates[1].clocks = {300.0, 2, 1};   // finer: 600 ns steps
  candidates[2].style.clocking = bad::ClockingStyle::MultiCycle;
  candidates[2].clocks = {300.0, 1, 1};   // finest: 300 ns steps
  const ClockExplorationResult r = explore_clocks(session, candidates);
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_LT(r.points[0].predictions, r.points[1].predictions);
  EXPECT_LT(r.points[1].predictions, r.points[2].predictions);
}

TEST(ClockExplorer, RejectsEmptyCandidateList) {
  ChopSession session = ar_session();
  EXPECT_THROW(explore_clocks(session, {}), Error);
}

TEST(ClockExplorer, InfeasibleSweepReportsNoBest) {
  ChopSession session = ar_session();
  session.set_constraints({10.0, 10.0});  // nothing meets 10 ns
  const ClockExplorationResult r =
      explore_clocks(session, default_clock_candidates(300.0));
  EXPECT_EQ(r.best(), nullptr);
  for (const ClockPoint& p : r.points) EXPECT_FALSE(p.feasible);
}

TEST(Session, SetClockingInvalidatesPredictions) {
  ChopSession session = ar_session();
  session.predict_partitions();
  bad::ArchitectureStyle style;
  style.clocking = bad::ClockingStyle::MultiCycle;
  session.set_clocking(style, {300.0, 1, 1});
  EXPECT_THROW(session.search({}), Error);
  session.predict_partitions();
  EXPECT_NO_THROW(session.search({}));
}

}  // namespace
}  // namespace chop::core
