// Compile-and-link check for the umbrella header: the whole public API in
// one translation unit.
#include "chop/chop.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EverythingLinks) {
  const chop::dfg::BenchmarkGraph fir = chop::dfg::fir16();
  EXPECT_EQ(fir.graph.operation_count(), 31u);
  const chop::lib::ComponentLibrary lib = chop::lib::dac91_experiment_library();
  EXPECT_FALSE(lib.modules().empty());
  EXPECT_EQ(chop::chip::mosis_package_64().pin_count, 64);
}
