// Tests for register-demand estimation from schedules, including the
// pipelined modulo-folding behaviour.
#include "schedule/register_demand.hpp"

#include <gtest/gtest.h>

#include "dfg/analysis.hpp"
#include "dfg/benchmarks.hpp"

namespace chop::sched {
namespace {

using dfg::OpKind;

TEST(RegisterDemand, ChainHoldsOneValuePerBoundary) {
  // in -> a -> b -> c -> out, all 16-bit: at any boundary exactly one
  // intermediate value is alive (the output value is held one cycle).
  dfg::Graph g("chain");
  dfg::NodeId prev = g.add_input("in", 16);
  for (int i = 0; i < 3; ++i) {
    prev = g.add_op(i % 2 ? OpKind::Mul : OpKind::Add, 16, {prev, prev});
  }
  g.add_output("y", prev);
  const auto lat = dfg::unit_latencies(g);
  const OpSchedule s = list_schedule(g, lat, ResourceLimits{});
  EXPECT_EQ(register_demand(g, lat, s), 16);
}

TEST(RegisterDemand, InputsAreExcluded) {
  // A single op consuming two inputs: no intermediate values are alive
  // across boundaries except the op result in its handoff cycle.
  dfg::Graph g("io");
  const auto a = g.add_input("a", 16);
  const auto b = g.add_input("b", 16);
  const auto m = g.add_op(OpKind::Mul, 16, {a, b});
  g.add_output("y", m);
  const auto lat = dfg::unit_latencies(g);
  const OpSchedule s = list_schedule(g, lat, ResourceLimits{});
  EXPECT_EQ(register_demand(g, lat, s), 16);  // the output handoff only
}

TEST(RegisterDemand, ParallelValuesAccumulate) {
  // Four independent muls feeding a 3-add tree: after the mul step all
  // four products are alive.
  dfg::Graph g("par");
  std::vector<dfg::NodeId> prods;
  for (int i = 0; i < 4; ++i) {
    const auto x = g.add_input("x" + std::to_string(i), 16);
    prods.push_back(g.add_op(OpKind::Mul, 16, {x, x}));
  }
  const auto s1 = g.add_op(OpKind::Add, 16, {prods[0], prods[1]});
  const auto s2 = g.add_op(OpKind::Add, 16, {prods[2], prods[3]});
  const auto s3 = g.add_op(OpKind::Add, 16, {s1, s2});
  g.add_output("y", s3);
  const auto lat = dfg::unit_latencies(g);
  const OpSchedule sched = list_schedule(g, lat, ResourceLimits{});
  EXPECT_GE(register_demand(g, lat, sched), 64);
}

TEST(RegisterDemand, LongLifetimeDominates) {
  // A value produced early and consumed late stays alive throughout.
  dfg::Graph g("long");
  const auto in = g.add_input("in", 32);
  const auto early = g.add_op(OpKind::Mul, 32, {in, in}, "early");
  dfg::NodeId chain = g.add_op(OpKind::Add, 32, {in, in});
  for (int i = 0; i < 4; ++i) chain = g.add_op(OpKind::Add, 32, {chain, chain});
  const auto last = g.add_op(OpKind::Add, 32, {early, chain});
  g.add_output("y", last);
  const auto lat = dfg::unit_latencies(g);
  ResourceLimits limits;
  limits.fu[OpKind::Add] = 1;
  limits.fu[OpKind::Mul] = 1;
  const OpSchedule s = list_schedule(g, lat, limits);
  // `early` is alive from cycle 1 to the last add: every boundary carries
  // at least its 32 bits.
  EXPECT_GE(register_demand(g, lat, s), 32);
}

TEST(RegisterDemand, PipelinedFoldingStacksIterations) {
  // Serial chain of 4 ops pipelined at II=1: all intermediate values of 4
  // concurrent iterations are alive at the single phase -> demand roughly
  // 4x the nonpipelined single-boundary demand.
  dfg::Graph g("pipe");
  dfg::NodeId prev = g.add_input("in", 16);
  std::vector<dfg::NodeId> ops;
  for (int i = 0; i < 4; ++i) {
    prev = g.add_op(OpKind::Add, 16, {prev, prev});
    ops.push_back(prev);
  }
  g.add_output("y", prev);
  const auto lat = dfg::unit_latencies(g);
  const OpSchedule nonpipe = list_schedule(g, lat, ResourceLimits{});
  const Bits base = register_demand(g, lat, nonpipe);
  ResourceLimits four_adders;
  four_adders.fu[OpKind::Add] = 4;
  const OpSchedule pipe = pipeline_schedule(g, lat, four_adders, 1);
  ASSERT_TRUE(pipe.feasible);
  const Bits folded = register_demand(g, lat, pipe);
  EXPECT_GT(folded, base);
  EXPECT_EQ(folded, 64);  // 4 values x 16 bits at the lone phase
}

TEST(RegisterDemand, RejectsMismatchedInputs) {
  const dfg::BenchmarkGraph fir = dfg::fir16();
  const auto lat = dfg::unit_latencies(fir.graph);
  OpSchedule s;
  s.start.assign(3, 0);
  EXPECT_THROW(register_demand(fir.graph, lat, s), Error);
}

TEST(RegisterDemand, ArFilterSerialVsParallel) {
  // More parallel schedules retire values faster but hold more of them;
  // the estimate must stay in a sane band either way.
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto lat = dfg::unit_latencies(ar.graph);
  for (int units : {1, 2, 4}) {
    ResourceLimits limits;
    limits.fu[OpKind::Mul] = units;
    limits.fu[OpKind::Add] = units;
    const OpSchedule s = list_schedule(ar.graph, lat, limits);
    const Bits demand = register_demand(ar.graph, lat, s);
    EXPECT_GE(demand, 16);
    EXPECT_LE(demand, 16 * 28);
  }
}

}  // namespace
}  // namespace chop::sched
