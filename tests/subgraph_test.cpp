// Tests for induced-subgraph extraction: boundary synthesis, cut
// accounting, constants, memory ops, and error handling.
#include "dfg/subgraph.hpp"

#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"

namespace chop::dfg {
namespace {

// in1, in2 -> m1 = in1*in2 -> a1 = m1+in1 -> a2 = a1+m1 -> out
Graph diamond() {
  Graph g("diamond");
  const NodeId i1 = g.add_input("i1", 16);
  const NodeId i2 = g.add_input("i2", 16);
  const NodeId m1 = g.add_op(OpKind::Mul, 16, {i1, i2}, "m1");
  const NodeId a1 = g.add_op(OpKind::Add, 16, {m1, i1}, "a1");
  const NodeId a2 = g.add_op(OpKind::Add, 16, {a1, m1}, "a2");
  g.add_output("y", a2);
  return g;
}

TEST(Subgraph, WholeGraphKeepsOperations) {
  Graph g = diamond();
  const std::vector<NodeId> ops = {2, 3, 4};  // m1, a1, a2
  const Subgraph sub = induced_subgraph(g, ops);
  EXPECT_EQ(sub.graph.count_of_kind(OpKind::Mul), 1u);
  EXPECT_EQ(sub.graph.count_of_kind(OpKind::Add), 2u);
  // Two distinct external inputs (i1, i2), one exported output (a2).
  EXPECT_EQ(sub.graph.count_of_kind(OpKind::Input), 2u);
  EXPECT_EQ(sub.graph.count_of_kind(OpKind::Output), 1u);
  EXPECT_EQ(sub.incoming_bits, 32);
  EXPECT_EQ(sub.outgoing_bits, 16);
}

TEST(Subgraph, CutThroughMiddle) {
  Graph g = diamond();
  // Only m1 in the partition: exports one value consumed twice outside.
  const std::vector<NodeId> ops = {2};
  const Subgraph sub = induced_subgraph(g, ops);
  EXPECT_EQ(sub.outgoing_bits, 16);         // one distinct value
  EXPECT_EQ(sub.outgoing_cut.size(), 2u);   // crossing two parent edges
  EXPECT_EQ(sub.incoming_bits, 32);
}

TEST(Subgraph, DownstreamPartitionImportsOnce) {
  Graph g = diamond();
  // a1 and a2: import m1 (once, though consumed twice) and i1.
  const std::vector<NodeId> ops = {3, 4};
  const Subgraph sub = induced_subgraph(g, ops);
  EXPECT_EQ(sub.graph.count_of_kind(OpKind::Input), 2u);  // m1 value + i1
  EXPECT_EQ(sub.incoming_bits, 32);
  EXPECT_EQ(sub.incoming_cut.size(), 3u);  // three parent edges enter
}

TEST(Subgraph, MappingRoundTrips) {
  Graph g = diamond();
  const std::vector<NodeId> ops = {2, 3};
  const Subgraph sub = induced_subgraph(g, ops);
  for (NodeId parent : ops) {
    const NodeId local = sub.from_parent[static_cast<std::size_t>(parent)];
    ASSERT_NE(local, kNoNode);
    EXPECT_EQ(sub.to_parent[static_cast<std::size_t>(local)], parent);
  }
}

TEST(Subgraph, ConstantInputsStayConstant) {
  Graph g("c");
  const NodeId k = g.add_constant_input("k", 16);
  const NodeId x = g.add_input("x", 16);
  const NodeId m = g.add_op(OpKind::Mul, 16, {k, x}, "m");
  g.add_output("y", m);
  const Subgraph sub = induced_subgraph(g, std::vector<NodeId>{m});
  int constants = 0;
  for (std::size_t i = 0; i < sub.graph.node_count(); ++i) {
    const Node& n = sub.graph.node(static_cast<NodeId>(i));
    if (n.kind == OpKind::Input && n.constant) ++constants;
  }
  EXPECT_EQ(constants, 1);
  // Constants do not count as transferred data.
  EXPECT_EQ(sub.incoming_bits, 16);
}

TEST(Subgraph, MemoryOpsKeepTheirBlocks) {
  Graph g("m");
  const NodeId r = g.add_mem_read(3, 16, kNoNode, "rd");
  const NodeId a = g.add_op(OpKind::Add, 16, {r, r}, "a");
  const NodeId w = g.add_mem_write(4, a, kNoNode, "wr");
  g.add_output("y", a);
  const Subgraph sub = induced_subgraph(g, std::vector<NodeId>{r, a, w});
  bool saw_read = false, saw_write = false;
  for (std::size_t i = 0; i < sub.graph.node_count(); ++i) {
    const Node& n = sub.graph.node(static_cast<NodeId>(i));
    if (n.kind == OpKind::MemRead) {
      saw_read = true;
      EXPECT_EQ(n.memory_block, 3);
    }
    if (n.kind == OpKind::MemWrite) {
      saw_write = true;
      EXPECT_EQ(n.memory_block, 4);
    }
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
}

TEST(Subgraph, RejectsBoundaryMembers) {
  Graph g = diamond();
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{0}), Error);  // input
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{5}), Error);  // output
}

TEST(Subgraph, RejectsDuplicatesAndOutOfRange) {
  Graph g = diamond();
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{2, 2}), Error);
  EXPECT_THROW(induced_subgraph(g, std::vector<NodeId>{99}), Error);
}

TEST(Subgraph, ResultValidates) {
  const BenchmarkGraph ar = ar_lattice_filter();
  for (const auto& cut : ar_two_way_cut(ar)) {
    const Subgraph sub = induced_subgraph(ar.graph, cut);
    EXPECT_NO_THROW(sub.graph.validate());
    EXPECT_GT(sub.graph.operation_count(), 0u);
  }
}

TEST(Subgraph, TwoWayCutBitsAreConsistent) {
  const BenchmarkGraph ar = ar_lattice_filter();
  const auto cuts = ar_two_way_cut(ar);
  const Subgraph p1 = induced_subgraph(ar.graph, cuts[0]);
  const Subgraph p2 = induced_subgraph(ar.graph, cuts[1]);
  // P1 exports exactly the values P2 imports from it (the carry), and the
  // sum of both partitions' op counts covers the graph.
  EXPECT_EQ(p1.graph.operation_count() + p2.graph.operation_count(),
            ar.graph.operation_count());
  EXPECT_GT(p1.outgoing_bits, 0);
}

}  // namespace
}  // namespace chop::dfg
