// Failure-injection tests: the error paths a designer actually hits —
// exhausted pin budgets, unwritable outputs, hopeless constraint sets —
// must fail loudly and informatively, never crash or mislead.
#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "core/memory_optimizer.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"
#include "util/csv.hpp"

namespace chop {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

TEST(ErrorPaths, ControlReservationsCanExhaustPins) {
  // A 64-pin package serving many remotely-accessed memory blocks runs
  // out of data pins entirely; integration must name the chip.
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem memory;
  // Two blocks with absurd per-accessor control pin counts.
  memory.blocks.push_back({"coeff", 16, 64, 1, 300.0, 100.0, 30});
  memory.blocks.push_back({"spill", 16, 64, 1, 300.0, 100.0, 30});
  memory.chip_of_block = {chip::kOffTheShelfChip, chip::kOffTheShelfChip};
  core::Partitioning pt(arm.graph, {{"tiny", chip::mosis_package_64()}},
                        memory);
  pt.add_partition("P1", arm.all_operations(), 0);
  pt.validate();

  bad::DesignPrediction pred;
  pred.style = bad::DesignStyle::Nonpipelined;
  pred.ii_main = pred.ii_dp = pred.stages = pred.latency_main = 40;
  pred.total_area = StatVal(1000.0);
  pred.power_mw = StatVal(1.0);
  const core::EvalContext ctx(pt, core::create_transfer_tasks(pt),
                              {300.0, 10, 1}, {60000.0, 60000.0}, {});
  const core::IntegrationResult r = core::integrate(ctx, {&pred}, 40);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.reason.find("no data pins"), std::string::npos);
  EXPECT_NE(r.reason.find("tiny"), std::string::npos);
}

TEST(ErrorPaths, ScanPinsCanExhaustPinsToo) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  core::Partitioning pt(ar.graph, {{"c0", chip::mosis_package_64()}});
  pt.add_partition("P1", ar.all_operations(), 0);
  pt.validate();
  bad::DesignPrediction pred;
  pred.style = bad::DesignStyle::Nonpipelined;
  pred.ii_main = pred.ii_dp = pred.stages = pred.latency_main = 80;
  pred.total_area = StatVal(1000.0);
  pred.power_mw = StatVal(1.0);
  // 60 reserved test pins on a 64-pin package: nothing left for data.
  const core::EvalContext scan_ctx(pt, core::create_transfer_tasks(pt),
                                   {300.0, 10, 1}, {60000.0, 60000.0}, {},
                                   /*extra_pins=*/60);
  const core::IntegrationResult r = core::integrate(scan_ctx, {&pred}, 80);
  EXPECT_FALSE(r.feasible);
  // Negative reservations are rejected at context construction.
  EXPECT_THROW(core::EvalContext(pt, core::create_transfer_tasks(pt),
                                 {300.0, 10, 1}, {60000.0, 60000.0}, {}, -1),
               Error);
}

TEST(ErrorPaths, HopelessConstraintsReportCleanly) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  core::Partitioning pt(ar.graph, {{"c0", chip::mosis_package_84()}});
  pt.add_partition("P1", ar.all_operations(), 0);
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {301.0, 301.0};  // one cycle for 28 operations
  core::ChopSession session(library(), std::move(pt), config);
  const core::PredictionStats stats = session.predict_partitions();
  EXPECT_EQ(stats.feasible, 0u);
  for (core::Heuristic h :
       {core::Heuristic::Enumeration, core::Heuristic::Iterative}) {
    core::SearchOptions options;
    options.heuristic = h;
    const core::SearchResult r = session.search(options);
    EXPECT_TRUE(r.designs.empty());
    EXPECT_FALSE(r.truncated);
  }
}

TEST(ErrorPaths, MemoryOptimizerSurvivesAllInfeasible) {
  // Every placement infeasible: the optimizer must still terminate,
  // report the best gradient, and leave the session consistent.
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem memory;
  memory.blocks.push_back({"coeff", 16, 64, 1, 300.0, 4000.0, 3});
  memory.blocks.push_back({"spill", 16, 64, 1, 300.0, 4000.0, 3});
  memory.chip_of_block = {chip::kOffTheShelfChip, chip::kOffTheShelfChip};
  core::Partitioning pt(arm.graph, {{"c0", chip::mosis_package_84()}},
                        memory);
  pt.add_partition("P1", arm.all_operations(), 0);
  core::ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {500.0, 500.0};  // hopeless
  core::ChopSession session(library(), std::move(pt), config);
  const core::MemoryPlacementResult r =
      core::optimize_memory_placement(session);
  EXPECT_EQ(r.evaluated, 4u);  // (one chip + off-the-shelf)^2 blocks
  EXPECT_TRUE(r.search.designs.empty());
  EXPECT_NO_THROW(session.search({}));
}

TEST(ErrorPaths, CsvWriterRejectsUnwritablePath) {
  CsvWriter csv({"a"});
  csv.add_row({"1"});
  EXPECT_THROW(csv.write_file("/nonexistent-dir/out.csv"), Error);
}

TEST(ErrorPaths, SelectionPointerValidation) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  core::Partitioning pt(ar.graph, {{"c0", chip::mosis_package_84()}});
  pt.add_partition("P1", ar.all_operations(), 0);
  pt.validate();
  const core::EvalContext ctx(pt, core::create_transfer_tasks(pt),
                              {300.0, 10, 1}, {30000.0, 30000.0}, {});
  EXPECT_THROW(core::integrate(ctx, {nullptr}, 30), Error);
}

TEST(ErrorPaths, BadProbabilitiesRejectedEverywhere) {
  core::FeasibilityCriteria criteria;
  criteria.delay_prob = 0.0;
  EXPECT_THROW(criteria.validate(), Error);
  criteria = {};
  criteria.power_prob = 1.5;
  EXPECT_THROW(criteria.validate(), Error);
  core::DesignConstraints constraints;
  constraints.system_power_mw = -1.0;
  EXPECT_THROW(constraints.validate(), Error);
}

}  // namespace
}  // namespace chop
