// Tests for the `.chop` project file parser and the CLI-facing Project
// construction.
#include "io/spec_format.hpp"

#include <gtest/gtest.h>

namespace chop::io {
namespace {

const char* kMinimal = R"(
graph tiny
  input a 16
  const k 16
  node m mul 16 a k
  node s add 16 m a
  output y s

library
  module adder add 16 1000 50
  module multiplier mul 16 9000 400
  register 31 5
  mux 18 4

chips
  chip c0 mosis84

partitions
  partition P1 c0 m s

config
  style single_cycle
  clock 300 10 1
  constraints 30000 30000
)";

TEST(SpecFormat, ParsesMinimalProject) {
  const Project p = parse_project_string(kMinimal);
  EXPECT_EQ(p.graph.name(), "tiny");
  EXPECT_EQ(p.graph.operation_count(), 2u);
  EXPECT_EQ(p.library.modules().size(), 2u);
  ASSERT_EQ(p.chips.size(), 1u);
  EXPECT_EQ(p.chips[0].package.pin_count, 84);
  ASSERT_EQ(p.partitions.size(), 1u);
  EXPECT_EQ(p.partitions[0].members.size(), 2u);
  EXPECT_EQ(p.config.clocks.datapath_multiplier, 10);
}

TEST(SpecFormat, SessionRunsEndToEnd) {
  const Project p = parse_project_string(kMinimal);
  core::ChopSession session = p.make_session();
  const core::PredictionStats stats = session.predict_partitions();
  EXPECT_GT(stats.total, 0u);
  EXPECT_NO_THROW(session.search({}));
}

TEST(SpecFormat, ConstantInputsAndMemoryOps) {
  const Project p = parse_project_string(R"(
graph memo
  input a 16
  memread r 0 16
  node s add 16 a r
  memwrite w 1 s
  output y s

library
  module adder add 16 1000 50

chips
  chip c0 mosis64
  memory rom words=64 width=16 ports=1 access=300 area=4000 chip=c0
  memory ram words=256 width=16 ports=2 access=300 area=0 chip=offchip

partitions
  partition P1 c0 r s w

config
  style multi_cycle
  clock 300 1 1
  constraints 60000 60000
)");
  EXPECT_EQ(p.graph.count_of_kind(dfg::OpKind::MemRead), 1u);
  EXPECT_EQ(p.graph.count_of_kind(dfg::OpKind::MemWrite), 1u);
  ASSERT_EQ(p.memory.blocks.size(), 2u);
  EXPECT_EQ(p.memory.placement(0), 0);
  EXPECT_EQ(p.memory.placement(1), chip::kOffTheShelfChip);
  EXPECT_EQ(p.memory.blocks[1].ports, 2);
  EXPECT_EQ(p.config.style.clocking, bad::ClockingStyle::MultiCycle);
}

TEST(SpecFormat, CustomChipAttributes) {
  const Project p = parse_project_string(R"(
graph g
  input a 16
  node s add 16 a a
  output y s
library
  module adder add 16 1000 50
chips
  chip c0 pins=100 width=400 height=400 pad_delay=20 pad_area=250 reserve=10
partitions
  partition P1 c0 s
config
  style single_cycle
  clock 300 10 1
  constraints 30000 30000
)");
  const chip::ChipPackage& pkg = p.chips[0].package;
  EXPECT_EQ(pkg.pin_count, 100);
  EXPECT_EQ(pkg.infrastructure_pins, 10);
  EXPECT_DOUBLE_EQ(pkg.pad_delay, 20.0);
  EXPECT_DOUBLE_EQ(pkg.width_mil, 400.0);
}

TEST(SpecFormat, PowerAndScanAndCriteria) {
  const Project p = parse_project_string(R"(
graph g
  input a 16
  node s add 16 a a
  output y s
library
  module adder add 16 1000 50 12.5
chips
  chip c0 mosis84
partitions
  partition P1 c0 s
config
  style multi_cycle nopipeline
  clock 250 2 1
  constraints 40000 50000
  power 500 300
  criteria 0.95 1.0 0.8 0.85
  scan on
)");
  EXPECT_DOUBLE_EQ(p.library.modules()[0].active_power_mw, 12.5);
  EXPECT_FALSE(p.config.style.allow_pipelining);
  EXPECT_DOUBLE_EQ(p.config.constraints.system_power_mw, 500.0);
  EXPECT_DOUBLE_EQ(p.config.constraints.chip_power_mw, 300.0);
  EXPECT_DOUBLE_EQ(p.config.criteria.area_prob, 0.95);
  EXPECT_DOUBLE_EQ(p.config.criteria.power_prob, 0.85);
  EXPECT_TRUE(p.config.testability.scan_design);
  EXPECT_DOUBLE_EQ(p.config.clocks.main_clock, 250.0);
}

TEST(SpecFormat, CommentsAndBlankLinesIgnored) {
  const Project p = parse_project_string(R"(
# leading comment
graph g   # trailing words are fine after a name? no - this is a comment
  input a 16     # input comment
  node s add 16 a a
  output y s
library
  module adder add 16 1000 50
chips
  chip c0 mosis84
partitions
  partition P1 c0 s
config
  style single_cycle
  clock 300 10 1
  constraints 30000 30000
)");
  EXPECT_EQ(p.graph.operation_count(), 1u);
}

// ---- error reporting ----

TEST(SpecFormat, ErrorsCarryLineNumbers) {
  try {
    parse_project_string("graph g\n  input a 16\n  bogus x y z\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SpecFormat, RejectsUnknownNames) {
  EXPECT_THROW(parse_project_string("graph g\n  node s add 16 nope nope\n"),
               ParseError);
  EXPECT_THROW(parse_project_string(R"(
graph g
  input a 16
  node s add 16 a a
  output y s
library
  module adder add 16 1000 50
chips
  chip c0 mosis84
partitions
  partition P1 nochip s
)"),
               ParseError);
}

TEST(SpecFormat, RejectsStatementsOutsideSections) {
  EXPECT_THROW(parse_project_string("input a 16\n"), ParseError);
}

TEST(SpecFormat, RejectsDuplicates) {
  EXPECT_THROW(
      parse_project_string("graph g\n  input a 16\n  input a 16\n"),
      ParseError);
  EXPECT_THROW(parse_project_string(R"(
graph g
  input a 16
  node s add 16 a a
  output y s
chips
  chip c0 mosis84
  chip c0 mosis64
)"),
               ParseError);
}

TEST(SpecFormat, RejectsMalformedNumbersAndAttrs) {
  EXPECT_THROW(parse_project_string("graph g\n  input a sixteen\n"),
               ParseError);
  EXPECT_THROW(parse_project_string(R"(
graph g
  input a 16
  node s add 16 a a
  output y s
chips
  chip c0 pins
)"),
               ParseError);
}

TEST(SpecFormat, RejectsMissingGraph) {
  EXPECT_THROW(parse_project_string("library\n  register 31 5\n"), ParseError);
}

TEST(SpecFormat, RejectsUnknownOp) {
  EXPECT_THROW(
      parse_project_string("graph g\n  input a 16\n  node s frob 16 a a\n"),
      ParseError);
}

TEST(SpecFormat, FileHelpers) {
  EXPECT_THROW(parse_project_file("/nonexistent/project.chop"), Error);
}

TEST(SpecFormat, ShippedExampleParses) {
  // The repository's sample project must stay valid.
  const Project p = parse_project_file(std::string(CHOP_SOURCE_DIR) +
                                       "/examples/specs/fir4.chop");
  EXPECT_EQ(p.graph.name(), "fir4");
  EXPECT_EQ(p.graph.operation_count(), 7u);
  core::ChopSession session = p.make_session();
  session.predict_partitions();
  const core::SearchResult r = session.search({});
  EXPECT_FALSE(r.designs.empty());
}

}  // namespace
}  // namespace chop::io
