// Tests for the comparison partition builders and the acyclicity repair
// that makes arbitrary cuts CHOP-valid.
#include "baseline/partition_builders.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baseline/kernighan_lin.hpp"
#include "chip/mosis_packages.hpp"
#include "core/partitioning.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/generator.hpp"

namespace chop::baseline {
namespace {

/// True when `parts` forms an acyclic quotient over g — verified by
/// building a CHOP Partitioning (which validates exactly that).
bool chop_accepts(const dfg::Graph& g,
                  const std::vector<std::vector<dfg::NodeId>>& parts) {
  std::vector<chip::ChipInstance> chips;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    chips.push_back({"c" + std::to_string(i), chip::mosis_package_84()});
  }
  core::Partitioning pt(g, std::move(chips));
  for (std::size_t p = 0; p < parts.size(); ++p) {
    pt.add_partition("P" + std::to_string(p), parts[p], static_cast<int>(p));
  }
  try {
    pt.validate();
    return true;
  } catch (const Error&) {
    return false;
  }
}

TEST(LevelOrderPartition, AlwaysAcyclic) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  for (int k : {1, 2, 3, 4, 7}) {
    const auto parts = level_order_partition(ar.graph, ar.all_operations(), k);
    EXPECT_EQ(parts.size(), static_cast<std::size_t>(k));
    EXPECT_TRUE(chop_accepts(ar.graph, parts)) << "k=" << k;
  }
}

TEST(LevelOrderPartition, BalancedSizes) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto parts = level_order_partition(ar.graph, ar.all_operations(), 4);
  for (const auto& p : parts) {
    EXPECT_EQ(p.size(), 7u);
  }
}

TEST(RandomPartition, CoversAllOpsNonEmpty) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng rng(3);
  const auto parts = random_partition(ar.all_operations(), 4, rng);
  EXPECT_EQ(parts.size(), 4u);
  std::set<dfg::NodeId> seen;
  for (const auto& p : parts) {
    EXPECT_FALSE(p.empty());
    for (dfg::NodeId id : p) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), 28u);
}

TEST(MakeAcyclic, RepairsRandomCuts) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    auto parts = random_partition(ar.all_operations(), 3, rng);
    const auto repaired = make_acyclic(ar.graph, std::move(parts));
    EXPECT_TRUE(chop_accepts(ar.graph, repaired)) << "trial " << trial;
  }
}

TEST(MakeAcyclic, LeavesValidCutsAlone) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto parts = dfg::ar_two_way_cut(ar);
  const auto repaired = make_acyclic(ar.graph, parts);
  ASSERT_EQ(repaired.size(), 2u);
  // Same membership (order within parts may differ).
  std::set<dfg::NodeId> a(parts[0].begin(), parts[0].end());
  std::set<dfg::NodeId> b(repaired[0].begin(), repaired[0].end());
  EXPECT_EQ(a, b);
}

TEST(MakeAcyclic, RepairsKlCuts) {
  // KL ignores direction, so its cuts often violate quotient acyclicity;
  // the repair must always make them CHOP-valid while covering all ops.
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng rng(29);
  const auto kl_parts = kl_partition(ar.graph, ar.all_operations(), 2, rng);
  const auto repaired = make_acyclic(ar.graph, kl_parts);
  EXPECT_TRUE(chop_accepts(ar.graph, repaired));
  std::size_t total = 0;
  for (const auto& p : repaired) total += p.size();
  EXPECT_EQ(total, 28u);
}

class RepairProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairProperty, RandomGraphRandomCutsAlwaysRepairable) {
  Rng rng(GetParam());
  dfg::RandomDagSpec spec;
  spec.operations = 24;
  spec.depth = 6;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, spec);
  auto parts = random_partition(bg.all_operations(), 3, rng);
  const auto repaired = make_acyclic(bg.graph, std::move(parts));
  EXPECT_TRUE(chop_accepts(bg.graph, repaired));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty,
                         ::testing::Values(201u, 202u, 203u, 204u, 205u));

TEST(RepairedBuilders, KlCutsComeBackChopValid) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng rng(5);
  const auto parts = repaired_kl_partition(ar.graph, ar.all_operations(), 2,
                                           rng);
  EXPECT_TRUE(chop_accepts(ar.graph, parts));
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 28u);
}

TEST(RepairedBuilders, RepairsDisconnectedImbalancedCuts) {
  // A disconnected wide-and-shallow graph with a deliberately imbalanced
  // random cut: repair must still produce a valid quotient covering every
  // op, even when make_acyclic merges parts (callers check the count).
  Rng rng(77);
  dfg::RandomDagSpec spec;
  spec.operations = 30;
  spec.depth = 2;  // shallow => many independent components
  spec.width = 10;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, spec);
  for (int k : {2, 3, 5}) {
    Rng cut_rng(static_cast<std::uint64_t>(k) * 13);
    const auto parts =
        repaired_random_partition(bg.graph, bg.all_operations(), k, cut_rng);
    EXPECT_LE(parts.size(), static_cast<std::size_t>(k));
    EXPECT_TRUE(chop_accepts(bg.graph, parts)) << "k=" << k;
    std::set<dfg::NodeId> seen;
    for (const auto& p : parts) {
      EXPECT_FALSE(p.empty());
      for (dfg::NodeId id : p) EXPECT_TRUE(seen.insert(id).second);
    }
    EXPECT_EQ(seen.size(), 30u);
  }
}

TEST(DiverseSeedPartitions, LevelOrderFirstAllValid) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng rng(31);
  const auto seeds =
      diverse_seed_partitions(ar.graph, ar.all_operations(), 3, 5, rng);
  ASSERT_GE(seeds.size(), 3u);
  EXPECT_EQ(seeds.front().name, "level-order cut");
  for (const auto& seed : seeds) {
    if (seed.parts.size() != 3u) continue;  // repair merged; callers skip
    EXPECT_TRUE(chop_accepts(ar.graph, seed.parts)) << seed.name;
  }
}

}  // namespace
}  // namespace chop::baseline
