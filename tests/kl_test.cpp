// Tests for the Kernighan-Lin baseline partitioner (paper ref [4]).
#include "baseline/kernighan_lin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "dfg/benchmarks.hpp"
#include "dfg/generator.hpp"

namespace chop::baseline {
namespace {

TEST(KlGraph, BuildsFromOperations) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto ops = ar.all_operations();
  const KlGraph g = KlGraph::from_operations(ar.graph, ops);
  EXPECT_EQ(g.vertex_count, 28);
  // Every adjacency entry is symmetric.
  for (int v = 0; v < g.vertex_count; ++v) {
    for (const auto& [u, w] : g.adjacency[static_cast<std::size_t>(v)]) {
      bool found = false;
      for (const auto& [back, bw] : g.adjacency[static_cast<std::size_t>(u)]) {
        if (back == v && bw == w) found = true;
      }
      EXPECT_TRUE(found) << "asymmetric edge " << v << "<->" << u;
    }
  }
}

TEST(KlGraph, ParallelEdgesMerge) {
  dfg::Graph g("p");
  const auto a = g.add_input("a", 16);
  const auto m = g.add_op(dfg::OpKind::Mul, 16, {a, a});
  const auto s = g.add_op(dfg::OpKind::Add, 16, {m, m});  // two edges m->s
  g.add_output("y", s);
  const KlGraph kg = KlGraph::from_operations(g, {m, s});
  ASSERT_EQ(kg.adjacency[0].size(), 1u);
  EXPECT_EQ(kg.adjacency[0][0].second, 32);  // merged weight
}

TEST(KlGraph, RejectsDuplicates) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  auto ops = ar.all_operations();
  ops.push_back(ops[0]);
  EXPECT_THROW(KlGraph::from_operations(ar.graph, ops), Error);
}

TEST(RandomBisection, Balanced) {
  Rng rng(5);
  for (int n : {2, 7, 28, 101}) {
    const auto side = random_bisection(n, rng);
    const int ones = static_cast<int>(std::count(side.begin(), side.end(), 1));
    EXPECT_LE(std::abs(2 * ones - n), 1) << "n=" << n;
  }
  EXPECT_THROW(random_bisection(1, rng), Error);
}

TEST(KernighanLin, NeverWorsensTheCut) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto ops = ar.all_operations();
  const KlGraph g = KlGraph::from_operations(ar.graph, ops);
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const auto initial = random_bisection(g.vertex_count, rng);
    const Bits before = cut_cost(g, initial);
    const KlResult r = kernighan_lin(g, initial);
    EXPECT_LE(r.cut_cost, before);
    EXPECT_GE(r.passes, 1);
  }
}

TEST(KernighanLin, PreservesBalance) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const KlGraph g = KlGraph::from_operations(ar.graph, ar.all_operations());
  Rng rng(23);
  const auto initial = random_bisection(g.vertex_count, rng);
  const int ones_before =
      static_cast<int>(std::count(initial.begin(), initial.end(), 1));
  const KlResult r = kernighan_lin(g, initial);
  const int ones_after =
      static_cast<int>(std::count(r.side.begin(), r.side.end(), 1));
  EXPECT_EQ(ones_before, ones_after);
}

TEST(KernighanLin, FindsTheObviousCut) {
  // Two heavy 64-bit chains connected only through a 1-bit compare: the
  // minimum balanced cut crosses just the two 1-bit bridge edges.
  dfg::Graph g("bridge");
  std::vector<dfg::NodeId> left, right;
  const auto in = g.add_input("in", 64);
  dfg::NodeId prev = in;
  for (int i = 0; i < 4; ++i) {
    prev = g.add_op(dfg::OpKind::Add, 64, {prev, prev});
    left.push_back(prev);
  }
  const auto cmp = g.add_op(dfg::OpKind::Compare, 1, {prev, prev});
  left.push_back(cmp);
  dfg::NodeId prev2 = g.add_op(dfg::OpKind::Add, 64, {cmp, cmp});
  right.push_back(prev2);
  for (int i = 0; i < 3; ++i) {
    prev2 = g.add_op(dfg::OpKind::Add, 64, {prev2, prev2});
    right.push_back(prev2);
  }
  g.add_output("a", prev);
  g.add_output("b", prev2);

  std::vector<dfg::NodeId> ops = left;
  ops.insert(ops.end(), right.begin(), right.end());
  const KlGraph kg = KlGraph::from_operations(g, ops);
  Rng rng(3);
  Bits best = std::numeric_limits<Bits>::max();
  for (int restart = 0; restart < 3; ++restart) {
    const KlResult r =
        kernighan_lin(kg, random_bisection(kg.vertex_count, rng));
    best = std::min(best, r.cut_cost);
  }
  // Only the two 1-bit cmp->add edges must cross.
  EXPECT_LE(best, 2);
}

TEST(KernighanLin, RejectsUnbalancedStart) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const KlGraph g = KlGraph::from_operations(ar.graph, ar.all_operations());
  std::vector<int> all_zero(static_cast<std::size_t>(g.vertex_count), 0);
  EXPECT_THROW(kernighan_lin(g, all_zero), Error);
}

TEST(KlPartition, ProducesKParts) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng rng(7);
  for (int k : {1, 2, 3, 4}) {
    const auto parts = kl_partition(ar.graph, ar.all_operations(), k, rng);
    EXPECT_EQ(parts.size(), static_cast<std::size_t>(k));
    std::size_t total = 0;
    for (const auto& p : parts) {
      EXPECT_FALSE(p.empty());
      total += p.size();
    }
    EXPECT_EQ(total, 28u);
  }
  EXPECT_THROW(kl_partition(ar.graph, ar.all_operations(), 0, rng), Error);
}

TEST(KlPartition, DeterministicForSeed) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Rng a(9), b(9);
  const auto pa = kl_partition(ar.graph, ar.all_operations(), 3, a);
  const auto pb = kl_partition(ar.graph, ar.all_operations(), 3, b);
  EXPECT_EQ(pa, pb);
}

class KlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KlProperty, ImprovesRandomGraphCuts) {
  Rng rng(GetParam());
  dfg::RandomDagSpec spec;
  spec.operations = 30;
  spec.depth = 5;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, spec);
  const KlGraph g = KlGraph::from_operations(bg.graph, bg.all_operations());
  const auto initial = random_bisection(g.vertex_count, rng);
  const KlResult r = kernighan_lin(g, initial);
  EXPECT_LE(r.cut_cost, cut_cost(g, initial));
  EXPECT_EQ(r.cut_cost, cut_cost(g, r.side));  // reported cost is real
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlProperty,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u,
                                           106u));

}  // namespace
}  // namespace chop::baseline
