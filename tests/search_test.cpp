// Tests for level-1 pruning and the two global search heuristics,
// including the pruning-soundness property (the pruned search finds the
// same best feasible designs as the raw one) and recorder behaviour.
#include "core/search.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bad/predictor.hpp"
#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

using bad::DesignPrediction;
using bad::DesignStyle;

DesignPrediction pred(DesignStyle style, Cycles ii, Cycles latency,
                      double area) {
  DesignPrediction p;
  p.style = style;
  p.module_set_label = "t";
  p.fu_alloc[dfg::OpKind::Mul] = 1;
  p.stages = latency;
  p.ii_dp = ii;
  p.ii_main = ii;
  p.latency_main = latency;
  p.register_bits = 32;
  p.total_area = StatVal(area * 0.9, area, area * 1.1);
  p.clock_overhead_ns = 4.0;
  return p;
}

TEST(PruneLevel1, DropsAreaInfeasible) {
  const bad::ClockSpec clocks{300.0, 10, 1};
  const DesignConstraints constraints{30000.0, 30000.0};
  const FeasibilityCriteria criteria;
  std::vector<DesignPrediction> preds{
      pred(DesignStyle::Nonpipelined, 30, 30, 50000.0),
      pred(DesignStyle::Nonpipelined, 30, 30, 200000.0),  // too big
  };
  const auto kept = prune_level1(preds, 87000.0, clocks, constraints, criteria);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].total_area.likely(), 50000.0);
}

TEST(PruneLevel1, DropsPerformanceAndDelayInfeasible) {
  const bad::ClockSpec clocks{300.0, 10, 1};
  const DesignConstraints constraints{30000.0, 30000.0};
  const FeasibilityCriteria criteria;
  std::vector<DesignPrediction> preds{
      pred(DesignStyle::Nonpipelined, 30, 30, 1000.0),
      pred(DesignStyle::Nonpipelined, 120, 120, 900.0),  // 120 x 304 > 30000
      pred(DesignStyle::Pipelined, 30, 150, 800.0),      // latency too long
  };
  const auto kept = prune_level1(preds, 87000.0, clocks, constraints, criteria);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].ii_main, 30);
}

TEST(PruneLevel1, RemovesInferiorWithinStyle) {
  const bad::ClockSpec clocks{300.0, 10, 1};
  const DesignConstraints constraints{30000.0, 30000.0};
  const FeasibilityCriteria criteria;
  std::vector<DesignPrediction> preds{
      pred(DesignStyle::Nonpipelined, 30, 30, 1000.0),
      pred(DesignStyle::Nonpipelined, 30, 30, 2000.0),  // dominated
      pred(DesignStyle::Pipelined, 30, 40, 2000.0),     // other style: kept
  };
  const auto kept = prune_level1(preds, 87000.0, clocks, constraints, criteria);
  EXPECT_EQ(kept.size(), 2u);
}

/// Builds a ready-to-search session on the AR filter (experiment-1 style).
ChopSession exp1_session(int nparts, Heuristic /*unused*/ = Heuristic::Enumeration) {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), chip::mosis_package_84()});
  }
  Partitioning pt(ar.graph, std::move(chips));
  const auto cuts = nparts == 1
                        ? std::vector<std::vector<dfg::NodeId>>{
                              ar.all_operations()}
                        : (nparts == 2 ? dfg::ar_two_way_cut(ar)
                                       : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1), cuts[static_cast<std::size_t>(p)], p);
  }
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(lib, std::move(pt), config);
}

TEST(SearchEnumeration, TrialsEqualProductOfEligibleLists) {
  ChopSession session = exp1_session(2);
  session.predict_partitions();
  const auto& pred = session.predictions();
  std::size_t product = 1;
  for (const auto& list : pred.eligible) product *= list.size();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  // Exhaustive mode: branch-and-bound would visit fewer leaves, and this
  // test is precisely about the full product.
  opt.bound_pruning = false;
  const SearchResult r = session.search(opt);
  EXPECT_EQ(r.trials, product);
  EXPECT_FALSE(r.designs.empty());
}

TEST(SearchIterative, FewerTrialsThanEnumeration) {
  ChopSession session = exp1_session(3);
  session.predict_partitions();
  SearchOptions e;
  e.heuristic = Heuristic::Enumeration;
  // Compare against the paper's exhaustive enumeration trial counts.
  e.bound_pruning = false;
  SearchOptions i;
  i.heuristic = Heuristic::Iterative;
  const SearchResult re = session.search(e);
  const SearchResult ri = session.search(i);
  EXPECT_LT(ri.trials, re.trials);
  ASSERT_FALSE(re.designs.empty());
  ASSERT_FALSE(ri.designs.empty());
  // Both heuristics find the same best initiation interval here.
  EXPECT_EQ(re.designs.front().integration.ii_main,
            ri.designs.front().integration.ii_main);
}

TEST(Search, DesignsAreNonInferiorAndSorted) {
  ChopSession session = exp1_session(2);
  session.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  const SearchResult r = session.search(opt);
  for (std::size_t i = 1; i < r.designs.size(); ++i) {
    EXPECT_GT(r.designs[i].integration.ii_main,
              r.designs[i - 1].integration.ii_main);
    EXPECT_LT(r.designs[i].integration.system_delay_main,
              r.designs[i - 1].integration.system_delay_main);
  }
}

TEST(Search, PruningSoundness) {
  // The pruned search must find a best design no worse than the raw
  // (unpruned) search: level-1 pruning only discards designs that cannot
  // participate in any feasible global implementation.
  ChopSession session = exp1_session(2);
  session.predict_partitions();
  SearchOptions pruned;
  pruned.heuristic = Heuristic::Enumeration;
  pruned.prune = true;
  // This test reasons about level-1 pruning alone; exhaustive trial
  // counts keep the comparison meaningful.
  pruned.bound_pruning = false;
  SearchOptions raw;
  raw.heuristic = Heuristic::Enumeration;
  raw.prune = false;
  raw.bound_pruning = false;
  raw.max_trials = 2'000'000;
  const SearchResult rp = session.search(pruned);
  const SearchResult rr = session.search(raw);
  ASSERT_FALSE(rp.designs.empty());
  ASSERT_FALSE(rr.designs.empty());
  ASSERT_FALSE(rr.truncated);
  EXPECT_EQ(rp.designs.front().integration.ii_main,
            rr.designs.front().integration.ii_main);
  EXPECT_GE(rr.trials, rp.trials);
}

TEST(Search, RecorderCountsEveryTrial) {
  ChopSession session = exp1_session(2);
  session.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.record_all = true;
  const SearchResult r = session.search(opt);
  EXPECT_EQ(r.recorder.total(), r.trials);
  EXPECT_GT(r.recorder.unique(), 0u);
  EXPECT_LE(r.recorder.unique(), r.recorder.total());
  EXPECT_EQ(r.recorder.feasible_count(), r.feasible_raw);
}

TEST(Search, MaxTrialsTruncates) {
  ChopSession session = exp1_session(2);
  session.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.max_trials = 3;
  const SearchResult r = session.search(opt);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.trials, 3u);
}

TEST(Search, EmptyEligibleListMeansNoDesigns) {
  ChopSession session = exp1_session(1);
  session.set_constraints({1.0, 1.0});  // nothing can meet 1 ns
  session.predict_partitions();
  for (Heuristic h : {Heuristic::Enumeration, Heuristic::Iterative}) {
    SearchOptions opt;
    opt.heuristic = h;
    const SearchResult r = session.search(opt);
    EXPECT_TRUE(r.designs.empty());
    EXPECT_EQ(r.trials, 0u);
  }
}

TEST(Recorder, CsvAndScatterRender) {
  DesignSpaceRecorder rec;
  rec.record({60, 67, 50000.0, 312.0, true});
  rec.record({30, 57, 60000.0, 310.0, false});
  rec.record({30, 57, 60000.0, 310.0, false});  // duplicate point
  EXPECT_EQ(rec.total(), 3u);
  EXPECT_EQ(rec.unique(), 2u);
  EXPECT_EQ(rec.feasible_count(), 1u);
  std::ostringstream os;
  rec.to_csv().write(os);
  EXPECT_NE(os.str().find("ii_main_cycles"), std::string::npos);
  const std::string scatter = rec.ascii_scatter(32, 8);
  EXPECT_NE(scatter.find('*'), std::string::npos);
  EXPECT_NE(scatter.find('.'), std::string::npos);
}

TEST(Recorder, EmptyScatter) {
  DesignSpaceRecorder rec;
  EXPECT_NE(rec.ascii_scatter().find("no design points"), std::string::npos);
}

}  // namespace
}  // namespace chop::core
