// Tests for the evaluation-engine layer: EvalContext fingerprints,
// CandidateEvaluator memoization correctness (cached results equal fresh
// ones — across the iterative heuristic and an auto_partition run), and
// the bounded-residency eviction guarantee.
#include "core/eval/candidate_evaluator.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "core/auto_partition.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"
#include "obs/metrics.hpp"

namespace chop::core {
namespace {

using bad::DesignPrediction;
using bad::DesignStyle;

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

DesignPrediction pred(DesignStyle style, Cycles ii, Cycles latency,
                      double area) {
  DesignPrediction p;
  p.style = style;
  p.module_set_label = "t";
  p.fu_alloc[dfg::OpKind::Mul] = 1;
  p.stages = latency;
  p.ii_dp = ii;
  p.ii_main = ii;
  p.latency_main = latency;
  p.register_bits = 32;
  p.total_area = StatVal(area * 0.9, area, area * 1.1);
  p.clock_overhead_ns = 4.0;
  return p;
}

/// One-chip AR-filter partitioning with its owning storage.
struct World {
  dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt;
  World() : pt(ar.graph, {{"c0", chip::mosis_package_84()}}) {
    pt.add_partition("P1", ar.all_operations(), 0);
    pt.validate();
  }
  EvalContext context(Pins extra_pins = 0) const {
    return EvalContext(pt, create_transfer_tasks(pt), {300.0, 10, 1},
                       {30000.0, 30000.0}, {}, extra_pins);
  }
};

void expect_equal_results(const IntegrationResult& a,
                          const IntegrationResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.ii_main, b.ii_main);
  EXPECT_EQ(a.system_delay_main, b.system_delay_main);
  EXPECT_EQ(a.clock_ns(), b.clock_ns());
  EXPECT_EQ(a.performance_ns.likely(), b.performance_ns.likely());
  EXPECT_EQ(a.system_power_mw.likely(), b.system_power_mw.likely());
  ASSERT_EQ(a.chip_area.size(), b.chip_area.size());
  for (std::size_t c = 0; c < a.chip_area.size(); ++c) {
    EXPECT_EQ(a.chip_area[c].likely(), b.chip_area[c].likely());
  }
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t t = 0; t < a.transfers.size(); ++t) {
    EXPECT_EQ(a.transfers[t].buffer_bits, b.transfers[t].buffer_bits);
    EXPECT_EQ(a.transfers[t].pins, b.transfers[t].pins);
    EXPECT_EQ(a.transfers[t].wait_cycles, b.transfers[t].wait_cycles);
  }
}

TEST(EvalContext, FingerprintIsStableAndSensitive) {
  World w;
  const EvalContext a = w.context();
  const EvalContext b = w.context();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Any config difference must change the problem identity.
  EXPECT_NE(a.fingerprint(), w.context(/*extra_pins=*/8).fingerprint());
  const EvalContext tighter(w.pt, create_transfer_tasks(w.pt), {300.0, 10, 1},
                            {20000.0, 30000.0}, {});
  EXPECT_NE(a.fingerprint(), tighter.fingerprint());
  const EvalContext other_clock(w.pt, create_transfer_tasks(w.pt),
                                {250.0, 10, 1}, {30000.0, 30000.0}, {});
  EXPECT_NE(a.fingerprint(), other_clock.fingerprint());
}

TEST(CandidateEvaluator, MemoizedResultEqualsFreshIntegration) {
  World w;
  const EvalContext ctx = w.context();
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 40, 40, 1000.0);

  CandidateEvaluator evaluator;
  const auto first = evaluator.evaluate(ctx, {&a}, 40);
  const auto second = evaluator.evaluate(ctx, {&a}, 40);
  EXPECT_EQ(first.get(), second.get());  // cache hit returns the same object
  const CandidateEvaluator::Stats stats = evaluator.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  expect_equal_results(*second, integrate(ctx, {&a}, 40));

  // A different II or a different prediction is a different candidate.
  evaluator.evaluate(ctx, {&a}, 50);
  const DesignPrediction b = pred(DesignStyle::Nonpipelined, 40, 40, 2000.0);
  evaluator.evaluate(ctx, {&b}, 40);
  EXPECT_EQ(evaluator.stats().misses, 3u);

  // An equal-content context (fresh object) still hits.
  const EvalContext ctx2 = w.context();
  evaluator.evaluate(ctx2, {&a}, 40);
  EXPECT_EQ(evaluator.stats().hits, 2u);
}

TEST(CandidateEvaluator, EvictionBoundHolds) {
  World w;
  const EvalContext ctx = w.context();
  constexpr std::size_t kCap = 16;  // multiple of the shard count: exact bound
  CandidateEvaluator evaluator(kCap);
  std::vector<DesignPrediction> preds;
  for (int i = 0; i < 48; ++i) {
    preds.push_back(
        pred(DesignStyle::Nonpipelined, 40, 40, 1000.0 + 10.0 * i));
  }
  for (const DesignPrediction& p : preds) {
    evaluator.evaluate(ctx, {&p}, 40);
    EXPECT_LE(evaluator.size(), kCap);
  }
  const CandidateEvaluator::Stats stats = evaluator.stats();
  EXPECT_EQ(stats.misses, preds.size());
  EXPECT_GE(stats.evictions, preds.size() - kCap);
  // An evicted candidate is recomputed, not corrupted.
  expect_equal_results(*evaluator.evaluate(ctx, {&preds[0]}, 40),
                       integrate(ctx, {&preds[0]}, 40));

  const std::uint64_t misses_before_clear = evaluator.stats().misses;
  evaluator.clear();
  EXPECT_EQ(evaluator.size(), 0u);
  EXPECT_EQ(evaluator.stats().misses, misses_before_clear);  // stats kept
}

TEST(CandidateEvaluator, ZeroCapacityNeverCaches) {
  World w;
  const EvalContext ctx = w.context();
  const DesignPrediction a = pred(DesignStyle::Nonpipelined, 40, 40, 1000.0);
  CandidateEvaluator evaluator(0);
  evaluator.evaluate(ctx, {&a}, 40);
  evaluator.evaluate(ctx, {&a}, 40);
  EXPECT_EQ(evaluator.size(), 0u);
  EXPECT_EQ(evaluator.stats().hits, 0u);
  EXPECT_EQ(evaluator.stats().misses, 2u);
}

ChopSession two_part_session() {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, {{"c0", chip::mosis_package_84()},
                             {"c1", chip::mosis_package_84()}});
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(library(), std::move(pt), config);
}

void expect_same_designs(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.feasible_raw, b.feasible_raw);
  EXPECT_EQ(a.probe_integrations, b.probe_integrations);
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].choice, b.designs[i].choice);
    expect_equal_results(a.designs[i].integration, b.designs[i].integration);
  }
}

TEST(CandidateEvaluator, IterativeSearchCachedRunEqualsFreshRun) {
  ChopSession session = two_part_session();
  session.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Iterative;

  const auto hits_before = obs::MetricsRegistry::global()
                               .snapshot()
                               .counters["eval.cache_hits"];
  // First run populates the session evaluator; the second replays from
  // cache; the third forces fresh integrations via a zero-capacity cache.
  const SearchResult first = session.search(opt);
  const SearchResult cached = session.search(opt);
  CandidateEvaluator no_cache(0);
  opt.evaluator = &no_cache;
  const SearchResult fresh = session.search(opt);
  expect_same_designs(first, cached);
  expect_same_designs(cached, fresh);
  EXPECT_GT(session.evaluator().stats().hits, 0u);
  const auto hits_after = obs::MetricsRegistry::global()
                              .snapshot()
                              .counters["eval.cache_hits"];
  EXPECT_GT(hits_after, hits_before);
}

TEST(CandidateEvaluator, AutoPartitionCachedRunEqualsFreshRun) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips{{"c0", chip::mosis_package_84()},
                                        {"c1", chip::mosis_package_84()}};
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};

  AutoPartitionOptions cached_options;
  cached_options.restarts = 2;
  cached_options.max_iterations = 2;
  const AutoPartitionResult cached = auto_partition(
      ar.graph, library(), chips, {}, config, cached_options);

  AutoPartitionOptions fresh_options = cached_options;
  CandidateEvaluator no_cache(0);  // recompute every integration
  fresh_options.search.evaluator = &no_cache;
  const AutoPartitionResult fresh = auto_partition(
      ar.graph, library(), chips, {}, config, fresh_options);

  EXPECT_EQ(cached.members, fresh.members);
  EXPECT_EQ(cached.accepted_moves, fresh.accepted_moves);
  EXPECT_EQ(cached.evaluations, fresh.evaluations);
  EXPECT_EQ(cached.log, fresh.log);
  expect_same_designs(cached.search, fresh.search);
}

TEST(SearchMetrics, ProbeIntegrationsCounted) {
  ChopSession session = two_part_session();
  session.predict_partitions();
  const auto before = obs::MetricsRegistry::global()
                          .snapshot()
                          .counters["search.probe_integrations"];
  SearchOptions opt;
  opt.heuristic = Heuristic::Iterative;
  const SearchResult r = session.search(opt);
  const auto after = obs::MetricsRegistry::global()
                         .snapshot()
                         .counters["search.probe_integrations"];
  EXPECT_EQ(after - before, r.probe_integrations);
}

}  // namespace
}  // namespace chop::core
