// Focused tests for the designer guideline output (§3.1's bullet-list
// feedback) and remaining session facade edge cases.
#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

ChopSession two_chip_session() {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, {{"left", chip::mosis_package_84()},
                             {"right", chip::mosis_package_84()}});
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("front_half", cuts[0], 0);
  pt.add_partition("back_half", cuts[1], 1);
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(library(), std::move(pt), config);
}

TEST(Guideline, NamesPartitionsAndChips) {
  ChopSession session = two_chip_session();
  session.predict_partitions();
  const SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const std::string g = session.guideline(r.designs.front());
  EXPECT_NE(g.find("front_half"), std::string::npos);
  EXPECT_NE(g.find("back_half"), std::string::npos);
  EXPECT_NE(g.find("(chip left)"), std::string::npos);
  EXPECT_NE(g.find("(chip right)"), std::string::npos);
}

TEST(Guideline, ReportsEverySection31Item) {
  // The §3.1 example lists: design style + stage count, module library,
  // allocation, register bits, mux count — all must appear per partition.
  ChopSession session = two_chip_session();
  session.predict_partitions();
  const SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const std::string g = session.guideline(r.designs.front());
  for (const char* needle :
       {"design style with", "stages", "module library of", "add units",
        "mul units", "bits of registers for the data path",
        "1-bit 2-to-1 multiplexers", "predicted area"}) {
    EXPECT_NE(g.find(needle), std::string::npos) << "missing: " << needle;
  }
}

TEST(Guideline, TransferModulesIncludeBufferAndPla) {
  // "Similar predictions are also output for each data transfer module."
  ChopSession session = two_chip_session();
  session.predict_partitions();
  const SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const std::string g = session.guideline(r.designs.front());
  EXPECT_NE(g.find("pins, X="), std::string::npos);
  EXPECT_NE(g.find("buffer="), std::string::npos);
  EXPECT_NE(g.find("PLA "), std::string::npos);
}

TEST(Guideline, RejectsForeignDesign) {
  ChopSession session = two_chip_session();
  session.predict_partitions();
  GlobalDesign bogus;
  bogus.choice = {0, 0, 0};  // three partitions: wrong arity
  EXPECT_THROW(session.guideline(bogus), Error);
  GlobalDesign out_of_range;
  out_of_range.choice = {999999, 0};
  EXPECT_THROW(session.guideline(out_of_range), Error);
}

TEST(Guideline, EveryNonInferiorDesignRenders) {
  ChopSession session = two_chip_session();
  session.set_constraints({60000.0, 60000.0});  // admit more designs
  session.predict_partitions();
  SearchOptions options;
  options.heuristic = Heuristic::Enumeration;
  const SearchResult r = session.search(options);
  for (const GlobalDesign& d : r.designs) {
    EXPECT_FALSE(session.guideline(d).empty());
  }
}

TEST(Session, MutatePartitioningInvalidatesPredictions) {
  ChopSession session = two_chip_session();
  session.predict_partitions();
  session.mutate_partitioning().move_partition_to_chip(1, 0);
  EXPECT_THROW(session.search({}), Error);
  session.predict_partitions();
  EXPECT_NO_THROW(session.search({}));
}

TEST(Session, ConstMutatorsDoNotInvalidate) {
  ChopSession session = two_chip_session();
  session.predict_partitions();
  // Read-only access keeps stored predictions usable.
  (void)session.partitioning().partitions().size();
  (void)session.transfer_tasks();
  EXPECT_NO_THROW(session.search({}));
}

}  // namespace
}  // namespace chop::core
