// Equivalence tests for the branch-and-bound enumeration search: with
// bound pruning on, the returned non-inferior design set must be
// byte-identical to the exhaustive walk's while visiting (often far)
// fewer leaves, and bounded runs must stay deterministic across thread
// counts — designs, counters, recorder contents, and observer callback
// sequence. Also unit-tests the incumbent ParetoFrontier the pruner
// queries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "chip/mosis_packages.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/recorder.hpp"
#include "core/search.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

using PointList = std::vector<std::pair<Cycles, Cycles>>;

TEST(ParetoFrontier, InsertKeepsTheNonDominatedStaircase) {
  ParetoFrontier f;
  EXPECT_TRUE(f.empty());
  f.insert(10, 100);
  f.insert(20, 50);
  f.insert(15, 70);
  EXPECT_EQ(f.points(), (PointList{{10, 100}, {15, 70}, {20, 50}}));
  f.insert(12, 120);  // dominated by (10, 100): folded away
  EXPECT_EQ(f.size(), 3u);
  f.insert(5, 200);  // new best-II corner
  EXPECT_EQ(f.points(), (PointList{{5, 200}, {10, 100}, {15, 70}, {20, 50}}));
  f.insert(4, 60);  // dominates everything but (20, 50)
  EXPECT_EQ(f.points(), (PointList{{4, 60}, {20, 50}}));
}

TEST(ParetoFrontier, WeaklyDominatedInsertIsANoOp) {
  ParetoFrontier f;
  f.insert(10, 100);
  f.insert(10, 100);  // exact duplicate
  f.insert(10, 101);
  f.insert(11, 100);
  EXPECT_EQ(f.points(), (PointList{{10, 100}}));
}

TEST(ParetoFrontier, DominatesStrictlyNeedsOneStrictCoordinate) {
  ParetoFrontier f;
  EXPECT_FALSE(f.dominates_strictly(1, 1));  // empty front dominates nothing
  f.insert(10, 100);
  f.insert(20, 50);
  // A point equal to a frontier point is NOT strictly dominated: the
  // subtree could still contribute that exact design, which non_inferior
  // keeps (ties are kept).
  EXPECT_FALSE(f.dominates_strictly(10, 100));
  EXPECT_FALSE(f.dominates_strictly(20, 50));
  EXPECT_TRUE(f.dominates_strictly(10, 101));   // same II, worse delay
  EXPECT_TRUE(f.dominates_strictly(11, 100));   // worse II, same delay
  EXPECT_TRUE(f.dominates_strictly(25, 60));    // inside the staircase
  EXPECT_FALSE(f.dominates_strictly(9, 300));   // better II than any point
  EXPECT_FALSE(f.dominates_strictly(15, 60));   // between corners, not covered
}

/// Ready-to-search session on the AR filter; experiment 1 is the paper's
/// single-cycle Figure-7 setup, experiment 2 the multi-cycle Figure-8 one.
ChopSession ar_session(int exp, int nparts) {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), chip::mosis_package_84()});
  }
  Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1 ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
                  : (nparts == 2 ? dfg::ar_two_way_cut(ar)
                                 : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  ChopConfig config;
  if (exp == 1) {
    config.style.clocking = bad::ClockingStyle::SingleCycle;
    config.clocks = {300.0, 10, 1};
    config.constraints = {30000.0, 30000.0};
  } else {
    config.style.clocking = bad::ClockingStyle::MultiCycle;
    config.clocks = {300.0, 1, 1};
    config.constraints = {20000.0, 20000.0};
  }
  return ChopSession(lib, std::move(pt), config);
}

/// Records the full observer callback sequence for comparison.
struct CaptureObserver : obs::SearchObserver {
  struct Event {
    std::size_t trials;
    std::size_t feasible;
    long long best_ii;
    long long best_delay;
    bool trial_feasible;
    std::string reason;
  };
  std::vector<Event> events;
  std::size_t done_calls = 0;

  void on_trial(const obs::SearchProgress& p) override {
    events.push_back({p.trials, p.feasible, p.best_ii, p.best_delay,
                      p.trial_feasible, p.reason});
  }
  void on_done(const obs::SearchProgress&) override { ++done_calls; }
};

/// Runs the enumeration with a private evaluator so no run warms another
/// run's memo cache.
SearchResult run_search(const ChopSession& session, bool bound_pruning,
                        int threads, bool record_all = false,
                        std::size_t max_trials = 0,
                        obs::SearchObserver* observer = nullptr) {
  CandidateEvaluator evaluator;
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.bound_pruning = bound_pruning;
  opt.threads = threads;
  opt.record_all = record_all;
  opt.max_trials = max_trials;
  opt.evaluator = &evaluator;
  opt.observer = observer;
  return session.search(opt);
}

/// The headline guarantee: identical `designs` vectors, element by element.
void expect_same_designs(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    SCOPED_TRACE("design " + std::to_string(i));
    const GlobalDesign& x = a.designs[i];
    const GlobalDesign& y = b.designs[i];
    EXPECT_EQ(x.choice, y.choice);
    EXPECT_EQ(x.integration.feasible, y.integration.feasible);
    EXPECT_EQ(x.integration.ii_main, y.integration.ii_main);
    EXPECT_EQ(x.integration.system_delay_main, y.integration.system_delay_main);
    EXPECT_EQ(x.integration.clock_ns(), y.integration.clock_ns());
    EXPECT_EQ(x.integration.performance_ns.likely(),
              y.integration.performance_ns.likely());
    EXPECT_EQ(x.integration.delay_ns.likely(), y.integration.delay_ns.likely());
  }
}

std::size_t eligible_product(const ChopSession& session) {
  std::size_t product = 1;
  for (const auto& list : session.predictions().eligible) {
    product *= list.size();
  }
  return product;
}

TEST(BoundPruning, Fig7DesignSetIdenticalToExhaustive) {
  for (int nparts : {2, 3}) {
    SCOPED_TRACE("nparts=" + std::to_string(nparts));
    ChopSession session = ar_session(1, nparts);
    session.predict_partitions();
    const SearchResult exhaustive = run_search(session, false, 1);
    const SearchResult bounded = run_search(session, true, 1);
    expect_same_designs(exhaustive, bounded);
    ASSERT_FALSE(bounded.designs.empty());
    EXPECT_EQ(exhaustive.trials, eligible_product(session));
    EXPECT_EQ(exhaustive.pruned_subtrees, 0u);
    EXPECT_EQ(exhaustive.bound_skipped_leaves, 0u);
    // Every leaf is either visited or accounted to a cut subtree.
    EXPECT_EQ(bounded.trials + bounded.bound_skipped_leaves,
              eligible_product(session));
    EXPECT_GT(bounded.pruned_subtrees, 0u);
    EXPECT_LT(bounded.trials, exhaustive.trials);
    // The seed probes are real integrations, reported separately.
    EXPECT_GT(bounded.probe_integrations, 0u);
    EXPECT_EQ(exhaustive.probe_integrations, 0u);
  }
}

TEST(BoundPruning, Fig8DesignSetIdenticalToExhaustive) {
  for (int nparts : {2, 3}) {
    SCOPED_TRACE("nparts=" + std::to_string(nparts));
    ChopSession session = ar_session(2, nparts);
    session.predict_partitions();
    const SearchResult exhaustive = run_search(session, false, 1);
    const SearchResult bounded = run_search(session, true, 1);
    expect_same_designs(exhaustive, bounded);
    EXPECT_EQ(bounded.trials + bounded.bound_skipped_leaves,
              eligible_product(session));
    EXPECT_LE(bounded.trials, exhaustive.trials);
  }
}

TEST(BoundPruning, RawListsDesignSetIdenticalToExhaustive) {
  // prune=false searches the raw (not level-1-pruned) lists; the bound
  // pruner must still return the identical design set there.
  ChopSession session = ar_session(1, 2);
  session.predict_partitions();
  CandidateEvaluator evaluator;
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.prune = false;
  opt.evaluator = &evaluator;
  opt.bound_pruning = false;
  const SearchResult exhaustive = session.search(opt);
  opt.bound_pruning = true;
  const SearchResult bounded = session.search(opt);
  ASSERT_FALSE(exhaustive.truncated);
  expect_same_designs(exhaustive, bounded);
  EXPECT_LT(bounded.trials, exhaustive.trials);
}

void expect_identical_bounded(const SearchResult& serial,
                              const SearchResult& parallel, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(serial.trials, parallel.trials);
  EXPECT_EQ(serial.feasible_raw, parallel.feasible_raw);
  EXPECT_EQ(serial.truncated, parallel.truncated);
  EXPECT_EQ(serial.pruned_subtrees, parallel.pruned_subtrees);
  EXPECT_EQ(serial.bound_skipped_leaves, parallel.bound_skipped_leaves);
  EXPECT_EQ(serial.probe_integrations, parallel.probe_integrations);
  expect_same_designs(serial, parallel);
  ASSERT_EQ(serial.recorder.total(), parallel.recorder.total());
  EXPECT_EQ(serial.recorder.unique(), parallel.recorder.unique());
  EXPECT_EQ(serial.recorder.feasible_count(),
            parallel.recorder.feasible_count());
  const auto& pa = serial.recorder.points();
  const auto& pb = parallel.recorder.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].ii_main, pb[i].ii_main) << "point " << i;
    EXPECT_EQ(pa[i].delay_main, pb[i].delay_main) << "point " << i;
    EXPECT_EQ(pa[i].area_likely, pb[i].area_likely) << "point " << i;
    EXPECT_EQ(pa[i].feasible, pb[i].feasible) << "point " << i;
  }
}

TEST(BoundPruning, BoundedRunIdenticalAcrossThreadCounts) {
  ChopSession session = ar_session(1, 3);
  session.predict_partitions();
  CaptureObserver serial_obs;
  const SearchResult serial =
      run_search(session, true, 1, /*record_all=*/true, 0, &serial_obs);
  EXPECT_EQ(serial_obs.events.size(), serial.trials);
  for (int threads : {2, 4, 8}) {
    CaptureObserver parallel_obs;
    const SearchResult parallel = run_search(session, true, threads,
                                             /*record_all=*/true, 0,
                                             &parallel_obs);
    expect_identical_bounded(serial, parallel, threads);
    ASSERT_EQ(serial_obs.events.size(), parallel_obs.events.size());
    EXPECT_EQ(parallel_obs.done_calls, 1u);
    for (std::size_t i = 0; i < serial_obs.events.size(); ++i) {
      const auto& a = serial_obs.events[i];
      const auto& b = parallel_obs.events[i];
      EXPECT_EQ(a.trials, b.trials) << "event " << i;
      EXPECT_EQ(a.feasible, b.feasible) << "event " << i;
      EXPECT_EQ(a.best_ii, b.best_ii) << "event " << i;
      EXPECT_EQ(a.best_delay, b.best_delay) << "event " << i;
      EXPECT_EQ(a.trial_feasible, b.trial_feasible) << "event " << i;
      EXPECT_EQ(a.reason, b.reason) << "event " << i;
    }
  }
}

TEST(BoundPruning, Fig8BoundedRunIdenticalAcrossThreadCounts) {
  ChopSession session = ar_session(2, 3);
  session.predict_partitions();
  const SearchResult serial =
      run_search(session, true, 1, /*record_all=*/true);
  for (int threads : {2, 4, 8}) {
    expect_identical_bounded(
        serial, run_search(session, true, threads, /*record_all=*/true),
        threads);
  }
}

/// Restores CHOP_BOUND_PRUNING on scope exit so one test cannot leak its
/// environment into the rest of the suite.
struct ScopedEnv {
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// All three disable mechanisms — the SearchOptions flag (what the CLI's
/// --no-bound-pruning sets), CHOP_BOUND_PRUNING=0, and its "false"/"off"
/// spellings — must select the identical exhaustive path: every leaf
/// visited, zero pruner activity, and the same design set.
TEST(BoundPruning, DisableMechanismsAllSelectTheExhaustivePath) {
  ScopedEnv guard("CHOP_BOUND_PRUNING");
  unsetenv("CHOP_BOUND_PRUNING");

  ChopSession session = ar_session(1, 2);
  session.predict_partitions();
  const std::size_t product = eligible_product(session);

  // Reference: explicit SearchOptions::bound_pruning = false.
  const SearchResult via_flag = run_search(session, false, 1);
  EXPECT_EQ(via_flag.trials, product);
  EXPECT_EQ(via_flag.pruned_subtrees, 0u);
  EXPECT_EQ(via_flag.bound_skipped_leaves, 0u);
  EXPECT_EQ(via_flag.probe_integrations, 0u);

  // Control: with nothing disabling it, the pruner does engage.
  const SearchResult bounded = run_search(session, true, 1);
  EXPECT_GT(bounded.pruned_subtrees, 0u);
  EXPECT_LT(bounded.trials, product);

  // Environment override: flag says prune, environment vetoes it. The
  // variable is re-read per search, so setting it mid-process works.
  for (const char* spelling : {"0", "false", "off", "OFF"}) {
    SCOPED_TRACE(std::string("CHOP_BOUND_PRUNING=") + spelling);
    setenv("CHOP_BOUND_PRUNING", spelling, 1);
    const SearchResult via_env = run_search(session, true, 1);
    EXPECT_EQ(via_env.trials, product);
    EXPECT_EQ(via_env.pruned_subtrees, 0u);
    EXPECT_EQ(via_env.bound_skipped_leaves, 0u);
    EXPECT_EQ(via_env.probe_integrations, 0u);
    expect_same_designs(via_flag, via_env);
  }

  // Any other value (including "1") leaves pruning enabled.
  setenv("CHOP_BOUND_PRUNING", "1", 1);
  const SearchResult reenabled = run_search(session, true, 1);
  EXPECT_GT(reenabled.pruned_subtrees, 0u);
  expect_same_designs(bounded, reenabled);
}

TEST(BoundPruning, TruncationDeterministicAcrossThreadCounts) {
  ChopSession session = ar_session(1, 3);
  session.predict_partitions();
  const std::size_t cap = 23;  // not on any unit boundary
  const SearchResult serial =
      run_search(session, true, 1, /*record_all=*/true, cap);
  EXPECT_EQ(serial.trials, cap);
  EXPECT_TRUE(serial.truncated);
  for (int threads : {2, 4, 8}) {
    expect_identical_bounded(
        serial, run_search(session, true, threads, /*record_all=*/true, cap),
        threads);
  }
}

}  // namespace
}  // namespace chop::core
