// Tests for loop unrolling (paper §2.3): carried values chain between
// iterations, invariants are shared, the result is acyclic and validated.
#include "dfg/unroll.hpp"

#include <gtest/gtest.h>

#include "dfg/analysis.hpp"

namespace chop::dfg {
namespace {

// Loop body: acc' = acc * k + x   (one mul, one add per iteration).
LoopBody mac_loop() {
  LoopBody loop;
  Graph& b = loop.body;
  b.set_name("mac");
  const NodeId acc = b.add_input("acc", 16);
  const NodeId k = b.add_constant_input("k", 16);
  const NodeId x = b.add_input("x", 16);
  const NodeId m = b.add_op(OpKind::Mul, 16, {acc, k}, "m");
  const NodeId s = b.add_op(OpKind::Add, 16, {m, x}, "s");
  const NodeId out = b.add_output("acc_next", s);
  loop.carried.emplace_back(acc, out);
  return loop;
}

TEST(Unroll, SingleIterationMatchesBodyOps) {
  const Graph g = unroll(mac_loop(), 1, "mac1");
  EXPECT_EQ(g.count_of_kind(OpKind::Mul), 1u);
  EXPECT_EQ(g.count_of_kind(OpKind::Add), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Unroll, OpCountScalesLinearly) {
  const Graph g = unroll(mac_loop(), 5, "mac5");
  EXPECT_EQ(g.count_of_kind(OpKind::Mul), 5u);
  EXPECT_EQ(g.count_of_kind(OpKind::Add), 5u);
}

TEST(Unroll, CarriedChainSetsDepth) {
  // Each iteration is a mul->add chain fed by the previous one: depth 2N.
  const Graph g = unroll(mac_loop(), 4, "mac4");
  EXPECT_EQ(operation_depth(g), 8);
}

TEST(Unroll, InvariantInputsShared) {
  const Graph g = unroll(mac_loop(), 3, "mac3");
  // k is invariant (one node); x is non-carried but not in the carried
  // list either -> also invariant by our definition; acc_init appears once.
  int constant_inputs = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const Node& n = g.node(static_cast<NodeId>(i));
    if (n.kind == OpKind::Input && n.constant) ++constant_inputs;
  }
  EXPECT_EQ(constant_inputs, 1);
}

TEST(Unroll, FinalCarriedValueExposed) {
  const Graph g = unroll(mac_loop(), 2, "mac2");
  bool found_final = false;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const Node& n = g.node(static_cast<NodeId>(i));
    if (n.kind == OpKind::Output && n.name == "acc_next_final") {
      found_final = true;
    }
  }
  EXPECT_TRUE(found_final);
}

TEST(Unroll, NonCarriedOutputsEmittedPerIteration) {
  LoopBody loop;
  Graph& b = loop.body;
  const NodeId s = b.add_input("s", 16);
  const NodeId a = b.add_op(OpKind::Add, 16, {s, s}, "a");
  const NodeId carried = b.add_output("s_next", a);
  const NodeId probe = b.add_output("probe", a);
  loop.carried.emplace_back(s, carried);
  (void)probe;
  const Graph g = unroll(loop, 3, "probe3");
  int probes = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const Node& n = g.node(static_cast<NodeId>(i));
    if (n.kind == OpKind::Output && n.name.rfind("probe_", 0) == 0) ++probes;
  }
  EXPECT_EQ(probes, 3);
}

TEST(Unroll, MemoryOpsReplicate) {
  LoopBody loop;
  Graph& b = loop.body;
  const NodeId s = b.add_input("s", 16);
  const NodeId r = b.add_mem_read(0, 16, kNoNode, "rd");
  const NodeId a = b.add_op(OpKind::Add, 16, {s, r}, "a");
  b.add_mem_write(1, a, kNoNode, "wr");
  const NodeId out = b.add_output("s_next", a);
  loop.carried.emplace_back(s, out);
  const Graph g = unroll(loop, 4, "mem4");
  EXPECT_EQ(g.count_of_kind(OpKind::MemRead), 4u);
  EXPECT_EQ(g.count_of_kind(OpKind::MemWrite), 4u);
}

TEST(Unroll, RejectsBadIterationCount) {
  EXPECT_THROW(unroll(mac_loop(), 0, "bad"), Error);
  EXPECT_THROW(unroll(mac_loop(), -3, "bad"), Error);
}

TEST(Unroll, RejectsMalformedCarriedPairs) {
  LoopBody loop = mac_loop();
  // Carried pair starting at a non-input.
  loop.carried[0].first = 3;  // the mul node
  EXPECT_THROW(unroll(loop, 2, "bad"), Error);

  LoopBody loop2 = mac_loop();
  loop2.carried[0].second = 3;  // not an output
  EXPECT_THROW(unroll(loop2, 2, "bad"), Error);
}

TEST(Unroll, RejectsDoubleCarriedInput) {
  LoopBody loop = mac_loop();
  loop.carried.push_back(loop.carried[0]);
  EXPECT_THROW(unroll(loop, 2, "bad"), Error);
}

TEST(Unroll, ResultIsAcyclic) {
  const Graph g = unroll(mac_loop(), 8, "mac8");
  EXPECT_NO_THROW(g.topological_order());
}

}  // namespace
}  // namespace chop::dfg
