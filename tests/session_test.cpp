// End-to-end tests of the ChopSession facade: the full Figure-1 loop on
// the paper's workload, regression-pinning the reproduced experiment
// shapes, and the designer guideline output of §3.1.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

ChopSession make_session(int nparts, bad::ClockingStyle clocking,
                         chip::ChipPackage pkg = chip::mosis_package_84()) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), pkg});
  }
  Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1
          ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
          : (nparts == 2 ? dfg::ar_two_way_cut(ar) : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  ChopConfig config;
  config.style.clocking = clocking;
  if (clocking == bad::ClockingStyle::SingleCycle) {
    config.clocks = {300.0, 10, 1};
    config.constraints = {30000.0, 30000.0};
  } else {
    config.clocks = {300.0, 1, 1};
    config.constraints = {20000.0, 20000.0};
  }
  return ChopSession(library(), std::move(pt), config);
}

TEST(Session, SearchRequiresPredictions) {
  ChopSession s = make_session(1, bad::ClockingStyle::SingleCycle);
  EXPECT_THROW(s.search(SearchOptions{}), Error);
}

TEST(Session, PredictionStatsPopulated) {
  ChopSession s = make_session(2, bad::ClockingStyle::SingleCycle);
  const PredictionStats stats = s.predict_partitions();
  EXPECT_GT(stats.total, 100u);
  EXPECT_GT(stats.feasible, 0u);
  EXPECT_LT(stats.feasible, stats.total);
  EXPECT_EQ(s.predictions().raw.size(), 2u);
  EXPECT_EQ(s.predictions().eligible.size(), 2u);
}

// ---- experiment-1 regression: the Table 4 shape ----

TEST(Session, Experiment1SinglePartitionFeasible) {
  ChopSession s = make_session(1, bad::ClockingStyle::SingleCycle);
  s.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Iterative;
  const SearchResult r = s.search(opt);
  ASSERT_FALSE(r.designs.empty());
  // Reproduced shape: II ~60-80 main cycles (paper: 60), clock slightly
  // above the 300 ns input (paper: 312).
  EXPECT_GE(r.designs.front().integration.ii_main, 50);
  EXPECT_LE(r.designs.front().integration.ii_main, 80);
  EXPECT_GT(r.designs.front().integration.clock_ns(), 300.0);
  EXPECT_LT(r.designs.front().integration.clock_ns(), 320.0);
}

TEST(Session, Experiment1PartitioningDoublesPerformance) {
  ChopSession s1 = make_session(1, bad::ClockingStyle::SingleCycle);
  s1.predict_partitions();
  ChopSession s2 = make_session(2, bad::ClockingStyle::SingleCycle);
  s2.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  const SearchResult r1 = s1.search(opt);
  const SearchResult r2 = s2.search(opt);
  ASSERT_FALSE(r1.designs.empty());
  ASSERT_FALSE(r2.designs.empty());
  // "two times higher performance can be obtained easily by doubling the
  // available chip area."
  EXPECT_LE(r2.designs.front().integration.ii_main * 2,
            r1.designs.front().integration.ii_main + 10);
}

TEST(Session, Experiment1PinCountAffectsDelayNotFeasibility) {
  ChopSession s84 = make_session(2, bad::ClockingStyle::SingleCycle,
                                 chip::mosis_package_84());
  s84.predict_partitions();
  ChopSession s64 = make_session(2, bad::ClockingStyle::SingleCycle,
                                 chip::mosis_package_64());
  s64.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Iterative;
  const SearchResult r84 = s84.search(opt);
  const SearchResult r64 = s64.search(opt);
  ASSERT_FALSE(r84.designs.empty());
  ASSERT_FALSE(r64.designs.empty());
  EXPECT_EQ(r84.designs.front().integration.ii_main,
            r64.designs.front().integration.ii_main);
  EXPECT_GE(r64.designs.front().integration.system_delay_main,
            r84.designs.front().integration.system_delay_main);
}

// ---- experiment-2 regression: the Table 6 shape ----

TEST(Session, Experiment2MultiCycleBeatsSingleCycleThroughput) {
  ChopSession sc = make_session(2, bad::ClockingStyle::SingleCycle);
  sc.predict_partitions();
  ChopSession mc = make_session(2, bad::ClockingStyle::MultiCycle);
  mc.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  const SearchResult rs = sc.search(opt);
  const SearchResult rm = mc.search(opt);
  ASSERT_FALSE(rs.designs.empty());
  ASSERT_FALSE(rm.designs.empty());
  // "a multi-cycle-operation architecture allows a more efficient use of a
  // faster clock ... resulting in higher performance designs":
  // absolute II (ns) improves even though the adjusted clock is longer.
  const auto& is = rs.designs.front().integration;
  const auto& im = rm.designs.front().integration;
  EXPECT_LT(im.performance_ns.likely(), is.performance_ns.likely());
  EXPECT_GT(im.clock_ns(), is.clock_ns());
}

TEST(Session, HeuristicsAgreeOnBestIi) {
  for (auto clocking :
       {bad::ClockingStyle::SingleCycle, bad::ClockingStyle::MultiCycle}) {
    ChopSession s = make_session(2, clocking);
    s.predict_partitions();
    SearchOptions e;
    e.heuristic = Heuristic::Enumeration;
    SearchOptions i;
    i.heuristic = Heuristic::Iterative;
    const SearchResult re = s.search(e);
    const SearchResult ri = s.search(i);
    ASSERT_FALSE(re.designs.empty());
    ASSERT_FALSE(ri.designs.empty());
    EXPECT_EQ(re.designs.front().integration.ii_main,
              ri.designs.front().integration.ii_main);
  }
}

TEST(Session, GuidelineRendersSection31Style) {
  ChopSession s = make_session(2, bad::ClockingStyle::SingleCycle);
  s.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Iterative;
  const SearchResult r = s.search(opt);
  ASSERT_FALSE(r.designs.empty());
  const std::string g = s.guideline(r.designs.front());
  EXPECT_NE(g.find("design style with"), std::string::npos);
  EXPECT_NE(g.find("module library of"), std::string::npos);
  EXPECT_NE(g.find("bits of registers"), std::string::npos);
  EXPECT_NE(g.find("1-bit 2-to-1 multiplexers"), std::string::npos);
  EXPECT_NE(g.find("data transfer module"), std::string::npos);
}

TEST(Session, ConstraintChangeInvalidatesPredictions) {
  ChopSession s = make_session(1, bad::ClockingStyle::SingleCycle);
  s.predict_partitions();
  s.set_constraints({40000.0, 40000.0});
  EXPECT_THROW(s.search(SearchOptions{}), Error);  // must re-predict
  s.predict_partitions();
  EXPECT_NO_THROW(s.search(SearchOptions{}));
}

TEST(Session, LooserConstraintsNeverShrinkEligibleSet) {
  ChopSession tight = make_session(1, bad::ClockingStyle::SingleCycle);
  const PredictionStats t = tight.predict_partitions();
  ChopSession loose = make_session(1, bad::ClockingStyle::SingleCycle);
  loose.set_constraints({60000.0, 60000.0});
  const PredictionStats l = loose.predict_partitions();
  EXPECT_GE(l.feasible, t.feasible);
  // The raw total may grow too: a looser performance budget widens the
  // enumerated pipelined II range.
  EXPECT_GE(l.total, t.total);
}

TEST(Session, TransferTasksAvailable) {
  ChopSession s = make_session(2, bad::ClockingStyle::SingleCycle);
  EXPECT_GE(s.transfer_tasks().size(), 3u);
}

}  // namespace
}  // namespace chop::core
