// Determinism tests for the parallel enumeration search: any thread count
// must produce a SearchResult — designs, trial counts, recorder contents,
// observer callback sequence — byte-identical to the serial run, on the
// Figure-7 (AR filter, keep-all) workload. The AdversarialScheduler suite
// additionally perturbs the work-stealing pool's steal order and the
// SharedFrontier's commit fold order through the testing hooks and
// demands the same byte-identity across 16 hostile schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "chip/mosis_packages.hpp"
#include "core/eval/bound_state.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/eval/eval_context.hpp"
#include "core/eval/thread_pool.hpp"
#include "core/search.hpp"
#include "core/session.hpp"
#include "core/transfer.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"

namespace chop::core {
namespace {

/// Ready-to-search session on the AR filter (the Figure-7 experiment).
ChopSession fig7_session(int nparts) {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), chip::mosis_package_84()});
  }
  Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1 ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
                  : (nparts == 2 ? dfg::ar_two_way_cut(ar)
                                 : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  ChopConfig config;
  config.style.clocking = bad::ClockingStyle::SingleCycle;
  config.clocks = {300.0, 10, 1};
  config.constraints = {30000.0, 30000.0};
  return ChopSession(lib, std::move(pt), config);
}

/// Records the full observer callback sequence for comparison.
struct CaptureObserver : obs::SearchObserver {
  struct Event {
    std::size_t trials;
    std::size_t feasible;
    long long best_ii;
    long long best_delay;
    bool trial_feasible;
    std::string reason;
  };
  std::vector<Event> events;
  std::size_t done_calls = 0;

  void on_trial(const obs::SearchProgress& p) override {
    events.push_back({p.trials, p.feasible, p.best_ii, p.best_delay,
                      p.trial_feasible, p.reason});
  }
  void on_done(const obs::SearchProgress&) override { ++done_calls; }
};

void expect_identical(const SearchResult& serial, const SearchResult& parallel,
                      int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(serial.trials, parallel.trials);
  EXPECT_EQ(serial.feasible_raw, parallel.feasible_raw);
  EXPECT_EQ(serial.truncated, parallel.truncated);
  ASSERT_EQ(serial.designs.size(), parallel.designs.size());
  for (std::size_t i = 0; i < serial.designs.size(); ++i) {
    const GlobalDesign& a = serial.designs[i];
    const GlobalDesign& b = parallel.designs[i];
    EXPECT_EQ(a.choice, b.choice) << "design " << i;
    EXPECT_EQ(a.integration.feasible, b.integration.feasible);
    EXPECT_EQ(a.integration.ii_main, b.integration.ii_main);
    EXPECT_EQ(a.integration.system_delay_main, b.integration.system_delay_main);
    EXPECT_EQ(a.integration.clock_ns(), b.integration.clock_ns());
    EXPECT_EQ(a.integration.transfers.size(), b.integration.transfers.size());
  }
  ASSERT_EQ(serial.recorder.total(), parallel.recorder.total());
  EXPECT_EQ(serial.recorder.unique(), parallel.recorder.unique());
  EXPECT_EQ(serial.recorder.feasible_count(), parallel.recorder.feasible_count());
  const auto& pa = serial.recorder.points();
  const auto& pb = parallel.recorder.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].ii_main, pb[i].ii_main) << "point " << i;
    EXPECT_EQ(pa[i].delay_main, pb[i].delay_main) << "point " << i;
    EXPECT_EQ(pa[i].area_likely, pb[i].area_likely) << "point " << i;
    EXPECT_EQ(pa[i].clock_ns, pb[i].clock_ns) << "point " << i;
    EXPECT_EQ(pa[i].feasible, pb[i].feasible) << "point " << i;
  }
}

/// Runs the enumeration with a private evaluator (no cross-run cache
/// reuse, so every thread count does its own full integration work).
SearchResult run_at(const ChopSession& session, int threads, bool prune,
                    std::size_t max_trials = 0,
                    obs::SearchObserver* observer = nullptr) {
  CandidateEvaluator evaluator;
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.prune = prune;
  opt.record_all = true;
  opt.threads = threads;
  opt.max_trials = max_trials;
  opt.evaluator = &evaluator;
  opt.observer = observer;
  return session.search(opt);
}

TEST(ParallelSearch, KeepAllIdenticalAcrossThreadCounts) {
  ChopSession session = fig7_session(2);
  session.predict_partitions();
  const SearchResult serial = run_at(session, 1, /*prune=*/false);
  ASSERT_GT(serial.trials, 0u);
  for (int threads : {2, 4, 8}) {
    expect_identical(serial, run_at(session, threads, /*prune=*/false),
                     threads);
  }
}

TEST(ParallelSearch, PrunedIdenticalAcrossThreadCounts) {
  ChopSession session = fig7_session(3);
  session.predict_partitions();
  const SearchResult serial = run_at(session, 1, /*prune=*/true);
  for (int threads : {2, 4, 8}) {
    expect_identical(serial, run_at(session, threads, /*prune=*/true),
                     threads);
  }
}

TEST(ParallelSearch, TruncationIdenticalAcrossThreadCounts) {
  ChopSession session = fig7_session(2);
  session.predict_partitions();
  const std::size_t cap = 37;  // mid-chunk, not on any chunk boundary
  const SearchResult serial = run_at(session, 1, /*prune=*/false, cap);
  EXPECT_TRUE(serial.truncated);
  EXPECT_EQ(serial.trials, cap);
  for (int threads : {2, 4, 8}) {
    expect_identical(serial, run_at(session, threads, /*prune=*/false, cap),
                     threads);
  }
}

TEST(ParallelSearch, ObserverSequenceIdenticalAndInOrder) {
  ChopSession session = fig7_session(2);
  session.predict_partitions();
  CaptureObserver serial_obs;
  const SearchResult serial =
      run_at(session, 1, /*prune=*/false, 0, &serial_obs);
  CaptureObserver parallel_obs;
  const SearchResult parallel =
      run_at(session, 4, /*prune=*/false, 0, &parallel_obs);
  expect_identical(serial, parallel, 4);

  ASSERT_EQ(serial_obs.events.size(), parallel_obs.events.size());
  EXPECT_EQ(serial_obs.events.size(), serial.trials);
  EXPECT_EQ(parallel_obs.done_calls, 1u);
  for (std::size_t i = 0; i < serial_obs.events.size(); ++i) {
    const auto& a = serial_obs.events[i];
    const auto& b = parallel_obs.events[i];
    EXPECT_EQ(a.trials, b.trials) << "event " << i;
    EXPECT_EQ(a.feasible, b.feasible) << "event " << i;
    EXPECT_EQ(a.best_ii, b.best_ii) << "event " << i;
    EXPECT_EQ(a.best_delay, b.best_delay) << "event " << i;
    EXPECT_EQ(a.trial_feasible, b.trial_feasible) << "event " << i;
    EXPECT_EQ(a.reason, b.reason) << "event " << i;
    // Callbacks arrive in trial order: trials is exactly i+1.
    EXPECT_EQ(b.trials, i + 1);
  }
}

TEST(ParallelSearch, SharedEvaluatorAcrossThreadCountsStillIdentical) {
  // The session's own evaluator serves all four runs — later runs are
  // pure cache replays and must still merge into identical results. Keep
  // the explored slice below the evaluator's residency bound, otherwise
  // the FIFO cache thrashes on the sequential re-scan and never hits.
  ChopSession session = fig7_session(2);
  session.predict_partitions();
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.prune = false;
  opt.record_all = true;
  opt.max_trials = 20000;
  static_assert(20000 < CandidateEvaluator::kDefaultMaxEntries);
  const SearchResult serial = session.search(opt);
  for (int threads : {2, 4, 8}) {
    opt.threads = threads;
    expect_identical(serial, session.search(opt), threads);
  }
  EXPECT_GT(session.evaluator().stats().hits, 0u);
}

/// Builds an evaluation problem whose odometer space saturates
/// std::size_t: the AR filter split over 8 generously-sized chips, with
/// 256 (identical, individually feasible) candidates per partition —
/// 256^8 = 2^64 leaves. The historical flat walk could not parallelize
/// this (it indexed trials by a single global counter); the prefix-unit
/// enumeration must slice it, honor max_trials, and stay deterministic
/// at every thread count in both bounded and exhaustive modes.
struct SaturatedSpace {
  static constexpr int kParts = 8;
  static constexpr std::size_t kCandidates = 256;

  Partitioning pt;
  EvalContext ctx;
  PartitionPredictions pred;

  static Partitioning make_partitioning() {
    static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
    chip::ChipPackage big;
    big.name = "big";
    big.width_mil = 10000.0;
    big.height_mil = 10000.0;
    big.pin_count = 400;
    big.pad_delay = 5.0;
    big.io_pad_area = 10.0;
    std::vector<chip::ChipInstance> chips;
    for (int c = 0; c < kParts; ++c) {
      chips.push_back({"chip" + std::to_string(c), big});
    }
    Partitioning pt(ar.graph, std::move(chips));
    const std::vector<dfg::NodeId> ops = ar.all_operations();
    // Balanced split: every partition gets floor(n/k) ops, the first
    // n % k partitions one extra, so none is ever empty.
    std::size_t first = 0;
    for (int p = 0; p < kParts; ++p) {
      const std::size_t size =
          ops.size() / kParts +
          (static_cast<std::size_t>(p) < ops.size() % kParts ? 1 : 0);
      pt.add_partition(
          "P" + std::to_string(p + 1),
          std::vector<dfg::NodeId>(
              ops.begin() + static_cast<long>(first),
              ops.begin() + static_cast<long>(first + size)),
          p);
      first += size;
    }
    return pt;
  }

  SaturatedSpace()
      : pt(make_partitioning()),
        ctx(pt, create_transfer_tasks(pt), bad::ClockSpec{300.0, 10, 1},
            DesignConstraints{1e9, 1e9}, FeasibilityCriteria{}) {
    bad::DesignPrediction p;
    p.style = bad::DesignStyle::Nonpipelined;
    p.module_set_label = "t";
    p.fu_alloc[dfg::OpKind::Mul] = 1;
    p.stages = 30;
    p.ii_dp = 30;
    p.ii_main = 30;
    p.latency_main = 30;
    p.register_bits = 32;
    p.total_area = StatVal(900.0, 1000.0, 1100.0);
    p.clock_overhead_ns = 4.0;
    pred.eligible.assign(
        kParts, std::vector<bad::DesignPrediction>(kCandidates, p));
    pred.raw = pred.eligible;
  }
};

TEST(ParallelSearch, SaturatedSpaceHonorsCapAtEveryThreadCount) {
  SaturatedSpace space;
  const std::size_t cap = 500;
  for (bool bound_pruning : {false, true}) {
    SCOPED_TRACE(bound_pruning ? "bounded" : "exhaustive");
    SearchOptions opt;
    opt.heuristic = Heuristic::Enumeration;
    opt.bound_pruning = bound_pruning;
    opt.record_all = true;
    opt.max_trials = cap;
    const SearchResult serial =
        find_feasible_implementations(space.ctx, space.pred, opt);
    EXPECT_EQ(serial.trials, cap);
    EXPECT_TRUE(serial.truncated);
    ASSERT_FALSE(serial.designs.empty());
    for (int threads : {2, 4, 8}) {
      opt.threads = threads;
      expect_identical(
          serial, find_feasible_implementations(space.ctx, space.pred, opt),
          threads);
    }
  }
}

std::size_t eligible_product(const ChopSession& session) {
  std::size_t product = 1;
  for (const auto& list : session.predictions().eligible) {
    product *= list.size();
  }
  return product;
}

void expect_same_observer_stream(const CaptureObserver& a,
                                 const CaptureObserver& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.done_calls, b.done_calls);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].trials, b.events[i].trials) << "event " << i;
    EXPECT_EQ(a.events[i].feasible, b.events[i].feasible) << "event " << i;
    EXPECT_EQ(a.events[i].best_ii, b.events[i].best_ii) << "event " << i;
    EXPECT_EQ(a.events[i].best_delay, b.events[i].best_delay) << "event " << i;
    EXPECT_EQ(a.events[i].trial_feasible, b.events[i].trial_feasible)
        << "event " << i;
    EXPECT_EQ(a.events[i].reason, b.events[i].reason) << "event " << i;
  }
}

/// Forces adversarial scheduling for the lifetime of the guard: the pool
/// constructed inside the search shuffles its task-source preference and
/// steal victims from `seed`, and every SharedFrontier::commit folds its
/// staged publishes in a seeded shuffle order instead of arrival order.
/// Both hooks reset to the deterministic default on destruction.
struct ScheduleChaos {
  explicit ScheduleChaos(std::uint64_t seed) {
    ThreadPool::set_scheduler_chaos_for_testing(seed);
    SharedFrontier::set_commit_shuffle_for_testing(
        seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  }
  ~ScheduleChaos() {
    ThreadPool::set_scheduler_chaos_for_testing(0);
    SharedFrontier::set_commit_shuffle_for_testing(0);
  }
};

/// Bounded (default) pruned search through the session's shared evaluator,
/// so the 64 adversarial replays below are mostly cache hits.
SearchResult run_scheduled(const ChopSession& session, int threads,
                           obs::SearchObserver* observer = nullptr,
                           std::size_t max_trials = 0) {
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.prune = true;
  opt.record_all = true;
  opt.threads = threads;
  opt.observer = observer;
  opt.max_trials = max_trials;
  return session.search(opt);
}

TEST(AdversarialScheduler, ByteIdenticalAcrossSixteenHostileSchedules) {
  ChopSession session = fig7_session(3);
  session.predict_partitions();
  const std::size_t space = eligible_product(session);
  CaptureObserver base_obs;
  const SearchResult base = run_scheduled(session, 1, &base_obs);
  ASSERT_FALSE(base.designs.empty());
  // Every leaf is either visited or accounted to a cut subtree.
  EXPECT_EQ(base.trials + base.bound_skipped_leaves, space);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      ScheduleChaos chaos(seed);
      CaptureObserver obs;
      const SearchResult got = run_scheduled(session, threads, &obs);
      expect_identical(base, got, threads);
      EXPECT_EQ(got.trials + got.bound_skipped_leaves, space);
      EXPECT_EQ(base.pruned_subtrees, got.pruned_subtrees);
      EXPECT_EQ(base.bound_skipped_leaves, got.bound_skipped_leaves);
      EXPECT_EQ(base.frontier_broadcasts, got.frontier_broadcasts);
      EXPECT_EQ(base.frontier_snapshot_hits, got.frontier_snapshot_hits);
      expect_same_observer_stream(base_obs, obs);
    }
  }
}

TEST(AdversarialScheduler, CappedRunsDeterministicUnderChaos) {
  // max_trials interacts with the wave pipeline (later waves are scheduled
  // with budgets derived from completed waves only) — the truncation point
  // must not move with the schedule.
  ChopSession session = fig7_session(2);
  session.predict_partitions();
  const std::size_t cap = 37;  // not on any unit or wave boundary
  const SearchResult base = run_scheduled(session, 1, nullptr, cap);
  EXPECT_TRUE(base.truncated);
  EXPECT_EQ(base.trials, cap);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (int threads : {2, 4, 8}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      ScheduleChaos chaos(seed);
      expect_identical(base, run_scheduled(session, threads, nullptr, cap),
                       threads);
    }
  }
}

TEST(SharedFrontierSearch, OnOffDesignSetsIdenticalUncapped) {
  // The cross-unit incumbent broadcast may only ever cut strictly
  // dominated subtrees: switching it off must reproduce the exact design
  // set while visiting at least as many leaves, and both runs must
  // account for every leaf in the odometer space.
  ChopSession session = fig7_session(3);
  session.predict_partitions();
  const std::size_t space = eligible_product(session);
  SearchOptions opt;
  opt.heuristic = Heuristic::Enumeration;
  opt.prune = true;
  opt.record_all = false;
  opt.threads = 4;
  opt.shared_frontier = false;
  const SearchResult off = session.search(opt);
  opt.shared_frontier = true;
  const SearchResult on = session.search(opt);
  ASSERT_FALSE(on.designs.empty());
  ASSERT_EQ(on.designs.size(), off.designs.size());
  for (std::size_t i = 0; i < on.designs.size(); ++i) {
    EXPECT_EQ(on.designs[i].choice, off.designs[i].choice) << "design " << i;
    EXPECT_EQ(on.designs[i].integration.ii_main,
              off.designs[i].integration.ii_main);
    EXPECT_EQ(on.designs[i].integration.system_delay_main,
              off.designs[i].integration.system_delay_main);
  }
  EXPECT_EQ(on.trials + on.bound_skipped_leaves, space);
  EXPECT_EQ(off.trials + off.bound_skipped_leaves, space);
  EXPECT_LE(on.trials, off.trials);
  EXPECT_EQ(off.frontier_broadcasts, 0u);
  EXPECT_EQ(off.frontier_snapshot_hits, 0u);
}

TEST(ThreadPool, ResolveThreadsAutoDetectsZeroAndNegative) {
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), ThreadPool::resolve_threads(-3));
}

TEST(ThreadPool, CallerCanHelpDrainTheQueue) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back([&ran] { ran.fetch_add(1); });
  }
  auto futures = pool.submit_batch(std::move(jobs));
  // The caller helps instead of blocking; whatever the workers have not
  // grabbed yet runs inline here.
  while (pool.try_run_one()) {
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 64; ++i) {
    done.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

}  // namespace
}  // namespace chop::core
