// Production-telemetry tests: end-to-end trace-id propagation through a
// served job (submit -> one connected span tree -> response echo), the
// metrics/healthz/profile protocol verbs, the Prometheus exposition
// round trip and lint, and DaemonTelemetry's flush-on-signal /
// finalize-on-any-exit guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "io/spec_writer.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"
#include "testing/scenario.hpp"

namespace chop {
namespace {

testing::ScenarioKnobs small_knobs(std::uint64_t seed = 7) {
  testing::ScenarioKnobs knobs;
  knobs.seed = seed;
  knobs.normalize();
  return knobs;
}

std::string small_spec(std::uint64_t seed = 7) {
  return io::write_project_string(testing::build_scenario(small_knobs(seed)));
}

serve::JsonValue parse_ok(const std::string& response) {
  serve::JsonValue parsed = serve::JsonValue::parse(response);
  const serve::JsonValue* ok = parsed.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->is_bool() && ok->as_bool())
      << "response not ok: " << response;
  return parsed;
}

std::string string_at(const serve::JsonValue& v, const char* key) {
  const serve::JsonValue* field = v.find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

double number_at(const serve::JsonValue& v, const char* key) {
  const serve::JsonValue* field = v.find(key);
  return field != nullptr && field->is_number() ? field->as_number() : -1.0;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream text;
  text << is.rdbuf();
  return text.str();
}

/// Files created under the test's working directory, removed on scope
/// exit so reruns start clean.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// --- trace propagation --------------------------------------------------

TEST(TelemetryTrace, JobFormsOneConnectedTree) {
  std::ostringstream trace_out;
  obs::JsonlTraceSink sink(trace_out);
  obs::install_trace_sink(&sink);

  std::string submit_trace;
  std::string result_trace;
  {
    serve::ServerOptions options;
    options.workers = 1;
    serve::ChopServer server(options);
    serve::Service service(server);

    serve::JsonValue submit_req;
    submit_req.set("op", serve::JsonValue(std::string("submit")));
    submit_req.set("id", serve::JsonValue(std::string("traced")));
    submit_req.set("spec", serve::JsonValue(small_spec()));
    const serve::JsonValue submitted =
        parse_ok(service.handle_line(submit_req.dump()));
    submit_trace = string_at(submitted, "trace");
    ASSERT_EQ(submit_trace.size(), 16u);
    ASSERT_NE(submit_trace, obs::trace_id_hex(0));

    const serve::JsonValue result = parse_ok(service.handle_line(
        R"({"op":"result","id":"traced","wait":true})"));
    result_trace = string_at(result, "trace");
    server.shutdown(true);
  }
  obs::install_trace_sink(nullptr);

  // The response echo: submit and result agree on the id.
  EXPECT_EQ(submit_trace, result_trace);

  // Every span of the job carries the trace id and parents chain back to
  // the serve.job root — one connected tree.
  std::set<long long> span_ids;
  std::vector<long long> parents;
  std::set<std::string> names;
  long long root_span = -1;
  std::istringstream lines(trace_out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const serve::JsonValue event = serve::JsonValue::parse(line);
    const serve::JsonValue* args = event.find("args");
    if (args == nullptr || string_at(*args, "trace") != submit_trace) continue;
    const std::string name = string_at(event, "name");
    names.insert(name);
    const double span = number_at(*args, "span");
    const double parent = number_at(*args, "parent");
    if (span >= 0) span_ids.insert(static_cast<long long>(span));
    if (parent >= 0) parents.push_back(static_cast<long long>(parent));
    if (name == "serve.job") {
      root_span = static_cast<long long>(span);
      EXPECT_EQ(parent, 0.0) << "serve.job must be the root span";
    }
  }
  ASSERT_FALSE(span_ids.empty()) << "no spans carried the job's trace id";
  EXPECT_NE(root_span, -1) << "no serve.job root span in the trace";
  EXPECT_TRUE(names.count("serve.queue_wait"));
  EXPECT_TRUE(names.count("serve.render"));
  EXPECT_TRUE(names.count("search.iterative") ||
              names.count("search.enumeration"));
  for (long long parent : parents) {
    EXPECT_TRUE(parent == 0 || span_ids.count(parent) != 0)
        << "span parent " << parent << " is not a span of this trace";
  }
}

TEST(TelemetryTrace, DistinctJobsGetDistinctIds) {
  serve::ServerOptions options;
  options.workers = 1;
  serve::ChopServer server(options);
  serve::Service service(server);

  serve::JsonValue req;
  req.set("op", serve::JsonValue(std::string("submit")));
  req.set("spec", serve::JsonValue(small_spec()));
  const std::string first =
      string_at(parse_ok(service.handle_line(req.dump())), "trace");
  const std::string second =
      string_at(parse_ok(service.handle_line(req.dump())), "trace");
  EXPECT_EQ(first.size(), 16u);
  EXPECT_EQ(second.size(), 16u);
  EXPECT_NE(first, second);
  server.shutdown(true);
}

// --- live introspection verbs -------------------------------------------

TEST(TelemetryVerbs, HealthzMetricsProfileServeLiveData) {
  serve::ServerOptions options;
  options.workers = 2;
  serve::ChopServer server(options);
  serve::Service service(server);

  serve::JsonValue submit_req;
  submit_req.set("op", serve::JsonValue(std::string("submit")));
  submit_req.set("id", serve::JsonValue(std::string("live")));
  submit_req.set("spec", serve::JsonValue(small_spec()));
  parse_ok(service.handle_line(submit_req.dump()));
  parse_ok(service.handle_line(R"({"op":"result","id":"live","wait":true})"));

  // healthz: liveness fields present and sane.
  const serve::JsonValue health =
      parse_ok(service.handle_line(R"({"op":"healthz"})"));
  EXPECT_EQ(string_at(health, "status"), "ok");
  EXPECT_GE(number_at(health, "uptime_ms"), 0.0);
  EXPECT_EQ(number_at(health, "workers"), 2.0);
  EXPECT_GE(number_at(health, "queue_capacity"), 1.0);
  const serve::JsonValue* accepting = health.find("accepting");
  ASSERT_NE(accepting, nullptr);
  EXPECT_TRUE(accepting->as_bool());

  // metrics: the full registry snapshot with sketch quantiles.
  const serve::JsonValue metrics =
      parse_ok(service.handle_line(R"({"op":"metrics"})"));
  const serve::JsonValue* m = metrics.find("metrics");
  ASSERT_NE(m, nullptr);
  const serve::JsonValue* histograms = m->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const serve::JsonValue* run_ms = histograms->find("serve.run_ms");
  ASSERT_NE(run_ms, nullptr) << "serve.run_ms histogram missing";
  EXPECT_GE(number_at(*run_ms, "count"), 1.0);
  EXPECT_GE(number_at(*run_ms, "p999"), number_at(*run_ms, "p50"));

  // profile: per-phase attribution, server-wide and per job.
  const serve::JsonValue profile =
      parse_ok(service.handle_line(R"({"op":"profile"})"));
  EXPECT_EQ(string_at(profile, "scope"), "server");
  const serve::JsonValue* data = profile.find("profile");
  ASSERT_NE(data, nullptr);
  EXPECT_GE(number_at(*data, "searches"), 1.0);
  const serve::JsonValue* phases = data->find("phases");
  ASSERT_NE(phases, nullptr);
  const serve::JsonValue* leaf = phases->find("leaf_eval");
  ASSERT_NE(leaf, nullptr);
  EXPECT_GE(number_at(*leaf, "calls"), 1.0);

  const serve::JsonValue per_job =
      parse_ok(service.handle_line(R"({"op":"profile","id":"live"})"));
  EXPECT_EQ(string_at(per_job, "scope"), "live");
  EXPECT_EQ(string_at(per_job, "trace").size(), 16u);
  const serve::JsonValue* job_data = per_job.find("profile");
  ASSERT_NE(job_data, nullptr);
  EXPECT_EQ(number_at(*job_data, "searches"), 1.0);

  const std::string missing =
      service.handle_line(R"({"op":"profile","id":"nope"})");
  EXPECT_NE(missing.find("not_found"), std::string::npos);

  server.shutdown(true);
}

TEST(TelemetryVerbs, PrometheusFormatLintsClean) {
  serve::ChopServer server;
  serve::Service service(server);
  const serve::JsonValue response = parse_ok(
      service.handle_line(R"({"op":"metrics","format":"prometheus"})"));
  const std::string text = string_at(response, "text");
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(obs::prometheus_lint(text), "");
  EXPECT_NE(text.find("# TYPE chop_serve_workers gauge"), std::string::npos)
      << text;
  server.shutdown(true);
}

TEST(TelemetryVerbs, RejectsUnknownFormatAndKeys) {
  serve::ChopServer server;
  serve::Service service(server);
  EXPECT_NE(service.handle_line(R"({"op":"metrics","format":"xml"})")
                .find("invalid_request"),
            std::string::npos);
  EXPECT_NE(service.handle_line(R"({"op":"healthz","id":"x"})")
                .find("invalid_request"),
            std::string::npos);
  server.shutdown(true);
}

// --- Prometheus round trip ----------------------------------------------

TEST(TelemetryPrometheus, RoundTripParsesBack) {
  obs::MetricsSnapshot snap;
  snap.counters["serve.submitted"] = 42;
  snap.gauges["serve.workers"] = 4.0;
  obs::MetricsSnapshot::HistogramStats h;
  h.count = 100;
  h.sum = 250.0;
  h.min = 0.5;
  h.max = 9.5;
  h.mean = 2.5;
  h.p50 = 2.0;
  h.p90 = 5.0;
  h.p95 = 6.0;
  h.p99 = 8.0;
  h.p999 = 9.0;
  snap.histograms["serve.e2e_ms"] = h;

  const std::string text = obs::to_prometheus(snap);
  EXPECT_EQ(obs::prometheus_lint(text), "");

  std::vector<obs::PromFamily> families;
  std::string error;
  ASSERT_TRUE(obs::parse_prometheus(text, &families, &error)) << error;
  ASSERT_EQ(families.size(), 3u);

  const obs::PromFamily* counter = nullptr;
  const obs::PromFamily* gauge = nullptr;
  const obs::PromFamily* summary = nullptr;
  for (const obs::PromFamily& family : families) {
    if (family.name == "chop_serve_submitted_total") counter = &family;
    if (family.name == "chop_serve_workers") gauge = &family;
    if (family.name == "chop_serve_e2e_ms") summary = &family;
  }
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->type, "counter");
  ASSERT_EQ(counter->samples.size(), 1u);
  EXPECT_EQ(counter->samples[0].value, 42.0);

  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->type, "gauge");
  ASSERT_EQ(gauge->samples.size(), 1u);
  EXPECT_EQ(gauge->samples[0].value, 4.0);

  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->type, "summary");
  // 5 quantiles + _sum + _count.
  ASSERT_EQ(summary->samples.size(), 7u);
  double p999 = -1.0;
  double count = -1.0;
  for (const obs::PromSample& sample : summary->samples) {
    if (sample.labels == "quantile=\"0.999\"") p999 = sample.value;
    if (sample.name == "chop_serve_e2e_ms_count") count = sample.value;
  }
  EXPECT_EQ(p999, 9.0);
  EXPECT_EQ(count, 100.0);
}

TEST(TelemetryPrometheus, LintCatchesViolations) {
  // Orphan sample: no preceding # TYPE line.
  EXPECT_NE(obs::prometheus_lint("chop_orphan 1\n"), "");
  // Duplicate family.
  EXPECT_NE(obs::prometheus_lint("# TYPE chop_a counter\nchop_a 1\n"
                                 "# TYPE chop_a counter\nchop_a 2\n"),
            "");
  // Invalid metric name.
  EXPECT_NE(obs::prometheus_lint("# TYPE 9bad counter\n9bad 1\n"), "");
  // Unknown type.
  EXPECT_NE(obs::prometheus_lint("# TYPE chop_b wibble\nchop_b 1\n"), "");
  // A correct exposition passes.
  EXPECT_EQ(obs::prometheus_lint("# TYPE chop_ok gauge\nchop_ok 3.5\n"), "");
}

// --- daemon telemetry lifecycle -----------------------------------------

TEST(TelemetryDaemon, FlushDumpsWithoutClosingThenFinalizeCloses) {
  TempFile trace_file("telemetry_test_trace.json");
  TempFile metrics_file("telemetry_test_metrics.json");
  TempFile jsonl_file("telemetry_test_metrics.jsonl");
  TempFile prom_file("telemetry_test.prom");

  serve::TelemetryOptions options;
  options.trace_path = trace_file.path;
  options.metrics_path = metrics_file.path;
  options.metrics_jsonl_path = jsonl_file.path;
  options.prom_path = prom_file.path;
  options.interval = std::chrono::milliseconds(3600000);  // ticks on demand
  serve::DaemonTelemetry telemetry(options);
  std::string error;
  ASSERT_TRUE(telemetry.start(&error)) << error;

  obs::MetricsRegistry::global().counter("telemetry_test.events").add(5);
  { obs::TraceSpan span("telemetry_test.span"); }

  // The SIGUSR1 path (via the watcher, as the signal handler would). The
  // wait is condition-variable driven; the timeout is a generous CI
  // ceiling, not a pacing knob.
  telemetry.request_flush();
  ASSERT_TRUE(telemetry.wait_for_flushes(1, std::chrono::seconds(30)))
      << "watcher never flushed";

  // Mid-run dump: trace bytes on disk, array NOT terminated, tracing
  // still live afterwards.
  std::string trace_text = slurp(trace_file.path);
  EXPECT_NE(trace_text.find("telemetry_test.span"), std::string::npos);
  EXPECT_EQ(trace_text.find("\n]}\n"), std::string::npos)
      << "flush must not close the trace array";
  EXPECT_NE(slurp(metrics_file.path).find("telemetry_test.events"),
            std::string::npos);
  EXPECT_EQ(obs::prometheus_lint(slurp(prom_file.path)), "");
  EXPECT_NE(slurp(jsonl_file.path).find("\"ts_ms\""), std::string::npos);

  { obs::TraceSpan span("telemetry_test.after_flush"); }

  telemetry.finalize();
  telemetry.finalize();  // idempotent

  trace_text = slurp(trace_file.path);
  EXPECT_NE(trace_text.find("telemetry_test.after_flush"), std::string::npos);
  // Now a complete, parseable Chrome trace document.
  const serve::JsonValue doc = serve::JsonValue::parse(trace_text);
  const serve::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  EXPECT_GE(events->as_array().size(), 2u);
}

TEST(TelemetryDaemon, StartFailsOnUnwritablePaths) {
  serve::TelemetryOptions options;
  options.trace_path = "no_such_dir/telemetry_trace.json";
  serve::DaemonTelemetry telemetry(options);
  std::string error;
  EXPECT_FALSE(telemetry.start(&error));
  EXPECT_NE(error.find("trace"), std::string::npos);
}

TEST(TelemetryDaemon, ExporterTicksPeriodically) {
  TempFile jsonl_file("telemetry_test_ticks.jsonl");
  obs::ExporterOptions options;
  options.jsonl_path = jsonl_file.path;
  options.interval = std::chrono::milliseconds(20);
  obs::SnapshotExporter exporter(options);
  std::string error;
  ASSERT_TRUE(exporter.start(&error)) << error;
  EXPECT_TRUE(exporter.wait_for_ticks(2, std::chrono::seconds(30)))
      << "exporter never reached two periodic ticks";
  exporter.stop();
  EXPECT_GE(exporter.ticks(), 2u);

  std::istringstream lines(slurp(jsonl_file.path));
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const serve::JsonValue entry = serve::JsonValue::parse(line);
    EXPECT_NE(entry.find("ts_ms"), nullptr);
    EXPECT_NE(entry.find("metrics"), nullptr);
    ++parsed;
  }
  EXPECT_GE(parsed, 2u);
}

}  // namespace
}  // namespace chop
