// chop_serve unit and integration tests: the JSON layer, the protocol
// validator, the bounded priority queue, the evaluator pool, and the
// ChopServer lifecycle — including the serving layer's central oracle,
// byte-identical results between a served job and a direct
// ChopSession run of the same project.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/session.hpp"
#include "io/spec_writer.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "testing/scenario.hpp"

namespace chop {
namespace {

testing::ScenarioKnobs small_knobs(std::uint64_t seed = 7) {
  testing::ScenarioKnobs knobs;
  knobs.seed = seed;
  knobs.normalize();
  return knobs;
}

/// A scenario whose exhaustive keep-all enumeration takes long enough
/// that queue-backpressure tests can fill the queue behind it.
testing::ScenarioKnobs heavy_knobs() {
  testing::ScenarioKnobs knobs;
  knobs.seed = 11;
  knobs.operations = 40;
  knobs.depth = 6;
  knobs.chips = 3;
  knobs.partitions = 3;
  knobs.modules_per_op = 4;
  knobs.performance_ns = 300000;
  knobs.delay_ns = 300000;
  knobs.normalize();
  return knobs;
}

serve::JobOptions heavy_job_options() {
  serve::JobOptions options;
  options.heuristic = core::Heuristic::Enumeration;
  options.keep_all = true;  // exhaustive walk, no level-2 pruning
  options.max_trials = 200000;
  return options;
}

/// Replays exactly what ChopServer::run_job does, without a server: the
/// reference output a served job must match byte for byte.
std::string direct_render(const io::Project& project,
                          const serve::JobOptions& job) {
  core::ChopSession session = project.make_session();
  session.predict_partitions();
  core::SearchOptions search;
  search.heuristic = job.heuristic;
  search.threads = job.threads;
  search.prune = !job.keep_all;
  search.bound_pruning = job.bound_pruning && !job.keep_all;
  search.max_trials = job.max_trials;
  if (job.keep_all && search.max_trials == 0) search.max_trials = 500000;
  return serve::render_search_result(session.search(search)).dump();
}

// --- JSON layer ---------------------------------------------------------

TEST(ServeJson, ParseDumpRoundTripIsStable) {
  const std::string doc =
      R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"k":3}})";
  const serve::JsonValue parsed = serve::JsonValue::parse(doc);
  const std::string once = parsed.dump();
  EXPECT_EQ(once, serve::JsonValue::parse(once).dump());
}

TEST(ServeJson, RejectsNonFiniteAndMalformed) {
  EXPECT_THROW(serve::JsonValue::parse("{\"a\":NaN}"), serve::JsonError);
  EXPECT_THROW(serve::JsonValue::parse("{\"a\":Infinity}"), serve::JsonError);
  EXPECT_THROW(serve::JsonValue::parse("{\"a\":1e999}"), serve::JsonError);
  EXPECT_THROW(serve::JsonValue::parse("{\"a\":1} trailing"),
               serve::JsonError);
  EXPECT_THROW(serve::JsonValue::parse("{\"a\":}"), serve::JsonError);
  EXPECT_THROW(serve::JsonValue::parse(""), serve::JsonError);
}

TEST(ServeJson, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += "]";
  EXPECT_THROW(serve::JsonValue::parse(deep, 64), serve::JsonError);
  EXPECT_NO_THROW(serve::JsonValue::parse(deep, 128));
}

TEST(ServeJson, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(serve::json_number(42.0), "42");
  EXPECT_EQ(serve::json_number(-3.0), "-3");
  EXPECT_EQ(serve::JsonValue(7.0).dump(), "7");
}

// --- Protocol validation ------------------------------------------------

TEST(ServeProtocol, ParsesMinimalOps) {
  const serve::ProtocolLimits limits;
  EXPECT_EQ(serve::parse_request(R"({"op":"stats"})", limits).op,
            serve::RequestOp::Stats);
  const serve::Request cancel =
      serve::parse_request(R"({"op":"cancel","id":"j1"})", limits);
  EXPECT_EQ(cancel.op, serve::RequestOp::Cancel);
  EXPECT_EQ(cancel.id, "j1");
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  const serve::ProtocolLimits limits;
  const auto code = [&](const std::string& line) -> std::string {
    try {
      serve::parse_request(line, limits);
    } catch (const serve::ProtocolError& e) {
      return e.code();
    }
    return "";
  };
  EXPECT_EQ(code("not json"), "parse_error");
  EXPECT_EQ(code(R"({"op":"frobnicate"})"), "unknown_op");
  EXPECT_EQ(code(R"({"op":"stats","bogus":1})"), "invalid_request");
  EXPECT_EQ(code(R"({"op":"submit"})"), "invalid_request");  // no spec
  EXPECT_EQ(code(R"({"op":"submit","spec":"x","spec_path":"y"})"),
            "invalid_request");
  EXPECT_EQ(code(R"({"op":"submit","spec":"x","heuristic":"Q"})"),
            "invalid_request");
  EXPECT_EQ(code(R"({"op":"submit","spec":"x","threads":-1})"),
            "invalid_request");
  EXPECT_EQ(code(R"({"op":"submit","spec":"x","threads":257})"),
            "invalid_request");
  // threads:0 = server auto-detects — valid since the work-stealing pool.
  EXPECT_EQ(code(R"({"op":"submit","spec":"x","threads":0})"), "");
  EXPECT_EQ(code(R"({"op":"status"})"), "invalid_request");  // no id
  EXPECT_EQ(code(R"({"op":"stats","op":"stats"})"), "invalid_request");
  serve::ProtocolLimits tight;
  tight.max_line_bytes = 8;
  EXPECT_EQ([&]() -> std::string {
    try {
      serve::parse_request(R"({"op":"stats"})", tight);
    } catch (const serve::ProtocolError& e) {
      return e.code();
    }
    return "";
  }(), "payload_too_large");
}

// --- Bounded priority queue ---------------------------------------------

std::shared_ptr<serve::Job> queue_job(const std::string& id, int priority) {
  auto job = std::make_shared<serve::Job>();
  job->id = id;
  job->options.priority = priority;
  return job;
}

TEST(ServeQueue, RejectsBeyondCapacity) {
  serve::JobQueue queue(2);
  EXPECT_EQ(queue.push(queue_job("a", 0)), serve::JobQueue::PushResult::Accepted);
  EXPECT_EQ(queue.push(queue_job("b", 0)), serve::JobQueue::PushResult::Accepted);
  EXPECT_EQ(queue.push(queue_job("c", 0)),
            serve::JobQueue::PushResult::Overloaded);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(ServeQueue, PopsByPriorityThenFifo) {
  serve::JobQueue queue(8);
  queue.push(queue_job("low1", -1));
  queue.push(queue_job("mid1", 0));
  queue.push(queue_job("high", 5));
  queue.push(queue_job("mid2", 0));
  EXPECT_EQ(queue.pop()->id, "high");
  EXPECT_EQ(queue.pop()->id, "mid1");
  EXPECT_EQ(queue.pop()->id, "mid2");
  EXPECT_EQ(queue.pop()->id, "low1");
}

TEST(ServeQueue, RemoveAndDrainAndClose) {
  serve::JobQueue queue(8);
  queue.push(queue_job("a", 0));
  queue.push(queue_job("b", 1));
  ASSERT_NE(queue.remove("a"), nullptr);
  EXPECT_EQ(queue.remove("a"), nullptr);
  EXPECT_EQ(queue.depth(), 1u);
  const auto drained = queue.drain_now();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0]->id, "b");
  queue.close();
  EXPECT_EQ(queue.push(queue_job("c", 0)), serve::JobQueue::PushResult::Closed);
  EXPECT_EQ(queue.pop(), nullptr);  // closed + drained
}

// --- Evaluator pool -----------------------------------------------------

TEST(ServeEvaluatorPool, ReusesByFingerprintAndEvicts) {
  serve::EvaluatorPool pool(1);
  const auto a = pool.acquire(100);
  EXPECT_EQ(pool.acquire(100), a);
  const auto b = pool.acquire(200);  // capacity 1: evicts fingerprint 100
  EXPECT_NE(b, a);
  EXPECT_NE(pool.acquire(100), a);  // recreated after eviction
  const serve::EvaluatorPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.created, 3u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.evicted, 2u);
  // `a` survived its eviction because we still hold the shared_ptr.
  EXPECT_EQ(a->stats().hits, 0u);
}

// --- Server lifecycle ---------------------------------------------------

TEST(ServeServer, ServedResultIsByteIdenticalToDirectRun) {
  const io::Project project = testing::build_scenario(small_knobs());
  serve::JobOptions job;
  job.heuristic = core::Heuristic::Enumeration;
  const std::string expected = direct_render(project, job);

  serve::ServerOptions options;
  options.workers = 2;
  serve::ChopServer server(options);
  const serve::SubmitOutcome submitted = server.submit(project, job);
  ASSERT_EQ(submitted.status, serve::SubmitStatus::Accepted);
  const serve::JobView view = server.view(submitted.id, /*wait_terminal=*/true);
  ASSERT_TRUE(view.found);
  ASSERT_EQ(view.state, serve::JobState::Done);
  EXPECT_EQ(view.result_json, expected);
}

TEST(ServeServer, SharedCacheDoesNotChangeResults) {
  const io::Project project = testing::build_scenario(small_knobs(21));
  serve::JobOptions job;
  job.heuristic = core::Heuristic::Enumeration;
  const std::string expected = direct_render(project, job);

  for (const bool share : {true, false}) {
    serve::ServerOptions options;
    options.workers = 2;
    options.share_evaluators = share;
    serve::ChopServer server(options);
    std::vector<std::string> ids;
    for (int i = 0; i < 4; ++i) {
      const serve::SubmitOutcome out = server.submit(project, job);
      ASSERT_EQ(out.status, serve::SubmitStatus::Accepted);
      ids.push_back(out.id);
    }
    for (const std::string& id : ids) {
      const serve::JobView view = server.view(id, /*wait_terminal=*/true);
      ASSERT_EQ(view.state, serve::JobState::Done);
      EXPECT_EQ(view.result_json, expected);
    }
    if (share) {
      // Jobs 2..4 hit job 1's warm cache.
      EXPECT_GT(server.stats().eval_cache.hits, 0u);
      EXPECT_EQ(server.stats().evaluator_pool.reused, 3u);
    }
  }
}

TEST(ServeServer, DuplicateIdAndUnknownIdAreRejected) {
  const io::Project project = testing::build_scenario(small_knobs());
  serve::ChopServer server;
  ASSERT_EQ(server.submit(project, {}, "twin").status,
            serve::SubmitStatus::Accepted);
  EXPECT_EQ(server.submit(project, {}, "twin").status,
            serve::SubmitStatus::DuplicateId);
  EXPECT_FALSE(server.view("nope").found);
  EXPECT_EQ(server.cancel("nope"), serve::CancelOutcome::NotFound);
}

TEST(ServeServer, OverloadRejectsAndServerStaysHealthy) {
  const io::Project heavy = testing::build_scenario(heavy_knobs());
  serve::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  serve::ChopServer server(options);

  std::vector<std::string> accepted;
  std::size_t overloaded = 0;
  for (int i = 0; i < 32; ++i) {
    const serve::SubmitOutcome out = server.submit(heavy, heavy_job_options());
    if (out.status == serve::SubmitStatus::Accepted) {
      accepted.push_back(out.id);
    } else {
      ASSERT_EQ(out.status, serve::SubmitStatus::Overloaded);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(server.stats().rejected_overload, overloaded);

  // Cancel everything and drain: the server must come back clean.
  for (const std::string& id : accepted) server.cancel(id);
  server.shutdown(true);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.completed + stats.cancelled + stats.deadline_exceeded +
                stats.failed,
            accepted.size());
}

TEST(ServeServer, CancelQueuedJobBehindHeavyHead) {
  const io::Project heavy = testing::build_scenario(heavy_knobs());
  const io::Project small = testing::build_scenario(small_knobs());
  serve::ServerOptions options;
  options.workers = 1;
  serve::ChopServer server(options);

  const serve::SubmitOutcome head = server.submit(heavy, heavy_job_options());
  ASSERT_EQ(head.status, serve::SubmitStatus::Accepted);
  const serve::SubmitOutcome queued = server.submit(small, {});
  ASSERT_EQ(queued.status, serve::SubmitStatus::Accepted);

  const serve::CancelOutcome outcome = server.cancel(queued.id);
  // The worker is busy with the heavy head, so the small job is still
  // queued; allow the (practically impossible) race to the running state.
  EXPECT_TRUE(outcome == serve::CancelOutcome::CancelledQueued ||
              outcome == serve::CancelOutcome::CancellingRunning);
  server.cancel(head.id);
  server.shutdown(true);
  EXPECT_EQ(server.view(queued.id).state, serve::JobState::Cancelled);
  const serve::JobView head_view = server.view(head.id);
  EXPECT_TRUE(head_view.state == serve::JobState::Cancelled ||
              head_view.state == serve::JobState::Done);
}

TEST(ServeServer, ShutdownDrainRunsEveryAcceptedJob) {
  const io::Project project = testing::build_scenario(small_knobs());
  serve::ServerOptions options;
  options.workers = 2;
  serve::ChopServer server(options);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(server.submit(project, {}).id);
  }
  server.shutdown(true);
  for (const std::string& id : ids) {
    EXPECT_EQ(server.view(id).state, serve::JobState::Done);
  }
  EXPECT_EQ(server.submit(project, {}).status,
            serve::SubmitStatus::ShuttingDown);
  EXPECT_FALSE(server.accepting());
  server.shutdown(true);  // idempotent
}

TEST(ServeServer, AbortiveShutdownCancelsQueuedJobs) {
  const io::Project heavy = testing::build_scenario(heavy_knobs());
  serve::ServerOptions options;
  options.workers = 1;
  serve::ChopServer server(options);
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(server.submit(heavy, heavy_job_options()).id);
  }
  server.shutdown(false);
  std::size_t cancelled = 0;
  for (const std::string& id : ids) {
    const serve::JobView view = server.view(id);
    EXPECT_TRUE(is_terminal(view.state));
    if (view.state == serve::JobState::Cancelled) ++cancelled;
  }
  // The head job may complete or cancel depending on timing, but the
  // queued tail must have been cancelled without running.
  EXPECT_GE(cancelled, ids.size() - 1);
}

// --- Service (NDJSON dispatch) ------------------------------------------

TEST(ServeService, SubmitStatusResultRoundTrip) {
  const io::Project project = testing::build_scenario(small_knobs());
  const std::string spec = io::write_project_string(project);
  serve::ChopServer server;
  serve::Service service(server);

  const std::string submit_response = service.handle_line(
      R"({"op":"submit","id":"r1","spec":)" + serve::json_quote(spec) + "}");
  EXPECT_NE(submit_response.find("\"ok\":true"), std::string::npos);

  const std::string result_response =
      service.handle_line(R"({"op":"result","id":"r1","wait":true})");
  EXPECT_NE(result_response.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(result_response.find("\"search\":"), std::string::npos);

  // The embedded search fragment is byte-identical to the direct run.
  serve::JobOptions defaults;
  const std::string expected = direct_render(project, defaults);
  EXPECT_NE(result_response.find("\"search\":" + expected),
            std::string::npos);

  const std::string stats_response = service.handle_line(R"({"op":"stats"})");
  EXPECT_NE(stats_response.find("\"ok\":true"), std::string::npos);
}

TEST(ServeService, MalformedLinesGetStructuredErrors) {
  serve::ChopServer server;
  serve::Service service(server);
  const auto expect_error = [&](const std::string& line,
                                const std::string& code) {
    const std::string response = service.handle_line(line);
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("\"code\":\"" + code + "\""), std::string::npos)
        << response;
  };
  expect_error("garbage", "parse_error");
  expect_error(R"({"op":"submit","spec":"not a chop file"})", "invalid_spec");
  expect_error(R"({"op":"submit","spec_path":"/does/not/exist.chop"})",
               "spec_unreadable");
  expect_error(R"({"op":"result","id":"ghost"})", "not_found");
  expect_error(R"({"op":"status"})", "invalid_request");
  expect_error(R"({"op":"launch_missiles"})", "unknown_op");
}

}  // namespace
}  // namespace chop
