// The paper's headline quantitative claims, encoded as regressions so the
// reproduction cannot silently drift away from them. Each test quotes the
// claim it guards. (These overlap deliberately with finer-grained suites:
// this file is the at-a-glance scoreboard.)
#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "core/session.hpp"
#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"
#include "util/timer.hpp"

namespace chop {
namespace {

const lib::ComponentLibrary& library() {
  static const lib::ComponentLibrary lib = lib::dac91_experiment_library();
  return lib;
}

core::ChopSession experiment(int exp, int nparts,
                             chip::ChipPackage pkg = chip::mosis_package_84()) {
  static const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  std::vector<chip::ChipInstance> chips;
  for (int c = 0; c < nparts; ++c) {
    chips.push_back({"chip" + std::to_string(c), pkg});
  }
  core::Partitioning pt(ar.graph, std::move(chips));
  const auto cuts =
      nparts == 1
          ? std::vector<std::vector<dfg::NodeId>>{ar.all_operations()}
          : (nparts == 2 ? dfg::ar_two_way_cut(ar) : dfg::ar_three_way_cut(ar));
  for (int p = 0; p < nparts; ++p) {
    pt.add_partition("P" + std::to_string(p + 1),
                     cuts[static_cast<std::size_t>(p)], p);
  }
  core::ChopConfig config;
  if (exp == 1) {
    config.style.clocking = bad::ClockingStyle::SingleCycle;
    config.clocks = {300.0, 10, 1};
    config.constraints = {30000.0, 30000.0};
  } else {
    config.style.clocking = bad::ClockingStyle::MultiCycle;
    config.clocks = {300.0, 1, 1};
    config.constraints = {20000.0, 20000.0};
  }
  return core::ChopSession(library(), std::move(pt), config);
}

Cycles best_ii(core::ChopSession& session,
               core::Heuristic h = core::Heuristic::Enumeration) {
  session.predict_partitions();
  core::SearchOptions options;
  options.heuristic = h;
  const core::SearchResult r = session.search(options);
  return r.designs.empty() ? -1 : r.designs.front().integration.ii_main;
}

TEST(PaperClaims, DoublingChipAreaDoublesPerformance) {
  // §3.1: "two times higher performance can be obtained easily by
  // doubling the available chip area."
  core::ChopSession one = experiment(1, 1);
  core::ChopSession two = experiment(1, 2);
  const Cycles ii1 = best_ii(one);
  const Cycles ii2 = best_ii(two);
  ASSERT_GT(ii1, 0);
  ASSERT_GT(ii2, 0);
  EXPECT_GE(static_cast<double>(ii1) / static_cast<double>(ii2), 2.0);
}

TEST(PaperClaims, MoreChipsIsNotAlwaysBetter) {
  // §3.1: "partitioning a design onto more and more chips in order to
  // improve the performance or system delay characteristics may not
  // always be possible ... chip pins become the bottleneck."
  core::ChopSession two = experiment(1, 2);
  core::ChopSession three = experiment(1, 3);
  const Cycles ii2 = best_ii(two);
  const Cycles ii3 = best_ii(three);
  ASSERT_GT(ii2, 0);
  ASSERT_GT(ii3, 0);
  EXPECT_GE(ii3, ii2);  // the third chip buys nothing here
}

TEST(PaperClaims, AdjustedClockNearTheInput) {
  // Table 4's clock column: 308-312 ns around the 300 ns input.
  core::ChopSession session = experiment(1, 2);
  session.predict_partitions();
  const core::SearchResult r = session.search({});
  ASSERT_FALSE(r.designs.empty());
  const Ns clock = r.designs.front().integration.clock_ns();
  EXPECT_GT(clock, 300.0);
  EXPECT_LT(clock, 320.0);
}

TEST(PaperClaims, MultiCycleUsesAFasterClockMoreEfficiently) {
  // §3.2: "a multi-cycle-operation architecture allows a more efficient
  // use of a faster clock ... resulting in higher performance designs."
  core::ChopSession exp1 = experiment(1, 2);
  core::ChopSession exp2 = experiment(2, 2);
  exp1.predict_partitions();
  exp2.predict_partitions();
  const core::SearchResult r1 = exp1.search({});
  const core::SearchResult r2 = exp2.search({});
  ASSERT_FALSE(r1.designs.empty());
  ASSERT_FALSE(r2.designs.empty());
  EXPECT_LT(r2.designs.front().integration.performance_ns.likely(),
            r1.designs.front().integration.performance_ns.likely());
  EXPECT_GT(r2.designs.front().integration.clock_ns(),
            r1.designs.front().integration.clock_ns());
}

TEST(PaperClaims, IterativeHeuristicIsOrdersOfMagnitudeCheaper) {
  // Table 4: E needs 156/1050 trials where I needs 9.
  core::ChopSession session = experiment(1, 3);
  session.predict_partitions();
  core::SearchOptions e;
  e.heuristic = core::Heuristic::Enumeration;
  // The Table 4 trial counts are for exhaustive enumeration; disable
  // branch-and-bound so the comparison stays paper-faithful.
  e.bound_pruning = false;
  core::SearchOptions i;
  i.heuristic = core::Heuristic::Iterative;
  const core::SearchResult re = session.search(e);
  const core::SearchResult ri = session.search(i);
  ASSERT_FALSE(re.designs.empty());
  ASSERT_FALSE(ri.designs.empty());
  EXPECT_GE(re.trials, 20 * ri.trials);
  EXPECT_EQ(re.designs.front().integration.ii_main,
            ri.designs.front().integration.ii_main);
}

TEST(PaperClaims, PruningGivesOrdersOfMagnitudeSpeedup) {
  // §3.1: keeping all implementations cost 61.40 s against sub-second
  // pruned runs "showing the advantage of the pruning techniques".
  core::ChopSession session = experiment(1, 2);
  session.predict_partitions();
  core::SearchOptions pruned;
  pruned.heuristic = core::Heuristic::Enumeration;
  // The §3.1 claim is about level-1/level-2 pruning; keep branch-and-bound
  // out so both trial counts mean "leaves visited by the paper's walks".
  pruned.bound_pruning = false;
  core::SearchOptions keep_all = pruned;
  keep_all.prune = false;
  keep_all.max_trials = 300000;
  const core::SearchResult rp = session.search(pruned);
  const core::SearchResult rk = session.search(keep_all);
  EXPECT_GE(rk.trials, 100 * rp.trials);
}

TEST(PaperClaims, FeasiblePredictionsAreATinyFractionOfTotals) {
  // Tables 3/5: e.g. 5 of 111, 43 of 1818 — the design space dwarfs the
  // feasible set.
  for (int exp : {1, 2}) {
    for (int nparts : {2, 3}) {
      core::ChopSession session = experiment(exp, nparts);
      const core::PredictionStats stats = session.predict_partitions();
      EXPECT_LT(stats.feasible * 10, stats.total)
          << "exp " << exp << ", " << nparts << " partitions";
    }
  }
}

TEST(PaperClaims, SearchIsInteractive) {
  // §4: "The designer can easily check the effects of system-level
  // decisions in real-time." Our pruned searches complete in
  // milliseconds — enforce a generous ceiling so regressions surface.
  Timer timer;
  core::ChopSession session = experiment(1, 3);
  session.predict_partitions();
  (void)session.search({});
  EXPECT_LT(timer.elapsed_ms(), 2000.0);
}

}  // namespace
}  // namespace chop
