// Tests for the urgency task scheduler of §2.5: precedence, shared-pin
// and memory-port capacities, and the pipelined modulo folding.
#include "schedule/task_schedule.hpp"

#include <gtest/gtest.h>

namespace chop::sched {
namespace {

TEST(TaskGraph, BuildersValidate) {
  TaskGraph tg;
  const int r = tg.add_resource(4);
  const int a = tg.add_task({"a", 2, {{r, 2}}});
  const int b = tg.add_task({"b", 3, {{r, 2}}});
  tg.add_precedence(a, b);
  EXPECT_NO_THROW(tg.validate());
  EXPECT_THROW(tg.add_precedence(a, a), Error);
  EXPECT_THROW(tg.add_precedence(a, 99), Error);
  EXPECT_THROW(tg.add_task({"bad", -1, {}}), Error);
  EXPECT_THROW(tg.add_resource(-1), Error);
}

TEST(TaskGraph, ValidateCatchesBadDemand) {
  TaskGraph tg;
  tg.add_task({"a", 1, {{0, 1}}});  // resource 0 does not exist
  EXPECT_THROW(tg.validate(), Error);
}

TEST(UrgencySchedule, ChainMakespanIsSum) {
  TaskGraph tg;
  const int a = tg.add_task({"a", 3, {}});
  const int b = tg.add_task({"b", 4, {}});
  const int c = tg.add_task({"c", 5, {}});
  tg.add_precedence(a, b);
  tg.add_precedence(b, c);
  const TaskSchedule s = urgency_schedule(tg, 0);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.makespan, 12);
  EXPECT_EQ(s.start[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(s.start[static_cast<std::size_t>(b)], 3);
  EXPECT_EQ(s.start[static_cast<std::size_t>(c)], 7);
}

TEST(UrgencySchedule, IndependentTasksOverlap) {
  TaskGraph tg;
  tg.add_task({"a", 5, {}});
  tg.add_task({"b", 5, {}});
  const TaskSchedule s = urgency_schedule(tg, 0);
  EXPECT_EQ(s.makespan, 5);
}

TEST(UrgencySchedule, SharedResourceSerializes) {
  TaskGraph tg;
  const int pins = tg.add_resource(8);
  tg.add_task({"t1", 4, {{pins, 8}}});
  tg.add_task({"t2", 4, {{pins, 8}}});
  const TaskSchedule s = urgency_schedule(tg, 0);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.makespan, 8);  // both need every pin: serialize
}

TEST(UrgencySchedule, PartialSharingOverlaps) {
  TaskGraph tg;
  const int pins = tg.add_resource(8);
  tg.add_task({"t1", 4, {{pins, 4}}});
  tg.add_task({"t2", 4, {{pins, 4}}});
  const TaskSchedule s = urgency_schedule(tg, 0);
  EXPECT_EQ(s.makespan, 4);
}

TEST(UrgencySchedule, OverCapacityTaskInfeasible) {
  TaskGraph tg;
  const int pins = tg.add_resource(4);
  tg.add_task({"big", 2, {{pins, 5}}});
  const TaskSchedule s = urgency_schedule(tg, 0);
  EXPECT_FALSE(s.feasible);
}

TEST(UrgencySchedule, UrgentChainGoesFirst) {
  // Two chains compete for one resource; the longer chain must not be
  // starved or the makespan grows.
  TaskGraph tg;
  const int res = tg.add_resource(1);
  const int long1 = tg.add_task({"l1", 2, {{res, 1}}});
  const int long2 = tg.add_task({"l2", 6, {}});
  tg.add_precedence(long1, long2);
  tg.add_task({"short", 2, {{res, 1}}});
  const TaskSchedule s = urgency_schedule(tg, 0);
  ASSERT_TRUE(s.feasible);
  // Urgency picks l1 (critical path 8) before short: makespan 8, not 10.
  EXPECT_EQ(s.makespan, 8);
  EXPECT_EQ(s.start[static_cast<std::size_t>(long1)], 0);
}

TEST(UrgencySchedule, ModuloFoldingConstrainsSteadyState) {
  // One resource of capacity 1, two 2-cycle users: fine one-shot within a
  // long window, but at II=2 the steady state needs 4 resource-cycles per
  // 2-cycle window -> only schedulable by... not at all. At II=4 it fits.
  TaskGraph tg;
  const int res = tg.add_resource(1);
  tg.add_task({"u1", 2, {{res, 1}}});
  tg.add_task({"u2", 2, {{res, 1}}});
  EXPECT_FALSE(urgency_schedule(tg, 2).feasible);
  EXPECT_TRUE(urgency_schedule(tg, 4).feasible);
  EXPECT_TRUE(urgency_schedule(tg, 0).feasible);
}

TEST(UrgencySchedule, ZeroDurationTasksPlaceCleanly) {
  TaskGraph tg;
  const int a = tg.add_task({"a", 0, {}});
  const int b = tg.add_task({"b", 3, {}});
  tg.add_precedence(a, b);
  const TaskSchedule s = urgency_schedule(tg, 0);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.makespan, 3);
}

TEST(UrgencySchedule, DetectsPrecedenceCycle) {
  TaskGraph tg;
  const int a = tg.add_task({"a", 1, {}});
  const int b = tg.add_task({"b", 1, {}});
  tg.add_precedence(a, b);
  tg.add_precedence(b, a);
  EXPECT_THROW(urgency_schedule(tg, 0), Error);
}

TEST(UrgencySchedule, RejectsNegativeIi) {
  TaskGraph tg;
  tg.add_task({"a", 1, {}});
  EXPECT_THROW(urgency_schedule(tg, -1), Error);
}

TEST(UrgencySchedule, PipelinedSystemShape) {
  // The CHOP integration shape: input transfer -> PU -> output transfer,
  // two chips with pin budgets, folded at the system II.
  TaskGraph tg;
  const int pins0 = tg.add_resource(50);
  const int pins1 = tg.add_resource(50);
  const int in_t = tg.add_task({"env->p1", 2, {{pins0, 50}}});
  const int p1 = tg.add_task({"p1", 20, {}});
  const int x_t = tg.add_task({"p1->p2", 1, {{pins0, 16}, {pins1, 16}}});
  const int p2 = tg.add_task({"p2", 30, {}});
  const int out_t = tg.add_task({"p2->env", 1, {{pins1, 48}}});
  tg.add_precedence(in_t, p1);
  tg.add_precedence(p1, x_t);
  tg.add_precedence(x_t, p2);
  tg.add_precedence(p2, out_t);
  const TaskSchedule s = urgency_schedule(tg, 30);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.makespan, 54);  // 2 + 20 + 1 + 30 + 1
}

}  // namespace
}  // namespace chop::sched
