// Tests for the differential fuzzing harness itself: deterministic
// scenario generation, oracle battery green on healthy code, fault
// injection caught and shrunk to a replayable repro, and the spec-parser
// mutation fuzzer running violation-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/eval/bound_state.hpp"
#include "io/spec_format.hpp"
#include "io/spec_writer.hpp"
#include "testing/oracles.hpp"
#include "testing/scenario.hpp"
#include "testing/shrink.hpp"
#include "testing/spec_fuzz.hpp"

namespace chop::testing {
namespace {

/// Restores the branch-and-bound slack on scope exit so fault-injection
/// tests cannot leak an inadmissible bound into the rest of the suite.
struct ScopedBoundSlack {
  explicit ScopedBoundSlack(double slack) {
    core::set_bound_slack_for_testing(slack);
  }
  ~ScopedBoundSlack() { core::set_bound_slack_for_testing(core::kBoundSlack); }
};

/// Small limits keep each oracle run in the low milliseconds.
OracleLimits quick_limits() {
  OracleLimits limits;
  limits.max_eligible_product = 4000;
  limits.max_raw_product = 12000;
  limits.metamorphic = false;
  return limits;
}

TEST(Scenario, SameSeedSameKnobsSameSpec) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    const ScenarioKnobs a = sample_knobs(seed);
    const ScenarioKnobs b = sample_knobs(seed);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(io::write_project_string(build_scenario(a)),
              io::write_project_string(build_scenario(b)));
  }
}

TEST(Scenario, NeighboringSeedsDecorrelate) {
  const std::uint64_t base = parse_seed("corpus");
  EXPECT_NE(scenario_seed(base, 0), scenario_seed(base, 1));
  EXPECT_NE(io::write_project_string(
                build_scenario(sample_knobs(scenario_seed(base, 0)))),
            io::write_project_string(
                build_scenario(sample_knobs(scenario_seed(base, 1)))));
}

TEST(Scenario, ParseSeedDigitsAreLiteralTagsAreHashed) {
  EXPECT_EQ(parse_seed("42"), 42u);
  EXPECT_EQ(parse_seed("0"), 0u);
  EXPECT_EQ(parse_seed("ci"), parse_seed("ci"));
  EXPECT_NE(parse_seed("ci"), parse_seed("ctest"));
}

TEST(Scenario, GeneratedProjectsSurviveSessionConstruction) {
  for (std::uint64_t i = 0; i < 30; ++i) {
    const std::uint64_t seed = scenario_seed(7, i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const io::Project project = build_scenario(sample_knobs(seed));
    core::ChopSession session = project.make_session();
    session.predict_partitions();
    EXPECT_FALSE(session.predictions().eligible.empty());
  }
}

TEST(Scenario, KnobNormalizationPinsEveryFieldIntoRange) {
  ScenarioKnobs k;
  k.operations = 10000;
  k.depth = -3;
  k.partitions = 99;
  k.chips = -1;
  k.memory_blocks = 2;
  k.mem_reads = 0;
  k.mem_writes = 0;
  k.normalize();
  EXPECT_EQ(k.operations, 64);
  EXPECT_GE(k.depth, 1);
  EXPECT_LE(k.partitions, 4);
  EXPECT_GE(k.chips, 1);
  // Memory with no accessors is dropped entirely.
  EXPECT_EQ(k.memory_blocks, 0);
}

TEST(Oracles, GreenOnHealthyCode) {
  const OracleLimits limits = quick_limits();
  std::size_t ran = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const std::uint64_t seed = scenario_seed(parse_seed("gtest"), i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ScenarioReport report =
        run_oracles(build_scenario(sample_knobs(seed)), limits);
    if (report.skipped) continue;
    ++ran;
    EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                     ? std::string("?")
                                     : report.failures.front().oracle + ": " +
                                           report.failures.front().detail);
  }
  EXPECT_GT(ran, 0u);
}

TEST(Oracles, InjectedBoundBugIsCaughtAndShrunk) {
  // An inadmissible slack factor (> 1) inflates the branch-and-bound
  // lower bounds, cutting subtrees that contain feasible leaves. The
  // battery must notice the divergence from the exhaustive walk within a
  // few dozen scenarios, and the shrinker must reduce the failure to a
  // smaller, still-failing knob vector whose spec replays the failure.
  ScopedBoundSlack injected(3.0);
  const OracleLimits limits = quick_limits();
  ScenarioKnobs failing;
  ScenarioReport failing_report;
  bool caught = false;
  for (std::uint64_t i = 0; i < 60 && !caught; ++i) {
    const ScenarioKnobs knobs =
        sample_knobs(scenario_seed(parse_seed("gtest-inject"), i));
    const ScenarioReport report = run_oracles(build_scenario(knobs), limits);
    if (report.skipped) continue;
    for (const OracleFailure& f : report.failures) {
      if (f.oracle == "bound_pruning") {
        failing = knobs;
        failing_report = report;
        caught = true;
      }
    }
  }
  ASSERT_TRUE(caught) << "injected bound bug evaded the oracle battery";

  const ShrinkResult shrunk = shrink_failure(failing, limits);
  EXPECT_FALSE(shrunk.report.ok());
  EXPECT_LE(shrunk.knobs.operations, failing.operations);

  // The repro document must parse back and reproduce the failure.
  const std::string doc = repro_document(shrunk);
  const io::Project replayed = io::parse_project_string(doc);
  const ScenarioReport replay = run_oracles(replayed, limits);
  ASSERT_FALSE(replay.ok());
  bool same_oracle = false;
  for (const OracleFailure& f : replay.failures) {
    if (f.oracle == "bound_pruning") same_oracle = true;
  }
  EXPECT_TRUE(same_oracle);
}

TEST(Oracles, HealthyCodePassesTheShrunkRepro) {
  // Flip side of the injection test: with the real (admissible) slack,
  // the same scenarios are green, so the repro blames the bug, not the
  // generator.
  const OracleLimits limits = quick_limits();
  const ScenarioKnobs knobs =
      sample_knobs(scenario_seed(parse_seed("gtest-inject"), 0));
  EXPECT_TRUE(run_oracles(build_scenario(knobs), limits).ok());
}

TEST(SpecFuzz, MutatedDocumentsNeverCrashTheParser) {
  const io::Project seed_project = build_scenario(sample_knobs(1234));
  Rng rng(99);
  const SpecFuzzStats stats =
      fuzz_spec_parser(rng, io::write_project_string(seed_project), 500);
  EXPECT_EQ(stats.cases, 500u);
  EXPECT_TRUE(stats.ok()) << (stats.violations.empty()
                                  ? std::string("?")
                                  : stats.violations.front());
  // The mutator must not be so destructive that nothing ever parses.
  EXPECT_GT(stats.parse_errors, 0u);
  EXPECT_GT(stats.parsed, 0u);
}

}  // namespace
}  // namespace chop::testing
