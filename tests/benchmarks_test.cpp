// Tests for the benchmark behavioral specifications, including the paper's
// AR lattice filter (Figure 6) and its reference partitionings.
#include "dfg/benchmarks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dfg/analysis.hpp"
#include "dfg/dot.hpp"

namespace chop::dfg {
namespace {

TEST(ArLattice, PaperOperationCounts) {
  const BenchmarkGraph ar = ar_lattice_filter();
  EXPECT_EQ(ar.graph.count_of_kind(OpKind::Mul), 16u);
  EXPECT_EQ(ar.graph.count_of_kind(OpKind::Add), 12u);
  EXPECT_EQ(ar.graph.operation_count(), 28u);
}

TEST(ArLattice, LayersAlternateMulAdd) {
  const BenchmarkGraph ar = ar_lattice_filter();
  ASSERT_EQ(ar.layers.size(), 8u);
  for (std::size_t l = 0; l < ar.layers.size(); ++l) {
    const OpKind expected = (l % 2 == 0) ? OpKind::Mul : OpKind::Add;
    for (NodeId id : ar.layers[l]) {
      EXPECT_EQ(ar.graph.node(id).kind, expected) << "layer " << l;
    }
  }
}

TEST(ArLattice, LayersCoverAllOperations) {
  const BenchmarkGraph ar = ar_lattice_filter();
  std::set<NodeId> seen;
  for (const auto& layer : ar.layers) {
    for (NodeId id : layer) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate node in layers";
    }
  }
  EXPECT_EQ(seen.size(), ar.graph.operation_count());
}

TEST(ArLattice, CoefficientsAreConstants) {
  const BenchmarkGraph ar = ar_lattice_filter();
  int constants = 0, data_inputs = 0;
  for (std::size_t i = 0; i < ar.graph.node_count(); ++i) {
    const Node& n = ar.graph.node(static_cast<NodeId>(i));
    if (n.kind != OpKind::Input) continue;
    (n.constant ? constants : data_inputs)++;
  }
  EXPECT_EQ(constants, 16);   // four coefficients per section
  EXPECT_EQ(data_inputs, 9);  // carry seed + (x, s) per section
}

TEST(ArLattice, TwoWayCutSplitsInHalf) {
  const BenchmarkGraph ar = ar_lattice_filter();
  const auto cuts = ar_two_way_cut(ar);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0].size(), 14u);
  EXPECT_EQ(cuts[1].size(), 14u);
}

TEST(ArLattice, ThreeWayCutApproximatelyEqual) {
  const BenchmarkGraph ar = ar_lattice_filter();
  const auto cuts = ar_three_way_cut(ar);
  ASSERT_EQ(cuts.size(), 3u);
  std::size_t total = 0;
  for (const auto& c : cuts) {
    EXPECT_GE(c.size(), 7u);
    EXPECT_LE(c.size(), 11u);
    total += c.size();
  }
  EXPECT_EQ(total, 28u);
}

TEST(ArLattice, LayerSpanConcatenates) {
  const BenchmarkGraph ar = ar_lattice_filter();
  EXPECT_EQ(ar.layer_span(0, 1).size(), 7u);  // 4 muls + 3 adds
  EXPECT_EQ(ar.all_operations().size(), 28u);
  EXPECT_THROW(ar.layer_span(5, 99), Error);
  EXPECT_THROW(ar.layer_span(3, 2), Error);
}

TEST(EllipticWaveFilter, PaperishCounts) {
  const BenchmarkGraph ewf = elliptic_wave_filter();
  EXPECT_EQ(ewf.graph.count_of_kind(OpKind::Add), 26u);
  EXPECT_EQ(ewf.graph.count_of_kind(OpKind::Mul), 8u);
  EXPECT_NO_THROW(ewf.graph.validate());
}

TEST(EllipticWaveFilter, TwoParallelChains) {
  const BenchmarkGraph ewf = elliptic_wave_filter();
  // Two chains of four 4-op sections merged by two final adds: depth 18.
  EXPECT_EQ(operation_depth(ewf.graph), 18);
}

TEST(Fir16, Counts) {
  const BenchmarkGraph fir = fir16();
  EXPECT_EQ(fir.graph.count_of_kind(OpKind::Mul), 16u);
  EXPECT_EQ(fir.graph.count_of_kind(OpKind::Add), 15u);
  EXPECT_EQ(operation_depth(fir.graph), 5);
}

TEST(Fir16, SingleOutput) {
  const BenchmarkGraph fir = fir16();
  EXPECT_EQ(fir.graph.count_of_kind(OpKind::Output), 1u);
  EXPECT_EQ(fir.graph.total_output_bits(), 16);
}

TEST(ArLatticeWithMemory, AddsMemoryTraffic) {
  const BenchmarkGraph arm = ar_lattice_filter_with_memory();
  EXPECT_EQ(arm.graph.count_of_kind(OpKind::MemRead), 2u);
  EXPECT_EQ(arm.graph.count_of_kind(OpKind::MemWrite), 1u);
  EXPECT_EQ(arm.graph.count_of_kind(OpKind::Mul), 17u);
  EXPECT_NO_THROW(arm.graph.validate());
}

TEST(Benchmarks, CustomWidthPropagates) {
  const BenchmarkGraph ar = ar_lattice_filter(32);
  for (std::size_t i = 0; i < ar.graph.node_count(); ++i) {
    const Node& n = ar.graph.node(static_cast<NodeId>(i));
    if (n.kind != OpKind::Output) EXPECT_EQ(n.width, 32);
  }
}

TEST(Dot, RendersNodesAndPartitions) {
  const BenchmarkGraph fir = fir16();
  const std::string plain = to_dot(fir.graph);
  EXPECT_NE(plain.find("digraph"), std::string::npos);
  EXPECT_NE(plain.find("->"), std::string::npos);

  std::vector<int> parts(fir.graph.node_count(), -1);
  for (NodeId id : fir.layers[0]) parts[static_cast<std::size_t>(id)] = 0;
  const std::string colored = to_dot(fir.graph, parts);
  EXPECT_NE(colored.find("fillcolor"), std::string::npos);

  std::vector<int> wrong(3, 0);
  EXPECT_THROW(to_dot(fir.graph, wrong), Error);
}

}  // namespace
}  // namespace chop::dfg
