// Tests for data-transfer-task creation and control-pin reservation
// (paper §2.4 / Figure 3).
#include "core/transfer.hpp"

#include <gtest/gtest.h>

#include "chip/mosis_packages.hpp"
#include "dfg/benchmarks.hpp"

namespace chop::core {
namespace {

std::vector<chip::ChipInstance> chips(int n) {
  std::vector<chip::ChipInstance> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({"c" + std::to_string(i), chip::mosis_package_84()});
  }
  return out;
}

const DataTransfer* find_transfer(const std::vector<DataTransfer>& ts,
                                  DataTransfer::Kind kind, int src, int dst) {
  for (const DataTransfer& t : ts) {
    if (t.kind == kind && t.src_partition == src && t.dst_partition == dst) {
      return &t;
    }
  }
  return nullptr;
}

TEST(Transfers, SinglePartitionHasEnvironmentTraffic) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, chips(1));
  pt.add_partition("P1", ar.all_operations(), 0);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  ASSERT_EQ(transfers.size(), 2u);
  const DataTransfer* in = find_transfer(
      transfers, DataTransfer::Kind::InputDelivery, kEnvironment, 0);
  const DataTransfer* out = find_transfer(
      transfers, DataTransfer::Kind::OutputCollection, 0, kEnvironment);
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  // 9 non-constant inputs (carry + 4x(x, s)), 11 outputs (y,z per section
  // + final carry): constants excluded from delivery.
  EXPECT_EQ(in->bits, 9 * 16);
  EXPECT_EQ(out->bits, 9 * 16);
  EXPECT_TRUE(in->crosses_pins());
}

TEST(Transfers, InterpartitionCutCountsDistinctValues) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, chips(2));
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  const DataTransfer* x =
      find_transfer(transfers, DataTransfer::Kind::Interpartition, 0, 1);
  ASSERT_NE(x, nullptr);
  // Only the section-2 carry crosses the middle cut; it feeds two muls in
  // P2 but is one distinct 16-bit value.
  EXPECT_EQ(x->bits, 16);
  EXPECT_EQ(x->chips.size(), 2u);
}

TEST(Transfers, SameChipTransferCrossesNoPins) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, chips(1));
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 0);  // same chip
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  const DataTransfer* x =
      find_transfer(transfers, DataTransfer::Kind::Interpartition, 0, 1);
  ASSERT_NE(x, nullptr);
  EXPECT_FALSE(x->crosses_pins());
}

TEST(Transfers, MemoryTrafficPerDirection) {
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 300.0, 5000.0, 3});
  mem.blocks.push_back({"M_B", 16, 256, 1, 300.0, 5000.0, 3});
  mem.chip_of_block = {chip::kOffTheShelfChip, 0};
  Partitioning pt(arm.graph, chips(1), mem);
  pt.add_partition("P1", arm.all_operations(), 0);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);

  const DataTransfer* rd = nullptr;
  const DataTransfer* wr = nullptr;
  for (const DataTransfer& t : transfers) {
    if (t.kind == DataTransfer::Kind::MemoryRead) rd = &t;
    if (t.kind == DataTransfer::Kind::MemoryWrite) wr = &t;
  }
  ASSERT_NE(rd, nullptr);
  ASSERT_NE(wr, nullptr);
  EXPECT_EQ(rd->bits, 32);  // two 16-bit coefficient reads
  EXPECT_EQ(rd->memory_block, 0);
  EXPECT_TRUE(rd->crosses_pins());  // off-the-shelf chip
  EXPECT_EQ(wr->bits, 16);
  EXPECT_EQ(wr->memory_block, 1);
  EXPECT_FALSE(wr->crosses_pins());  // block lives on the same chip
}

TEST(Transfers, RemoteOnChipMemoryCrossesBothChips) {
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 300.0, 5000.0, 3});
  mem.blocks.push_back({"M_B", 16, 256, 1, 300.0, 5000.0, 3});
  mem.chip_of_block = {1, 1};  // both on the other chip
  Partitioning pt(arm.graph, chips(2), mem);
  pt.add_partition("P1", arm.all_operations(), 0);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  for (const DataTransfer& t : transfers) {
    if (t.memory_block >= 0) {
      EXPECT_EQ(t.chips.size(), 2u) << t.name;
    }
  }
}

TEST(Transfers, ReservedControlPins) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  Partitioning pt(ar.graph, chips(2));
  const auto cuts = dfg::ar_two_way_cut(ar);
  pt.add_partition("P1", cuts[0], 0);
  pt.add_partition("P2", cuts[1], 1);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  const auto reserved = reserved_control_pins(pt, transfers, 2);
  // Chip 0: env->P1, P1->P2, P1->env  => 3 transfers x 2 handshake pins.
  // Chip 1: env->P2? (P2 consumes only P1 data + its own inputs)...
  // count pin-crossing transfers per chip instead of hardcoding:
  std::vector<int> expected(2, 0);
  for (const auto& t : transfers) {
    for (int c : t.chips) expected[static_cast<std::size_t>(c)] += 2;
  }
  EXPECT_EQ(reserved[0], expected[0]);
  EXPECT_EQ(reserved[1], expected[1]);
  EXPECT_THROW(reserved_control_pins(pt, transfers, -1), Error);
}

TEST(Transfers, MemoryControlPinsReservedPerAccessor) {
  const dfg::BenchmarkGraph arm = dfg::ar_lattice_filter_with_memory();
  chip::MemorySubsystem mem;
  mem.blocks.push_back({"M_A", 16, 256, 1, 300.0, 5000.0, 3});
  mem.blocks.push_back({"M_B", 16, 256, 1, 300.0, 5000.0, 4});
  mem.chip_of_block = {chip::kOffTheShelfChip, 1};
  Partitioning pt(arm.graph, chips(2), mem);
  pt.add_partition("P1", arm.all_operations(), 0);
  pt.validate();
  const auto transfers = create_transfer_tasks(pt);
  const auto reserved = reserved_control_pins(pt, transfers, 0);
  // With handshake = 0, chip 0 reserves M_A's 3 select lines (off-chip
  // access) plus M_B's 4 (remote block on chip 1); chip 1 reserves M_B's 4
  // as the serving side.
  EXPECT_EQ(reserved[0], 7);
  EXPECT_EQ(reserved[1], 4);
}

}  // namespace
}  // namespace chop::core
