// Tests for the component library, module-set enumeration, and the
// paper's Table 1 experiment library.
#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"
#include "library/experiment_library.hpp"
#include "library/module_set.hpp"

namespace chop::lib {
namespace {

TEST(ExperimentLibrary, MatchesTable1) {
  const ComponentLibrary lib = dac91_experiment_library();
  const auto adders = lib.modules_for(dfg::OpKind::Add);
  const auto muls = lib.modules_for(dfg::OpKind::Mul);
  ASSERT_EQ(adders.size(), 3u);
  ASSERT_EQ(muls.size(), 3u);
  EXPECT_EQ(adders[0]->name, "add1");
  EXPECT_EQ(adders[0]->area, 4200.0);
  EXPECT_EQ(adders[0]->delay, 34.0);
  EXPECT_EQ(adders[2]->name, "add3");
  EXPECT_EQ(adders[2]->delay, 151.0);
  EXPECT_EQ(muls[0]->area, 49000.0);
  EXPECT_EQ(muls[2]->delay, 7370.0);
  EXPECT_EQ(lib.register_bit().area, 31.0);
  EXPECT_EQ(lib.register_bit().delay, 5.0);
  EXPECT_EQ(lib.mux_bit().area, 18.0);
  EXPECT_EQ(lib.mux_bit().delay, 4.0);
}

TEST(ComponentLibrary, RejectsBadModules) {
  ComponentLibrary lib;
  EXPECT_THROW(lib.add({"", dfg::OpKind::Add, 16, 1.0, 1.0}), Error);
  EXPECT_THROW(lib.add({"z", dfg::OpKind::Add, 16, 0.0, 1.0}), Error);
  EXPECT_THROW(lib.add({"z", dfg::OpKind::Add, 16, 1.0, -1.0}), Error);
  EXPECT_THROW(lib.add({"z", dfg::OpKind::Input, 16, 1.0, 1.0}), Error);
  lib.add({"ok", dfg::OpKind::Add, 16, 1.0, 1.0});
  EXPECT_THROW(lib.add({"ok", dfg::OpKind::Add, 16, 2.0, 2.0}), Error);
}

TEST(ComponentLibrary, CoverageCheck) {
  ComponentLibrary lib;
  lib.add({"a", dfg::OpKind::Add, 16, 1.0, 1.0});
  const dfg::OpKind both[] = {dfg::OpKind::Add, dfg::OpKind::Mul};
  const dfg::OpKind add_only[] = {dfg::OpKind::Add};
  EXPECT_FALSE(lib.covers(both));
  EXPECT_TRUE(lib.covers(add_only));
  lib.add({"m", dfg::OpKind::Mul, 16, 1.0, 1.0});
  EXPECT_TRUE(lib.covers(both));
}

TEST(FunctionalKinds, SortedAndDeduplicated) {
  const dfg::BenchmarkGraph ar = dfg::ar_lattice_filter();
  const auto kinds = functional_kinds(ar.graph);
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], dfg::OpKind::Add);
  EXPECT_EQ(kinds[1], dfg::OpKind::Mul);
}

TEST(ModuleSets, CartesianProductOfAlternatives) {
  // The paper (§3.2): "a library which allows up to 9 module-set
  // configurations for implementation of each partition".
  const ComponentLibrary lib = dac91_experiment_library();
  const dfg::OpKind kinds[] = {dfg::OpKind::Add, dfg::OpKind::Mul};
  const auto sets = enumerate_module_sets(lib, kinds);
  EXPECT_EQ(sets.size(), 9u);
  // Every set has exactly one adder and one multiplier.
  for (const ModuleSet& s : sets) {
    EXPECT_TRUE(s.has(dfg::OpKind::Add));
    EXPECT_TRUE(s.has(dfg::OpKind::Mul));
    EXPECT_EQ(s.module_for(dfg::OpKind::Add).op, dfg::OpKind::Add);
  }
}

TEST(ModuleSets, SingleKindEnumeratesAlternativesOnly) {
  const ComponentLibrary lib = dac91_experiment_library();
  const dfg::OpKind kinds[] = {dfg::OpKind::Mul};
  EXPECT_EQ(enumerate_module_sets(lib, kinds).size(), 3u);
}

TEST(ModuleSets, UncoveredKindThrows) {
  const ComponentLibrary lib = dac91_experiment_library();
  const dfg::OpKind kinds[] = {dfg::OpKind::Div};
  EXPECT_THROW(enumerate_module_sets(lib, kinds), Error);
}

TEST(ModuleSet, LabelAndMaxDelay) {
  const ComponentLibrary lib = dac91_experiment_library();
  ModuleSet set;
  set.choose(dfg::OpKind::Add, lib.modules_for(dfg::OpKind::Add)[1]);
  set.choose(dfg::OpKind::Mul, lib.modules_for(dfg::OpKind::Mul)[2]);
  EXPECT_EQ(set.label(), "add2+mul3");
  EXPECT_EQ(set.max_delay(), 7370.0);
}

TEST(ModuleSet, MissingKindThrows) {
  ModuleSet set;
  EXPECT_THROW(set.module_for(dfg::OpKind::Add), Error);
  EXPECT_THROW(set.choose(dfg::OpKind::Add, nullptr), Error);
}

TEST(ModuleSet, EmptyLabel) {
  const ModuleSet set;
  EXPECT_EQ(set.label(), "(empty)");
  EXPECT_EQ(set.max_delay(), 0.0);
}

}  // namespace
}  // namespace chop::lib
