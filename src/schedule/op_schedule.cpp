#include "schedule/op_schedule.hpp"

#include <algorithm>
#include <numeric>

namespace chop::sched {

namespace {

/// Internal resource-class key: functional-unit kinds map to themselves,
/// memory ops map to a per-block class, everything else to "none".
struct ResourceKey {
  bool used = false;
  bool is_memory = false;
  dfg::OpKind kind = dfg::OpKind::Add;
  int block = -1;

  bool operator==(const ResourceKey&) const = default;
};

ResourceKey key_for(const dfg::Node& node) {
  ResourceKey key;
  if (dfg::needs_functional_unit(node.kind)) {
    key.used = true;
    key.kind = node.kind;
  } else if (node.kind == dfg::OpKind::MemRead ||
             node.kind == dfg::OpKind::MemWrite) {
    key.used = true;
    key.is_memory = true;
    key.block = node.memory_block;
  }
  return key;
}

/// Dense per-class usage timeline (and modulo-II phases for pipelining).
class UsageTracker {
 public:
  UsageTracker(int capacity, Cycles ii) : capacity_(capacity), ii_(ii) {
    if (ii_ > 0) phase_.assign(static_cast<std::size_t>(ii_), 0);
  }

  bool fits(Cycles t, Cycles duration) const {
    if (capacity_ < 0) return true;  // unlimited
    for (Cycles c = t; c < t + duration; ++c) {
      if (usage_at(c) + 1 > capacity_) return false;
    }
    if (ii_ > 0) {
      // Modulo reservation: each phase touched by [t, t+duration) once.
      const Cycles span = std::min(duration, ii_);
      for (Cycles j = 0; j < span; ++j) {
        const auto p = static_cast<std::size_t>((t + j) % ii_);
        if (phase_[p] + 1 > capacity_) return false;
      }
    }
    return true;
  }

  void reserve(Cycles t, Cycles duration) {
    if (capacity_ < 0) return;
    if (t + duration > static_cast<Cycles>(timeline_.size())) {
      timeline_.resize(static_cast<std::size_t>(t + duration), 0);
    }
    for (Cycles c = t; c < t + duration; ++c) {
      timeline_[static_cast<std::size_t>(c)]++;
    }
    if (ii_ > 0) {
      const Cycles span = std::min(duration, ii_);
      for (Cycles j = 0; j < span; ++j) {
        phase_[static_cast<std::size_t>((t + j) % ii_)]++;
      }
    }
  }

 private:
  int usage_at(Cycles c) const {
    return c < static_cast<Cycles>(timeline_.size())
               ? timeline_[static_cast<std::size_t>(c)]
               : 0;
  }

  int capacity_;
  Cycles ii_;
  std::vector<int> timeline_;
  std::vector<int> phase_;
};

/// Shared core of the nonpipelined and pipelined schedulers. `ii == 0`
/// means nonpipelined (no modulo reservation, always feasible).
OpSchedule schedule_impl(const dfg::Graph& g, std::span<const Cycles> latency,
                         const ResourceLimits& limits, Cycles ii) {
  CHOP_REQUIRE(latency.size() == g.node_count(),
               "latency vector size must match node count");
  const dfg::Levels levels = dfg::compute_levels(g, latency);

  // Resource classes present in this graph.
  std::vector<ResourceKey> keys;
  std::vector<UsageTracker> trackers;
  std::vector<int> class_of(g.node_count(), -1);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const ResourceKey key = key_for(g.node(static_cast<dfg::NodeId>(i)));
    if (!key.used) continue;
    auto it = std::find(keys.begin(), keys.end(), key);
    if (it == keys.end()) {
      keys.push_back(key);
      trackers.emplace_back(limits.limit_for(g.node(static_cast<dfg::NodeId>(i))),
                            ii);
      it = keys.end() - 1;
    }
    class_of[i] = static_cast<int>(it - keys.begin());
  }

  // Priority order: ALAP ascending (most urgent first), critical path as
  // tiebreak via ASAP, then id for determinism.
  std::vector<dfg::NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](dfg::NodeId a, dfg::NodeId b) {
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (levels.alap[ia] != levels.alap[ib]) {
      return levels.alap[ia] < levels.alap[ib];
    }
    if (levels.asap[ia] != levels.asap[ib]) {
      return levels.asap[ia] < levels.asap[ib];
    }
    return a < b;
  });

  OpSchedule out;
  out.start.assign(g.node_count(), 0);
  out.feasible = true;

  // Horizon: generous but finite, so an infeasible II terminates.
  Cycles total_latency = 0;
  for (Cycles l : latency) total_latency += l;
  const Cycles horizon = levels.length + total_latency + (ii > 0 ? ii : 0) + 4;

  // Iterate in dependency-respecting priority order: process nodes in topo
  // order but pick among ready nodes by priority. Simpler: repeatedly scan
  // the priority list for nodes whose predecessors are placed.
  std::vector<bool> placed(g.node_count(), false);
  std::size_t remaining = g.node_count();
  while (remaining > 0) {
    bool progressed = false;
    for (dfg::NodeId id : order) {
      const auto i = static_cast<std::size_t>(id);
      if (placed[i]) continue;
      Cycles ready = 0;
      bool deps_ok = true;
      for (dfg::EdgeId e : g.fanin(id)) {
        const dfg::NodeId src = g.edge(e).src;
        const auto s = static_cast<std::size_t>(src);
        if (!placed[s]) {
          deps_ok = false;
          break;
        }
        ready = std::max(ready, out.start[s] + latency[s]);
      }
      if (!deps_ok) continue;

      const int cls = class_of[i];
      Cycles t = ready;
      if (cls >= 0 && latency[i] > 0) {
        while (t <= horizon &&
               !trackers[static_cast<std::size_t>(cls)].fits(t, latency[i])) {
          ++t;
        }
        if (t > horizon) {
          out.feasible = false;
          return out;
        }
        trackers[static_cast<std::size_t>(cls)].reserve(t, latency[i]);
      }
      out.start[i] = t;
      out.length = std::max(out.length, t + latency[i]);
      placed[i] = true;
      --remaining;
      progressed = true;
    }
    CHOP_ASSERT(progressed, "scheduler made no progress on an acyclic graph");
  }

  out.initiation_interval = ii > 0 ? ii : out.length;
  if (ii > 0 && out.length == 0) out.initiation_interval = ii;
  return out;
}

}  // namespace

int ResourceLimits::limit_for(const dfg::Node& node) const {
  if (dfg::needs_functional_unit(node.kind)) {
    auto it = fu.find(node.kind);
    return it == fu.end() ? -1 : it->second;
  }
  if (node.kind == dfg::OpKind::MemRead ||
      node.kind == dfg::OpKind::MemWrite) {
    auto it = memory_ports.find(node.memory_block);
    return it == memory_ports.end() ? -1 : it->second;
  }
  return 0;
}

OpSchedule list_schedule(const dfg::Graph& g, std::span<const Cycles> latency,
                         const ResourceLimits& limits) {
  return schedule_impl(g, latency, limits, 0);
}

OpSchedule pipeline_schedule(const dfg::Graph& g,
                             std::span<const Cycles> latency,
                             const ResourceLimits& limits, Cycles ii) {
  CHOP_REQUIRE(ii >= 1, "pipeline initiation interval must be positive");
  return schedule_impl(g, latency, limits, ii);
}

Cycles min_initiation_interval(const dfg::Graph& g,
                               std::span<const Cycles> latency,
                               const ResourceLimits& limits) {
  CHOP_REQUIRE(latency.size() == g.node_count(),
               "latency vector size must match node count");
  std::map<dfg::OpKind, Cycles> fu_busy;
  std::map<int, Cycles> mem_busy;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const dfg::Node& n = g.node(static_cast<dfg::NodeId>(i));
    if (dfg::needs_functional_unit(n.kind)) {
      fu_busy[n.kind] += latency[i];
    } else if (n.kind == dfg::OpKind::MemRead ||
               n.kind == dfg::OpKind::MemWrite) {
      mem_busy[n.memory_block] += latency[i];
    }
  }
  Cycles bound = 1;
  for (const auto& [kind, busy] : fu_busy) {
    auto it = limits.fu.find(kind);
    if (it == limits.fu.end()) continue;
    CHOP_REQUIRE(it->second >= 1, "functional unit count must be positive");
    bound = std::max(bound, (busy + it->second - 1) / it->second);
  }
  for (const auto& [block, busy] : mem_busy) {
    auto it = limits.memory_ports.find(block);
    if (it == limits.memory_ports.end()) continue;
    CHOP_REQUIRE(it->second >= 1, "memory port count must be positive");
    bound = std::max(bound, (busy + it->second - 1) / it->second);
  }
  return bound;
}

}  // namespace chop::sched
