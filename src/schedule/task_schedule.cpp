#include "schedule/task_schedule.hpp"

#include <algorithm>
#include <numeric>

namespace chop::sched {

int TaskGraph::add_task(Task task) {
  CHOP_REQUIRE(task.duration >= 0, "task duration cannot be negative");
  tasks.push_back(std::move(task));
  return static_cast<int>(tasks.size() - 1);
}

void TaskGraph::add_precedence(int before, int after) {
  CHOP_REQUIRE(before >= 0 && static_cast<std::size_t>(before) < tasks.size(),
               "precedence names a nonexistent task");
  CHOP_REQUIRE(after >= 0 && static_cast<std::size_t>(after) < tasks.size(),
               "precedence names a nonexistent task");
  CHOP_REQUIRE(before != after, "task cannot precede itself");
  precedence.emplace_back(before, after);
}

int TaskGraph::add_resource(int capacity_amount) {
  CHOP_REQUIRE(capacity_amount >= 0, "resource capacity cannot be negative");
  capacity.push_back(capacity_amount);
  return static_cast<int>(capacity.size() - 1);
}

void TaskGraph::validate() const {
  for (const Task& t : tasks) {
    for (const auto& [res, amount] : t.demands) {
      CHOP_REQUIRE(res >= 0 && static_cast<std::size_t>(res) < capacity.size(),
                   "task demands a nonexistent resource");
      CHOP_REQUIRE(amount > 0, "task demand must be positive");
    }
  }
}

namespace {

/// Longest path to a sink per task (urgency), computed over the precedence
/// DAG. Throws on cycles.
std::vector<Cycles> urgencies(const TaskGraph& tg) {
  const std::size_t n = tg.tasks.size();
  std::vector<std::vector<int>> succ(n);
  std::vector<int> out_deg(n, 0);
  for (const auto& [before, after] : tg.precedence) {
    succ[static_cast<std::size_t>(before)].push_back(after);
    out_deg[static_cast<std::size_t>(before)]++;
  }
  // Reverse topological order via Kahn on successor counts.
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (out_deg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<std::vector<int>> pred(n);
  for (const auto& [before, after] : tg.precedence) {
    pred[static_cast<std::size_t>(after)].push_back(before);
  }
  std::vector<Cycles> urgency(n, 0);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    ++processed;
    const auto ti = static_cast<std::size_t>(t);
    Cycles best_succ = 0;
    for (int s : succ[ti]) {
      best_succ = std::max(best_succ, urgency[static_cast<std::size_t>(s)]);
    }
    urgency[ti] = tg.tasks[ti].duration + best_succ;
    for (int p : pred[ti]) {
      if (--out_deg[static_cast<std::size_t>(p)] == 0) ready.push_back(p);
    }
  }
  CHOP_REQUIRE(processed == n, "task graph contains a precedence cycle");
  return urgency;
}

/// Per-resource usage over time plus modulo-II phases.
class ResourceTimeline {
 public:
  ResourceTimeline(int capacity, Cycles ii) : capacity_(capacity), ii_(ii) {
    if (ii_ > 0) phase_.assign(static_cast<std::size_t>(ii_), 0);
  }

  bool fits(Cycles t, Cycles duration, int amount) const {
    for (Cycles c = t; c < t + duration; ++c) {
      if (usage_at(c) + amount > capacity_) return false;
    }
    if (ii_ > 0 && duration > 0) {
      const Cycles span = std::min(duration, ii_);
      for (Cycles j = 0; j < span; ++j) {
        if (phase_[static_cast<std::size_t>((t + j) % ii_)] + amount >
            capacity_) {
          return false;
        }
      }
    }
    return true;
  }

  void reserve(Cycles t, Cycles duration, int amount) {
    if (t + duration > static_cast<Cycles>(timeline_.size())) {
      timeline_.resize(static_cast<std::size_t>(t + duration), 0);
    }
    for (Cycles c = t; c < t + duration; ++c) {
      timeline_[static_cast<std::size_t>(c)] += amount;
    }
    if (ii_ > 0 && duration > 0) {
      const Cycles span = std::min(duration, ii_);
      for (Cycles j = 0; j < span; ++j) {
        phase_[static_cast<std::size_t>((t + j) % ii_)] += amount;
      }
    }
  }

 private:
  int usage_at(Cycles c) const {
    return c < static_cast<Cycles>(timeline_.size())
               ? timeline_[static_cast<std::size_t>(c)]
               : 0;
  }

  int capacity_;
  Cycles ii_;
  std::vector<int> timeline_;
  std::vector<int> phase_;
};

}  // namespace

TaskSchedule urgency_schedule(const TaskGraph& tg, Cycles ii) {
  tg.validate();
  CHOP_REQUIRE(ii >= 0, "initiation interval cannot be negative");

  TaskSchedule out;
  out.start.assign(tg.tasks.size(), 0);

  // Outright impossibility: a single task over capacity.
  for (const Task& t : tg.tasks) {
    for (const auto& [res, amount] : t.demands) {
      if (amount > tg.capacity[static_cast<std::size_t>(res)]) return out;
    }
  }

  const std::vector<Cycles> urgency = urgencies(tg);
  const std::size_t n = tg.tasks.size();

  std::vector<std::vector<int>> pred(n);
  for (const auto& [before, after] : tg.precedence) {
    pred[static_cast<std::size_t>(after)].push_back(before);
  }

  std::vector<ResourceTimeline> timelines;
  timelines.reserve(tg.capacity.size());
  for (int cap : tg.capacity) timelines.emplace_back(cap, ii);

  // Priority: higher urgency first; id tiebreak for determinism.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Cycles ua = urgency[static_cast<std::size_t>(a)];
    const Cycles ub = urgency[static_cast<std::size_t>(b)];
    if (ua != ub) return ua > ub;
    return a < b;
  });

  Cycles total = 0;
  for (const Task& t : tg.tasks) total += t.duration;
  const Cycles horizon = total + (ii > 0 ? ii : 0) + 4;

  std::vector<bool> placed(n, false);
  std::size_t remaining = n;
  while (remaining > 0) {
    bool progressed = false;
    for (int id : order) {
      const auto i = static_cast<std::size_t>(id);
      if (placed[i]) continue;
      Cycles ready = 0;
      bool deps_ok = true;
      for (int p : pred[i]) {
        const auto pi = static_cast<std::size_t>(p);
        if (!placed[pi]) {
          deps_ok = false;
          break;
        }
        ready = std::max(ready, out.start[pi] + tg.tasks[pi].duration);
      }
      if (!deps_ok) continue;

      const Task& task = tg.tasks[i];
      Cycles t = ready;
      auto fits_all = [&](Cycles at) {
        return std::all_of(task.demands.begin(), task.demands.end(),
                           [&](const std::pair<int, int>& d) {
                             return timelines[static_cast<std::size_t>(d.first)]
                                 .fits(at, task.duration, d.second);
                           });
      };
      while (t <= horizon && !fits_all(t)) ++t;
      if (t > horizon) return out;  // infeasible (modulo oversubscription)
      for (const auto& [res, amount] : task.demands) {
        timelines[static_cast<std::size_t>(res)].reserve(t, task.duration,
                                                         amount);
      }
      out.start[i] = t;
      out.makespan = std::max(out.makespan, t + task.duration);
      placed[i] = true;
      --remaining;
      progressed = true;
    }
    CHOP_ASSERT(progressed, "task scheduler made no progress on a DAG");
  }

  out.feasible = true;
  return out;
}

}  // namespace chop::sched
