// Register-demand estimation from a schedule: how many bits of storage the
// datapath needs. BAD "performs detailed predictions on register ...
// allocation" — we measure value lifetimes against the schedule and take
// the maximum number of bits alive across any control-step boundary. For
// pipelined schedules, lifetimes from overlapped iterations fold onto the
// same hardware, so boundaries are folded modulo the initiation interval
// and concurrent iterations accumulate.
#pragma once

#include <span>

#include "dfg/graph.hpp"
#include "schedule/op_schedule.hpp"
#include "util/units.hpp"

namespace chop::sched {

/// Peak storage (bits) implied by `schedule`. A value produced by node u is
/// alive from the end of u to the end of its last consumer. Primary-input
/// values are excluded and output-feeding values are held only one cycle —
/// both ends live in the data transfer module buffers that system
/// integration sizes separately (avoiding double counting).
Bits register_demand(const dfg::Graph& g, std::span<const Cycles> latency,
                     const OpSchedule& schedule);

}  // namespace chop::sched
