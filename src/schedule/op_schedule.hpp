// Operation scheduling inside one partition.
//
// BAD's prediction engine needs, for every (module set, allocation, design
// style) candidate, the number of control steps a resource-constrained
// schedule takes — nonpipelined — and, for pipelined designs, whether a
// given initiation interval is achievable (the Sehwa-style question, paper
// ref [8]). Both are answered by priority list scheduling with ALAP-based
// urgency; the pipelined variant adds modulo-II resource reservation.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"
#include "util/units.hpp"

namespace chop::sched {

/// Resource limits a schedule must respect: functional units per operation
/// kind and ports per memory block. Kinds/blocks absent from the maps are
/// unconstrained (treated as unlimited — used by ASAP bounds).
struct ResourceLimits {
  std::map<dfg::OpKind, int> fu;
  std::map<int, int> memory_ports;

  /// Limit applying to `node`, or 0 if the node consumes no resource.
  /// Returns -1 for "unlimited".
  int limit_for(const dfg::Node& node) const;
};

/// Result of a scheduling attempt. `start` is indexed by NodeId; `length`
/// counts control steps (datapath cycles); `initiation_interval` equals
/// `length` for nonpipelined schedules and the requested II for pipelined
/// ones. `feasible == false` means no schedule satisfied the constraints
/// (only possible for pipelined attempts — a nonpipelined list schedule
/// always completes).
struct OpSchedule {
  std::vector<Cycles> start;
  Cycles length = 0;
  Cycles initiation_interval = 0;
  bool feasible = false;
};

/// Nonpipelined resource-constrained list scheduling with ALAP urgency.
/// `latency` is per node, in datapath cycles (zero-latency nodes occupy no
/// resources and no time).
OpSchedule list_schedule(const dfg::Graph& g, std::span<const Cycles> latency,
                         const ResourceLimits& limits);

/// Pipelined (modulo) list scheduling at initiation interval `ii`: every
/// resource is reserved in the occupied cycles *modulo ii* so overlapped
/// iterations never oversubscribe a unit. Returns feasible == false when
/// no placement exists within the scheduling horizon.
OpSchedule pipeline_schedule(const dfg::Graph& g,
                             std::span<const Cycles> latency,
                             const ResourceLimits& limits, Cycles ii);

/// Sehwa-style lower bound on the initiation interval:
/// max over resource classes of ceil(total busy cycles / unit count).
Cycles min_initiation_interval(const dfg::Graph& g,
                               std::span<const Cycles> latency,
                               const ResourceLimits& limits);

}  // namespace chop::sched
