// Urgency scheduling of the system task graph (paper §2.5).
//
// After CHOP creates data transfer tasks between partitions, the whole
// system is a task graph: PU tasks (partition executions, fixed duration)
// and transfer tasks (durations from pin bandwidth), with precedence from
// the data flow and shared resources — each chip's data pins and each
// memory block's ports. "An urgency scheduling is performed to confirm
// feasibility of sharing the data pins of chips as well as to keep memory
// accesses to each memory block feasible while reaching the minimum
// overall system delay. The urgency measure is based on the actual
// critical path delays of tasks."
//
// The overall process is treated as pipelined (§2.5), so resource demands
// are additionally folded modulo the initiation interval.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace chop::sched {

/// One task: a PU execution or a data transfer. Demands name abstract
/// resource ids with the amount consumed during every cycle the task runs.
struct Task {
  std::string name;
  Cycles duration = 0;
  std::vector<std::pair<int, int>> demands;  ///< (resource id, amount).
};

/// The system task graph plus its resource capacities.
struct TaskGraph {
  std::vector<Task> tasks;
  std::vector<std::pair<int, int>> precedence;  ///< (before, after) indices.
  std::vector<int> capacity;                    ///< indexed by resource id.

  int add_task(Task task);
  void add_precedence(int before, int after);
  int add_resource(int capacity_amount);
  void validate() const;
};

/// Schedule produced by urgency_schedule(). `feasible == false` when a task
/// demands more of a resource than its total capacity or no placement
/// exists within the horizon (with ii > 0, a modulo-folded oversubscription).
struct TaskSchedule {
  std::vector<Cycles> start;
  Cycles makespan = 0;
  bool feasible = false;
};

/// List-schedules the task graph by urgency (longest remaining path to a
/// sink, including the task's own duration). `ii > 0` folds resource usage
/// modulo `ii` — the steady-state constraint of a pipelined system; pass
/// `ii == 0` for a one-shot (nonpipelined) system.
TaskSchedule urgency_schedule(const TaskGraph& tg, Cycles ii);

}  // namespace chop::sched
