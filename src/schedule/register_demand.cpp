#include "schedule/register_demand.hpp"

#include <algorithm>

namespace chop::sched {

Bits register_demand(const dfg::Graph& g, std::span<const Cycles> latency,
                     const OpSchedule& schedule) {
  CHOP_REQUIRE(latency.size() == g.node_count(),
               "latency vector size must match node count");
  CHOP_REQUIRE(schedule.start.size() == g.node_count(),
               "schedule does not belong to this graph");
  const Cycles length = std::max<Cycles>(schedule.length, 1);
  const Cycles ii = std::max<Cycles>(schedule.initiation_interval, 1);

  // Alive interval [birth, death) per value-producing node, in absolute
  // cycles of one iteration.
  struct Life {
    Cycles birth = 0;
    Cycles death = 0;
    Bits width = 0;
  };
  std::vector<Life> lives;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const dfg::NodeId id = static_cast<dfg::NodeId>(i);
    const dfg::Node& n = g.node(id);
    if (n.kind == dfg::OpKind::Output || n.width == 0) continue;
    // Primary-input values are held in the data transfer module buffers
    // (sized separately at system integration), not in datapath registers.
    if (n.kind == dfg::OpKind::Input) continue;
    Life life;
    life.width = n.width;
    life.birth = schedule.start[i] + latency[i];
    life.death = life.birth;
    for (dfg::EdgeId e : g.fanout(id)) {
      const dfg::NodeId dst = g.edge(e).dst;
      const auto d = static_cast<std::size_t>(dst);
      if (g.node(dst).kind == dfg::OpKind::Output) {
        // Output values hand off to the data transfer module's buffer one
        // cycle after production (the B = D(ceil(W/l)+X/l) buffer model of
        // §2.5 carries them from there).
        life.death = std::max(life.death, life.birth + 1);
      } else {
        // Consumer reads the value throughout its execution.
        life.death = std::max(life.death, schedule.start[d] + latency[d]);
      }
    }
    if (life.death > life.birth) lives.push_back(life);
  }

  // Bits alive across each boundary, folded modulo the II so overlapped
  // iterations of a pipelined design share one accounting.
  std::vector<Bits> phase(static_cast<std::size_t>(ii), 0);
  for (const Life& life : lives) {
    // Boundaries crossed: b in [birth, death), meaning alive during cycle b
    // going into b+1; fold b mod ii, counting each folded phase once per
    // crossing (concurrent iterations stack).
    for (Cycles b = life.birth; b < life.death; ++b) {
      phase[static_cast<std::size_t>(b % ii)] += life.width;
    }
  }
  return phase.empty() ? 0 : *std::max_element(phase.begin(), phase.end());
}

}  // namespace chop::sched
