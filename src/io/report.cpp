#include "io/report.hpp"

#include <ostream>
#include <sstream>

namespace chop::io {

namespace {

void heading(std::ostream& out, const std::string& text) {
  out << "\n## " << text << "\n\n";
}

std::string triplet(const StatVal& v) {
  std::ostringstream os;
  os << v.lo() << " / " << v.likely() << " / " << v.hi();
  return os.str();
}

}  // namespace

void render_report(const core::ChopSession& session,
                   const core::PredictionStats& stats,
                   const core::SearchResult& result, std::ostream& out,
                   const ReportOptions& options) {
  const core::Partitioning& pt = session.partitioning();
  const core::ChopConfig& config = session.config();

  out << "# " << options.title << "\n\n";
  out << "Specification `" << pt.spec().name() << "`: "
      << pt.spec().operation_count() << " operations, "
      << pt.spec().total_input_bits() << " input bits, "
      << pt.spec().total_output_bits() << " output bits per iteration.\n\n";
  out << "Style: **" << to_string(config.style.clocking) << "**, main clock "
      << config.clocks.main_clock << " ns (datapath x"
      << config.clocks.datapath_multiplier << ", transfer x"
      << config.clocks.transfer_multiplier << "). Constraints: performance "
      << config.constraints.performance_ns << " ns, delay "
      << config.constraints.delay_ns << " ns";
  if (config.constraints.power_constrained()) {
    out << ", power " << config.constraints.system_power_mw << " mW system / "
        << config.constraints.chip_power_mw << " mW chip";
  }
  out << ".\n";

  heading(out, "Partitioning");
  out << "| Partition | Chip | Package | Operations |\n";
  out << "|---|---|---|---|\n";
  for (const core::Partition& p : pt.partitions()) {
    const chip::ChipInstance& c =
        pt.chips()[static_cast<std::size_t>(p.chip)];
    out << "| " << p.name << " | " << c.name << " | " << c.package.name
        << " (" << c.package.pin_count << " pins) | " << p.members.size()
        << " |\n";
  }
  if (!pt.memory().blocks.empty()) {
    out << "\n| Memory block | Placement | Word bits | Ports |\n";
    out << "|---|---|---|---|\n";
    for (std::size_t b = 0; b < pt.memory().blocks.size(); ++b) {
      const chip::MemoryModule& m = pt.memory().blocks[b];
      const int placement = pt.memory().placement(static_cast<int>(b));
      out << "| " << m.name << " | "
          << (placement == chip::kOffTheShelfChip
                  ? std::string("off-the-shelf chip")
                  : pt.chips()[static_cast<std::size_t>(placement)].name)
          << " | " << m.word_bits << " | " << m.ports << " |\n";
    }
  }

  heading(out, "Prediction and search statistics");
  out << "- BAD predictions: **" << stats.total << "** total, **"
      << stats.feasible << "** feasible after level-1 pruning\n";
  out << "- Search trials: **" << result.trials << "**"
      << (result.truncated ? " (truncated by the safety cap)" : "") << "\n";
  out << "- Feasible non-inferior designs: **" << result.designs.size()
      << "**\n";

  heading(out, "Feasible designs");
  if (result.designs.empty()) {
    out << "*No feasible partitioning under the given constraints.*\n";
    return;
  }
  out << "| # | II (cycles) | Delay (cycles) | Clock (ns) | Performance "
         "(ns) | Delay (ns) | System power (mW) |\n";
  out << "|---|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < result.designs.size(); ++i) {
    const core::IntegrationResult& d = result.designs[i].integration;
    out << "| " << i + 1 << " | " << d.ii_main << " | "
        << d.system_delay_main << " | " << d.clock_ns() << " | "
        << d.performance_ns.likely() << " | " << d.delay_ns.likely() << " | "
        << d.system_power_mw.likely() << " |\n";
  }

  const std::size_t detailed =
      std::min(options.max_designs, result.designs.size());
  for (std::size_t i = 0; i < detailed; ++i) {
    const core::GlobalDesign& design = result.designs[i];
    heading(out, "Design " + std::to_string(i + 1) + " — guideline");
    if (options.include_guidelines) {
      out << "```\n" << session.guideline(design) << "```\n";
    }
    out << "\nPer-chip budgets:\n\n";
    out << "| Chip | Used area (lo/likely/hi, mil^2) | Usable | Power (mW) "
           "|\n";
    out << "|---|---|---|---|\n";
    for (std::size_t c = 0; c < pt.chips().size(); ++c) {
      out << "| " << pt.chips()[c].name << " | "
          << triplet(design.integration.chip_area[c]) << " | "
          << pt.chips()[c].package.usable_area() << " | "
          << design.integration.chip_power_mw[c].likely() << " |\n";
    }
    if (options.include_transfers) {
      out << "\n| Transfer | Pins | X (cycles) | W (cycles) | Buffer (bits) "
             "| PLA i x o x t |\n";
      out << "|---|---|---|---|---|---|\n";
      for (const core::TransferPlan& t : design.integration.transfers) {
        if (!t.task.crosses_pins()) continue;
        out << "| " << t.task.name << " | " << t.pins << " | "
            << t.transfer_cycles << " | " << t.wait_cycles << " | "
            << t.buffer_bits << " | " << t.controller.inputs << "x"
            << t.controller.outputs << "x" << t.controller.product_terms
            << " |\n";
      }
    }
  }
}

std::string render_report_string(const core::ChopSession& session,
                                 const core::PredictionStats& stats,
                                 const core::SearchResult& result,
                                 const ReportOptions& options) {
  std::ostringstream os;
  render_report(session, stats, result, os, options);
  return os.str();
}

}  // namespace chop::io
