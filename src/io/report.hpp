// Markdown report generation: renders a session's partitioning, the
// prediction statistics, the search outcome, the per-design guideline of
// §3.1 and the per-chip budgets into a single human-readable document —
// the artifact a designer files after a Figure-1 session.
#pragma once

#include <iosfwd>
#include <string>

#include "core/search.hpp"
#include "core/session.hpp"

namespace chop::io {

/// Options for render_report().
struct ReportOptions {
  std::string title = "CHOP partitioning report";
  bool include_guidelines = true;   ///< §3.1-style per-design decisions.
  bool include_transfers = true;    ///< Data-transfer-module tables.
  std::size_t max_designs = 8;      ///< Designs detailed in full.
};

/// Renders a Markdown report for `result` obtained from `session`.
/// `stats` must be the prediction statistics of the same
/// predict_partitions() pass the search consumed.
void render_report(const core::ChopSession& session,
                   const core::PredictionStats& stats,
                   const core::SearchResult& result, std::ostream& out,
                   const ReportOptions& options = {});

/// Convenience: report as a string.
std::string render_report_string(const core::ChopSession& session,
                                 const core::PredictionStats& stats,
                                 const core::SearchResult& result,
                                 const ReportOptions& options = {});

}  // namespace chop::io
