#include "io/spec_format.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "chip/mosis_packages.hpp"

namespace chop::io {

namespace {

/// Tokenizes one line (whitespace-separated; '#' starts a comment).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

dfg::OpKind parse_op(int line, const std::string& name) {
  static const std::map<std::string, dfg::OpKind> kOps = {
      {"add", dfg::OpKind::Add},       {"sub", dfg::OpKind::Sub},
      {"mul", dfg::OpKind::Mul},       {"div", dfg::OpKind::Div},
      {"cmp", dfg::OpKind::Compare},   {"logic", dfg::OpKind::Logic},
      {"shift", dfg::OpKind::Shift},   {"select", dfg::OpKind::Select},
  };
  auto it = kOps.find(name);
  if (it == kOps.end()) throw ParseError(line, "unknown operation: " + name);
  return it->second;
}

double parse_number(int line, const std::string& token) {
  double v = 0.0;
  try {
    std::size_t used = 0;
    v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
  } catch (const std::exception&) {
    throw ParseError(line, "expected a number, got '" + token + "'");
  }
  // NaN/infinity would poison every downstream comparison silently.
  if (!std::isfinite(v)) {
    throw ParseError(line, "number is not finite: '" + token + "'");
  }
  return v;
}

long parse_int(int line, const std::string& token) {
  const double v = parse_number(line, token);
  // Bound before the cast: double -> long of an out-of-range value is
  // undefined behavior, and no quantity in a project legitimately needs
  // magnitudes anywhere near this.
  constexpr double kMaxMagnitude = 1e15;
  if (v < -kMaxMagnitude || v > kMaxMagnitude) {
    throw ParseError(line, "integer out of range: '" + token + "'");
  }
  const long i = static_cast<long>(v);
  if (static_cast<double>(i) != v) {
    throw ParseError(line, "expected an integer, got '" + token + "'");
  }
  return i;
}

/// key=value attribute token.
std::pair<std::string, std::string> parse_attr(int line,
                                               const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
    throw ParseError(line, "expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

enum class Section { None, Graph, Library, Chips, Partitions, Config };

struct ParserState {
  Project project;
  std::map<std::string, dfg::NodeId> node_by_name;
  std::map<std::string, int> chip_by_name;
  std::map<std::string, int> memory_by_name;
  bool saw_graph = false;

  dfg::NodeId lookup(int line, const std::string& name) const {
    auto it = node_by_name.find(name);
    if (it == node_by_name.end()) {
      throw ParseError(line, "unknown node: " + name);
    }
    return it->second;
  }
};

void parse_graph_line(ParserState& st, int line,
                      const std::vector<std::string>& t) {
  dfg::Graph& g = st.project.graph;
  const std::string& kind = t[0];
  auto define = [&](const std::string& name, dfg::NodeId id) {
    if (!st.node_by_name.emplace(name, id).second) {
      throw ParseError(line, "duplicate node name: " + name);
    }
  };
  if (kind == "input" || kind == "const") {
    if (t.size() != 3) throw ParseError(line, kind + " <name> <bits>");
    const Bits bits = parse_int(line, t[2]);
    define(t[1], kind == "input" ? g.add_input(t[1], bits)
                                 : g.add_constant_input(t[1], bits));
  } else if (kind == "node") {
    if (t.size() < 5) {
      throw ParseError(line, "node <name> <op> <bits> <operands...>");
    }
    const dfg::OpKind op = parse_op(line, t[2]);
    const Bits bits = parse_int(line, t[3]);
    std::vector<dfg::NodeId> operands;
    for (std::size_t i = 4; i < t.size(); ++i) {
      operands.push_back(st.lookup(line, t[i]));
    }
    define(t[1], g.add_op(op, bits, operands, t[1]));
  } else if (kind == "memread") {
    if (t.size() != 4 && t.size() != 5) {
      throw ParseError(line, "memread <name> <block> <bits> [<addr>]");
    }
    const int block = static_cast<int>(parse_int(line, t[2]));
    const Bits bits = parse_int(line, t[3]);
    const dfg::NodeId addr =
        t.size() == 5 ? st.lookup(line, t[4]) : dfg::kNoNode;
    define(t[1], g.add_mem_read(block, bits, addr, t[1]));
  } else if (kind == "memwrite") {
    if (t.size() != 4 && t.size() != 5) {
      throw ParseError(line, "memwrite <name> <block> <data> [<addr>]");
    }
    const int block = static_cast<int>(parse_int(line, t[2]));
    const dfg::NodeId data = st.lookup(line, t[3]);
    const dfg::NodeId addr =
        t.size() == 5 ? st.lookup(line, t[4]) : dfg::kNoNode;
    define(t[1], g.add_mem_write(block, data, addr, t[1]));
  } else if (kind == "output") {
    if (t.size() != 3) throw ParseError(line, "output <name> <operand>");
    define(t[1], g.add_output(t[1], st.lookup(line, t[2])));
  } else {
    throw ParseError(line, "unknown graph statement: " + kind);
  }
}

void parse_library_line(ParserState& st, int line,
                        const std::vector<std::string>& t) {
  lib::ComponentLibrary& library = st.project.library;
  if (t[0] == "module") {
    if (t.size() != 6 && t.size() != 7) {
      throw ParseError(line,
                       "module <name> <op> <bits> <area> <delay> [<power>]");
    }
    lib::ModuleSpec spec;
    spec.name = t[1];
    spec.op = parse_op(line, t[2]);
    spec.width = parse_int(line, t[3]);
    spec.area = parse_number(line, t[4]);
    spec.delay = parse_number(line, t[5]);
    if (t.size() == 7) spec.active_power_mw = parse_number(line, t[6]);
    try {
      library.add(spec);
    } catch (const Error& e) {
      throw ParseError(line, e.what());
    }
  } else if (t[0] == "register" || t[0] == "mux") {
    if (t.size() != 3) throw ParseError(line, t[0] + " <area> <delay>");
    const lib::BitCellSpec cell{parse_number(line, t[1]),
                                parse_number(line, t[2])};
    if (t[0] == "register") {
      library.set_register_bit(cell);
    } else {
      library.set_mux_bit(cell);
    }
  } else {
    throw ParseError(line, "unknown library statement: " + t[0]);
  }
}

void parse_chips_line(ParserState& st, int line,
                      const std::vector<std::string>& t) {
  if (t[0] == "chip") {
    if (t.size() < 3) throw ParseError(line, "chip <name> <package...>");
    chip::ChipPackage pkg;
    if (t[2] == "mosis64") {
      pkg = chip::mosis_package_64();
    } else if (t[2] == "mosis84") {
      pkg = chip::mosis_package_84();
    } else {
      pkg.name = t[1];
      for (std::size_t i = 2; i < t.size(); ++i) {
        const auto [key, value] = parse_attr(line, t[i]);
        if (key == "pins") {
          pkg.pin_count = static_cast<Pins>(parse_int(line, value));
        } else if (key == "width") {
          pkg.width_mil = parse_number(line, value);
        } else if (key == "height") {
          pkg.height_mil = parse_number(line, value);
        } else if (key == "pad_delay") {
          pkg.pad_delay = parse_number(line, value);
        } else if (key == "pad_area") {
          pkg.io_pad_area = parse_number(line, value);
        } else if (key == "reserve") {
          pkg.infrastructure_pins = static_cast<Pins>(parse_int(line, value));
        } else {
          throw ParseError(line, "unknown chip attribute: " + key);
        }
      }
      try {
        pkg.validate();
      } catch (const Error& e) {
        throw ParseError(line, e.what());
      }
    }
    if (!st.chip_by_name
             .emplace(t[1], static_cast<int>(st.project.chips.size()))
             .second) {
      throw ParseError(line, "duplicate chip name: " + t[1]);
    }
    st.project.chips.push_back({t[1], pkg});
  } else if (t[0] == "memory") {
    if (t.size() < 3) throw ParseError(line, "memory <name> <attrs...>");
    chip::MemoryModule block;
    block.name = t[1];
    int placement = chip::kOffTheShelfChip;
    for (std::size_t i = 2; i < t.size(); ++i) {
      const auto [key, value] = parse_attr(line, t[i]);
      if (key == "words") {
        block.words = static_cast<int>(parse_int(line, value));
      } else if (key == "width") {
        block.word_bits = parse_int(line, value);
      } else if (key == "ports") {
        block.ports = static_cast<int>(parse_int(line, value));
      } else if (key == "access") {
        block.access_time = parse_number(line, value);
      } else if (key == "area") {
        block.area = parse_number(line, value);
      } else if (key == "control_pins") {
        block.control_pins = static_cast<Pins>(parse_int(line, value));
      } else if (key == "chip") {
        if (value == "offchip") {
          placement = chip::kOffTheShelfChip;
        } else {
          auto it = st.chip_by_name.find(value);
          if (it == st.chip_by_name.end()) {
            throw ParseError(line, "unknown chip: " + value);
          }
          placement = it->second;
        }
      } else {
        throw ParseError(line, "unknown memory attribute: " + key);
      }
    }
    try {
      block.validate();
    } catch (const Error& e) {
      throw ParseError(line, e.what());
    }
    const int index = static_cast<int>(st.project.memory.blocks.size());
    if (!st.memory_by_name.emplace(t[1], index).second) {
      throw ParseError(line, "duplicate memory name: " + t[1]);
    }
    st.project.memory.blocks.push_back(block);
    st.project.memory.chip_of_block.push_back(placement);
  } else {
    throw ParseError(line, "unknown chips statement: " + t[0]);
  }
}

void parse_partitions_line(ParserState& st, int line,
                           const std::vector<std::string>& t) {
  if (t[0] != "partition" || t.size() < 4) {
    throw ParseError(line, "partition <name> <chip> <nodes...>");
  }
  auto chip_it = st.chip_by_name.find(t[2]);
  if (chip_it == st.chip_by_name.end()) {
    throw ParseError(line, "unknown chip: " + t[2]);
  }
  core::Partition partition;
  partition.name = t[1];
  partition.chip = chip_it->second;
  for (std::size_t i = 3; i < t.size(); ++i) {
    partition.members.push_back(st.lookup(line, t[i]));
  }
  st.project.partitions.push_back(std::move(partition));
}

void parse_config_line(ParserState& st, int line,
                       const std::vector<std::string>& t) {
  core::ChopConfig& config = st.project.config;
  if (t[0] == "style") {
    if (t.size() < 2) throw ParseError(line, "style <clocking> [nopipeline]");
    if (t[1] == "single_cycle") {
      config.style.clocking = bad::ClockingStyle::SingleCycle;
    } else if (t[1] == "multi_cycle") {
      config.style.clocking = bad::ClockingStyle::MultiCycle;
    } else {
      throw ParseError(line, "unknown style: " + t[1]);
    }
    config.style.allow_pipelining =
        !(t.size() >= 3 && t[2] == "nopipeline");
  } else if (t[0] == "clock") {
    if (t.size() != 4) {
      throw ParseError(line, "clock <main_ns> <datapath_mult> <transfer_mult>");
    }
    config.clocks.main_clock = parse_number(line, t[1]);
    config.clocks.datapath_multiplier = static_cast<int>(parse_int(line, t[2]));
    config.clocks.transfer_multiplier = static_cast<int>(parse_int(line, t[3]));
  } else if (t[0] == "constraints") {
    if (t.size() != 3) {
      throw ParseError(line, "constraints <performance_ns> <delay_ns>");
    }
    config.constraints.performance_ns = parse_number(line, t[1]);
    config.constraints.delay_ns = parse_number(line, t[2]);
  } else if (t[0] == "power") {
    if (t.size() != 3) throw ParseError(line, "power <system_mw> <chip_mw>");
    config.constraints.system_power_mw = parse_number(line, t[1]);
    config.constraints.chip_power_mw = parse_number(line, t[2]);
  } else if (t[0] == "criteria") {
    if (t.size() != 4 && t.size() != 5) {
      throw ParseError(line,
                       "criteria <area_p> <perf_p> <delay_p> [<power_p>]");
    }
    config.criteria.area_prob = parse_number(line, t[1]);
    config.criteria.performance_prob = parse_number(line, t[2]);
    config.criteria.delay_prob = parse_number(line, t[3]);
    if (t.size() == 5) config.criteria.power_prob = parse_number(line, t[4]);
  } else if (t[0] == "scan") {
    if (t.size() != 2 || (t[1] != "on" && t[1] != "off")) {
      throw ParseError(line, "scan on|off");
    }
    config.testability.scan_design = t[1] == "on";
  } else {
    throw ParseError(line, "unknown config statement: " + t[0]);
  }
}

}  // namespace

core::ChopSession Project::make_session() const {
  core::Partitioning pt(graph, chips, memory);
  for (const core::Partition& p : partitions) {
    pt.add_partition(p.name, p.members, p.chip);
  }
  return core::ChopSession(library, std::move(pt), config);
}

Project parse_project(std::istream& in) {
  ParserState st;
  Section section = Section::None;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    if (t[0] == "graph") {
      if (t.size() != 2) throw ParseError(line_no, "graph <name>");
      st.project.graph.set_name(t[1]);
      st.saw_graph = true;
      section = Section::Graph;
    } else if (t[0] == "library") {
      section = Section::Library;
    } else if (t[0] == "chips") {
      section = Section::Chips;
    } else if (t[0] == "partitions") {
      section = Section::Partitions;
    } else if (t[0] == "config") {
      section = Section::Config;
    } else {
      // Builder methods (Graph::add_*, validate helpers) throw plain
      // chop::Error; rewrap with the line number so every malformed input
      // surfaces as a ParseError rather than escaping unlocated.
      try {
        switch (section) {
          case Section::None:
            throw ParseError(line_no,
                             "statement outside any section: " + t[0]);
          case Section::Graph: parse_graph_line(st, line_no, t); break;
          case Section::Library: parse_library_line(st, line_no, t); break;
          case Section::Chips: parse_chips_line(st, line_no, t); break;
          case Section::Partitions:
            parse_partitions_line(st, line_no, t);
            break;
          case Section::Config: parse_config_line(st, line_no, t); break;
        }
      } catch (const ParseError&) {
        throw;
      } catch (const Error& e) {
        throw ParseError(line_no, e.what());
      }
    }
  }
  if (!st.saw_graph) throw ParseError(line_no, "project has no graph section");
  try {
    st.project.graph.validate();
    st.project.memory.validate(static_cast<int>(st.project.chips.size()));
  } catch (const Error& e) {
    throw ParseError(line_no, e.what());
  }
  // Memory operations must reference declared blocks: an out-of-range
  // index would be read unchecked when transfer tasks are created.
  const auto block_count = static_cast<int>(st.project.memory.blocks.size());
  for (std::size_t i = 0; i < st.project.graph.node_count(); ++i) {
    const dfg::Node& n = st.project.graph.node(static_cast<dfg::NodeId>(i));
    if ((n.kind == dfg::OpKind::MemRead || n.kind == dfg::OpKind::MemWrite) &&
        n.memory_block >= block_count) {
      throw ParseError(line_no, "memory operation '" + n.name +
                                    "' references undeclared block " +
                                    std::to_string(n.memory_block));
    }
  }
  return st.project;
}

Project parse_project_string(const std::string& text) {
  std::istringstream is(text);
  return parse_project(is);
}

Project parse_project_file(const std::string& path) {
  std::ifstream in(path);
  CHOP_REQUIRE(in.good(), "cannot open project file: " + path);
  return parse_project(in);
}

}  // namespace chop::io
