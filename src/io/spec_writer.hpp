// Serializes a Project (or a live session's state) back to the `.chop`
// text format, such that parse(write(p)) reproduces an equivalent project.
// Lets the CLI and the automatic partitioner persist their results for a
// later interactive session — the save/restore half of the paper's
// designer loop.
#pragma once

#include <iosfwd>
#include <string>

#include "io/spec_format.hpp"

namespace chop::io {

/// Writes `project` as a parseable `.chop` document.
void write_project(const Project& project, std::ostream& out);

/// Convenience: returns the document as a string.
std::string write_project_string(const Project& project);

/// Convenience: writes to `path`; throws chop::Error on I/O failure.
void write_project_file(const Project& project, const std::string& path);

}  // namespace chop::io
