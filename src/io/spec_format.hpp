// The `.chop` project file format: a line-oriented text description of
// everything the paper lists as CHOP's inputs (§2.2) — the behavioral
// specification, the component library, the chip set, memory modules and
// their assignments, partitions and their chip assignments, clocks,
// architecture style, constraints and feasibility criteria — so the
// partitioner can be driven without writing C++ (see tools/chop_cli).
//
// Format (comments start with '#', blank lines ignored, sections are
// introduced by a keyword line):
//
//   graph <name>
//     input <name> <bits>
//     const <name> <bits>
//     node <name> <op> <bits> <operand> <operand...>   # op: add|sub|mul|...
//     memread <name> <block> <bits> [<addr-operand>]
//     memwrite <name> <block> <data-operand> [<addr-operand>]
//     output <name> <operand>
//
//   library
//     module <name> <op> <bits> <area> <delay> [<power_mw>]
//     register <area> <delay>
//     mux <area> <delay>
//
//   chips
//     chip <name> mosis64|mosis84
//     chip <name> pins=<n> width=<mil> height=<mil> pad_delay=<ns> pad_area=<mil2>
//     memory <name> words=<n> width=<bits> ports=<n> access=<ns> area=<mil2> chip=<chip-name|offchip>
//
//   partitions
//     partition <name> <chip-name> <node-name> <node-name...>
//
//   config
//     style single_cycle|multi_cycle [nopipeline]
//     clock <main_ns> <datapath_mult> <transfer_mult>
//     constraints <performance_ns> <delay_ns>
//     power <system_mw> <chip_mw>
//     criteria <area_prob> <perf_prob> <delay_prob> [<power_prob>]
//     scan on|off
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "chip/memory.hpp"
#include "chip/package.hpp"
#include "core/session.hpp"
#include "dfg/graph.hpp"
#include "library/component_library.hpp"

namespace chop::io {

/// A fully parsed `.chop` project: everything needed to build a session.
struct Project {
  dfg::Graph graph;
  lib::ComponentLibrary library;
  std::vector<chip::ChipInstance> chips;
  chip::MemorySubsystem memory;
  /// Partition name, chip index, member node ids.
  std::vector<core::Partition> partitions;
  core::ChopConfig config;

  /// Builds the ready-to-run session (validates everything).
  core::ChopSession make_session() const;
};

/// Parse error with 1-based line information.
class ParseError : public Error {
 public:
  ParseError(int line, const std::string& message)
      : Error("line " + std::to_string(line) + ": " + message), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a project from a stream / string / file. Throws ParseError on
/// malformed input; the resulting Project is structurally validated.
Project parse_project(std::istream& in);
Project parse_project_string(const std::string& text);
Project parse_project_file(const std::string& path);

}  // namespace chop::io
