#include "baseline/kernighan_lin.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace chop::baseline {

KlGraph KlGraph::from_operations(const dfg::Graph& g,
                                 const std::vector<dfg::NodeId>& ops) {
  KlGraph out;
  out.vertex_count = static_cast<int>(ops.size());
  out.adjacency.resize(ops.size());

  std::map<dfg::NodeId, int> vertex_of;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    CHOP_REQUIRE(!vertex_of.count(ops[i]), "duplicate operation in KL input");
    vertex_of[ops[i]] = static_cast<int>(i);
  }

  std::map<std::pair<int, int>, Bits> weight;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const dfg::Edge& edge = g.edge(static_cast<dfg::EdgeId>(e));
    auto s = vertex_of.find(edge.src);
    auto d = vertex_of.find(edge.dst);
    if (s == vertex_of.end() || d == vertex_of.end()) continue;
    const int a = std::min(s->second, d->second);
    const int b = std::max(s->second, d->second);
    if (a == b) continue;
    weight[{a, b}] += edge.width;
  }
  for (const auto& [pair, w] : weight) {
    out.adjacency[static_cast<std::size_t>(pair.first)].emplace_back(
        pair.second, w);
    out.adjacency[static_cast<std::size_t>(pair.second)].emplace_back(
        pair.first, w);
  }
  return out;
}

Bits cut_cost(const KlGraph& g, const std::vector<int>& side) {
  CHOP_REQUIRE(side.size() == static_cast<std::size_t>(g.vertex_count),
               "side vector size mismatch");
  Bits cost = 0;
  for (int v = 0; v < g.vertex_count; ++v) {
    for (const auto& [u, w] : g.adjacency[static_cast<std::size_t>(v)]) {
      if (u > v && side[static_cast<std::size_t>(u)] !=
                       side[static_cast<std::size_t>(v)]) {
        cost += w;
      }
    }
  }
  return cost;
}

std::vector<int> random_bisection(int vertex_count, Rng& rng) {
  CHOP_REQUIRE(vertex_count >= 2, "bisection needs at least two vertices");
  std::vector<int> side(static_cast<std::size_t>(vertex_count), 0);
  for (int i = vertex_count / 2; i < vertex_count; ++i) {
    side[static_cast<std::size_t>(i)] = 1;
  }
  // Fisher-Yates shuffle of the assignment.
  for (int i = vertex_count - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform(0, i));
    std::swap(side[static_cast<std::size_t>(i)], side[j]);
  }
  return side;
}

namespace {

/// External minus internal cost of vertex v under `side`.
Bits d_value(const KlGraph& g, const std::vector<int>& side, int v) {
  Bits external = 0, internal = 0;
  for (const auto& [u, w] : g.adjacency[static_cast<std::size_t>(v)]) {
    if (side[static_cast<std::size_t>(u)] == side[static_cast<std::size_t>(v)]) {
      internal += w;
    } else {
      external += w;
    }
  }
  return external - internal;
}

/// Weight between two vertices (0 if not adjacent).
Bits edge_weight(const KlGraph& g, int a, int b) {
  for (const auto& [u, w] : g.adjacency[static_cast<std::size_t>(a)]) {
    if (u == b) return w;
  }
  return 0;
}

}  // namespace

KlResult kernighan_lin(const KlGraph& g, std::vector<int> initial) {
  CHOP_REQUIRE(initial.size() == static_cast<std::size_t>(g.vertex_count),
               "initial assignment size mismatch");
  const int ones = static_cast<int>(
      std::count(initial.begin(), initial.end(), 1));
  CHOP_REQUIRE(std::abs(2 * ones - g.vertex_count) <= 1,
               "KL initial assignment must be balanced");

  KlResult result;
  result.side = std::move(initial);

  while (true) {
    ++result.passes;
    std::vector<int> side = result.side;
    std::vector<bool> locked(static_cast<std::size_t>(g.vertex_count), false);
    std::vector<Bits> d(static_cast<std::size_t>(g.vertex_count));
    for (int v = 0; v < g.vertex_count; ++v) {
      d[static_cast<std::size_t>(v)] = d_value(g, side, v);
    }

    std::vector<std::pair<int, int>> swaps;  // chosen (a, b) per step
    std::vector<Bits> gains;

    const int steps = g.vertex_count / 2;
    for (int step = 0; step < steps; ++step) {
      Bits best_gain = std::numeric_limits<Bits>::min();
      int best_a = -1, best_b = -1;
      for (int a = 0; a < g.vertex_count; ++a) {
        if (locked[static_cast<std::size_t>(a)] ||
            side[static_cast<std::size_t>(a)] != 0) {
          continue;
        }
        for (int b = 0; b < g.vertex_count; ++b) {
          if (locked[static_cast<std::size_t>(b)] ||
              side[static_cast<std::size_t>(b)] != 1) {
            continue;
          }
          const Bits gain = d[static_cast<std::size_t>(a)] +
                            d[static_cast<std::size_t>(b)] -
                            2 * edge_weight(g, a, b);
          if (gain > best_gain) {
            best_gain = gain;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a < 0) break;  // one side ran out of unlocked vertices
      swaps.emplace_back(best_a, best_b);
      gains.push_back(best_gain);
      locked[static_cast<std::size_t>(best_a)] = true;
      locked[static_cast<std::size_t>(best_b)] = true;
      // Update D values as if the swap happened.
      std::swap(side[static_cast<std::size_t>(best_a)],
                side[static_cast<std::size_t>(best_b)]);
      for (int v = 0; v < g.vertex_count; ++v) {
        if (!locked[static_cast<std::size_t>(v)]) {
          d[static_cast<std::size_t>(v)] = d_value(g, side, v);
        }
      }
    }

    // Best prefix of the swap sequence.
    Bits best_total = 0, running = 0;
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < gains.size(); ++k) {
      running += gains[k];
      if (running > best_total) {
        best_total = running;
        best_k = k + 1;
      }
    }
    if (best_total <= 0) break;  // no improvement: done
    for (std::size_t k = 0; k < best_k; ++k) {
      std::swap(result.side[static_cast<std::size_t>(swaps[k].first)],
                result.side[static_cast<std::size_t>(swaps[k].second)]);
    }
  }

  result.cut_cost = cut_cost(g, result.side);
  return result;
}

std::vector<std::vector<dfg::NodeId>> kl_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k,
    Rng& rng) {
  CHOP_REQUIRE(k >= 1, "partition count must be positive");
  CHOP_REQUIRE(static_cast<int>(ops.size()) >= k,
               "cannot split fewer operations than partitions");
  std::vector<std::vector<dfg::NodeId>> parts{ops};
  while (static_cast<int>(parts.size()) < k) {
    // Split the largest current part.
    std::size_t largest = 0;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (parts[i].size() > parts[largest].size()) largest = i;
    }
    CHOP_REQUIRE(parts[largest].size() >= 2,
                 "cannot split a single-operation partition");
    const std::vector<dfg::NodeId> victim = parts[largest];
    const KlGraph kg = KlGraph::from_operations(g, victim);
    const KlResult kl =
        kernighan_lin(kg, random_bisection(kg.vertex_count, rng));
    std::vector<dfg::NodeId> left, right;
    for (std::size_t v = 0; v < victim.size(); ++v) {
      (kl.side[v] == 0 ? left : right).push_back(victim[v]);
    }
    parts[largest] = std::move(left);
    parts.push_back(std::move(right));
  }
  return parts;
}

}  // namespace chop::baseline
