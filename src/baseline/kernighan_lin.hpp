// Kernighan-Lin min-cut bipartitioning (paper ref [4]) as the classical
// baseline CHOP's related-work section argues against for behavioral
// specifications: KL minimizes "sum of costs of values cut", which does
// not directly correlate with pin counts or chip area once behavioral
// synthesis introduces sequential behavior. We implement it faithfully —
// pairwise-swap passes on an undirected weighted graph — so the
// bench_baseline_kl harness can evaluate KL cuts through CHOP's own
// predictors and compare.
#pragma once

#include <vector>

#include "dfg/graph.hpp"
#include "util/rng.hpp"

namespace chop::baseline {

/// Result of one KL bipartitioning.
struct KlResult {
  std::vector<int> side;  ///< 0/1 per vertex.
  Bits cut_cost = 0;      ///< Total weight of edges crossing the cut.
  int passes = 0;         ///< Improvement passes executed.
};

/// Undirected weighted graph for KL, built from a behavioral graph's
/// operation nodes (edge weight = value bit width; parallel edges merge).
struct KlGraph {
  int vertex_count = 0;
  /// Adjacency: per vertex, (neighbor, weight) pairs.
  std::vector<std::vector<std::pair<int, Bits>>> adjacency;

  static KlGraph from_operations(const dfg::Graph& g,
                                 const std::vector<dfg::NodeId>& ops);
};

/// Runs Kernighan-Lin starting from `initial` (0/1 per vertex, must be
/// balanced to within one vertex) until a pass yields no gain. Classic
/// all-pairs greedy swapping with locked vertices per pass.
KlResult kernighan_lin(const KlGraph& g, std::vector<int> initial);

/// Balanced random initial assignment.
std::vector<int> random_bisection(int vertex_count, Rng& rng);

/// Recursive KL bisection of `ops` into `k` parts (k a power of two is
/// exact; otherwise the largest part keeps splitting). Returns member
/// lists usable as CHOP partitions.
std::vector<std::vector<dfg::NodeId>> kl_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k, Rng& rng);

/// Cut cost of an assignment (for tests and reports).
Bits cut_cost(const KlGraph& g, const std::vector<int>& side);

}  // namespace chop::baseline
