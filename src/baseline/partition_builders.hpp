// Simple comparison partitioners: level-order (topological slabs), greedy
// balanced, and uniform-random assignment. Used by tests (any valid
// partitioning must survive CHOP's pipeline) and by the baseline benches.
//
// Note: CHOP requires the partition quotient graph to be acyclic (§2.3).
// level_order_partition guarantees that by construction; random/greedy and
// KL cuts may violate it, so callers repair with make_acyclic() before
// handing the result to CHOP.
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "util/rng.hpp"

namespace chop::baseline {

/// Splits `ops` into `k` contiguous slabs of a topological order of the
/// graph — always quotient-acyclic.
std::vector<std::vector<dfg::NodeId>> level_order_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k);

/// Uniform random assignment of ops to k parts (each part non-empty).
std::vector<std::vector<dfg::NodeId>> random_partition(
    const std::vector<dfg::NodeId>& ops, int k, Rng& rng);

/// Repairs a partitioning so the quotient graph is acyclic, preserving
/// part count where possible: parts are reordered by the minimum
/// topological rank of their members, then any member whose predecessors
/// live in a later part is migrated forward. Conservative but always
/// terminates with a CHOP-valid structure.
std::vector<std::vector<dfg::NodeId>> make_acyclic(
    const dfg::Graph& g, std::vector<std::vector<dfg::NodeId>> parts);

/// Kernighan-Lin cut repaired with make_acyclic(). The repair may merge
/// parts, so the result can have fewer than `k` parts — callers that need
/// exactly k must check. Requires ops.size() >= k.
std::vector<std::vector<dfg::NodeId>> repaired_kl_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k, Rng& rng);

/// Uniform random cut repaired with make_acyclic(). Same part-count caveat
/// as repaired_kl_partition.
std::vector<std::vector<dfg::NodeId>> repaired_random_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k, Rng& rng);

/// One named candidate seed cut for a multi-start partitioner.
struct SeedPartition {
  std::string name;
  std::vector<std::vector<dfg::NodeId>> parts;
};

/// The shared seed recipe of core::auto_partition and the gen portfolio:
/// a level-order cut first (always quotient-acyclic), one repaired KL cut
/// when `count` >= 2 and the graph is big enough to bisect (ops >= 2k),
/// then repaired random cuts until `count` seeds exist. Repaired entries
/// may carry fewer than k parts (see repaired_kl_partition); callers skip
/// those.
std::vector<SeedPartition> diverse_seed_partitions(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k, int count,
    Rng& rng);

}  // namespace chop::baseline
