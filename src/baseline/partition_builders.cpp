#include "baseline/partition_builders.hpp"

#include <algorithm>
#include <numeric>

#include "baseline/kernighan_lin.hpp"

namespace chop::baseline {

std::vector<std::vector<dfg::NodeId>> level_order_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k) {
  CHOP_REQUIRE(k >= 1, "partition count must be positive");
  CHOP_REQUIRE(static_cast<int>(ops.size()) >= k,
               "cannot split fewer operations than partitions");

  // Order the requested ops by topological rank.
  std::vector<int> rank(g.node_count(), 0);
  {
    int r = 0;
    for (dfg::NodeId id : g.topological_order()) {
      rank[static_cast<std::size_t>(id)] = r++;
    }
  }
  std::vector<dfg::NodeId> sorted = ops;
  std::sort(sorted.begin(), sorted.end(), [&](dfg::NodeId a, dfg::NodeId b) {
    return rank[static_cast<std::size_t>(a)] < rank[static_cast<std::size_t>(b)];
  });

  std::vector<std::vector<dfg::NodeId>> parts(static_cast<std::size_t>(k));
  const std::size_t per = (sorted.size() + static_cast<std::size_t>(k) - 1) /
                          static_cast<std::size_t>(k);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    parts[std::min(i / per, static_cast<std::size_t>(k) - 1)].push_back(
        sorted[i]);
  }
  return parts;
}

std::vector<std::vector<dfg::NodeId>> random_partition(
    const std::vector<dfg::NodeId>& ops, int k, Rng& rng) {
  CHOP_REQUIRE(k >= 1, "partition count must be positive");
  CHOP_REQUIRE(static_cast<int>(ops.size()) >= k,
               "cannot split fewer operations than partitions");
  std::vector<std::vector<dfg::NodeId>> parts(static_cast<std::size_t>(k));
  // Seed each part with one op so none is empty, then spread the rest.
  std::vector<dfg::NodeId> shuffled = ops;
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(i)));
    std::swap(shuffled[i], shuffled[j]);
  }
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    const std::size_t part =
        i < static_cast<std::size_t>(k)
            ? i
            : static_cast<std::size_t>(rng.uniform(0, k - 1));
    parts[part].push_back(shuffled[i]);
  }
  return parts;
}

std::vector<std::vector<dfg::NodeId>> make_acyclic(
    const dfg::Graph& g, std::vector<std::vector<dfg::NodeId>> parts) {
  // Order parts by mean topological rank so the repair disturbs little.
  std::vector<int> rank(g.node_count(), 0);
  {
    int r = 0;
    for (dfg::NodeId id : g.topological_order()) {
      rank[static_cast<std::size_t>(id)] = r++;
    }
  }
  std::stable_sort(parts.begin(), parts.end(),
                   [&](const std::vector<dfg::NodeId>& a,
                       const std::vector<dfg::NodeId>& b) {
                     auto mean = [&](const std::vector<dfg::NodeId>& v) {
                       double sum = 0.0;
                       for (dfg::NodeId id : v) {
                         sum += rank[static_cast<std::size_t>(id)];
                       }
                       return v.empty() ? 0.0
                                        : sum / static_cast<double>(v.size());
                     };
                     return mean(a) < mean(b);
                   });

  // Part index per node.
  std::vector<int> part_of(g.node_count(), -1);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (dfg::NodeId id : parts[p]) {
      part_of[static_cast<std::size_t>(id)] = static_cast<int>(p);
    }
  }

  // Every node must sit in a part >= the parts of all its operation
  // predecessors; then all quotient edges point forward.
  for (dfg::NodeId id : g.topological_order()) {
    const auto i = static_cast<std::size_t>(id);
    if (part_of[i] < 0) continue;
    int min_part = part_of[i];
    for (dfg::EdgeId e : g.fanin(id)) {
      const auto s = static_cast<std::size_t>(g.edge(e).src);
      if (part_of[s] >= 0) min_part = std::max(min_part, part_of[s]);
    }
    part_of[i] = min_part;
  }

  std::vector<std::vector<dfg::NodeId>> repaired(parts.size());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (part_of[i] >= 0) {
      repaired[static_cast<std::size_t>(part_of[i])].push_back(
          static_cast<dfg::NodeId>(i));
    }
  }
  // Drop parts the repair emptied.
  repaired.erase(std::remove_if(repaired.begin(), repaired.end(),
                                [](const std::vector<dfg::NodeId>& p) {
                                  return p.empty();
                                }),
                 repaired.end());
  return repaired;
}

std::vector<std::vector<dfg::NodeId>> repaired_kl_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k,
    Rng& rng) {
  return make_acyclic(g, kl_partition(g, ops, k, rng));
}

std::vector<std::vector<dfg::NodeId>> repaired_random_partition(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k,
    Rng& rng) {
  return make_acyclic(g, random_partition(ops, k, rng));
}

std::vector<SeedPartition> diverse_seed_partitions(
    const dfg::Graph& g, const std::vector<dfg::NodeId>& ops, int k, int count,
    Rng& rng) {
  std::vector<SeedPartition> seeds;
  seeds.push_back({"level-order cut", level_order_partition(g, ops, k)});
  if (count >= 2 && static_cast<int>(ops.size()) >= 2 * k) {
    seeds.push_back(
        {"kernighan-lin cut (repaired)", repaired_kl_partition(g, ops, k, rng)});
  }
  for (int r = static_cast<int>(seeds.size()); r < count; ++r) {
    seeds.push_back(
        {"random cut (repaired)", repaired_random_partition(g, ops, k, rng)});
  }
  return seeds;
}

}  // namespace chop::baseline
