#include "exact/solver.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/constraints.hpp"
#include "core/integration.hpp"
#include "core/partitioning.hpp"
#include "util/error.hpp"

namespace chop::exact {
namespace {

constexpr std::size_t kNoWitness = std::numeric_limits<std::size_t>::max();

/// Componentwise minimum of two triplets. Preserves lo <= likely <= hi:
/// for each adjacent pair of components the minimum is taken over values
/// that are ordered within every input triplet.
StatVal componentwise_min(const StatVal& a, const StatVal& b) {
  return StatVal(std::min(a.lo(), b.lo()), std::min(a.likely(), b.likely()),
                 std::min(a.hi(), b.hi()));
}

/// The solver's own incumbent staircase over feasible (II, delay) leaves.
/// Deliberately not core::ParetoFrontier — the exact side re-derives even
/// its dominance bookkeeping. Strict dominance only: ties never prune, so
/// the odometer-first tie-break of the final sweep is never disturbed.
class Staircase {
 public:
  void insert(Cycles ii, Cycles delay) {
    for (const auto& p : points_) {
      if (p.first <= ii && p.second <= delay) return;  // weakly dominated
    }
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const std::pair<Cycles, Cycles>& p) {
                                   return ii <= p.first && delay <= p.second;
                                 }),
                  points_.end());
    points_.emplace_back(ii, delay);
  }

  bool dominates_strictly(Cycles ii, Cycles delay) const {
    for (const auto& p : points_) {
      if ((p.first <= ii && p.second < delay) ||
          (p.first < ii && p.second <= delay)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<std::pair<Cycles, Cycles>> points_;
};

/// One feasible leaf in odometer order, before the final sweep.
struct FeasibleLeaf {
  std::vector<std::size_t> choice;
  Cycles ii_main = 0;
  Cycles delay_main = 0;
};

class Solver {
 public:
  Solver(const core::EvalContext& ctx,
         const std::vector<std::vector<bad::DesignPrediction>>& lists)
      : ctx_(ctx),
        lists_(lists),
        partition_count_(lists.size()),
        chip_count_(ctx.partitioning().chips().size()) {
    CHOP_REQUIRE(lists.size() == ctx.partitioning().partitions().size(),
                 "exact solver needs one candidate list per partition");
  }

  ExactResult run(const ExactOptions& options) {
    ExactResult result;
    result.space = space(result.truncated);
    if (result.truncated ||
        (options.max_leaves != 0 && result.space > options.max_leaves)) {
      result.truncated = true;
      return result;
    }
    if (result.space == 0) {
      // A partition with no candidates: the space is empty and the empty
      // frontier is trivially optimal (coverage: 0 visited + 0 pruned).
      result.certificate.context_fingerprint = ctx_.fingerprint();
      return result;
    }

    precompute();
    acc_area_.assign(chip_count_, StatVal{});
    acc_power_.assign(chip_count_, StatVal{});
    selection_.assign(partition_count_, nullptr);
    visit(partition_count_);

    result.frontier = sweep_frontier();
    resolve_dominance_witnesses(result.frontier);
    result.visited = visited_;
    result.pruned_regions = proofs_.size();
    result.certificate.context_fingerprint = ctx_.fingerprint();
    result.certificate.space = result.space;
    result.certificate.visited = visited_;
    result.certificate.frontier = result.frontier;
    result.certificate.proofs = std::move(proofs_);
    return result;
  }

 private:
  std::size_t space(bool& saturated) const {
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    std::size_t total = 1;
    saturated = false;
    for (const auto& list : lists_) {
      if (list.empty()) return 0;
      if (total > kMax / list.size()) {
        saturated = true;
        return kMax;
      }
      total *= list.size();
    }
    return total;
  }

  /// Per-partition interval minima and the cumulative open-suffix
  /// aggregates: open_*_[m] bounds every quantity over partitions [0, m)
  /// left fully open (the DFS commits from the highest index down, so
  /// after k commits exactly the first P - k partitions are open).
  void precompute() {
    min_area_.resize(partition_count_);
    min_power_.resize(partition_count_);
    min_ii_.resize(partition_count_);
    min_lat_.resize(partition_count_);
    chip_of_.resize(partition_count_);
    const auto& partitions = ctx_.partitioning().partitions();
    for (std::size_t p = 0; p < partition_count_; ++p) {
      chip_of_[p] = static_cast<std::size_t>(partitions[p].chip);
      const auto& list = lists_[p];
      StatVal area = list[0].total_area;
      StatVal power = list[0].power_mw;
      Cycles ii = list[0].ii_main;
      Cycles lat = list[0].latency_main;
      for (std::size_t i = 1; i < list.size(); ++i) {
        area = componentwise_min(area, list[i].total_area);
        power = componentwise_min(power, list[i].power_mw);
        ii = std::min(ii, list[i].ii_main);
        lat = std::min(lat, list[i].latency_main);
      }
      min_area_[p] = area;
      min_power_[p] = power;
      min_ii_[p] = ii;
      min_lat_[p] = lat;
    }

    open_area_.assign(partition_count_ + 1,
                      std::vector<StatVal>(chip_count_, StatVal{}));
    open_power_.assign(partition_count_ + 1,
                       std::vector<StatVal>(chip_count_, StatVal{}));
    open_ii_.assign(partition_count_ + 1, 0);
    open_lat_.assign(partition_count_ + 1, 0);
    open_leaves_.assign(partition_count_ + 1, 1);
    for (std::size_t m = 0; m < partition_count_; ++m) {
      open_area_[m + 1] = open_area_[m];
      open_power_[m + 1] = open_power_[m];
      open_area_[m + 1][chip_of_[m]] += min_area_[m];
      open_power_[m + 1][chip_of_[m]] += min_power_[m];
      open_ii_[m + 1] = std::max(open_ii_[m], min_ii_[m]);
      open_lat_[m + 1] = std::max(open_lat_[m], min_lat_[m]);
      open_leaves_[m + 1] = open_leaves_[m] * lists_[m].size();
    }
  }

  void emit_proof(std::size_t open, PruneReason reason, int chip,
                  Cycles ii_bound, Cycles delay_bound, const StatVal& bound,
                  std::size_t extra_digit = kNoWitness) {
    BoundProof proof;
    proof.prefix = digits_;
    if (extra_digit != kNoWitness) proof.prefix.push_back(extra_digit);
    proof.reason = reason;
    proof.leaves = open_leaves_[open];
    proof.chip = chip;
    proof.ii_bound = ii_bound;
    proof.delay_bound = delay_bound;
    proof.witness = kNoWitness;
    proof.bound_lo = bound.lo();
    proof.bound_likely = bound.likely();
    proof.bound_hi = bound.hi();
    proofs_.push_back(std::move(proof));
  }

  /// Region-wide prune test for the current prefix with `m` open
  /// partitions. Every bound is a valid componentwise lower bound on the
  /// corresponding integrate() output for every completion of the prefix
  /// (transfer-module area/power and clock adjustment only add), so a
  /// violated bound proves the whole region infeasible, and a strictly
  /// dominated (II, delay) bound proves it non-inferior-free.
  bool try_prune(std::size_t m) {
    const auto& clocks = ctx_.clocks();
    const auto& constraints = ctx_.constraints();
    const auto& criteria = ctx_.criteria();
    const auto& chips = ctx_.partitioning().chips();

    // Time budgets use the exact clock floor: adjusted_clock >= main_clock
    // componentwise and integer II/latency maxima are exact, so no
    // floating-point shave is needed (double multiply by a nonnegative
    // factor is monotone under round-to-nearest).
    const Cycles ii_lb = std::max(acc_ii_, open_ii_[m]);
    const StatVal perf_lb(clocks.main_clock * static_cast<double>(ii_lb));
    if (!criteria.performance_ok(perf_lb, constraints.performance_ns)) {
      emit_proof(m, PruneReason::Performance, -1, ii_lb, 0, perf_lb);
      return true;
    }
    const Cycles lat_lb = std::max(acc_lat_, open_lat_[m]);
    const StatVal delay_lb(clocks.main_clock * static_cast<double>(lat_lb));
    if (!criteria.delay_ok(delay_lb, constraints.delay_ns)) {
      emit_proof(m, PruneReason::Delay, -1, 0, lat_lb, delay_lb);
      return true;
    }
    // Area/power are sums accumulated in a different order than the
    // per-leaf canonical order, so they carry the relaxation shave.
    for (std::size_t c = 0; c < chip_count_; ++c) {
      const StatVal bound =
          (acc_area_[c] + open_area_[m][c]) * kExactRelaxation;
      if (!criteria.area_ok(bound, chips[c].package.usable_area())) {
        emit_proof(m, PruneReason::ChipArea, static_cast<int>(c), 0, 0, bound);
        return true;
      }
    }
    if (constraints.power_constrained()) {
      for (std::size_t c = 0; c < chip_count_; ++c) {
        const StatVal bound =
            (acc_power_[c] + open_power_[m][c]) * kExactRelaxation;
        if (!criteria.power_ok(bound, constraints.chip_power_mw)) {
          emit_proof(m, PruneReason::ChipPower, static_cast<int>(c), 0, 0,
                     bound);
          return true;
        }
      }
      StatVal system{};
      for (std::size_t c = 0; c < chip_count_; ++c) {
        system += acc_power_[c] + open_power_[m][c];
      }
      system = system * kExactRelaxation;
      if (!criteria.power_ok(system, constraints.system_power_mw)) {
        emit_proof(m, PruneReason::SystemPower, -1, 0, 0, system);
        return true;
      }
    }
    if (incumbent_.dominates_strictly(ii_lb, lat_lb)) {
      emit_proof(m, PruneReason::Dominance, -1, ii_lb, lat_lb, StatVal{});
      return true;
    }
    return false;
  }

  struct Frame {
    StatVal prev_area;
    StatVal prev_power;
    Cycles prev_ii = 0;
    Cycles prev_lat = 0;
    Cycles prev_pipe = 0;
  };

  /// Commits candidate `i` for partition `p`. Returns false — emitting a
  /// RateConflict proof over the extended prefix — when the candidate is
  /// pipelined at a rate that contradicts an already-committed pipelined
  /// partition (every completion then dies in rates_compatible()).
  bool push(std::size_t p, std::size_t i, Frame& frame) {
    const bad::DesignPrediction& cand = lists_[p][i];
    if (cand.style == bad::DesignStyle::Pipelined && pipe_rate_ != 0 &&
        cand.ii_main != pipe_rate_) {
      emit_proof(p, PruneReason::RateConflict, -1, 0, 0, StatVal{}, i);
      return false;
    }
    const std::size_t chip = chip_of_[p];
    frame.prev_area = acc_area_[chip];
    frame.prev_power = acc_power_[chip];
    frame.prev_ii = acc_ii_;
    frame.prev_lat = acc_lat_;
    frame.prev_pipe = pipe_rate_;
    acc_area_[chip] += cand.total_area;
    acc_power_[chip] += cand.power_mw;
    acc_ii_ = std::max(acc_ii_, cand.ii_main);
    acc_lat_ = std::max(acc_lat_, cand.latency_main);
    if (cand.style == bad::DesignStyle::Pipelined && pipe_rate_ == 0) {
      pipe_rate_ = cand.ii_main;
    }
    digits_.push_back(i);
    selection_[p] = &cand;
    return true;
  }

  void pop(std::size_t p, const Frame& frame) {
    const std::size_t chip = chip_of_[p];
    acc_area_[chip] = frame.prev_area;
    acc_power_[chip] = frame.prev_power;
    acc_ii_ = frame.prev_ii;
    acc_lat_ = frame.prev_lat;
    pipe_rate_ = frame.prev_pipe;
    digits_.pop_back();
    selection_[p] = nullptr;
  }

  /// DFS over the odometer: partitions commit from the highest index (the
  /// slowest digit) downward, candidates in ascending index order, so the
  /// visited-leaf sequence is exactly the heuristic enumeration's order —
  /// which is what makes the first-found tie-break reproducible.
  void visit(std::size_t m) {
    if (try_prune(m)) return;
    if (m == 0) {
      evaluate_leaf();
      return;
    }
    const std::size_t p = m - 1;
    for (std::size_t i = 0; i < lists_[p].size(); ++i) {
      Frame frame;
      if (!push(p, i, frame)) continue;
      visit(m - 1);
      pop(p, frame);
    }
  }

  void evaluate_leaf() {
    ++visited_;
    const core::IntegrationResult result =
        core::integrate(ctx_, selection_, core::combination_ii(selection_));
    if (!result.feasible) return;
    FeasibleLeaf leaf;
    leaf.choice.resize(partition_count_);
    for (std::size_t k = 0; k < partition_count_; ++k) {
      leaf.choice[partition_count_ - 1 - k] = digits_[k];
    }
    leaf.ii_main = result.ii_main;
    leaf.delay_main = result.system_delay_main;
    incumbent_.insert(leaf.ii_main, leaf.delay_main);
    feasible_.push_back(std::move(leaf));
  }

  /// The non-inferior sweep, mirroring the heuristics' filter exactly:
  /// stable sort by (II, delay) — so equal coordinates keep odometer
  /// order — then keep the first design of each II with strictly
  /// descending delay.
  std::vector<Witness> sweep_frontier() {
    std::stable_sort(feasible_.begin(), feasible_.end(),
                     [](const FeasibleLeaf& a, const FeasibleLeaf& b) {
                       if (a.ii_main != b.ii_main) return a.ii_main < b.ii_main;
                       return a.delay_main < b.delay_main;
                     });
    std::vector<Witness> kept;
    Cycles best_delay = std::numeric_limits<Cycles>::max();
    Cycles last_ii = -1;
    for (auto& leaf : feasible_) {
      if (leaf.ii_main == last_ii) continue;
      if (leaf.delay_main >= best_delay) continue;
      best_delay = leaf.delay_main;
      last_ii = leaf.ii_main;
      Witness w;
      w.choice = std::move(leaf.choice);
      w.ii_main = leaf.ii_main;
      w.delay_main = leaf.delay_main;
      kept.push_back(std::move(w));
    }
    return kept;
  }

  /// Remaps every dominance proof to a final-frontier witness: the
  /// incumbent point that justified the cut is itself weakly dominated by
  /// some frontier point, and weak-over-strict composes to strict, so a
  /// dominating witness always exists.
  void resolve_dominance_witnesses(const std::vector<Witness>& frontier) {
    for (BoundProof& proof : proofs_) {
      if (proof.reason != PruneReason::Dominance) continue;
      for (std::size_t w = 0; w < frontier.size(); ++w) {
        const bool strict =
            (frontier[w].ii_main <= proof.ii_bound &&
             frontier[w].delay_main < proof.delay_bound) ||
            (frontier[w].ii_main < proof.ii_bound &&
             frontier[w].delay_main <= proof.delay_bound);
        if (strict) {
          proof.witness = w;
          break;
        }
      }
    }
  }

  const core::EvalContext& ctx_;
  const std::vector<std::vector<bad::DesignPrediction>>& lists_;
  const std::size_t partition_count_;
  const std::size_t chip_count_;

  // Per-partition interval minima and cumulative open-suffix aggregates.
  std::vector<StatVal> min_area_;
  std::vector<StatVal> min_power_;
  std::vector<Cycles> min_ii_;
  std::vector<Cycles> min_lat_;
  std::vector<std::size_t> chip_of_;
  std::vector<std::vector<StatVal>> open_area_;
  std::vector<std::vector<StatVal>> open_power_;
  std::vector<Cycles> open_ii_;
  std::vector<Cycles> open_lat_;
  std::vector<std::size_t> open_leaves_;

  // Committed-prefix accumulators (restored by pop()).
  std::vector<StatVal> acc_area_;
  std::vector<StatVal> acc_power_;
  Cycles acc_ii_ = 1;  // combination_ii() floors the system II at 1.
  Cycles acc_lat_ = 0;
  Cycles pipe_rate_ = 0;  // 0 = no pipelined partition committed yet.
  std::vector<std::size_t> digits_;  // Push order: partition P-1 first.
  std::vector<const bad::DesignPrediction*> selection_;

  // Outputs.
  std::vector<FeasibleLeaf> feasible_;
  Staircase incumbent_;
  std::vector<BoundProof> proofs_;
  std::size_t visited_ = 0;
};

}  // namespace

ExactResult solve(const core::EvalContext& ctx,
                  const std::vector<std::vector<bad::DesignPrediction>>& lists,
                  const ExactOptions& options) {
  Solver solver(ctx, lists);
  return solver.run(options);
}

}  // namespace chop::exact
