// The exact certification solver: an independent implicit-enumeration
// 0-1 optimizer over the implementation-selection space of one
// EvalContext (ROADMAP item 5(b)).
//
// Model: one block of 0-1 selection variables per partition — variable
// (p, i) means "partition p uses candidate i of its list" — with an
// exactly-one constraint per block, which makes the space the same
// mixed-radix odometer the heuristics walk. Feasibility and the
// non-inferiority criteria are expressed over the same StatVal algebra
// the integration uses, via *interval relaxations*: for any region of
// the space fixed by a digit prefix, every constrained quantity is
// bounded from below by the componentwise minima of the open blocks
// (sums for per-chip area and power, maxima for the initiation interval
// and latency, a main-clock floor for the time budgets).
//
// Independence: this solver deliberately shares nothing with the
// branch-and-bound machinery of src/core/eval/bound_state.* — no
// BoundTables, no PrefixState, no bound_slack(), no ParetoFrontier, and
// its own relaxation constant. A bug in the heuristic's bound tables or
// dominance logic (e.g. the inadmissible slack chop_fuzz injects with
// --inject-bound-bug) therefore cannot leak into the exact frontier,
// which is what makes the exact_certification oracle a genuine second
// derivation rather than another differential run. The only shared
// trusted kernel is integrate() itself, evaluated at every visited leaf.
//
// Output: the true non-inferior design set of the space — byte-equal, by
// construction, to what the exhaustive enumeration heuristic returns
// (same odometer visit order, same first-found tie-break) — plus a
// Certificate proving it (see certificate.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "bad/prediction.hpp"
#include "core/eval/eval_context.hpp"
#include "exact/certificate.hpp"

namespace chop::exact {

/// The solver's own relaxation shave for floating-point lower bounds:
/// interval sums are accumulated in a different order than integrate()'s
/// canonical per-leaf order, so bounds are relaxed by a hair before the
/// violation test. Distinct, on purpose, from core::kBoundSlack — the
/// exact side carries its own constant so a corrupted heuristic slack
/// cannot reach it.
inline constexpr double kExactRelaxation = 1.0 - 1e-9;

struct ExactOptions {
  /// Refuse spaces larger than this many leaves (0 = unlimited). The
  /// result then reports `truncated` and carries no certificate.
  std::size_t max_leaves = 0;
};

/// Outcome of one exact solve.
struct ExactResult {
  /// The proven non-inferior set, II ascending / delay strictly
  /// descending, ties resolved to the odometer-first selection.
  std::vector<Witness> frontier;
  Certificate certificate;
  std::size_t visited = 0;         ///< integrate() leaf evaluations.
  std::size_t pruned_regions = 0;  ///< Bound proofs emitted.
  std::size_t space = 0;           ///< Total leaves of the model.
  bool truncated = false;          ///< Space exceeded ExactOptions::max_leaves.
};

/// Solves the selection space of `lists` under `ctx` (one list per
/// partition, in partition order — the same lists a search would walk)
/// and emits the optimality certificate. Pure and deterministic: the
/// same inputs always produce a byte-identical result.
ExactResult solve(const core::EvalContext& ctx,
                  const std::vector<std::vector<bad::DesignPrediction>>& lists,
                  const ExactOptions& options = {});

}  // namespace chop::exact
