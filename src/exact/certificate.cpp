#include "exact/certificate.hpp"

#include <iomanip>
#include <ostream>

namespace chop::exact {

const char* to_string(PruneReason reason) {
  switch (reason) {
    case PruneReason::Performance: return "performance";
    case PruneReason::Delay: return "delay";
    case PruneReason::ChipArea: return "chip-area";
    case PruneReason::ChipPower: return "chip-power";
    case PruneReason::SystemPower: return "system-power";
    case PruneReason::RateConflict: return "rate-conflict";
    case PruneReason::Dominance: return "dominance";
  }
  return "unknown";
}

void write_certificate(const Certificate& cert, std::ostream& os) {
  // One record per line, fixed field order, shortest-roundtrip doubles:
  // byte-identical for identical certificates on every platform we build.
  os << "chop-exact-certificate v1\n";
  os << "fingerprint " << std::hex << cert.context_fingerprint << std::dec
     << "\n";
  os << "space " << cert.space << "\n";
  os << "visited " << cert.visited << "\n";
  os << "frontier " << cert.frontier.size() << "\n";
  for (std::size_t i = 0; i < cert.frontier.size(); ++i) {
    const Witness& w = cert.frontier[i];
    os << "W " << i << " ii " << w.ii_main << " delay " << w.delay_main
       << " choice";
    for (std::size_t digit : w.choice) os << ' ' << digit;
    os << "\n";
  }
  os << "proofs " << cert.proofs.size() << "\n";
  const auto saved_precision = os.precision(17);
  for (std::size_t i = 0; i < cert.proofs.size(); ++i) {
    const BoundProof& p = cert.proofs[i];
    os << "P " << i << " reason " << to_string(p.reason) << " leaves "
       << p.leaves << " chip " << p.chip << " ii " << p.ii_bound << " delay "
       << p.delay_bound;
    if (p.reason == PruneReason::Dominance) os << " witness " << p.witness;
    os << " bound " << p.bound_lo << ' ' << p.bound_likely << ' ' << p.bound_hi
       << " prefix";
    for (std::size_t digit : p.prefix) os << ' ' << digit;
    os << "\n";
  }
  os.precision(saved_precision);
}

}  // namespace chop::exact
