// The standalone certificate checker: replays a Certificate against the
// EvalContext and candidate lists it claims to cover, trusting nothing the
// solver computed. The only partitioner machinery it invokes is
// integrate() (to replay frontier witnesses); every bound claim is
// re-derived from the lists with plain StatVal arithmetic, with the
// checker's own — deliberately distinct — relaxation constant.
//
// What a passing check proves: the claimed frontier points are real
// feasible designs forming a strict (II, delay) staircase, the pruned
// regions are pairwise disjoint, exclude every witness, account together
// with the visited count for every leaf of the space, and each region
// provably contains no design that could enter or dominate the frontier.
// The one fact the checker must take on faith is that the `visited`
// uncovered leaves really were each evaluated — that bookkeeping has no
// independent artifact; chop_fuzz's differential oracles cover it.
#pragma once

#include <string>
#include <vector>

#include "bad/prediction.hpp"
#include "core/eval/eval_context.hpp"
#include "exact/certificate.hpp"

namespace chop::exact {

/// The checker's relaxation shave for re-derived sum bounds. Tighter than
/// the solver's kExactRelaxation on purpose: a claim the solver passed at
/// 1 - 1e-9 reproduces here with ~1e-3 of the margin to spare, while both
/// remain far above the ~1e-13 accumulation-order drift they exist for.
inline constexpr double kCheckerRelaxation = 1.0 - 1e-12;

struct CheckResult {
  bool ok = false;
  std::string detail;  ///< First violated obligation; empty when ok.
};

/// Verifies `cert` against the context and candidate lists. Pure; never
/// throws on a malformed certificate — every structural defect is a
/// CheckResult failure with a human-readable detail.
CheckResult verify_certificate(
    const core::EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    const Certificate& cert);

}  // namespace chop::exact
