#include "exact/checker.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "core/constraints.hpp"
#include "core/integration.hpp"
#include "core/partitioning.hpp"

namespace chop::exact {
namespace {

constexpr std::size_t kNoWitness = std::numeric_limits<std::size_t>::max();

CheckResult fail(std::string detail) { return CheckResult{false, std::move(detail)}; }

StatVal componentwise_min(const StatVal& a, const StatVal& b) {
  return StatVal(std::min(a.lo(), b.lo()), std::min(a.likely(), b.likely()),
                 std::min(a.hi(), b.hi()));
}

/// True when (ii_a, delay_a) strictly dominates (ii_b, delay_b).
bool strictly_dominates(Cycles ii_a, Cycles delay_a, Cycles ii_b,
                        Cycles delay_b) {
  return (ii_a <= ii_b && delay_a < delay_b) ||
         (ii_a < ii_b && delay_a <= delay_b);
}

/// The region bounds the checker re-derives for one proof, accumulated
/// directly from the lists in its own (committed-then-open) order.
struct RegionBounds {
  Cycles ii_lb = 1;
  Cycles lat_lb = 0;
  std::vector<StatVal> area;   // Per chip, unshaved.
  std::vector<StatVal> power;  // Per chip, unshaved.
  bool rate_conflict = false;  // Two committed pipelined rates disagree.
};

RegionBounds region_bounds(
    const core::EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    const std::vector<std::size_t>& prefix) {
  const auto& partitions = ctx.partitioning().partitions();
  const std::size_t total = lists.size();
  RegionBounds bounds;
  bounds.area.assign(ctx.partitioning().chips().size(), StatVal{});
  bounds.power.assign(ctx.partitioning().chips().size(), StatVal{});
  Cycles pipe_rate = 0;
  for (std::size_t k = 0; k < prefix.size(); ++k) {
    const std::size_t p = total - 1 - k;
    const bad::DesignPrediction& cand = lists[p][prefix[k]];
    const auto chip = static_cast<std::size_t>(partitions[p].chip);
    bounds.area[chip] += cand.total_area;
    bounds.power[chip] += cand.power_mw;
    bounds.ii_lb = std::max(bounds.ii_lb, cand.ii_main);
    bounds.lat_lb = std::max(bounds.lat_lb, cand.latency_main);
    if (cand.style == bad::DesignStyle::Pipelined) {
      if (pipe_rate == 0) {
        pipe_rate = cand.ii_main;
      } else if (cand.ii_main != pipe_rate) {
        bounds.rate_conflict = true;
      }
    }
  }
  for (std::size_t p = 0; p < total - prefix.size(); ++p) {
    const auto& list = lists[p];
    StatVal area = list[0].total_area;
    StatVal power = list[0].power_mw;
    Cycles ii = list[0].ii_main;
    Cycles lat = list[0].latency_main;
    for (std::size_t i = 1; i < list.size(); ++i) {
      area = componentwise_min(area, list[i].total_area);
      power = componentwise_min(power, list[i].power_mw);
      ii = std::min(ii, list[i].ii_main);
      lat = std::min(lat, list[i].latency_main);
    }
    const auto chip = static_cast<std::size_t>(partitions[p].chip);
    bounds.area[chip] += area;
    bounds.power[chip] += power;
    bounds.ii_lb = std::max(bounds.ii_lb, ii);
    bounds.lat_lb = std::max(bounds.lat_lb, lat);
  }
  return bounds;
}

}  // namespace

CheckResult verify_certificate(
    const core::EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    const Certificate& cert) {
  const std::size_t total = lists.size();
  if (total != ctx.partitioning().partitions().size()) {
    return fail("candidate lists do not match the context's partitions");
  }
  if (cert.context_fingerprint != ctx.fingerprint()) {
    return fail("certificate fingerprint does not match the context");
  }

  // --- space and coverage --------------------------------------------------
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t space = 1;
  for (const auto& list : lists) {
    if (list.empty()) {
      space = 0;
      break;
    }
    if (space > kMax / list.size()) {
      return fail("selection space overflows; certificate cannot cover it");
    }
    space *= list.size();
  }
  if (cert.space != space) {
    return fail("certificate space " + std::to_string(cert.space) +
                " != recomputed space " + std::to_string(space));
  }
  std::size_t covered = cert.visited;
  for (const BoundProof& proof : cert.proofs) {
    if (proof.leaves > kMax - covered) {
      return fail("coverage sum overflows");
    }
    covered += proof.leaves;
  }
  if (covered != space) {
    return fail("coverage equation fails: visited + pruned = " +
                std::to_string(covered) + " != space " +
                std::to_string(space));
  }

  // --- proof structure: digit ranges, leaf counts, disjoint regions --------
  for (std::size_t i = 0; i < cert.proofs.size(); ++i) {
    const BoundProof& proof = cert.proofs[i];
    const std::string tag = "proof " + std::to_string(i);
    if (proof.prefix.size() > total) {
      return fail(tag + ": prefix longer than the partition count");
    }
    std::size_t leaves = 1;
    for (std::size_t k = 0; k < proof.prefix.size(); ++k) {
      const std::size_t p = total - 1 - k;
      if (proof.prefix[k] >= lists[p].size()) {
        return fail(tag + ": digit out of range for partition " +
                    std::to_string(p));
      }
    }
    for (std::size_t p = 0; p < total - proof.prefix.size(); ++p) {
      if (leaves > kMax / lists[p].size()) {
        return fail(tag + ": region leaf count overflows");
      }
      leaves *= lists[p].size();
    }
    if (leaves != proof.leaves) {
      return fail(tag + ": claims " + std::to_string(proof.leaves) +
                  " leaves, region has " + std::to_string(leaves));
    }
  }
  {
    // Two odometer regions overlap iff one prefix extends the other
    // (equality included). After a lexicographic sort any such pair has
    // an instance at adjacent positions, so adjacent checks suffice.
    std::vector<const std::vector<std::size_t>*> prefixes;
    prefixes.reserve(cert.proofs.size());
    for (const BoundProof& proof : cert.proofs) prefixes.push_back(&proof.prefix);
    std::sort(prefixes.begin(), prefixes.end(),
              [](const std::vector<std::size_t>* a,
                 const std::vector<std::size_t>* b) { return *a < *b; });
    for (std::size_t i = 1; i < prefixes.size(); ++i) {
      const auto& a = *prefixes[i - 1];
      const auto& b = *prefixes[i];
      if (a.size() <= b.size() && std::equal(a.begin(), a.end(), b.begin())) {
        return fail("pruned regions overlap: one prefix extends another");
      }
    }
  }

  // --- frontier witnesses: replay through integrate() ----------------------
  for (std::size_t w = 0; w < cert.frontier.size(); ++w) {
    const Witness& witness = cert.frontier[w];
    const std::string tag = "witness " + std::to_string(w);
    if (witness.choice.size() != total) {
      return fail(tag + ": choice arity mismatch");
    }
    std::vector<const bad::DesignPrediction*> selection(total, nullptr);
    for (std::size_t p = 0; p < total; ++p) {
      if (witness.choice[p] >= lists[p].size()) {
        return fail(tag + ": choice out of range for partition " +
                    std::to_string(p));
      }
      selection[p] = &lists[p][witness.choice[p]];
    }
    const core::IntegrationResult replay =
        core::integrate(ctx, selection, core::combination_ii(selection));
    if (!replay.feasible) {
      return fail(tag + " does not replay feasible: " + replay.reason);
    }
    if (replay.ii_main != witness.ii_main ||
        replay.system_delay_main != witness.delay_main) {
      return fail(tag + " replays to (" + std::to_string(replay.ii_main) +
                  ", " + std::to_string(replay.system_delay_main) +
                  "), certificate claims (" + std::to_string(witness.ii_main) +
                  ", " + std::to_string(witness.delay_main) + ")");
    }
    // No witness may sit inside a pruned region.
    for (std::size_t i = 0; i < cert.proofs.size(); ++i) {
      const auto& prefix = cert.proofs[i].prefix;
      bool inside = true;
      for (std::size_t k = 0; k < prefix.size() && inside; ++k) {
        inside = witness.choice[total - 1 - k] == prefix[k];
      }
      if (inside && !prefix.empty()) {
        return fail(tag + " lies inside pruned region " + std::to_string(i));
      }
    }
  }
  // The frontier must be a strict staircase: II strictly ascending, delay
  // strictly descending — exactly the non-inferior shape, no duplicates.
  for (std::size_t w = 1; w < cert.frontier.size(); ++w) {
    if (cert.frontier[w].ii_main <= cert.frontier[w - 1].ii_main ||
        cert.frontier[w].delay_main >= cert.frontier[w - 1].delay_main) {
      return fail("frontier is not a strict (II, delay) staircase at index " +
                  std::to_string(w));
    }
  }

  // --- re-derive every bound claim -----------------------------------------
  const auto& clocks = ctx.clocks();
  const auto& constraints = ctx.constraints();
  const auto& criteria = ctx.criteria();
  const auto& chips = ctx.partitioning().chips();
  for (std::size_t i = 0; i < cert.proofs.size(); ++i) {
    const BoundProof& proof = cert.proofs[i];
    const std::string tag = "proof " + std::to_string(i);
    const RegionBounds bounds = region_bounds(ctx, lists, proof.prefix);
    switch (proof.reason) {
      case PruneReason::Performance: {
        const StatVal lb(clocks.main_clock *
                         static_cast<double>(bounds.ii_lb));
        if (criteria.performance_ok(lb, constraints.performance_ns)) {
          return fail(tag + ": performance bound does not violate the budget");
        }
        break;
      }
      case PruneReason::Delay: {
        const StatVal lb(clocks.main_clock *
                         static_cast<double>(bounds.lat_lb));
        if (criteria.delay_ok(lb, constraints.delay_ns)) {
          return fail(tag + ": delay bound does not violate the budget");
        }
        break;
      }
      case PruneReason::ChipArea: {
        if (proof.chip < 0 ||
            static_cast<std::size_t>(proof.chip) >= chips.size()) {
          return fail(tag + ": chip index out of range");
        }
        const auto c = static_cast<std::size_t>(proof.chip);
        const StatVal lb = bounds.area[c] * kCheckerRelaxation;
        if (criteria.area_ok(lb, chips[c].package.usable_area())) {
          return fail(tag + ": area bound fits chip " + chips[c].name);
        }
        break;
      }
      case PruneReason::ChipPower: {
        if (proof.chip < 0 ||
            static_cast<std::size_t>(proof.chip) >= chips.size()) {
          return fail(tag + ": chip index out of range");
        }
        const auto c = static_cast<std::size_t>(proof.chip);
        const StatVal lb = bounds.power[c] * kCheckerRelaxation;
        if (criteria.power_ok(lb, constraints.chip_power_mw)) {
          return fail(tag + ": chip power bound fits the budget");
        }
        break;
      }
      case PruneReason::SystemPower: {
        StatVal system{};
        for (const StatVal& p : bounds.power) system += p;
        system = system * kCheckerRelaxation;
        if (criteria.power_ok(system, constraints.system_power_mw)) {
          return fail(tag + ": system power bound fits the budget");
        }
        break;
      }
      case PruneReason::RateConflict: {
        if (!bounds.rate_conflict) {
          return fail(tag + ": committed prefix has no pipelined-rate "
                            "conflict");
        }
        break;
      }
      case PruneReason::Dominance: {
        if (proof.witness == kNoWitness ||
            proof.witness >= cert.frontier.size()) {
          return fail(tag + ": dominance proof names no frontier witness");
        }
        // The recorded bound must itself be a valid region lower bound —
        // at or below the re-derived one — and the named witness must
        // strictly dominate it; composition then strictly dominates every
        // leaf in the region.
        if (proof.ii_bound > bounds.ii_lb ||
            proof.delay_bound > bounds.lat_lb) {
          return fail(tag + ": dominance bound exceeds the re-derived "
                            "region lower bound");
        }
        const Witness& w = cert.frontier[proof.witness];
        if (!strictly_dominates(w.ii_main, w.delay_main, proof.ii_bound,
                                proof.delay_bound)) {
          return fail(tag + ": named witness does not strictly dominate the "
                            "region bound");
        }
        break;
      }
    }
  }

  return CheckResult{true, ""};
}

}  // namespace chop::exact
