// The machine-checkable optimality certificate the exact solver emits.
//
// A certificate is a complete, self-contained account of one implicit
// enumeration over the implementation-selection space of an EvalContext:
//
//   * one Witness per claimed frontier point — the selected candidate
//     index per partition plus the (initiation interval, system delay)
//     the selection integrates to. Witnesses are replayable: a checker
//     re-runs integrate() on the recorded choice and compares.
//   * one BoundProof per pruned region — the committed digit prefix, the
//     number of leaves the cut skipped, and the reason no completion of
//     the prefix can reach the non-inferior set (a constraint its
//     interval lower bound already violates, a pipelined-rate conflict
//     inside the prefix, or strict dominance by a frontier witness).
//   * the coverage equation: visited leaves + the leaves of all pruned
//     regions must account for every leaf of the odometer space.
//
// Together these form an optimality proof for the frontier that a tiny
// standalone checker (exact::verify_certificate) can replay with no
// access to the solver: the only partitioner machinery it invokes is
// integrate() itself; every bound claim is re-derived from the candidate
// lists with plain StatVal arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/units.hpp"

namespace chop::exact {

/// One claimed frontier point: a fully specified selection and the
/// integration coordinates it must reproduce under integrate().
struct Witness {
  std::vector<std::size_t> choice;  ///< Candidate index per partition.
  Cycles ii_main = 0;
  Cycles delay_main = 0;
};

/// Why a pruned region provably contains no non-inferior design.
enum class PruneReason {
  Performance,   ///< II lower bound alone violates the performance budget.
  Delay,         ///< Latency lower bound alone violates the delay budget.
  ChipArea,      ///< A chip's area lower bound violates its usable area.
  ChipPower,     ///< A chip's power lower bound violates the chip budget.
  SystemPower,   ///< The system power lower bound violates the budget.
  RateConflict,  ///< Two committed pipelined candidates disagree on rate.
  Dominance,     ///< A frontier witness strictly dominates the bound.
};

const char* to_string(PruneReason reason);

/// Proof that one subtree of the enumeration was cut soundly. The region
/// is identified by its committed digit prefix: `prefix[k]` is the
/// candidate index committed for partition `P - 1 - k` (the enumeration
/// commits partitions from the highest index — the slowest odometer digit
/// — downward), leaving partitions [0, P - prefix.size()) open.
struct BoundProof {
  std::vector<std::size_t> prefix;
  PruneReason reason = PruneReason::Performance;
  std::size_t leaves = 0;  ///< Product of the open partitions' list sizes.
  int chip = -1;           ///< ChipArea / ChipPower: which chip.
  /// Dominance: the region's (II, delay) interval lower bounds and the
  /// frontier witness index whose point strictly dominates them.
  Cycles ii_bound = 0;
  Cycles delay_bound = 0;
  std::size_t witness = 0;
  /// The violated quantity's lower-bound triplet as the solver computed
  /// it (diagnostic; the checker re-derives its own bound from the lists
  /// rather than trusting these numbers).
  double bound_lo = 0.0;
  double bound_likely = 0.0;
  double bound_hi = 0.0;
};

/// The complete certificate for one solved space.
struct Certificate {
  std::uint64_t context_fingerprint = 0;  ///< EvalContext::fingerprint().
  std::size_t space = 0;    ///< Total leaves (product of list sizes).
  std::size_t visited = 0;  ///< Leaves actually evaluated via integrate().
  std::vector<Witness> frontier;  ///< II ascending, delay strictly descending.
  std::vector<BoundProof> proofs;
};

/// Writes the certificate in its deterministic one-record-per-line text
/// form (the artifact `chop_cli --certify` leaves behind).
void write_certificate(const Certificate& cert, std::ostream& os);

}  // namespace chop::exact
