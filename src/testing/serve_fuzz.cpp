#include "testing/serve_fuzz.hpp"

#include <exception>
#include <string>
#include <vector>

#include "io/spec_writer.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "testing/scenario.hpp"
#include "testing/spec_fuzz.hpp"

namespace chop::testing {

namespace {

/// JSON-shaped corruption the generic byte mutator is unlikely to hit:
/// structural attacks on keys, nesting and number syntax.
std::string apply_json_mutation(Rng& rng, const std::string& line) {
  switch (rng.bounded(6)) {
    case 0: {  // unknown key
      const std::size_t brace = line.find('{');
      if (brace == std::string::npos) return line;
      return line.substr(0, brace + 1) + "\"fuzz_unknown_key\":42," +
             line.substr(brace + 1);
    }
    case 1: {  // duplicate "op"
      const std::size_t brace = line.find('{');
      if (brace == std::string::npos) return line;
      return line.substr(0, brace + 1) + "\"op\":\"stats\"," +
             line.substr(brace + 1);
    }
    case 2: {  // non-finite / pathological number in place of a value
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) return line;
      static const char* kPoison[] = {"NaN", "Infinity", "-1e999", "1e309",
                                      "0x10", "1.7976931348623157e+309"};
      std::size_t end = colon + 1;
      while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
      return line.substr(0, colon + 1) +
             kPoison[rng.bounded(sizeof(kPoison) / sizeof(kPoison[0]))] +
             line.substr(end);
    }
    case 3: {  // deep nesting beyond the depth limit
      std::string nested = "{\"op\":";
      for (int i = 0; i < 100; ++i) nested += "[";
      nested += "0";
      for (int i = 0; i < 100; ++i) nested += "]";
      nested += "}";
      return nested;
    }
    case 4: {  // oversized payload (crosses the fuzz-tightened line limit)
      std::string big = "{\"op\":\"submit\",\"spec\":\"";
      big.append(8192, 'x');
      big += "\"}";
      return big;
    }
    default:  // truncation mid-token
      if (line.size() < 2) return line;
      return line.substr(0, 1 + rng.bounded(line.size() - 1));
  }
}

}  // namespace

ServeFuzzStats fuzz_serve_protocol(Rng& rng, std::size_t cases) {
  ServeFuzzStats stats;

  // A tiny generated project keeps accepted submits cheap; the server
  // runs them concurrently while the fuzzer keeps hammering the parser.
  ScenarioKnobs knobs = sample_knobs(scenario_seed(rng.next(), 0));
  knobs.memory_blocks = 0;
  const std::string spec = io::write_project_string(build_scenario(knobs));

  serve::ServerOptions server_options;
  server_options.workers = 1;
  server_options.queue_capacity = 4;  // small: overload path triggers often
  serve::ChopServer server(server_options);

  serve::ProtocolLimits limits;
  limits.max_line_bytes = 4096;  // tight: oversize path triggers cheaply
  limits.max_spec_bytes = 4096;
  serve::Service service(server, limits);

  const std::vector<std::string> seeds = {
      "{\"op\":\"submit\",\"id\":\"s\",\"spec\":" + serve::json_quote(spec) +
          ",\"deadline_ms\":5}",
      "{\"op\":\"submit\",\"spec\":" + serve::json_quote(spec) +
          ",\"heuristic\":\"E\",\"threads\":2,\"priority\":3}",
      "{\"op\":\"submit\",\"spec_path\":\"/nonexistent/fuzz.chop\"}",
      "{\"op\":\"status\",\"id\":\"s\"}",
      "{\"op\":\"result\",\"id\":\"s\"}",
      "{\"op\":\"cancel\",\"id\":\"s\"}",
      "{\"op\":\"stats\"}",
      "{\"op\":\"shutdown\",\"drain\":true}",
  };

  for (std::size_t i = 0; i < cases; ++i) {
    std::string line = seeds[rng.bounded(seeds.size())];
    // Some lines go through untouched to keep real server state moving;
    // the rest get 1-4 stacked generic and/or JSON-structural mutations.
    if (rng.bounded(8) != 0) {
      const int n = 1 + static_cast<int>(rng.bounded(3));
      for (int m = 0; m < n; ++m) {
        line = rng.bounded(2) == 0 ? apply_json_mutation(rng, line)
                                   : mutate_spec(rng, line);
      }
    }

    ++stats.cases;
    std::string response;
    try {
      response = service.handle_line(line);
    } catch (const std::exception& e) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": handle_line threw: " + e.what());
      continue;
    } catch (...) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": handle_line threw a non-exception");
      continue;
    }

    if (response.empty() || response.find('\n') != std::string::npos) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": response is not one nonempty line");
      continue;
    }
    try {
      const serve::JsonValue parsed = serve::JsonValue::parse(response);
      const serve::JsonValue* ok = parsed.find("ok");
      if (ok == nullptr || !ok->is_bool()) {
        stats.violations.push_back("case " + std::to_string(i) +
                                   ": response lacks boolean \"ok\": " +
                                   response);
        continue;
      }
      if (ok->as_bool()) {
        ++stats.ok_responses;
      } else {
        ++stats.error_responses;
        const serve::JsonValue* error = parsed.find("error");
        const serve::JsonValue* code =
            error != nullptr ? error->find("code") : nullptr;
        if (code == nullptr || !code->is_string() ||
            code->as_string().empty()) {
          stats.violations.push_back("case " + std::to_string(i) +
                                     ": error response lacks a code: " +
                                     response);
        }
      }
    } catch (const serve::JsonError& e) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": unparseable response (" + e.what() +
                                 "): " + response);
    }
  }

  // The daemon must also survive everything the fuzz stream queued up:
  // abortive shutdown exercises drain_now + cooperative cancel.
  server.shutdown(false);
  return stats;
}

}  // namespace chop::testing
