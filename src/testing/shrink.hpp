// Knob-level failure shrinking: given a knob vector whose scenario fails
// the oracle battery, greedily search for a smaller/looser vector that
// still fails, and serialize the winner as a replayable `.chop` spec.
//
// Shrinking operates on ScenarioKnobs, not on the built project: every
// candidate is re-generated from its (unchanged) seed, so each attempt is
// a structurally valid scenario by construction — there is no risk of the
// shrinker manufacturing an inconsistent project that fails for a
// different reason than the original. The transformations try, in order:
// halving/decrementing the operation count, reducing depth, partitions,
// chips, module alternatives and widths, dropping the memory subsystem,
// and loosening one constraint knob at a time. The loop restarts from the
// first transformation after every success and stops at a fixpoint.
#pragma once

#include <string>

#include "testing/oracles.hpp"
#include "testing/scenario.hpp"

namespace chop::testing {

/// Result of a shrink run: the minimal still-failing knob vector, its
/// report, and how many successful shrink steps were applied.
struct ShrinkResult {
  ScenarioKnobs knobs;
  ScenarioReport report;
  int steps = 0;
};

/// Shrinks `knobs` (which must currently fail `run_oracles` under
/// `limits`) to a fixpoint. If the initial vector does not fail, it is
/// returned unchanged with its (passing) report and steps == 0.
ShrinkResult shrink_failure(const ScenarioKnobs& knobs,
                            const OracleLimits& limits);

/// Renders the shrunk scenario as a replayable `.chop` document with a
/// header comment recording the knob vector and the failed oracles.
std::string repro_document(const ShrinkResult& result);

}  // namespace chop::testing
