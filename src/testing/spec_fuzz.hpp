// Mutational fuzzing of the `.chop` parser: take a well-formed document,
// corrupt it (byte flips, line splices, truncation, pathological number
// literals), and require the parser to either reject with a located
// ParseError / chop::Error or accept and round-trip stably — never crash,
// never throw anything else, never produce a project whose re-serialized
// form fails to re-parse to the same document.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace chop::testing {

/// Aggregate outcome of one fuzzing run.
struct SpecFuzzStats {
  std::size_t cases = 0;         ///< Mutated documents fed to the parser.
  std::size_t parse_errors = 0;  ///< Rejected with ParseError (expected).
  std::size_t other_errors = 0;  ///< Rejected with plain chop::Error.
  std::size_t parsed = 0;        ///< Accepted and round-tripped.
  std::size_t session_errors = 0;  ///< Accepted but session build rejected.
  std::size_t sessions = 0;        ///< Accepted and session built cleanly.
  /// Contract violations: unexpected exception types or unstable round
  /// trips. Each entry is a deterministic description; the run is a
  /// failure iff this is nonempty.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Produces one mutated variant of `doc` (1-4 stacked mutations).
std::string mutate_spec(Rng& rng, const std::string& doc);

/// Runs `cases` mutations of `seed_doc` through parse / round-trip /
/// session-build. Deterministic for a given Rng state.
SpecFuzzStats fuzz_spec_parser(Rng& rng, const std::string& seed_doc,
                               std::size_t cases);

}  // namespace chop::testing
