// Mutational fuzzing of the chop_serve NDJSON protocol: take valid
// request lines (submit/status/result/cancel/stats/shutdown against a
// live in-process ChopServer), corrupt them with the same generic
// document mutator the spec fuzzer uses (byte flips, truncation, poison
// number literals, junk insertion) plus JSON-shaped attacks (unknown and
// duplicate keys, deep nesting, oversized payloads), and require the
// service to answer EVERY line with exactly one parseable structured
// response — never throw, never crash the daemon, never emit garbage.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace chop::testing {

/// Aggregate outcome of one protocol-fuzzing run.
struct ServeFuzzStats {
  std::size_t cases = 0;            ///< Request lines fed to the service.
  std::size_t ok_responses = 0;     ///< Accepted ("ok":true).
  std::size_t error_responses = 0;  ///< Rejected with a structured error.
  /// Contract violations: exceptions escaping handle_line, unparseable or
  /// malformed responses. Each entry is a deterministic description; the
  /// run is a failure iff this is nonempty.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs `cases` mutated request lines through a Service wrapping a live
/// single-worker ChopServer (tight protocol limits so oversize paths
/// trigger cheaply). Deterministic request stream for a given Rng state;
/// the server's own scheduling is concurrent but invisible to the oracle.
ServeFuzzStats fuzz_serve_protocol(Rng& rng, std::size_t cases);

}  // namespace chop::testing
