#include "testing/spec_fuzz.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "io/spec_format.hpp"
#include "io/spec_writer.hpp"

namespace chop::testing {

namespace {

std::vector<std::string> split_lines(const std::string& doc) {
  std::vector<std::string> lines;
  std::istringstream is(doc);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Hostile number literals: overflow, non-finite, negative, fractional.
const char* poison_number(Rng& rng) {
  static const char* kPoison[] = {"1e300",  "-1e300", "nan",     "inf",
                                  "-7",     "0.5",    "1e-300",  "99999999999999999999",
                                  "0x10",   "3.",     "-0",      "2147483648"};
  return kPoison[rng.uniform(0, 11)];
}

std::string apply_one_mutation(Rng& rng, std::string doc) {
  if (doc.empty()) return doc;
  switch (rng.uniform(0, 7)) {
    case 0: {  // flip a byte to a random printable character
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(doc.size()) - 1));
      doc[pos] = static_cast<char>(rng.uniform(32, 126));
      return doc;
    }
    case 1: {  // delete a random span
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(doc.size()) - 1));
      const auto len = static_cast<std::size_t>(rng.uniform(1, 16));
      doc.erase(pos, len);
      return doc;
    }
    case 2: {  // truncate
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(doc.size()) - 1));
      doc.resize(pos);
      return doc;
    }
    case 3: {  // duplicate a line
      auto lines = split_lines(doc);
      if (lines.empty()) return doc;
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(lines.size()) - 1));
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
      return join_lines(lines);
    }
    case 4: {  // delete a line
      auto lines = split_lines(doc);
      if (lines.empty()) return doc;
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(lines.size()) - 1));
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(i));
      return join_lines(lines);
    }
    case 5: {  // swap two lines (section statements drift across sections)
      auto lines = split_lines(doc);
      if (lines.size() < 2) return doc;
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(lines.size()) - 1));
      const auto j = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(lines.size()) - 1));
      std::swap(lines[i], lines[j]);
      return join_lines(lines);
    }
    case 6: {  // replace a numeric token with a hostile literal
      const std::size_t digit = doc.find_first_of("0123456789");
      if (digit == std::string::npos) return doc;
      // Pick a random digit occurrence, then replace its whole token.
      std::vector<std::size_t> digits;
      for (std::size_t i = 0; i < doc.size(); ++i) {
        if (doc[i] >= '0' && doc[i] <= '9') digits.push_back(i);
      }
      const std::size_t pos = digits[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(digits.size()) - 1))];
      std::size_t begin = pos;
      while (begin > 0 && !std::isspace(static_cast<unsigned char>(
                              doc[begin - 1]))) {
        --begin;
      }
      std::size_t end = pos;
      while (end < doc.size() &&
             !std::isspace(static_cast<unsigned char>(doc[end]))) {
        ++end;
      }
      return doc.substr(0, begin) + poison_number(rng) + doc.substr(end);
    }
    default: {  // insert random token characters
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(doc.size())));
      std::string junk;
      const int len = static_cast<int>(rng.uniform(1, 8));
      for (int i = 0; i < len; ++i) {
        junk += static_cast<char>(rng.uniform(33, 126));
      }
      return doc.substr(0, pos) + junk + doc.substr(pos);
    }
  }
}

}  // namespace

std::string mutate_spec(Rng& rng, const std::string& doc) {
  std::string mutated = doc;
  const int n = static_cast<int>(rng.uniform(1, 4));
  for (int i = 0; i < n; ++i) mutated = apply_one_mutation(rng, mutated);
  return mutated;
}

SpecFuzzStats fuzz_spec_parser(Rng& rng, const std::string& seed_doc,
                               std::size_t cases) {
  SpecFuzzStats stats;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::string mutated = mutate_spec(rng, seed_doc);
    ++stats.cases;
    io::Project project;
    try {
      project = io::parse_project_string(mutated);
    } catch (const io::ParseError&) {
      ++stats.parse_errors;
      continue;
    } catch (const Error&) {
      ++stats.other_errors;
      continue;
    } catch (const std::exception& e) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": unexpected exception from parse: " +
                                 e.what());
      continue;
    }
    ++stats.parsed;

    // Accepted documents must serialize to a stable fixpoint.
    try {
      const std::string once = io::write_project_string(project);
      const std::string twice =
          io::write_project_string(io::parse_project_string(once));
      if (once != twice) {
        stats.violations.push_back(
            "case " + std::to_string(i) + ": unstable round trip");
      }
    } catch (const std::exception& e) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": round trip threw: " + e.what());
      continue;
    }

    // Building the session may reject (semantic errors are fine) but must
    // only ever do so through chop::Error.
    try {
      const core::ChopSession session = project.make_session();
      session.partitioning().validate();
      ++stats.sessions;
    } catch (const Error&) {
      ++stats.session_errors;
    } catch (const std::exception& e) {
      stats.violations.push_back("case " + std::to_string(i) +
                                 ": session build threw non-chop error: " +
                                 e.what());
    }
  }
  return stats;
}

}  // namespace chop::testing
