#include "testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "chip/mosis_packages.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/eval/eval_delta.hpp"
#include "core/search.hpp"
#include "core/session.hpp"
#include "core/transfer.hpp"
#include "exact/checker.hpp"
#include "exact/solver.hpp"
#include "gen/generate.hpp"
#include "io/spec_writer.hpp"
#include "obs/observer.hpp"
#include "serve/protocol.hpp"
#include "testing/properties.hpp"
#include "util/error.hpp"

namespace chop::testing {

namespace {

using core::ChopSession;
using core::SearchOptions;
using core::SearchResult;

std::size_t sat_product(
    const std::vector<std::vector<bad::DesignPrediction>>& lists) {
  std::size_t product = 1;
  for (const auto& list : lists) {
    if (list.empty()) return 0;
    if (product > std::numeric_limits<std::size_t>::max() / list.size()) {
      return std::numeric_limits<std::size_t>::max();
    }
    product *= list.size();
  }
  return product;
}

/// Records the complete callback sequence so two runs can be compared
/// event by event.
struct CaptureObserver : obs::SearchObserver {
  struct Event {
    std::size_t trials;
    std::size_t feasible;
    long long best_ii;
    long long best_delay;
    bool trial_feasible;
    std::string reason;
  };
  std::vector<Event> events;
  std::size_t done_calls = 0;

  void on_trial(const obs::SearchProgress& p) override {
    events.push_back({p.trials, p.feasible, p.best_ii, p.best_delay,
                      p.trial_feasible, p.reason});
  }
  void on_done(const obs::SearchProgress&) override { ++done_calls; }
};

SearchResult run_enumeration(const ChopSession& session, bool bound_pruning,
                             int threads, std::size_t cache_entries,
                             bool record_all = false,
                             obs::SearchObserver* observer = nullptr) {
  core::CandidateEvaluator evaluator(cache_entries);
  SearchOptions opt;
  opt.heuristic = core::Heuristic::Enumeration;
  opt.bound_pruning = bound_pruning;
  opt.threads = threads;
  opt.record_all = record_all;
  opt.evaluator = &evaluator;
  opt.observer = observer;
  return session.search(opt);
}

/// First difference between two design lists, or nullopt when identical.
std::optional<std::string> diff_designs(const SearchResult& a,
                                        const SearchResult& b) {
  if (a.designs.size() != b.designs.size()) {
    return "design count " + std::to_string(a.designs.size()) + " vs " +
           std::to_string(b.designs.size());
  }
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    const core::GlobalDesign& x = a.designs[i];
    const core::GlobalDesign& y = b.designs[i];
    if (x.choice != y.choice) return "design " + std::to_string(i) + " choice";
    if (x.integration.ii_main != y.integration.ii_main ||
        x.integration.system_delay_main != y.integration.system_delay_main ||
        x.integration.feasible != y.integration.feasible ||
        x.integration.performance_ns.likely() !=
            y.integration.performance_ns.likely() ||
        x.integration.delay_ns.likely() != y.integration.delay_ns.likely()) {
      return "design " + std::to_string(i) + " integration";
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_counters(const SearchResult& a,
                                         const SearchResult& b) {
  std::ostringstream os;
  if (a.trials != b.trials) os << "trials " << a.trials << "!=" << b.trials;
  else if (a.feasible_raw != b.feasible_raw) os << "feasible_raw";
  else if (a.probe_integrations != b.probe_integrations) os << "probes";
  else if (a.pruned_subtrees != b.pruned_subtrees) os << "pruned_subtrees";
  else if (a.bound_skipped_leaves != b.bound_skipped_leaves) os << "skipped";
  else if (a.truncated != b.truncated) os << "truncated";
  else return std::nullopt;
  return os.str();
}

std::optional<std::string> diff_recorders(const SearchResult& a,
                                          const SearchResult& b) {
  if (a.recorder.total() != b.recorder.total() ||
      a.recorder.unique() != b.recorder.unique() ||
      a.recorder.feasible_count() != b.recorder.feasible_count()) {
    return std::string("recorder aggregates differ");
  }
  const auto& pa = a.recorder.points();
  const auto& pb = b.recorder.points();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].ii_main != pb[i].ii_main ||
        pa[i].delay_main != pb[i].delay_main ||
        pa[i].area_likely != pb[i].area_likely ||
        pa[i].feasible != pb[i].feasible) {
      return "recorder point " + std::to_string(i);
    }
  }
  return std::nullopt;
}

std::optional<std::string> diff_observers(const CaptureObserver& a,
                                          const CaptureObserver& b) {
  if (a.events.size() != b.events.size()) return std::string("event count");
  if (b.done_calls != 1) return std::string("done_calls");
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const auto& x = a.events[i];
    const auto& y = b.events[i];
    if (x.trials != y.trials || x.feasible != y.feasible ||
        x.best_ii != y.best_ii || x.best_delay != y.best_delay ||
        x.trial_feasible != y.trial_feasible || x.reason != y.reason) {
      return "event " + std::to_string(i);
    }
  }
  return std::nullopt;
}

/// Per-trial feasibility of the full raw odometer space under `ctx`. The
/// trial sequence of the exhaustive serial enumeration is the odometer
/// order, so index i means the same selection for every ctx over the same
/// prediction lists.
std::vector<bool> feasible_by_trial(const core::EvalContext& ctx,
                                    const core::PartitionPredictions& pred) {
  CaptureObserver capture;
  core::CandidateEvaluator evaluator(0);
  SearchOptions opt;
  opt.heuristic = core::Heuristic::Enumeration;
  opt.prune = false;
  opt.bound_pruning = false;
  opt.evaluator = &evaluator;
  opt.observer = &capture;
  core::find_feasible_implementations(ctx, pred, opt);
  std::vector<bool> feasible;
  feasible.reserve(capture.events.size());
  for (const auto& e : capture.events) feasible.push_back(e.trial_feasible);
  return feasible;
}

/// sub must imply super, index by index.
std::optional<std::string> check_subset(const std::vector<bool>& sub,
                                        const std::vector<bool>& super) {
  if (sub.size() != super.size()) return std::string("trial count mismatch");
  for (std::size_t i = 0; i < sub.size(); ++i) {
    if (sub[i] && !super[i]) {
      return "trial " + std::to_string(i) + " feasible only in subset run";
    }
  }
  return std::nullopt;
}

/// Full-content serialization of a generation run: frontier points with
/// their cuts and choices, the winning cut, every counter, and the
/// decision log. Any scheduling dependence shows up as a digest diff.
std::string generation_digest(const gen::GenerateResult& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "starts=" << r.starts_run << " killed=" << r.starts_killed
      << " evals=" << r.evaluations << " gated=" << r.gated
      << " levels=" << r.levels << " coarse=" << r.coarsest_vertices
      << " cancelled=" << r.cancelled << '\n';
  const auto cut = [&out](const std::vector<std::vector<dfg::NodeId>>& parts) {
    for (const auto& part : parts) {
      for (const dfg::NodeId id : part) out << id << ',';
      out << '|';
    }
  };
  for (const gen::FrontierPoint& p : r.frontier) {
    out << "pt ii=" << p.ii << " delay=" << p.delay << " area=" << p.area
        << " start=" << p.start << " choice=";
    for (const std::size_t c : p.choice) out << c << ',';
    out << " cut=";
    cut(p.members);
    out << '\n';
  }
  out << "best=";
  cut(r.members);
  out << '\n';
  for (const std::string& line : r.log) out << line << '\n';
  return out.str();
}

std::size_t count_true(const std::vector<bool>& v) {
  std::size_t n = 0;
  for (const bool b : v) n += b ? 1 : 0;
  return n;
}

void check_statval(const StatVal& sv, const std::string& what,
                   std::vector<OracleFailure>& failures) {
  if (auto d = check_cdf_bounds(sv)) {
    failures.push_back({"statval", what + ": " + *d});
    return;
  }
  for (const double prob : {0.5, 0.8, 1.0}) {
    if (auto d = check_satisfies_monotone(sv, prob)) {
      failures.push_back({"statval", what + ": " + *d});
      return;
    }
  }
}

}  // namespace

ScenarioReport run_oracles(const io::Project& project,
                           const OracleLimits& limits) {
  ScenarioReport report;
  try {
    // --- Oracle: spec round trip ---------------------------------------
    const std::string once = io::write_project_string(project);
    const io::Project reparsed = io::parse_project_string(once);
    const std::string twice = io::write_project_string(reparsed);
    if (once != twice) {
      report.failures.push_back(
          {"spec_roundtrip", "write(parse(write(p))) != write(p)"});
    }

    ChopSession session = project.make_session();
    session.predict_partitions();
    report.eligible_product = sat_product(session.predictions().eligible);
    report.raw_product = sat_product(session.predictions().raw);
    if (report.eligible_product > limits.max_eligible_product) {
      report.skipped = true;
      return report;
    }

    // --- Oracle: bound pruning vs exhaustive ---------------------------
    const SearchResult exhaustive = run_enumeration(session, false, 1, 0);
    const SearchResult bounded = run_enumeration(
        session, true, 1, core::CandidateEvaluator::kDefaultMaxEntries);
    report.designs = bounded.designs.size();
    report.trials = bounded.trials;
    if (auto d = diff_designs(exhaustive, bounded)) {
      report.failures.push_back({"bound_pruning", *d});
    }
    if (exhaustive.trials != report.eligible_product) {
      report.failures.push_back(
          {"bound_pruning",
           "exhaustive trials " + std::to_string(exhaustive.trials) +
               " != eligible product " +
               std::to_string(report.eligible_product)});
    }
    if (bounded.trials + bounded.bound_skipped_leaves !=
        report.eligible_product) {
      report.failures.push_back(
          {"bound_pruning",
           "bounded trials " + std::to_string(bounded.trials) + " + skipped " +
               std::to_string(bounded.bound_skipped_leaves) +
               " != eligible product " +
               std::to_string(report.eligible_product)});
    }

    // --- Oracle: exact certification -----------------------------------
    // A derivation independent of both enumerators: the implicit 0-1
    // solver reconstructs the non-inferior set from EvalContext alone
    // (no BoundTables, no shared slack constant) and proves it with a
    // checker-replayed certificate. The heuristic frontier must match
    // point for point — a shared bound/dominance bug in the heuristics
    // cannot hide here, because this side never runs their code.
    {
      const core::EvalContext ctx = session.make_eval_context();
      const auto& lists = session.predictions().eligible;
      const exact::ExactResult proven = exact::solve(ctx, lists, {});
      if (proven.truncated) {
        report.failures.push_back(
            {"exact_certification", "solver truncated a space of " +
                                        std::to_string(proven.space) +
                                        " leaves below the oracle limit"});
      } else {
        if (proven.space != report.eligible_product) {
          report.failures.push_back(
              {"exact_certification",
               "model space " + std::to_string(proven.space) +
                   " != eligible product " +
                   std::to_string(report.eligible_product)});
        }
        if (proven.frontier.size() != bounded.designs.size()) {
          report.failures.push_back(
              {"exact_certification",
               "heuristic frontier has " +
                   std::to_string(bounded.designs.size()) +
                   " designs, exact optimum has " +
                   std::to_string(proven.frontier.size())});
        } else {
          for (std::size_t i = 0; i < proven.frontier.size(); ++i) {
            const exact::Witness& w = proven.frontier[i];
            const core::GlobalDesign& d = bounded.designs[i];
            if (w.choice != d.choice || w.ii_main != d.integration.ii_main ||
                w.delay_main != d.integration.system_delay_main) {
              report.failures.push_back(
                  {"exact_certification",
                   "frontier point " + std::to_string(i) +
                       " differs from the certified optimum"});
              break;
            }
          }
        }
        const exact::CheckResult check =
            exact::verify_certificate(ctx, lists, proven.certificate);
        if (!check.ok) {
          report.failures.push_back(
              {"exact_certification", "certificate rejected: " + check.detail});
        }
      }
    }

    // --- Oracle: shared frontier on ≡ off ------------------------------
    // The cross-unit incumbent broadcast may only cut strictly dominated
    // subtrees, so (uncapped) the design set must be byte-identical with
    // it on or off, visited leaves may only shrink, and both runs must
    // still account for every leaf in the odometer space. Runs at 4
    // threads so the wave pipeline and work-stealing pool are exercised.
    {
      core::CandidateEvaluator evaluator(
          core::CandidateEvaluator::kDefaultMaxEntries);
      SearchOptions opt;
      opt.heuristic = core::Heuristic::Enumeration;
      opt.threads = 4;
      opt.evaluator = &evaluator;
      opt.shared_frontier = false;
      const SearchResult frontier_off = session.search(opt);
      opt.shared_frontier = true;
      const SearchResult frontier_on = session.search(opt);
      if (auto d = diff_designs(frontier_on, frontier_off)) {
        report.failures.push_back({"shared_frontier", *d});
      }
      if (frontier_on.trials > frontier_off.trials) {
        report.failures.push_back(
            {"shared_frontier",
             "sharing grew trials: " + std::to_string(frontier_on.trials) +
                 " > " + std::to_string(frontier_off.trials)});
      }
      for (const SearchResult* r : {&frontier_on, &frontier_off}) {
        if (r->trials + r->bound_skipped_leaves != report.eligible_product) {
          report.failures.push_back(
              {"shared_frontier",
               std::string(r == &frontier_on ? "on" : "off") + ": trials " +
                   std::to_string(r->trials) + " + skipped " +
                   std::to_string(r->bound_skipped_leaves) +
                   " != eligible product " +
                   std::to_string(report.eligible_product)});
        }
      }
      if (frontier_off.frontier_broadcasts != 0 ||
          frontier_off.frontier_snapshot_hits != 0) {
        report.failures.push_back(
            {"shared_frontier", "off run reported frontier traffic"});
      }
    }

    // --- Oracle: thread determinism ------------------------------------
    CaptureObserver serial_obs;
    const SearchResult serial =
        run_enumeration(session, true, 1,
                        core::CandidateEvaluator::kDefaultMaxEntries,
                        /*record_all=*/true, &serial_obs);
    for (const int threads : limits.thread_counts) {
      CaptureObserver parallel_obs;
      const SearchResult parallel =
          run_enumeration(session, true, threads,
                          core::CandidateEvaluator::kDefaultMaxEntries,
                          /*record_all=*/true, &parallel_obs);
      const std::string tag = "threads=" + std::to_string(threads) + ": ";
      if (auto d = diff_designs(serial, parallel)) {
        report.failures.push_back({"thread_determinism", tag + *d});
      }
      if (auto d = diff_counters(serial, parallel)) {
        report.failures.push_back({"thread_determinism", tag + *d});
      }
      if (auto d = diff_recorders(serial, parallel)) {
        report.failures.push_back({"thread_determinism", tag + *d});
      }
      if (auto d = diff_observers(serial_obs, parallel_obs)) {
        report.failures.push_back({"thread_determinism", tag + *d});
      }
    }

    // --- Oracle: generation determinism --------------------------------
    // The multilevel generator commits portfolio outcomes in start order
    // at wave barriers, so its full result — frontier, winning cut,
    // counters, and decision log — must be byte-identical at any thread
    // count. A tight per-start budget keeps the arm cheap; the scenario's
    // own partitioning is ignored (generation builds its own cuts).
    if (project.graph.partitionable_operations().size() >=
        project.chips.size()) {
      gen::GenerateOptions gopt;
      gopt.num_starts = 2;
      gopt.wave_size = 2;
      gopt.budget = 6;
      const auto run = [&](int threads) {
        gen::GenerateOptions o = gopt;
        o.threads = threads;
        return generation_digest(gen::generate_partitions(
            project.graph, project.library, project.chips, project.memory,
            project.config, o));
      };
      try {
        const std::string serial = run(1);
        for (const int threads : limits.thread_counts) {
          const std::string parallel = run(threads);
          if (parallel != serial) {
            report.failures.push_back(
                {"generation_determinism",
                 "threads=" + std::to_string(threads) +
                     ": digest diverged from the serial run"});
          }
        }
      } catch (const Error&) {
        // Generation may legitimately reject a scenario (e.g. no valid
        // cut exists for this chip count) — rejection is deterministic
        // and not a determinism failure.
      }
    }

    // --- Oracle: eval cache on/off -------------------------------------
    const SearchResult uncached = run_enumeration(session, true, 1, 0);
    if (auto d = diff_designs(bounded, uncached)) {
      report.failures.push_back({"eval_cache", *d});
    }
    if (auto d = diff_counters(bounded, uncached)) {
      report.failures.push_back({"eval_cache", *d});
    }

    // --- Oracle: incremental research vs cold --------------------------
    // apply(delta) + research() on a warm session must be byte-identical
    // (through the serve rendering, trials included) to a cold session
    // built directly at the patched state, and re-stating the same delta
    // must report a no-op impact. The delta kind is picked from a content
    // hash of the spec so the corpus covers every §2.7 group over time.
    {
      std::uint64_t h = 1469598103934665603ull;
      for (const char c : once) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      const core::ChopConfig& cfg = session.config();
      const auto tightened = [&cfg] {
        core::DesignConstraints c = cfg.constraints;
        c.performance_ns *= 0.9;
        return core::EvalDelta::set_constraints(c);
      };
      core::EvalDelta delta = tightened();
      switch (h % 4) {
        case 0:
          break;  // the constraint tighten above
        case 1: {
          bad::ClockSpec clocks = cfg.clocks;
          clocks.main_clock *= 1.1;
          delta = core::EvalDelta::set_clocking(cfg.style, clocks);
          break;
        }
        case 2:
          delta = core::EvalDelta::replace_chip_package(
              0, chip::mosis_package_64());
          break;
        default: {
          // A legal migration if the partitioning offers one (source keeps
          // an operation, the probe copy validates); else keep the tighten.
          const core::Partitioning& pt = session.partitioning();
          const auto& partitions = pt.partitions();
          bool found = false;
          for (std::size_t p = 0; !found && p < partitions.size(); ++p) {
            if (partitions[p].members.size() < 2 || partitions.size() < 2) {
              continue;
            }
            const int dest = static_cast<int>((p + 1) % partitions.size());
            for (const dfg::NodeId op : partitions[p].members) {
              core::Partitioning probe = pt;
              try {
                probe.move_operation(op, dest);
                probe.validate();
              } catch (const Error&) {
                continue;
              }
              delta = core::EvalDelta::move_operation(op, dest);
              found = true;
              break;
            }
          }
          break;
        }
      }
      try {
        ChopSession warm = project.make_session();
        warm.predict_partitions();
        const SearchOptions opt;
        (void)warm.research(opt);
        warm.apply(delta);
        const SearchResult incremental = warm.research(opt);
        if (!warm.apply(delta).noop) {
          report.failures.push_back(
              {"incremental_research",
               "re-applying an applied delta did not report a no-op"});
        }

        ChopSession cold = project.make_session();
        cold.apply(delta);
        cold.predict_partitions();
        const SearchResult from_cold = cold.search(opt);
        if (serve::render_search_result(incremental).dump() !=
            serve::render_search_result(from_cold).dump()) {
          report.failures.push_back(
              {"incremental_research",
               "warm apply+research diverged from a cold session at the "
               "same state"});
        }
      } catch (const Error&) {
        // The delta is invalid for this project (chip index out of range,
        // package too small, ...) — rejection is the contract, not a bug.
      }
    }

    // --- Oracle: enumeration vs iterative ------------------------------
    {
      core::CandidateEvaluator evaluator;
      SearchOptions opt;
      opt.heuristic = core::Heuristic::Iterative;
      opt.evaluator = &evaluator;
      const SearchResult iterative = session.search(opt);
      for (std::size_t i = 0; i < iterative.designs.size(); ++i) {
        const core::GlobalDesign& d = iterative.designs[i];
        if (!d.integration.feasible) {
          report.failures.push_back(
              {"enum_vs_iterative",
               "iterative design " + std::to_string(i) + " infeasible"});
          continue;
        }
        bool dominated = false;
        for (const core::GlobalDesign& e : bounded.designs) {
          if (e.integration.ii_main <= d.integration.ii_main &&
              e.integration.system_delay_main <=
                  d.integration.system_delay_main) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          report.failures.push_back(
              {"enum_vs_iterative",
               "iterative design " + std::to_string(i) + " (ii=" +
                   std::to_string(d.integration.ii_main) + ", delay=" +
                   std::to_string(d.integration.system_delay_main) +
                   ") not covered by the complete enumeration set"});
        }
      }
    }

    // --- Oracle: StatVal probability laws on real predictions ----------
    for (std::size_t i = 0; i < bounded.designs.size(); ++i) {
      const core::IntegrationResult& r = bounded.designs[i].integration;
      const std::string tag = "design " + std::to_string(i);
      check_statval(r.performance_ns, tag + " performance", report.failures);
      check_statval(r.delay_ns, tag + " delay", report.failures);
      check_statval(r.adjusted_clock_ns, tag + " clock", report.failures);
      check_statval(r.system_power_mw, tag + " power", report.failures);
      for (std::size_t c = 0; c < r.chip_area.size(); ++c) {
        check_statval(r.chip_area[c],
                      tag + " area chip " + std::to_string(c),
                      report.failures);
      }
    }

    // --- Metamorphic group: constraint monotonicity --------------------
    if (limits.metamorphic && report.raw_product > 0 &&
        report.raw_product <= limits.max_raw_product) {
      const core::Partitioning& pt = session.partitioning();
      std::vector<core::DataTransfer> transfers = session.transfer_tasks();
      const core::ChopConfig& cfg = session.config();
      auto context = [&](const core::DesignConstraints& constraints,
                         Pins extra_pins) {
        return core::EvalContext(pt, transfers, cfg.clocks, constraints,
                                 cfg.criteria, extra_pins);
      };
      const std::vector<bool> base =
          feasible_by_trial(context(cfg.constraints, 0), session.predictions());

      // Tightening each hard constraint: feasible set must not grow.
      {
        core::DesignConstraints c = cfg.constraints;
        c.performance_ns *= 0.8;
        if (auto d = check_subset(
                feasible_by_trial(context(c, 0), session.predictions()), base)) {
          report.failures.push_back({"tighten_performance", *d});
        }
      }
      {
        core::DesignConstraints c = cfg.constraints;
        c.delay_ns *= 0.8;
        if (auto d = check_subset(
                feasible_by_trial(context(c, 0), session.predictions()), base)) {
          report.failures.push_back({"tighten_delay", *d});
        }
      }
      if (cfg.constraints.power_constrained()) {
        core::DesignConstraints c = cfg.constraints;
        c.system_power_mw *= 0.8;
        c.chip_power_mw *= 0.8;
        if (auto d = check_subset(
                feasible_by_trial(context(c, 0), session.predictions()), base)) {
          report.failures.push_back({"tighten_power", *d});
        }
      }

      // Loosening every constraint: nothing feasible may be lost.
      {
        core::DesignConstraints c = cfg.constraints;
        c.performance_ns *= 1.5;
        c.delay_ns *= 1.5;
        c.system_power_mw = 0.0;
        c.chip_power_mw = 0.0;
        if (auto d = check_subset(
                base, feasible_by_trial(context(c, 0), session.predictions()))) {
          report.failures.push_back({"loosen_constraints", *d});
        }
      }

      // Reserving extra pins tightens pin budgets. When no transfer
      // crosses chip pins, pin reservation only gates the data-pins > 0
      // feasibility check, so it is monotone: pinching never adds designs.
      // (With crossing transfers the reservation narrows transfer
      // bandwidth, lengthening transfer tasks — and the urgency list
      // scheduler is subject to Graham's timing anomalies, so feasibility
      // is legitimately non-monotone there; the subset check would be an
      // unsound oracle.)
      const bool pins_affect_schedule =
          std::any_of(transfers.begin(), transfers.end(),
                      [](const core::DataTransfer& t) {
                        return t.crosses_pins();
                      });
      if (!pins_affect_schedule) {
        const std::vector<bool> pinched = feasible_by_trial(
            context(cfg.constraints, 8), session.predictions());
        if (auto d = check_subset(pinched, base)) {
          report.failures.push_back({"extra_pin_slack", *d});
        }
        if (count_true(pinched) > count_true(base)) {
          report.failures.push_back(
              {"extra_pin_slack", "pinched run has more feasible trials"});
        }
      }
      // Sound for every topology: reserving more pins than any package
      // offers starves all chips of data pins, so nothing is feasible.
      {
        const std::vector<bool> starved = feasible_by_trial(
            context(cfg.constraints, 10000), session.predictions());
        if (count_true(starved) != 0) {
          report.failures.push_back(
              {"extra_pin_slack",
               "trials stay feasible with every data pin reserved away"});
        }
      }
    }
  } catch (const Error& e) {
    report.failures.push_back({"harness", std::string("exception: ") + e.what()});
  } catch (const std::exception& e) {
    report.failures.push_back(
        {"harness", std::string("std exception: ") + e.what()});
  }
  return report;
}

}  // namespace chop::testing
