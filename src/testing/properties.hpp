// Reusable property checks for the StatVal triplet algebra, shared
// between tests/statval_test.cpp and the fuzzing harness's statval
// oracle. Header-only and gtest-free: each check returns std::nullopt on
// success or a deterministic description of the first violation, so both
// EXPECT-style tests and the fuzz driver can consume them.
#pragma once

#include <cmath>
#include <optional>
#include <sstream>
#include <string>

#include "util/statval.hpp"

namespace chop::testing {

inline bool near(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol * (1.0 + std::fabs(a) + std::fabs(b));
}

/// a + b == b + a, componentwise exactly (FP addition is commutative).
inline std::optional<std::string> check_sum_commutative(const StatVal& a,
                                                        const StatVal& b) {
  if ((a + b) == (b + a)) return std::nullopt;
  return std::string("sum not commutative");
}

/// (a + b) + c ~= a + (b + c) within FP tolerance on every component.
inline std::optional<std::string> check_sum_associative(const StatVal& a,
                                                        const StatVal& b,
                                                        const StatVal& c) {
  const StatVal l = (a + b) + c;
  const StatVal r = a + (b + c);
  if (near(l.lo(), r.lo()) && near(l.likely(), r.likely()) &&
      near(l.hi(), r.hi())) {
    return std::nullopt;
  }
  return std::string("sum not associative within tolerance");
}

/// max(a, b) dominates both operands componentwise and is commutative.
inline std::optional<std::string> check_max_monotone(const StatVal& a,
                                                     const StatVal& b) {
  const StatVal m = StatVal::max(a, b);
  if (m.lo() < a.lo() || m.lo() < b.lo() || m.likely() < a.likely() ||
      m.likely() < b.likely() || m.hi() < a.hi() || m.hi() < b.hi()) {
    return std::string("max does not dominate its operands");
  }
  if (!(StatVal::max(a, b) == StatVal::max(b, a))) {
    return std::string("max not commutative");
  }
  return std::nullopt;
}

/// CDF is a proper distribution function: bounded to [0, 1], monotone
/// nondecreasing, 0 below the support and 1 at/above its top.
inline std::optional<std::string> check_cdf_bounds(const StatVal& v) {
  const double span = v.hi() - v.lo();
  const double step = span > 0.0 ? span / 8.0 : 1.0;
  double prev = -1.0;
  for (int i = -2; i <= 10; ++i) {
    const double x = v.lo() + static_cast<double>(i) * step;
    const double p = v.cdf(x);
    if (std::isnan(p) || p < 0.0 || p > 1.0) {
      std::ostringstream os;
      os << "cdf(" << x << ") = " << p << " outside [0, 1]";
      return os.str();
    }
    if (p + 1e-12 < prev) {
      std::ostringstream os;
      os << "cdf not monotone at x = " << x;
      return os.str();
    }
    prev = p;
  }
  if (v.cdf(v.lo() - step) != 0.0) return std::string("cdf below support != 0");
  if (v.cdf(v.hi()) != 1.0) return std::string("cdf at upper bound != 1");
  return std::nullopt;
}

/// satisfies(limit, p) must be monotone in the limit: once satisfied at
/// some bound it stays satisfied at every looser bound.
inline std::optional<std::string> check_satisfies_monotone(const StatVal& v,
                                                           double prob) {
  const double span = v.hi() - v.lo();
  const double step = span > 0.0 ? span / 8.0 : 1.0;
  bool seen = false;
  for (int i = -2; i <= 10; ++i) {
    const double x = v.lo() + static_cast<double>(i) * step;
    const bool ok = v.satisfies(x, prob);
    if (seen && !ok) {
      std::ostringstream os;
      os << "satisfies(" << x << ", " << prob << ") regressed";
      return os.str();
    }
    seen = seen || ok;
  }
  if (!v.satisfies(v.hi() + step, prob)) {
    return std::string("satisfies false above the support");
  }
  return std::nullopt;
}

}  // namespace chop::testing
