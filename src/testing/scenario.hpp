// Deterministic end-to-end scenario generation for the differential
// fuzzing harness (tools/chop_fuzz).
//
// A scenario is a complete io::Project — behavioral graph, component
// library, chip set, memory subsystem, partitioning, and configuration —
// derived entirely from a small integer knob vector plus one seed. Two
// properties make that representation the backbone of the harness:
//
//  * Reproducibility: build_scenario(knobs) is a pure function. The knob
//    vector (including its seed) IS the repro; serializing the built
//    project to a `.chop` file gives a replayable artifact that needs no
//    harness code to re-run.
//  * Shrinkability: failures are minimized by shrinking *knobs* (fewer
//    operations, fewer partitions, looser constraints) and rebuilding,
//    rather than by mutating the project structurally — every shrink
//    candidate is a valid project by construction.
//
// Partitions are formed from contiguous spans of the generated layered
// DAG, which guarantees the partition quotient graph is acyclic (edges
// only ever point to equal-or-later layers).
#pragma once

#include <cstdint>
#include <string>

#include "io/spec_format.hpp"
#include "util/rng.hpp"

namespace chop::testing {

/// The complete generation parameter vector. Everything is integral so a
/// knob vector can be logged, compared, and shrunk without FP noise; the
/// builder converts to the model's units. Invariants are established by
/// normalize() rather than asserted, so arbitrary shrink arithmetic can
/// never produce an unbuildable vector.
struct ScenarioKnobs {
  std::uint64_t seed = 0;  ///< Drives every random choice in the builder.

  // Graph shape.
  int operations = 12;
  int depth = 3;
  int mul_permille = 400;  ///< P(op is Mul) in 1/1000 units.
  int width = 16;
  int extra_inputs = 3;
  int memory_blocks = 0;
  int mem_reads = 0;
  int mem_writes = 0;

  // Hardware.
  int chips = 2;
  int partitions = 2;
  int modules_per_op = 2;  ///< Library alternatives per operation kind.

  // Style and clocks.
  bool multi_cycle = false;
  bool allow_pipelining = true;
  int main_clock_ns = 300;
  int datapath_mult = 10;
  int transfer_mult = 1;

  // Constraint budget and criteria.
  int performance_ns = 30000;
  int delay_ns = 30000;
  int system_power_mw = 0;  ///< 0 = unconstrained.
  int chip_power_mw = 0;    ///< 0 = unconstrained.
  int performance_prob_pct = 100;
  int delay_prob_pct = 80;

  /// Clamps every knob into its legal range (depth <= operations,
  /// partitions <= depth, memory ops need blocks, ...). Idempotent.
  void normalize();

  /// Compact single-line rendering for logs and repro headers.
  std::string describe() const;
};

/// Samples a fresh knob vector from `seed` (the per-scenario distribution
/// of the fuzzer). The result is normalized.
ScenarioKnobs sample_knobs(std::uint64_t seed);

/// Deterministically builds the complete project a knob vector describes.
/// The same knobs always produce a byte-identical project; knobs are
/// normalized first. The result parses/serializes losslessly through the
/// `.chop` format (all sampled quantities are integral).
io::Project build_scenario(ScenarioKnobs knobs);

/// FNV-1a hash of a seed string, so `--seed=ci` style tags map onto the
/// 64-bit seed space deterministically. Digit-only strings are parsed as
/// the literal number instead.
std::uint64_t parse_seed(const std::string& text);

/// Per-scenario derived seed: scenario `index` of a run seeded `base`.
std::uint64_t scenario_seed(std::uint64_t base, std::uint64_t index);

}  // namespace chop::testing
