// The differential / metamorphic oracle battery of the fuzzing harness.
//
// Every generated scenario is pushed through a set of independent checks,
// each of which compares two executions of the partitioner that are
// REQUIRED to agree, or an invariant that must hold of any single run:
//
//  spec_roundtrip     write -> parse -> write is byte-stable
//  bound_pruning      branch-and-bound E == exhaustive E (design set), and
//                     trials + bound_skipped_leaves == product of lists
//  thread_determinism E at 1/2/4/8 threads: identical designs, counters,
//                     recorder contents and observer callback sequence
//  generation_determinism
//                     the multilevel partition generator's full result is
//                     byte-identical at 1/2/4/8 portfolio threads
//  eval_cache         memoized evaluator == caching disabled
//  enum_vs_iterative  every iterative design is feasible and weakly
//                     dominated by some enumeration design (E is complete)
//  tighten/loosen     tightening any hard constraint never grows the
//                     feasible set; loosening never shrinks it; reserving
//                     extra pins never adds feasible designs
//  statval            triangular-CDF probabilities stay in [0, 1], are
//                     monotone in the query point, and satisfies() is
//                     monotone in the constraint bound
//
// The metamorphic group runs with SearchOptions::prune = false: the
// searched raw lists do not depend on the constraint vector, so feasible
// trial-index sets are directly comparable across constraint variants.
#pragma once

#include <string>
#include <vector>

#include "io/spec_format.hpp"

namespace chop::testing {

/// Caps and toggles for one battery run. Scenario spaces larger than the
/// caps are skipped (and reported as skipped — never silently).
struct OracleLimits {
  std::size_t max_eligible_product = 20000;  ///< Bounded-search oracles.
  std::size_t max_raw_product = 60000;       ///< Metamorphic (raw-list) group.
  bool metamorphic = true;
  std::vector<int> thread_counts = {2, 4, 8};
};

/// One oracle violation: which oracle and a deterministic description.
struct OracleFailure {
  std::string oracle;
  std::string detail;
};

/// Outcome of one scenario's battery run.
struct ScenarioReport {
  bool skipped = false;  ///< Design space exceeded OracleLimits.
  std::size_t eligible_product = 0;
  std::size_t raw_product = 0;
  std::size_t designs = 0;  ///< Enumeration design count.
  std::size_t trials = 0;   ///< Bounded enumeration trials.
  std::vector<OracleFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Runs the full battery over one project. Exceptions from the partitioner
/// itself are caught and reported as `harness` failures, so a crash in any
/// layer still yields a shrinkable report.
ScenarioReport run_oracles(const io::Project& project,
                           const OracleLimits& limits);

}  // namespace chop::testing
