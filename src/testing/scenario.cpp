#include "testing/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "chip/mosis_packages.hpp"
#include "dfg/generator.hpp"

namespace chop::testing {

namespace {

int clamp(int v, int lo, int hi) { return std::max(lo, std::min(hi, v)); }

/// splitmix64-style mix so neighboring scenario indices decorrelate.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int pick(Rng& rng, std::initializer_list<int> choices) {
  const auto* begin = choices.begin();
  return begin[rng.uniform(0, static_cast<std::int64_t>(choices.size()) - 1)];
}

}  // namespace

void ScenarioKnobs::normalize() {
  operations = clamp(operations, 1, 64);
  depth = clamp(depth, 1, operations);
  mul_permille = clamp(mul_permille, 0, 1000);
  width = clamp(width, 1, 64);
  extra_inputs = clamp(extra_inputs, 2, 8);
  memory_blocks = clamp(memory_blocks, 0, 4);
  if (memory_blocks == 0) {
    mem_reads = 0;
    mem_writes = 0;
  } else {
    mem_reads = clamp(mem_reads, 0, 4);
    mem_writes = clamp(mem_writes, 0, 4);
    if (mem_reads + mem_writes == 0) memory_blocks = 0;
  }
  chips = clamp(chips, 1, 4);
  partitions = clamp(partitions, 1, std::min(4, depth));
  modules_per_op = clamp(modules_per_op, 1, 3);
  main_clock_ns = clamp(main_clock_ns, 50, 1000);
  datapath_mult = clamp(datapath_mult, 1, 30);
  transfer_mult = clamp(transfer_mult, 1, 4);
  performance_ns = clamp(performance_ns, 500, 200000);
  delay_ns = clamp(delay_ns, 500, 200000);
  system_power_mw = clamp(system_power_mw, 0, 50000);
  chip_power_mw = clamp(chip_power_mw, 0, 50000);
  performance_prob_pct = clamp(performance_prob_pct, 50, 100);
  delay_prob_pct = clamp(delay_prob_pct, 50, 100);
}

std::string ScenarioKnobs::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " ops=" << operations << " depth=" << depth
     << " mul=" << mul_permille << " width=" << width
     << " inputs=" << extra_inputs << " mem=" << memory_blocks << '/'
     << mem_reads << 'r' << mem_writes << 'w' << " chips=" << chips
     << " parts=" << partitions << " mods=" << modules_per_op
     << " style=" << (multi_cycle ? "multi" : "single")
     << (allow_pipelining ? "" : " nopipe") << " clock=" << main_clock_ns
     << 'x' << datapath_mult << '/' << transfer_mult
     << " perf=" << performance_ns << " delay=" << delay_ns
     << " power=" << system_power_mw << '/' << chip_power_mw
     << " probs=" << performance_prob_pct << '/' << delay_prob_pct;
  return os.str();
}

ScenarioKnobs sample_knobs(std::uint64_t seed) {
  Rng rng(mix(seed));
  ScenarioKnobs k;
  k.seed = seed;
  k.operations = static_cast<int>(rng.uniform(4, 18));
  k.depth = static_cast<int>(rng.uniform(2, 4));
  k.mul_permille = pick(rng, {0, 200, 400, 700, 1000});
  k.width = pick(rng, {8, 16, 24});
  k.extra_inputs = static_cast<int>(rng.uniform(2, 5));
  if (rng.chance(0.35)) {
    k.memory_blocks = static_cast<int>(rng.uniform(1, 2));
    k.mem_reads = static_cast<int>(rng.uniform(1, 3));
    k.mem_writes = static_cast<int>(rng.uniform(0, 2));
  }
  k.chips = static_cast<int>(rng.uniform(1, 3));
  k.partitions = static_cast<int>(rng.uniform(1, 4));
  k.modules_per_op = static_cast<int>(rng.uniform(1, 3));
  k.multi_cycle = rng.chance(0.5);
  k.allow_pipelining = rng.chance(0.8);
  k.main_clock_ns = pick(rng, {100, 200, 300});
  k.datapath_mult = k.multi_cycle ? pick(rng, {1, 2}) : pick(rng, {5, 10, 20});
  k.transfer_mult = pick(rng, {1, 2});
  k.performance_ns = static_cast<int>(rng.uniform(16, 120)) * 500;
  k.delay_ns = static_cast<int>(rng.uniform(16, 120)) * 500;
  if (rng.chance(0.25)) {
    k.system_power_mw = static_cast<int>(rng.uniform(8, 60)) * 100;
    if (rng.chance(0.5)) {
      k.chip_power_mw = static_cast<int>(rng.uniform(3, 30)) * 100;
    }
  }
  k.performance_prob_pct = pick(rng, {90, 100});
  k.delay_prob_pct = pick(rng, {80, 90, 100});
  k.normalize();
  return k;
}

io::Project build_scenario(ScenarioKnobs knobs) {
  knobs.normalize();
  // Independent stream from the sampling one, so shrinking a knob does not
  // reshuffle every other generation decision more than necessary.
  Rng rng(mix(knobs.seed ^ 0xc2b2ae3d27d4eb4full));

  io::Project project;

  dfg::RandomDagSpec dag;
  dag.operations = knobs.operations;
  dag.depth = knobs.depth;
  dag.mul_fraction = static_cast<double>(knobs.mul_permille) / 1000.0;
  dag.width = knobs.width;
  dag.extra_inputs = knobs.extra_inputs;
  dag.memory_blocks = knobs.memory_blocks;
  dag.mem_reads = knobs.mem_reads;
  dag.mem_writes = knobs.mem_writes;
  const dfg::BenchmarkGraph bg = dfg::random_dag(rng, dag);
  project.graph = bg.graph;
  project.graph.set_name("fuzz_" + std::to_string(knobs.seed));

  // Library: `modules_per_op` alternatives for each op kind the generator
  // emits, spanning a fast/large vs slow/small spread like the paper's
  // Table 1. All quantities integral so the `.chop` round trip is exact.
  for (dfg::OpKind op : {dfg::OpKind::Add, dfg::OpKind::Mul}) {
    const char* prefix = op == dfg::OpKind::Add ? "add" : "mul";
    for (int m = 0; m < knobs.modules_per_op; ++m) {
      lib::ModuleSpec spec;
      spec.name = std::string(prefix) + std::to_string(m + 1);
      spec.op = op;
      spec.width = knobs.width;
      spec.delay = static_cast<double>(rng.uniform(4, 180)) * 10.0;
      // Loosely anticorrelated area: faster modules trend larger.
      spec.area = static_cast<double>(rng.uniform(30, 400)) * 10.0 +
                  (1800.0 - spec.delay);
      project.library.add(spec);
    }
  }

  for (int c = 0; c < knobs.chips; ++c) {
    const chip::ChipPackage pkg =
        rng.chance(0.5) ? chip::mosis_package_64() : chip::mosis_package_84();
    std::string name = "chip";
    name += std::to_string(c);
    project.chips.push_back({std::move(name), pkg});
  }

  for (int b = 0; b < knobs.memory_blocks; ++b) {
    chip::MemoryModule block;
    block.name = "m" + std::to_string(b);
    block.word_bits = knobs.width;
    block.words = pick(rng, {64, 256, 1024});
    block.ports = static_cast<int>(rng.uniform(1, 2));
    block.access_time = static_cast<double>(pick(rng, {40, 80, 120}));
    block.area = static_cast<double>(pick(rng, {2000, 6000, 12000}));
    project.memory.blocks.push_back(block);
    // Off-the-shelf with probability 1/(chips+1), else on a random chip.
    const int placement =
        static_cast<int>(rng.uniform(-1, knobs.chips - 1));
    project.memory.chip_of_block.push_back(
        placement < 0 ? chip::kOffTheShelfChip : placement);
  }

  // Partitions: split the layer range into `partitions` contiguous,
  // nonempty spans at random cut points, each span on a random chip.
  const int layers = static_cast<int>(bg.layers.size());
  const int nparts = std::min(knobs.partitions, layers);
  std::vector<int> cuts;  // first layer of each partition after the first
  while (static_cast<int>(cuts.size()) < nparts - 1) {
    const int cut = static_cast<int>(rng.uniform(1, layers - 1));
    if (std::find(cuts.begin(), cuts.end(), cut) == cuts.end()) {
      cuts.push_back(cut);
    }
  }
  cuts.push_back(0);
  cuts.push_back(layers);
  std::sort(cuts.begin(), cuts.end());
  for (int p = 0; p < nparts; ++p) {
    core::Partition partition;
    partition.name = "P";
    partition.name += std::to_string(p);
    partition.chip = static_cast<int>(rng.uniform(0, knobs.chips - 1));
    partition.members = bg.layer_span(
        static_cast<std::size_t>(cuts[static_cast<std::size_t>(p)]),
        static_cast<std::size_t>(cuts[static_cast<std::size_t>(p) + 1] - 1));
    project.partitions.push_back(std::move(partition));
  }

  project.config.style.clocking = knobs.multi_cycle
                                      ? bad::ClockingStyle::MultiCycle
                                      : bad::ClockingStyle::SingleCycle;
  project.config.style.allow_pipelining = knobs.allow_pipelining;
  project.config.clocks.main_clock = static_cast<double>(knobs.main_clock_ns);
  project.config.clocks.datapath_multiplier = knobs.datapath_mult;
  project.config.clocks.transfer_multiplier = knobs.transfer_mult;
  project.config.constraints.performance_ns =
      static_cast<double>(knobs.performance_ns);
  project.config.constraints.delay_ns = static_cast<double>(knobs.delay_ns);
  project.config.constraints.system_power_mw =
      static_cast<double>(knobs.system_power_mw);
  project.config.constraints.chip_power_mw =
      static_cast<double>(knobs.chip_power_mw);
  project.config.criteria.performance_prob =
      static_cast<double>(knobs.performance_prob_pct) / 100.0;
  project.config.criteria.delay_prob =
      static_cast<double>(knobs.delay_prob_pct) / 100.0;
  return project;
}

std::uint64_t parse_seed(const std::string& text) {
  if (!text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos &&
      text.size() <= 19) {
    return std::stoull(text);
  }
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint64_t scenario_seed(std::uint64_t base, std::uint64_t index) {
  return mix(base ^ mix(index + 1));
}

}  // namespace chop::testing
