#include "testing/shrink.hpp"

#include <functional>
#include <sstream>
#include <vector>

#include "io/spec_writer.hpp"

namespace chop::testing {

namespace {

/// One candidate transformation; returns false when it cannot apply (the
/// knob is already minimal), so the driver can move on.
using Transform = std::function<bool(ScenarioKnobs&)>;

const std::vector<std::pair<const char*, Transform>>& transforms() {
  static const std::vector<std::pair<const char*, Transform>> kTransforms = {
      {"halve operations",
       [](ScenarioKnobs& k) {
         if (k.operations <= 1) return false;
         k.operations /= 2;
         return true;
       }},
      {"decrement operations",
       [](ScenarioKnobs& k) {
         if (k.operations <= 1) return false;
         k.operations -= 1;
         return true;
       }},
      {"decrement depth",
       [](ScenarioKnobs& k) {
         if (k.depth <= 1) return false;
         k.depth -= 1;
         return true;
       }},
      {"decrement partitions",
       [](ScenarioKnobs& k) {
         if (k.partitions <= 1) return false;
         k.partitions -= 1;
         return true;
       }},
      {"decrement chips",
       [](ScenarioKnobs& k) {
         if (k.chips <= 1) return false;
         k.chips -= 1;
         return true;
       }},
      {"decrement module alternatives",
       [](ScenarioKnobs& k) {
         if (k.modules_per_op <= 1) return false;
         k.modules_per_op -= 1;
         return true;
       }},
      {"drop memory subsystem",
       [](ScenarioKnobs& k) {
         if (k.memory_blocks == 0) return false;
         k.memory_blocks = 0;
         return true;
       }},
      {"shrink width",
       [](ScenarioKnobs& k) {
         if (k.width <= 8) return false;
         k.width = 8;
         return true;
       }},
      {"fewer inputs",
       [](ScenarioKnobs& k) {
         if (k.extra_inputs <= 2) return false;
         k.extra_inputs = 2;
         return true;
       }},
      {"loosen performance",
       [](ScenarioKnobs& k) {
         if (k.performance_ns >= 200000) return false;
         k.performance_ns *= 2;
         return true;
       }},
      {"loosen delay",
       [](ScenarioKnobs& k) {
         if (k.delay_ns >= 200000) return false;
         k.delay_ns *= 2;
         return true;
       }},
      {"drop power budget",
       [](ScenarioKnobs& k) {
         if (k.system_power_mw == 0 && k.chip_power_mw == 0) return false;
         k.system_power_mw = 0;
         k.chip_power_mw = 0;
         return true;
       }},
  };
  return kTransforms;
}

ScenarioReport evaluate(const ScenarioKnobs& knobs,
                        const OracleLimits& limits) {
  return run_oracles(build_scenario(knobs), limits);
}

}  // namespace

ShrinkResult shrink_failure(const ScenarioKnobs& start,
                            const OracleLimits& limits) {
  ShrinkResult result;
  result.knobs = start;
  result.knobs.normalize();
  result.report = evaluate(result.knobs, limits);
  if (result.report.ok()) return result;

  // Greedy descent with restart: each successful shrink can unlock earlier
  // transformations again. The attempt cap bounds the worst case; every
  // adopted step strictly reduces some knob, so the fixpoint is reached
  // long before it in practice.
  int attempts = 0;
  bool progressed = true;
  while (progressed && attempts < 400) {
    progressed = false;
    for (const auto& [name, transform] : transforms()) {
      ScenarioKnobs candidate = result.knobs;
      if (!transform(candidate)) continue;
      candidate.normalize();
      ++attempts;
      const ScenarioReport candidate_report = evaluate(candidate, limits);
      if (!candidate_report.ok() && !candidate_report.skipped) {
        result.knobs = candidate;
        result.report = candidate_report;
        ++result.steps;
        progressed = true;
        break;  // restart from the first transformation
      }
    }
  }
  return result;
}

std::string repro_document(const ShrinkResult& result) {
  std::ostringstream os;
  os << "# chop_fuzz shrunk repro\n";
  os << "# knobs: " << result.knobs.describe() << "\n";
  os << "# shrink steps: " << result.steps << "\n";
  for (const OracleFailure& f : result.report.failures) {
    os << "# failed oracle: " << f.oracle << " — " << f.detail << "\n";
  }
  io::write_project(build_scenario(result.knobs), os);
  return os.str();
}

}  // namespace chop::testing
