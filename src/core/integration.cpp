#include "core/integration.hpp"

#include <algorithm>
#include <cmath>

#include "bad/power_model.hpp"
#include "obs/metrics.hpp"
#include "schedule/task_schedule.hpp"

namespace chop::core {

Cycles combination_ii(
    const std::vector<const bad::DesignPrediction*>& selection) {
  Cycles ii = 1;
  for (const bad::DesignPrediction* p : selection) {
    CHOP_REQUIRE(p != nullptr, "combination has an unselected partition");
    ii = std::max(ii, p->ii_main);
  }
  return ii;
}

bool rates_compatible(
    const std::vector<const bad::DesignPrediction*>& selection) {
  Cycles pipelined_rate = 0;
  for (const bad::DesignPrediction* p : selection) {
    if (p == nullptr || p->style != bad::DesignStyle::Pipelined) continue;
    if (pipelined_rate == 0) {
      pipelined_rate = p->ii_main;
    } else if (p->ii_main != pipelined_rate) {
      return false;
    }
  }
  return true;
}

namespace {

/// Mux depth implied by `transfers` pin-crossing transfers multiplexing one
/// chip's data pins.
int mux_levels(int transfers) {
  return transfers <= 1 ? 0
                        : static_cast<int>(std::ceil(std::log2(transfers)));
}

/// Per-thread scratch arena for integrate_core(). The search evaluates
/// thousands of combinations per second and every one used to allocate a
/// dozen vectors, a map and a task graph; the arena keeps those buffers
/// (and an SoA StatBank for the chip area/power accumulators) alive across
/// trials so the steady-state inner loop is allocation-free. thread_local
/// because the parallel enumeration runs leaf evaluations from pool
/// threads concurrently.
struct EvalScratch {
  std::vector<Pins> reserved;
  std::vector<Pins> data_pins;
  std::vector<int> sharing;  ///< Pin-crossing transfer count per chip.
  sched::TaskGraph tg;
  std::vector<int> pin_res;
  std::vector<int> mem_res;  ///< Resource id per memory block (flat).
  std::vector<int> pu_task;
  std::vector<int> transfer_task;
  StatBank chip_area;
  StatBank chip_power;
};

EvalScratch& scratch_for_thread() {
  thread_local EvalScratch scratch;
  return scratch;
}

}  // namespace

IntegrationCore integrate_core(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    Cycles ii_main) {
  const Partitioning& pt = ctx.partitioning();
  const std::vector<DataTransfer>& transfers = ctx.transfers();
  const bad::ClockSpec& clocks = ctx.clocks();
  const auto& partitions = pt.partitions();
  const auto& chips = pt.chips();
  CHOP_REQUIRE(selection.size() == partitions.size(),
               "selection size must match partition count");
  for (const bad::DesignPrediction* p : selection) {
    CHOP_REQUIRE(p != nullptr, "selection has an unselected partition");
  }
  // Clocks/constraints/criteria/extra-pins were validated when the
  // EvalContext was built; only the per-candidate arguments are checked
  // here.
  CHOP_REQUIRE(ii_main >= 1, "system initiation interval must be positive");

  static obs::Counter& attempts =
      obs::MetricsRegistry::global().counter("integration.attempts");
  attempts.add();

  EvalScratch& scratch = scratch_for_thread();
  IntegrationCore core;
  IntegrationResult& out = core.partial;
  out.ii_main = ii_main;
  auto fail = [&](std::string why) {
    core.structural_fail = true;
    out.feasible = false;
    out.reason = std::move(why);
    return std::move(core);
  };

  if (!rates_compatible(selection)) {
    return fail("pipelined data-rate mismatch");
  }
  for (const bad::DesignPrediction* p : selection) {
    if (p->ii_main > ii_main) {
      return fail("partition slower than the system initiation interval");
    }
  }

  // --- pin budgets -------------------------------------------------------
  reserved_control_pins_into(pt, transfers, 2, scratch.reserved);
  const std::vector<Pins>& reserved = scratch.reserved;
  std::vector<Pins>& data_pins = scratch.data_pins;
  data_pins.assign(chips.size(), 0);
  const Pins extra_reserved_pins_per_chip = ctx.extra_pins();
  for (std::size_t c = 0; c < chips.size(); ++c) {
    data_pins[c] = chips[c].package.signal_pins() - reserved[c] -
                   extra_reserved_pins_per_chip;
    if (data_pins[c] <= 0) {
      return fail("chip " + chips[c].name +
                  " has no data pins left after control reservations");
    }
  }

  std::vector<int>& sharing = scratch.sharing;
  sharing.assign(chips.size(), 0);
  for (const DataTransfer& t : transfers) {
    for (int c : t.chips) sharing[static_cast<std::size_t>(c)]++;
  }

  // --- transfer bandwidth and duration ------------------------------------
  out.transfers.reserve(transfers.size());
  for (const DataTransfer& t : transfers) {
    TransferPlan plan;
    plan.task = t;
    if (t.crosses_pins()) {
      Pins bw = std::numeric_limits<Pins>::max();
      for (int c : t.chips) {
        bw = std::min(bw, data_pins[static_cast<std::size_t>(c)]);
      }
      plan.pins = static_cast<Pins>(
          std::min<Bits>(bw, std::max<Bits>(1, t.bits)));
      const Cycles transfer_clocks = static_cast<Cycles>(
          (t.bits + plan.pins - 1) / std::max<Pins>(1, plan.pins));
      // Pad traversal (out of one chip, into the other) lengthens the
      // transfer rather than the clock — the paper attributes pin-count
      // effects to system delay, not cycle time.
      Ns pad_path = 0.0;
      for (int c : t.chips) {
        pad_path += chips[static_cast<std::size_t>(c)].package.pad_delay;
      }
      const Cycles pad_cycles = static_cast<Cycles>(
          std::ceil(pad_path / clocks.transfer_period()));
      plan.transfer_cycles = std::max<Cycles>(
          1, transfer_clocks * clocks.transfer_multiplier + pad_cycles);
      // Hard data-clash rule: X must fit within the initiation interval.
      if (plan.transfer_cycles > ii_main) {
        return fail("transfer " + t.name +
                    " cannot fit in the initiation interval (pins)");
      }
    } else {
      plan.pins = 0;
      plan.transfer_cycles = 0;  // on-chip move: absorbed in the datapath
    }
    out.transfers.push_back(std::move(plan));
  }

  // --- system task graph and urgency schedule -----------------------------
  sched::TaskGraph& tg = scratch.tg;
  tg.tasks.clear();
  tg.precedence.clear();
  tg.capacity.clear();
  // Resources: one per chip (data pins), one per memory block (ports).
  std::vector<int>& pin_res = scratch.pin_res;
  pin_res.assign(chips.size(), -1);
  for (std::size_t c = 0; c < chips.size(); ++c) {
    pin_res[c] = tg.add_resource(data_pins[c]);
  }
  std::vector<int>& mem_res = scratch.mem_res;
  mem_res.assign(pt.memory().blocks.size(), -1);
  for (std::size_t b = 0; b < pt.memory().blocks.size(); ++b) {
    mem_res[b] = tg.add_resource(pt.memory().blocks[b].ports);
  }

  std::vector<int>& pu_task = scratch.pu_task;
  pu_task.assign(partitions.size(), -1);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    sched::Task task;
    task.name = partitions[p].name;
    task.duration = selection[p]->latency_main;
    // Local memory port occupancy while the PU runs.
    for (const auto& [block, accesses] : selection[p]->memory_accesses) {
      (void)accesses;
      const int mem_chip = pt.memory().placement(block);
      if (mem_chip == partitions[p].chip) {
        task.demands.emplace_back(mem_res[static_cast<std::size_t>(block)], 1);
      }
    }
    pu_task[p] = tg.add_task(std::move(task));
  }

  std::vector<int>& transfer_task = scratch.transfer_task;
  transfer_task.assign(out.transfers.size(), -1);
  for (std::size_t i = 0; i < out.transfers.size(); ++i) {
    const TransferPlan& plan = out.transfers[i];
    sched::Task task;
    task.name = plan.task.name;
    task.duration = plan.transfer_cycles;
    for (int c : plan.task.chips) {
      task.demands.emplace_back(pin_res[static_cast<std::size_t>(c)],
                                plan.pins);
    }
    if (plan.task.memory_block >= 0 && plan.task.crosses_pins()) {
      task.demands.emplace_back(
          mem_res[static_cast<std::size_t>(plan.task.memory_block)], 1);
    }
    transfer_task[i] = tg.add_task(std::move(task));

    // Precedence: producer -> transfer -> consumer.
    const DataTransfer& t = plan.task;
    switch (t.kind) {
      case DataTransfer::Kind::InputDelivery:
        tg.add_precedence(transfer_task[i],
                          pu_task[static_cast<std::size_t>(t.dst_partition)]);
        break;
      case DataTransfer::Kind::OutputCollection:
        tg.add_precedence(pu_task[static_cast<std::size_t>(t.src_partition)],
                          transfer_task[i]);
        break;
      case DataTransfer::Kind::Interpartition:
        tg.add_precedence(pu_task[static_cast<std::size_t>(t.src_partition)],
                          transfer_task[i]);
        tg.add_precedence(transfer_task[i],
                          pu_task[static_cast<std::size_t>(t.dst_partition)]);
        break;
      case DataTransfer::Kind::MemoryRead:
        tg.add_precedence(transfer_task[i],
                          pu_task[static_cast<std::size_t>(t.dst_partition)]);
        break;
      case DataTransfer::Kind::MemoryWrite:
        tg.add_precedence(pu_task[static_cast<std::size_t>(t.src_partition)],
                          transfer_task[i]);
        break;
    }
  }

  const sched::TaskSchedule schedule = sched::urgency_schedule(tg, ii_main);
  if (!schedule.feasible) {
    return fail("urgency schedule found no feasible pin/memory sharing");
  }
  out.system_delay_main = schedule.makespan;

  // --- wait times and buffers ---------------------------------------------
  const lib::TechnologyParams tech;  // transfer modules use default tech
  for (std::size_t i = 0; i < out.transfers.size(); ++i) {
    TransferPlan& plan = out.transfers[i];
    if (!plan.task.crosses_pins()) continue;
    const Cycles t_start = schedule.start[static_cast<std::size_t>(
        transfer_task[i])];

    // Output-side wait: data ready (producer end) until transfer starts.
    Cycles ready = 0;
    if (plan.task.src_partition != kEnvironment) {
      const auto sp = static_cast<std::size_t>(plan.task.src_partition);
      ready = schedule.start[static_cast<std::size_t>(pu_task[sp])] +
              selection[sp]->latency_main;
    }
    const Cycles wait_out = std::max<Cycles>(0, t_start - ready);

    // Input-side wait: transfer end until the consumer can accept.
    Cycles wait_in = 0;
    if (plan.task.dst_partition != kEnvironment) {
      const auto dp = static_cast<std::size_t>(plan.task.dst_partition);
      wait_in = std::max<Cycles>(
          0, schedule.start[static_cast<std::size_t>(pu_task[dp])] -
                 (t_start + plan.transfer_cycles));
    }
    plan.wait_cycles = wait_out + wait_in;

    // B = D * (ceil(W/l) + X/l)  (paper §2.5).
    const double d = static_cast<double>(plan.task.bits);
    const double w = static_cast<double>(plan.wait_cycles);
    const double x = static_cast<double>(plan.transfer_cycles);
    const double l = static_cast<double>(ii_main);
    plan.buffer_bits =
        static_cast<Bits>(std::ceil(d * (std::ceil(w / l) + x / l)));

    plan.controller = bad::estimate_transfer_controller(
        plan.wait_cycles, plan.transfer_cycles, plan.pins, tech);
    plan.module_power_mw = bad::estimate_transfer_power(
        plan.pins, plan.transfer_cycles, ii_main, plan.module_area.likely(),
        tech);

    // Module area: buffer registers + per-pin multiplexing + controller.
    const lib::BitCellSpec reg{31.0, 5.0};
    const lib::BitCellSpec mux{18.0, 4.0};
    const double buffer_area = static_cast<double>(plan.buffer_bits) * reg.area;
    double mux_area = 0.0;
    for (int c : plan.task.chips) {
      const int levels = mux_levels(sharing[static_cast<std::size_t>(c)]);
      mux_area = std::max(mux_area, static_cast<double>(plan.pins) *
                                        static_cast<double>(levels) * mux.area);
    }
    const StatVal buffers(0.9 * buffer_area, buffer_area, 1.15 * buffer_area);
    plan.module_area =
        buffers + StatVal(mux_area) + plan.controller.area;
  }

  // --- per-chip area accumulation (SoA scratch, then materialised) --------
  scratch.chip_area.assign(chips.size());
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    scratch.chip_area.add(static_cast<std::size_t>(partitions[p].chip),
                          selection[p]->total_area);
  }
  for (const TransferPlan& plan : out.transfers) {
    for (int c : plan.task.chips) {
      scratch.chip_area.add(static_cast<std::size_t>(c), plan.module_area);
    }
  }
  for (std::size_t b = 0; b < pt.memory().blocks.size(); ++b) {
    const int placement = pt.memory().placement(static_cast<int>(b));
    if (placement != chip::kOffTheShelfChip) {
      scratch.chip_area.add_exact(static_cast<std::size_t>(placement),
                                  pt.memory().blocks[b].area);
    }
  }
  out.chip_area.assign(chips.size(), StatVal{});
  for (std::size_t c = 0; c < chips.size(); ++c) {
    out.chip_area[c] = scratch.chip_area.get(c);
  }

  // --- per-chip and system power (the §5 power extension) -----------------
  scratch.chip_power.assign(chips.size());
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    scratch.chip_power.add(static_cast<std::size_t>(partitions[p].chip),
                           selection[p]->power_mw);
  }
  for (const TransferPlan& plan : out.transfers) {
    for (int c : plan.task.chips) {
      scratch.chip_power.add(static_cast<std::size_t>(c), plan.module_power_mw);
    }
  }
  out.chip_power_mw.assign(chips.size(), StatVal{});
  for (std::size_t c = 0; c < chips.size(); ++c) {
    out.chip_power_mw[c] = scratch.chip_power.get(c);
  }
  for (const StatVal& p : out.chip_power_mw) out.system_power_mw += p;

  // --- clock adjustment ----------------------------------------------------
  Ns partition_charge = 0.0;
  for (const bad::DesignPrediction* p : selection) {
    partition_charge = std::max(partition_charge, p->clock_overhead_ns);
  }
  Ns transfer_charge = 0.0;
  const lib::BitCellSpec mux{18.0, 4.0};
  for (std::size_t c = 0; c < chips.size(); ++c) {
    if (sharing[c] == 0) continue;
    // Only the on-chip pin-multiplexing tree stretches the clock; pad
    // delay is charged to the transfer duration above.
    const Ns path = static_cast<double>(mux_levels(sharing[c])) * mux.delay;
    transfer_charge = std::max(
        transfer_charge,
        path / static_cast<double>(clocks.transfer_multiplier));
  }
  const Ns likely_clock = clocks.main_clock + partition_charge + transfer_charge;
  out.adjusted_clock_ns =
      StatVal(clocks.main_clock + 0.9 * (partition_charge + transfer_charge),
              likely_clock, clocks.main_clock +
                                1.15 * (partition_charge + transfer_charge));

  out.performance_ns =
      out.adjusted_clock_ns * static_cast<double>(out.ii_main);
  out.delay_ns =
      out.adjusted_clock_ns * static_cast<double>(out.system_delay_main);
  return core;
}

IntegrationResult apply_verdict(const EvalContext& ctx,
                                const IntegrationCore& core) {
  static obs::Counter& infeasible =
      obs::MetricsRegistry::global().counter("integration.infeasible");

  IntegrationResult out = core.partial;
  if (core.structural_fail) {
    // Structural failures carry their final reason from integrate_core();
    // no constraint is ever consulted for them.
    infeasible.add();
    return out;
  }

  const DesignConstraints& constraints = ctx.constraints();
  const FeasibilityCriteria& criteria = ctx.criteria();
  const auto& chips = ctx.partitioning().chips();
  auto fail = [&](std::string why) {
    infeasible.add();
    out.feasible = false;
    out.reason = std::move(why);
    return std::move(out);
  };

  out.violated_chips.clear();
  for (std::size_t c = 0; c < chips.size(); ++c) {
    if (!criteria.area_ok(out.chip_area[c], chips[c].package.usable_area())) {
      out.violated_chips.push_back(static_cast<int>(c));
    }
  }

  if (!out.violated_chips.empty()) {
    return fail("chip area constraint violated");
  }
  if (!criteria.performance_ok(out.performance_ns, constraints.performance_ns)) {
    return fail("performance constraint violated");
  }
  if (!criteria.delay_ok(out.delay_ns, constraints.delay_ns)) {
    return fail("system delay constraint violated");
  }
  if (constraints.power_constrained()) {
    for (std::size_t c = 0; c < chips.size(); ++c) {
      if (!criteria.power_ok(out.chip_power_mw[c],
                             constraints.chip_power_mw)) {
        return fail("chip power budget violated on " + chips[c].name);
      }
    }
    if (!criteria.power_ok(out.system_power_mw,
                           constraints.system_power_mw)) {
      return fail("system power budget violated");
    }
  }
  out.feasible = true;
  out.reason.clear();
  return out;
}

IntegrationResult integrate(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    Cycles ii_main) {
  return apply_verdict(ctx, integrate_core(ctx, selection, ii_main));
}

}  // namespace chop::core
