// CandidateEvaluator — the memoizing front door to integrate(). The
// iterative heuristic's serialization probes re-integrate points its main
// loop already visited, auto_partition re-evaluates the same candidate
// cuts across restarts, and clock sweeps re-run the winning candidate;
// before this layer every one of those recomputed transfer plans, urgency
// schedules and PLA sizings from scratch. The evaluator caches
// IntegrationResults keyed on (context fingerprint, system II, content
// digest of each selected prediction) so any repeat — within a search,
// across searches, even across sessions — is a lookup.
//
// Thread safety: the cache is sharded (kShards independently locked maps)
// so the parallel enumeration's workers can share one evaluator without
// serializing on a single mutex. Concurrent misses on the same key may
// both compute; integrate() is pure, so whichever insert wins the result
// is identical.
//
// Eviction: bounded residency, enforced per shard in FIFO order — oldest
// insertions go first. Each shard holds at most ⌈max_entries/kShards⌉
// entries, so total residency never exceeds kShards·⌈max_entries/kShards⌉
// (exactly max_entries when it is a multiple of kShards). Eviction only
// costs a repeat integration later; correctness never depends on
// residency.
//
// Two-level memo: besides the full-key map, each shard group also caches
// the constraint-independent IntegrationCore under (core fingerprint, II,
// selection digests). A full-key miss whose core key hits — the signature
// of a §2.7 tighten/loosen-constraint revision — skips the transfer
// planning and urgency scheduling entirely and only re-runs the cheap
// constraint verdict (apply_verdict), then promotes the judged result
// into the full map. Core entries follow the same FIFO residency bound.
//
// Observability: global counters `eval.cache_hits`, `eval.cache_misses`,
// `eval.cache_evictions` and `eval.delta_core_hits`, plus per-instance
// stats().
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/integration.hpp"

namespace chop::obs {
class Counter;
class PhaseProfile;
}

namespace chop::core {

class CandidateEvaluator {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;

  /// `max_entries` bounds residency (see the eviction note above);
  /// 0 disables caching entirely — every evaluate() integrates fresh,
  /// which is the reference behavior cache-correctness tests compare
  /// against.
  explicit CandidateEvaluator(std::size_t max_entries = kDefaultMaxEntries);

  CandidateEvaluator(const CandidateEvaluator&) = delete;
  CandidateEvaluator& operator=(const CandidateEvaluator&) = delete;

  /// Integrates `selection` at `ii_main` under `ctx`, returning a cached
  /// result when this exact candidate was evaluated before. The returned
  /// pointer is never null and stays valid after eviction (shared
  /// ownership). Safe to call from multiple threads concurrently.
  /// When `profile` is non-null, time spent blocked on a shard lock is
  /// attributed to SearchPhase::kCacheWait (contention diagnostics).
  std::shared_ptr<const IntegrationResult> evaluate(
      const EvalContext& ctx,
      const std::vector<const bad::DesignPrediction*>& selection,
      Cycles ii_main, obs::PhaseProfile* profile = nullptr);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Full-key misses served by a memoized IntegrationCore (verdict-only
    /// re-evaluation; no transfer planning or scheduling ran).
    std::uint64_t core_hits = 0;
  };
  Stats stats() const;

  /// Entries currently resident, across all shards.
  std::size_t size() const;

  std::size_t max_entries() const { return max_entries_; }

  /// Drops every entry (stats are kept).
  void clear();

 private:
  struct Key {
    std::uint64_t context_fp = 0;
    Cycles ii = 0;
    std::vector<std::uint64_t> selection_fp;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const IntegrationResult>, KeyHash>
        map;
    std::deque<Key> fifo;  ///< Insertion order, for eviction.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  /// Core-level shard: memoized IntegrationCores keyed on the
  /// constraint-independent core fingerprint. Separate locks from the
  /// full-key shards; the two are never held simultaneously.
  struct CoreShard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const IntegrationCore>, KeyHash>
        map;
    std::deque<Key> fifo;
    std::uint64_t hits = 0;
  };

  static constexpr std::size_t kShards = 16;

  std::size_t max_entries_;
  std::size_t shard_cap_;  ///< ⌈max_entries_ / kShards⌉ (0 = no caching).
  std::array<Shard, kShards> shards_;
  std::array<CoreShard, kShards> core_shards_;
  obs::Counter& hits_counter_;
  obs::Counter& misses_counter_;
  obs::Counter& evictions_counter_;
  obs::Counter& core_hits_counter_;
};

}  // namespace chop::core
