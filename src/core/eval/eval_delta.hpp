// EvalDelta — a structured description of one §2.7 designer modification.
//
// The paper's interactive loop offers four modification groups: move an
// operation between partitions, retarget a partition's chip (or swap the
// chip's package/library), change the clock family, and tighten or loosen
// the constraint budget. An EvalDelta names one such edit as data, so the
// session can apply it, diff the evaluation-context fingerprints before
// and after, and route the follow-up search through the incremental path:
// per-partition prediction reuse, warm CandidateEvaluator shards (full-key
// and constraint-independent core-key), and cached BoundTables columns.
//
// A DeltaImpact summarises what actually changed — the contract consumers
// rely on: `noop` deltas must trigger zero re-search, `constraints_only`
// deltas keep every IntegrationCore valid, and `dirty_partitions` names
// the prediction lists that genuinely need a fresh BAD pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bad/style.hpp"
#include "core/constraints.hpp"
#include "core/partitioning.hpp"

namespace chop::core {

/// One §2.7 modification, as data.
struct EvalDelta {
  enum class Kind {
    MoveOperation,       ///< Move one op to another partition (§2.7 group 1).
    MovePartitionToChip, ///< Rebind a partition to another chip (group 2).
    ReplaceChipPackage,  ///< Swap a chip's package/library (group 2).
    SetClocking,         ///< Replace the style + clock family (group 3).
    SetConstraints,      ///< Replace the constraint budget (group 4).
  };

  Kind kind = Kind::SetConstraints;

  // MoveOperation.
  dfg::NodeId op = dfg::kNoNode;
  int to_partition = -1;

  // MovePartitionToChip.
  int partition = -1;

  // MovePartitionToChip / ReplaceChipPackage.
  int chip = -1;
  chip::ChipPackage package{};

  // SetClocking.
  bad::ArchitectureStyle style{};
  bad::ClockSpec clocks{};

  // SetConstraints.
  DesignConstraints constraints{};

  const char* kind_name() const;

  static EvalDelta move_operation(dfg::NodeId op, int to_partition);
  static EvalDelta move_partition_to_chip(int partition, int chip);
  static EvalDelta replace_chip_package(int chip, chip::ChipPackage package);
  static EvalDelta set_clocking(bad::ArchitectureStyle style,
                                bad::ClockSpec clocks);
  static EvalDelta set_constraints(DesignConstraints constraints);
};

/// What one apply(EvalDelta) actually changed, from fingerprint diffs.
struct DeltaImpact {
  std::uint64_t revision = 0;  ///< Session revision after the apply.

  /// Full-context fingerprint unchanged: the edit re-stated the current
  /// state. Predictions stay valid and research() must not re-search.
  bool noop = false;

  /// Core fingerprint unchanged (but the full one moved): only the
  /// constraint budget / criteria differ, so every memoized
  /// IntegrationCore and BoundTables static remains valid.
  bool constraints_only = false;

  /// Per-partition flag: the partition's prediction inputs (members, chip
  /// package, clocks, or the pruning budget) changed, so its list — and
  /// its bound-table column — must be recomputed.
  std::vector<bool> dirty_partitions;

  std::uint64_t old_fingerprint = 0;
  std::uint64_t new_fingerprint = 0;

  std::size_t dirty_count() const {
    std::size_t n = 0;
    for (bool d : dirty_partitions) n += d ? 1 : 0;
    return n;
  }
};

/// Applies `delta` to the loose session state. Mutation semantics match
/// the long-standing Partitioning mutators / session setters exactly:
/// the same validation, the same ordering of members after a move. Throws
/// (via CHOP_REQUIRE) on invalid targets, like the mutators it wraps.
void apply_delta(const EvalDelta& delta, Partitioning& pt,
                 bad::ArchitectureStyle& style, bad::ClockSpec& clocks,
                 DesignConstraints& constraints);

}  // namespace chop::core
