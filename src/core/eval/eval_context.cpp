#include "core/eval/eval_context.hpp"

#include "core/eval/fingerprint.hpp"

namespace chop::core {

std::uint64_t fingerprint(const bad::DesignPrediction& p) {
  Fnv1a h;
  h.mix(static_cast<std::int64_t>(p.style));
  h.mix(p.module_set_label);
  for (const auto& [kind, name] : p.module_names) {
    h.mix(static_cast<std::int64_t>(kind));
    h.mix(name);
  }
  for (const auto& [kind, count] : p.fu_alloc) {
    h.mix(static_cast<std::int64_t>(kind));
    h.mix(static_cast<std::int64_t>(count));
  }
  h.mix(p.stages);
  h.mix(p.ii_dp);
  h.mix(p.ii_main);
  h.mix(p.latency_main);
  h.mix(p.register_bits);
  h.mix(p.mux_count_likely);
  h.mix(p.fu_area);
  h.mix(p.register_area);
  h.mix(p.mux_area);
  h.mix(p.controller_area);
  h.mix(p.wiring_area);
  h.mix(p.total_area);
  h.mix(p.clock_overhead_ns);
  h.mix(p.power_mw);
  for (const auto& [block, accesses] : p.memory_accesses) {
    h.mix(static_cast<std::int64_t>(block));
    h.mix(static_cast<std::int64_t>(accesses));
  }
  return h.digest();
}

void mix_transfer(Fnv1a& h, const DataTransfer& t) {
  h.mix(static_cast<std::int64_t>(t.kind));
  h.mix(t.name);
  h.mix(static_cast<std::int64_t>(t.src_partition));
  h.mix(static_cast<std::int64_t>(t.dst_partition));
  h.mix(static_cast<std::int64_t>(t.memory_block));
  h.mix(t.bits);
  for (int c : t.chips) h.mix(static_cast<std::int64_t>(c));
}

namespace {

struct ContextDigests {
  std::uint64_t core = 0;  ///< Constraint/criteria-independent prefix.
  std::uint64_t full = 0;  ///< The whole tuple.
};

/// Streams the tuple so the constraint budget and feasibility criteria are
/// mixed last: the running digest just before them is the core
/// fingerprint, and the final digest is the full one. Keeping both from a
/// single pass guarantees the core is a true prefix of the full key.
ContextDigests context_fingerprints(const Partitioning& pt,
                                    const std::vector<DataTransfer>& transfers,
                                    const bad::ClockSpec& clocks,
                                    const DesignConstraints& constraints,
                                    const FeasibilityCriteria& criteria,
                                    Pins extra_pins) {
  Fnv1a h;
  for (const chip::ChipInstance& c : pt.chips()) {
    h.mix(c.name);
    h.mix(c.package.width_mil);
    h.mix(c.package.height_mil);
    h.mix(static_cast<std::int64_t>(c.package.pin_count));
    h.mix(c.package.pad_delay);
    h.mix(c.package.io_pad_area);
    h.mix(static_cast<std::int64_t>(c.package.infrastructure_pins));
  }
  for (const Partition& p : pt.partitions()) {
    h.mix(p.name);
    h.mix(static_cast<std::int64_t>(p.chip));
    for (dfg::NodeId id : p.members) h.mix(static_cast<std::int64_t>(id));
  }
  for (const chip::MemoryModule& m : pt.memory().blocks) {
    h.mix(m.name);
    h.mix(m.word_bits);
    h.mix(static_cast<std::int64_t>(m.ports));
    h.mix(m.access_time);
    h.mix(m.area);
    h.mix(static_cast<std::int64_t>(m.control_pins));
  }
  for (int placement : pt.memory().chip_of_block) {
    h.mix(static_cast<std::int64_t>(placement));
  }
  h.mix(static_cast<std::uint64_t>(transfers.size()));
  for (const DataTransfer& t : transfers) mix_transfer(h, t);
  h.mix(clocks.main_clock);
  h.mix(static_cast<std::int64_t>(clocks.datapath_multiplier));
  h.mix(static_cast<std::int64_t>(clocks.transfer_multiplier));
  h.mix(static_cast<std::int64_t>(extra_pins));

  ContextDigests out;
  out.core = h.digest();

  h.mix(constraints.performance_ns);
  h.mix(constraints.delay_ns);
  h.mix(constraints.system_power_mw);
  h.mix(constraints.chip_power_mw);
  h.mix(criteria.area_prob);
  h.mix(criteria.performance_prob);
  h.mix(criteria.delay_prob);
  h.mix(criteria.power_prob);
  out.full = h.digest();
  return out;
}

}  // namespace

std::uint64_t partition_fingerprint(const Partitioning& pt, std::size_t p) {
  const Partition& part = pt.partitions()[p];
  Fnv1a h;
  h.mix(part.name);
  h.mix(static_cast<std::int64_t>(part.chip));
  const chip::ChipPackage& pkg =
      pt.chips()[static_cast<std::size_t>(part.chip)].package;
  h.mix(pkg.width_mil);
  h.mix(pkg.height_mil);
  h.mix(static_cast<std::int64_t>(pkg.pin_count));
  h.mix(pkg.pad_delay);
  h.mix(pkg.io_pad_area);
  h.mix(static_cast<std::int64_t>(pkg.infrastructure_pins));
  for (dfg::NodeId id : part.members) h.mix(static_cast<std::int64_t>(id));
  return h.digest();
}

EvalContext::EvalContext(const Partitioning& pt,
                         std::vector<DataTransfer> transfers,
                         const bad::ClockSpec& clocks,
                         const DesignConstraints& constraints,
                         const FeasibilityCriteria& criteria, Pins extra_pins)
    : pt_(&pt),
      transfers_(std::move(transfers)),
      clocks_(clocks),
      constraints_(constraints),
      criteria_(criteria),
      extra_pins_(extra_pins) {
  clocks_.validate();
  constraints_.validate();
  criteria_.validate();
  CHOP_REQUIRE(extra_pins_ >= 0, "extra pin reserve cannot be negative");
  const ContextDigests digests = context_fingerprints(
      pt, transfers_, clocks_, constraints_, criteria_, extra_pins_);
  fingerprint_ = digests.full;
  core_fingerprint_ = digests.core;
}

}  // namespace chop::core
