#include "core/eval/thread_pool.hpp"

#include <algorithm>

namespace chop::core {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace chop::core
