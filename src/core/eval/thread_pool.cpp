#include "core/eval/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"

namespace chop::core {

namespace {

std::atomic<std::uint64_t> g_chaos_seed{0};

/// xorshift64* — cheap, decent-quality scheduling jitter. Never seeded
/// with 0 (the algorithm's fixed point).
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  return s == 0 ? 0x853C49E6748FEA9BULL : s;
}

/// Tasks executed by a thread that does not own their home deque.
obs::Counter& stolen_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("search.units_stolen");
  return c;
}

/// Worker identity for submit() routing: set for the lifetime of a
/// worker thread, null on every other thread.
struct WorkerId {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerId t_worker;

}  // namespace

void ThreadPool::set_scheduler_chaos_for_testing(std::uint64_t seed) {
  g_chaos_seed.store(seed, std::memory_order_relaxed);
}

int ThreadPool::resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
    : chaos_seed_(g_chaos_seed.load(std::memory_order_relaxed)) {
  const int n = std::max(1, threads);
  deques_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::size_t target, std::packaged_task<void()> task) {
  WorkerDeque& dq = target < deques_.size() ? *deques_[target] : injector_;
  std::lock_guard<std::mutex> lock(dq.mu);
  dq.tasks.push_back(std::move(task));
}

void ThreadPool::announce(std::size_t count) {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    pending_ += static_cast<long long>(count);
  }
  if (count == 1) {
    cv_.notify_one();
  } else if (count > 1) {
    cv_.notify_all();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> future = task.get_future();
  const bool own_worker = t_worker.pool == this;
  enqueue(own_worker ? t_worker.index : deques_.size(), std::move(task));
  announce(1);
  return future;
}

std::vector<std::future<void>> ThreadPool::submit_batch(
    std::vector<std::function<void()>> jobs) {
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  if (jobs.empty()) return futures;
  const std::size_t n = deques_.size();
  const std::size_t base =
      next_scatter_.fetch_add(jobs.size(), std::memory_order_relaxed);
  std::uint64_t rng = mix_seed(chaos_seed_, base + 1);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::packaged_task<void()> task(std::move(jobs[i]));
    futures.push_back(task.get_future());
    // Round-robin scatter seeds every worker with local work; under
    // chaos the home deque is random so steals dominate.
    const std::size_t target =
        chaos_seed_ != 0 ? next_rand(rng) % n : (base + i) % n;
    enqueue(target, std::move(task));
  }
  announce(jobs.size());
  return futures;
}

bool ThreadPool::pop_own(std::size_t self, std::packaged_task<void()>& task) {
  WorkerDeque& dq = *deques_[self];
  std::lock_guard<std::mutex> lock(dq.mu);
  if (dq.tasks.empty()) return false;
  // Owner runs LIFO: the most recently pushed task is the cache-hottest.
  task = std::move(dq.tasks.back());
  dq.tasks.pop_back();
  return true;
}

bool ThreadPool::pop_injector(std::packaged_task<void()>& task) {
  std::lock_guard<std::mutex> lock(injector_.mu);
  if (injector_.tasks.empty()) return false;
  task = std::move(injector_.tasks.front());
  injector_.tasks.pop_front();
  return true;
}

bool ThreadPool::steal(std::size_t self, std::uint64_t& rng,
                       std::packaged_task<void()>& task) {
  const std::size_t n = deques_.size();
  if (n == 0) return false;
  // Random starting victim, then a full rotation: no fixed victim order
  // means no worker systematically starves another.
  const std::size_t start = next_rand(rng) % n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t victim = (start + i) % n;
    if (victim == self) continue;
    WorkerDeque& dq = *deques_[victim];
    std::lock_guard<std::mutex> lock(dq.mu);
    if (dq.tasks.empty()) continue;
    // Thieves take FIFO — the opposite end from the owner, so the oldest
    // (largest-remaining) work migrates and contention stays rare.
    task = std::move(dq.tasks.front());
    dq.tasks.pop_front();
    stolen_counter().add();
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one() {
  static thread_local std::uint64_t rng = mix_seed(
      g_chaos_seed.load(std::memory_order_relaxed),
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1);
  std::packaged_task<void()> task;
  const std::size_t self =
      t_worker.pool == this ? t_worker.index : deques_.size();
  bool got = self < deques_.size() && pop_own(self, task);
  if (!got) got = pop_injector(task) || steal(self, rng, task);
  if (!got) return false;
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    --pending_;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = WorkerId{this, self};
  std::uint64_t rng = mix_seed(chaos_seed_, self + 1);
  while (true) {
    std::packaged_task<void()> task;
    bool got = false;
    if (chaos_seed_ != 0) {
      // Chaos mode: per-acquire random source preference, so repeated
      // runs exercise genuinely different ownership/steal interleavings.
      switch (next_rand(rng) % 3) {
        case 0:
          got = pop_own(self, task) || pop_injector(task) ||
                steal(self, rng, task);
          break;
        case 1:
          got = pop_injector(task) || steal(self, rng, task) ||
                pop_own(self, task);
          break;
        default:
          got = steal(self, rng, task) || pop_own(self, task) ||
                pop_injector(task);
          break;
      }
    } else {
      got = pop_own(self, task) || pop_injector(task) ||
            steal(self, rng, task);
    }
    if (got) {
      {
        std::lock_guard<std::mutex> lock(cv_mu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(cv_mu_);
    cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ <= 0) return;
  }
}

}  // namespace chop::core
