#include "core/eval/bound_state.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "core/partitioning.hpp"
#include "core/transfer.hpp"
#include "library/component_library.hpp"
#include "obs/metrics.hpp"

namespace chop::core {

namespace {

std::size_t sat_mul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::size_t>::max() / b) {
    return std::numeric_limits<std::size_t>::max();
  }
  return a * b;
}

/// Componentwise minimum of two triplets. Valid as a StatVal because each
/// component's minimum preserves lo <= likely <= hi (min_p lo_p <= lo_q <=
/// likely_q for the q attaining min likely, and so on).
StatVal component_min(const StatVal& a, const StatVal& b) {
  return StatVal(std::min(a.lo(), b.lo()), std::min(a.likely(), b.likely()),
                 std::min(a.hi(), b.hi()));
}

std::atomic<double> g_bound_slack{kBoundSlack};

std::atomic<std::uint64_t> g_commit_shuffle_seed{0};

/// xorshift64* for the test-only commit shuffle.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

double bound_slack() { return g_bound_slack.load(std::memory_order_relaxed); }

void set_bound_slack_for_testing(double slack) {
  g_bound_slack.store(slack, std::memory_order_relaxed);
}

void SharedFrontier::set_commit_shuffle_for_testing(std::uint64_t seed) {
  g_commit_shuffle_seed.store(seed, std::memory_order_relaxed);
}

void SharedFrontier::publish(Cycles ii, Cycles delay) {
  std::lock_guard<std::mutex> lock(mu_);
  staged_.push_back({ii, delay});
}

std::size_t SharedFrontier::commit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (staged_.empty()) return 0;
  std::uint64_t shuffle = g_commit_shuffle_seed.load(std::memory_order_relaxed);
  if (shuffle != 0) {
    // Adversarial publish-order check: fold in a seeded-shuffled order.
    // The staircase absorbs a *set* of points, so this must not change
    // the committed frontier — the determinism tests prove it doesn't.
    for (std::size_t i = staged_.size(); i > 1; --i) {
      std::swap(staged_[i - 1], staged_[next_rand(shuffle) % i]);
    }
  }
  std::size_t tightened = 0;
  for (const auto& p : staged_) {
    if (committed_.insert(p.first, p.second)) ++tightened;
  }
  staged_.clear();
  if (tightened != 0) epoch_.fetch_add(1, std::memory_order_release);
  return tightened;
}

bool SharedFrontier::snapshot(std::uint64_t& seen_epoch,
                              ParetoFrontier& dest) const {
  const std::uint64_t now = epoch_.load(std::memory_order_acquire);
  if (now == seen_epoch) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : committed_.points()) dest.insert(p.first, p.second);
  seen_epoch = epoch_.load(std::memory_order_relaxed);
  return true;
}

bool PrefixState::push(int chip, const bad::DesignPrediction& cand) {
  if (cand.style == bad::DesignStyle::Pipelined && pipelined_rate_ != 0 &&
      cand.ii_main != pipelined_rate_) {
    // Every completion fails rates_compatible() — an exact prune, so the
    // caller may cut the subtree without this candidate being committed.
    return false;
  }
  const auto c = static_cast<std::size_t>(chip);
  frames_.push_back({chip, area_[c], power_[c], max_ii_, max_latency_,
                     max_overhead_, pipelined_rate_});
  area_[c] += cand.total_area;
  power_[c] += cand.power_mw;
  max_ii_ = std::max(max_ii_, cand.ii_main);
  max_latency_ = std::max(max_latency_, cand.latency_main);
  max_overhead_ = std::max(max_overhead_, cand.clock_overhead_ns);
  if (cand.style == bad::DesignStyle::Pipelined) {
    pipelined_rate_ = cand.ii_main;
  }
  return true;
}

void PrefixState::pop() {
  const Frame& f = frames_.back();
  const auto c = static_cast<std::size_t>(f.chip);
  area_[c] = f.prev_area;
  power_[c] = f.prev_power;
  max_ii_ = f.prev_max_ii;
  max_latency_ = f.prev_max_latency;
  max_overhead_ = f.prev_max_overhead;
  pipelined_rate_ = f.prev_pipelined_rate;
  frames_.pop_back();
}

void BoundTablesCache::prepare(std::uint64_t statics_key,
                               std::vector<std::uint64_t> column_keys) {
  if (columns_.size() != column_keys.size()) {
    // Partition count changed: every stored column is for a different
    // problem shape.
    columns_.assign(column_keys.size(), Column{});
  }
  statics_key_ = statics_key;
  column_keys_ = std::move(column_keys);
  armed_ = true;
}

BoundTables::BoundTables(
    const EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    BoundTablesCache* cache)
    : ctx_(&ctx) {
  const Partitioning& pt = ctx.partitioning();
  const auto& chips = pt.chips();
  const auto& partitions = pt.partitions();
  const std::size_t nchips = chips.size();
  const std::size_t nparts = partitions.size();

  static obs::Counter& cols_reused_counter =
      obs::MetricsRegistry::global().counter("eval.delta_bound_cols_reused");
  static obs::Counter& cols_rebuilt_counter =
      obs::MetricsRegistry::global().counter("eval.delta_bound_cols_rebuilt");

  if (cache != nullptr &&
      (!cache->armed_ || cache->column_keys_.size() != nparts)) {
    cache = nullptr;  // unarmed or mis-shaped cache: behave as cacheless
  }

  chip_of_.resize(nparts);
  for (std::size_t p = 0; p < nparts; ++p) chip_of_[p] = partitions[p].chip;

  chip_usable_.resize(nchips);
  for (std::size_t c = 0; c < nchips; ++c) {
    chip_usable_[c] = chips[c].package.usable_area();
  }

  if (cache != nullptr && cache->statics_.valid &&
      cache->statics_.key == cache->statics_key_ &&
      cache->statics_.chip_base_area.size() == nchips) {
    // Statics reuse: everything below is a pure function of the core
    // fingerprint the statics key digests.
    chip_base_area_ = cache->statics_.chip_base_area;
    required_ii_ = cache->statics_.required_ii;
    transfer_charge_ = cache->statics_.transfer_charge;
    space_infeasible_ = cache->statics_.pin_infeasible;
    ++cache->stats_.statics_reused;
  } else {
    // Fixed on-chip memory macro area, exactly as integrate() charges it.
    chip_base_area_.assign(nchips, StatVal{});
    for (std::size_t b = 0; b < pt.memory().blocks.size(); ++b) {
      const int placement = pt.memory().placement(static_cast<int>(b));
      if (placement != chip::kOffTheShelfChip) {
        chip_base_area_[static_cast<std::size_t>(placement)] +=
            StatVal(pt.memory().blocks[b].area);
      }
    }

    // Selection-independent integration facts: per-chip data-pin budgets,
    // crossing-transfer durations (every term in integrate()'s transfer
    // plan is fixed by the partitioning + clocks), and the pin-mux clock
    // charge.
    const std::vector<Pins> reserved =
        reserved_control_pins(pt, ctx.transfers());
    std::vector<Pins> data_pins(nchips, 0);
    for (std::size_t c = 0; c < nchips; ++c) {
      data_pins[c] =
          chips[c].package.signal_pins() - reserved[c] - ctx.extra_pins();
      if (data_pins[c] <= 0) space_infeasible_ = true;
    }

    std::vector<int> sharing(nchips, 0);
    if (!space_infeasible_) {
      for (const DataTransfer& t : ctx.transfers()) {
        for (int c : t.chips) ++sharing[static_cast<std::size_t>(c)];
        if (!t.crosses_pins()) continue;
        Pins bw = std::numeric_limits<Pins>::max();
        for (int c : t.chips) {
          bw = std::min(bw, data_pins[static_cast<std::size_t>(c)]);
        }
        const Pins pins =
            static_cast<Pins>(std::min<Bits>(bw, std::max<Bits>(1, t.bits)));
        const Cycles transfer_clocks = static_cast<Cycles>(
            (t.bits + pins - 1) / std::max<Pins>(1, pins));
        Ns pad_path = 0.0;
        for (int c : t.chips) {
          pad_path += chips[static_cast<std::size_t>(c)].package.pad_delay;
        }
        const Cycles pad_cycles = static_cast<Cycles>(
            std::ceil(pad_path / ctx.clocks().transfer_period()));
        const Cycles cycles = std::max<Cycles>(
            1, transfer_clocks * ctx.clocks().transfer_multiplier + pad_cycles);
        required_ii_ = std::max(required_ii_, cycles);
      }
      const lib::BitCellSpec mux{18.0, 4.0};
      for (std::size_t c = 0; c < nchips; ++c) {
        if (sharing[c] <= 1) continue;
        const int levels =
            static_cast<int>(std::ceil(std::log2(sharing[c])));
        transfer_charge_ = std::max(
            transfer_charge_,
            static_cast<double>(levels) * mux.delay /
                static_cast<double>(ctx.clocks().transfer_multiplier));
      }
    }
    if (cache != nullptr) {
      cache->statics_.valid = true;
      cache->statics_.key = cache->statics_key_;
      cache->statics_.pin_infeasible = space_infeasible_;
      cache->statics_.required_ii = required_ii_;
      cache->statics_.transfer_charge = transfer_charge_;
      cache->statics_.chip_base_area = chip_base_area_;
      ++cache->stats_.statics_rebuilt;
    }
  }

  // Per-partition candidate minima, folded into suffix tables: entry m
  // aggregates partitions [0, m), i.e. the still-open partitions when the
  // DFS has committed partitions nparts-1 .. m.
  rem_min_area_.assign(nparts + 1, std::vector<StatVal>(nchips));
  rem_min_power_.assign(nparts + 1, std::vector<StatVal>(nchips));
  rem_min_ii_max_.assign(nparts + 1, 0);
  rem_max_ii_.assign(nparts + 1, 0);
  rem_min_latency_max_.assign(nparts + 1, 0);
  rem_min_overhead_max_.assign(nparts + 1, 0.0);
  rem_leaves_.assign(nparts + 1, 1);
  for (std::size_t m = 1; m <= nparts; ++m) {
    const std::size_t p = m - 1;
    const auto& cands = lists[p];

    // Column reuse: the cached minima are a pure function of the list
    // content the column key digests; the size cross-check is a belt-and-
    // braces guard against key misuse.
    BoundTablesCache::Column* col =
        cache != nullptr ? &cache->columns_[p] : nullptr;
    const bool col_hit = col != nullptr && col->valid &&
                         col->key == cache->column_keys_[p] &&
                         col->list_size == cands.size();
    if (col_hit) {
      ++cache->stats_.cols_reused;
      cols_reused_counter.add();
    } else {
      if (cache != nullptr) ++cache->stats_.cols_rebuilt;
      cols_rebuilt_counter.add();
    }

    if (col_hit ? col->empty : cands.empty()) {
      space_infeasible_ = true;
      rem_leaves_[m] = 0;
      if (col != nullptr && !col_hit) {
        *col = BoundTablesCache::Column{};
        col->valid = true;
        col->key = cache->column_keys_[p];
        col->empty = true;
        col->list_size = 0;
      }
      continue;
    }

    StatVal min_area;
    StatVal min_power;
    Cycles min_ii = 0;
    Cycles max_ii = 0;
    Cycles min_latency = 0;
    Ns min_overhead = 0.0;
    if (col_hit) {
      min_area = col->min_area;
      min_power = col->min_power;
      min_ii = col->min_ii;
      max_ii = col->max_ii;
      min_latency = col->min_latency;
      min_overhead = col->min_overhead;
    } else {
      min_area = cands.front().total_area;
      min_power = cands.front().power_mw;
      min_ii = cands.front().ii_main;
      max_ii = cands.front().ii_main;
      min_latency = cands.front().latency_main;
      min_overhead = cands.front().clock_overhead_ns;
      for (std::size_t i = 1; i < cands.size(); ++i) {
        const bad::DesignPrediction& cand = cands[i];
        min_area = component_min(min_area, cand.total_area);
        min_power = component_min(min_power, cand.power_mw);
        min_ii = std::min(min_ii, cand.ii_main);
        max_ii = std::max(max_ii, cand.ii_main);
        min_latency = std::min(min_latency, cand.latency_main);
        min_overhead = std::min(min_overhead, cand.clock_overhead_ns);
      }
      if (col != nullptr) {
        col->valid = true;
        col->key = cache->column_keys_[p];
        col->empty = false;
        col->list_size = cands.size();
        col->min_area = min_area;
        col->min_power = min_power;
        col->min_ii = min_ii;
        col->max_ii = max_ii;
        col->min_latency = min_latency;
        col->min_overhead = min_overhead;
      }
    }

    rem_min_area_[m] = rem_min_area_[m - 1];
    rem_min_area_[m][static_cast<std::size_t>(chip_of_[p])] += min_area;
    rem_min_power_[m] = rem_min_power_[m - 1];
    rem_min_power_[m][static_cast<std::size_t>(chip_of_[p])] += min_power;
    rem_min_ii_max_[m] = std::max(rem_min_ii_max_[m - 1], min_ii);
    rem_max_ii_[m] = std::max(rem_max_ii_[m - 1], max_ii);
    rem_min_latency_max_[m] = std::max(rem_min_latency_max_[m - 1], min_latency);
    rem_min_overhead_max_[m] = std::max(rem_min_overhead_max_[m - 1],
                                        min_overhead);
    rem_leaves_[m] = sat_mul(rem_leaves_[m - 1], cands.size());
  }
}

bool BoundTables::prune(const PrefixState& prefix, std::size_t remaining,
                        const ParetoFrontier& incumbent) const {
  const std::size_t m = remaining;

  // No achievable system II can accommodate the slowest crossing transfer:
  // every leaf below fails integrate()'s data-clash rule.
  const Cycles ub_ii = std::max(prefix.max_ii(), rem_max_ii_[m]);
  if (ub_ii < required_ii_) return true;

  const DesignConstraints& constraints = ctx_->constraints();
  const FeasibilityCriteria& criteria = ctx_->criteria();

  // Clock / performance / delay bounds combine with exact max and monotone
  // FP operations (see header) — no slack needed.
  const Cycles lb_ii = std::max<Cycles>(
      1, std::max(prefix.max_ii(), rem_min_ii_max_[m]));
  const Ns charge =
      std::max(prefix.max_overhead(), rem_min_overhead_max_[m]) +
      transfer_charge_;
  const Ns base = ctx_->clocks().main_clock;
  const StatVal clock_lb(base + 0.9 * charge, base + charge,
                         base + 1.15 * charge);
  if (!criteria.performance_ok(clock_lb * static_cast<double>(lb_ii),
                               constraints.performance_ns)) {
    return true;
  }
  // The urgency schedule's makespan is at least the longest task: any
  // selected partition latency, and any crossing transfer's fixed duration
  // (which is exactly required_ii_ at its max).
  const Cycles lb_delay = std::max(
      {prefix.max_latency(), rem_min_latency_max_[m], required_ii_});
  if (!criteria.delay_ok(clock_lb * static_cast<double>(lb_delay),
                         constraints.delay_ns)) {
    return true;
  }

  // Additive per-chip bounds accumulate in a different order than
  // integrate(); shave by kBoundSlack so rounding drift can never cut a
  // feasible leaf.
  const double slack = bound_slack();
  const std::size_t nchips = chip_usable_.size();
  for (std::size_t c = 0; c < nchips; ++c) {
    const StatVal area_lb =
        (chip_base_area_[c] + prefix.area(c) + rem_min_area_[m][c]) * slack;
    if (!criteria.area_ok(area_lb, chip_usable_[c])) return true;
  }
  if (constraints.power_constrained()) {
    StatVal system_lb;
    for (std::size_t c = 0; c < nchips; ++c) {
      const StatVal chip_lb = prefix.power(c) + rem_min_power_[m][c];
      system_lb += chip_lb;
      if (!criteria.power_ok(chip_lb * slack,
                             constraints.chip_power_mw)) {
        return true;
      }
    }
    if (!criteria.power_ok(system_lb * slack,
                           constraints.system_power_mw)) {
      return true;
    }
  }

  // Incumbent dominance: a feasible design componentwise <(ii, delay) than
  // the subtree's lower bounds guarantees non-inferior filtering drops
  // every leaf below. The caller passes an empty frontier when inferior
  // designs are being kept.
  return incumbent.dominates_strictly(lb_ii, lb_delay);
}

}  // namespace chop::core
