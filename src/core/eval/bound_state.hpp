// Branch-and-bound support for the enumeration search: admissible
// per-suffix lower bounds plus an incremental prefix accumulator.
//
// The enumeration heuristic walks the mixed-radix space of per-partition
// candidate selections. Committing a candidate for a partition fixes a
// *prefix* of the final selection; everything the integration predicts is
// then bounded from below by
//
//   prefix contribution (exact, accumulated incrementally)
//     + suffix lower bound (precomputed per remaining-partition count)
//
// for every additive/max-combining quantity the hard constraints check:
// per-chip area and power (sums of per-partition triplets plus always-
// nonnegative transfer-module contributions), the system initiation
// interval (max of per-partition IIs), the system delay (the urgency
// schedule's makespan is at least the longest selected latency), and the
// adjusted clock (main clock + max per-partition overhead + a selection-
// independent transfer charge). If the lower bound already violates a
// hard constraint — or is strictly dominated by the incumbent Pareto
// front — no completion of the prefix can reach the final design set, so
// the whole subtree is cut without being visited.
//
// Admissibility notes:
//  * Triplet (StatVal) bounds combine componentwise minima; triangular
//    CDFs are stochastically monotone in each component, so a bound that
//    fails `satisfies(limit, prob)` guarantees every dominating actual
//    value fails it too.
//  * Multi-term floating-point sums are accumulated in a different order
//    than integrate()'s canonical per-leaf order; the bound is therefore
//    relaxed by `kBoundSlack` (a 1e-9 relative shave, orders of magnitude
//    beyond any accumulation-order rounding drift) before comparing, so a
//    feasible leaf can never be cut by rounding noise.
//  * Integer quantities (cycles) combine with exact max — no slack.
//
// Everything here is immutable after construction (BoundTables) or
// confined to one enumeration worker (PrefixState), so the parallel
// search shares one BoundTables across threads freely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "bad/prediction.hpp"
#include "core/eval/eval_context.hpp"
#include "core/recorder.hpp"

namespace chop::core {

/// Relative shave applied to floating-point lower bounds before the
/// constraint comparison, covering accumulation-order rounding drift.
inline constexpr double kBoundSlack = 1.0 - 1e-9;

/// The slack factor prune() actually applies. Defaults to kBoundSlack;
/// overridable for fault-injection testing (chop_fuzz --inject-bound-bug
/// sets an inadmissible factor > 1 to prove the differential oracles catch
/// a bound that cuts feasible leaves). Never override in production code.
double bound_slack();
void set_bound_slack_for_testing(double slack);

/// Cross-unit incumbent broadcast: a global Pareto staircase every
/// enumeration unit publishes its feasible finds into and snapshots its
/// pruning frontier from, so a dominance cut proved by one unit benefits
/// every unit that starts later.
///
/// Determinism contract (the reason for the epoch/commit structure):
/// publish() only *stages* a point — staged points become visible
/// exclusively through commit(), which the search driver calls at
/// deterministic wave barriers (after every unit of a wave has finished,
/// before any unit of the next wave starts). A unit therefore always
/// snapshots exactly the staircase committed by the waves before its
/// own, regardless of thread count, steal order, or publish order —
/// and because merging a *set* of points into a Pareto staircase is
/// order-independent, the committed staircase itself is identical under
/// any adversarial publish interleaving within a wave.
///
/// Soundness: every published point is a fully evaluated feasible design
/// that the in-order merge will consume, and BoundTables::prune() cuts
/// only subtrees *strictly* dominated by the frontier it is given — such
/// subtrees can never contribute a non-inferior design. Tightening the
/// frontier with other units' finds therefore never changes the merged
/// design set; it only shrinks `trials`.
class SharedFrontier {
 public:
  /// Stages one feasible (ii, delay) find. Thread-safe; invisible to
  /// snapshot() until the next commit().
  void publish(Cycles ii, Cycles delay);

  /// Folds all staged finds into the committed staircase and bumps the
  /// epoch when anything tightened. Must only be called from the search
  /// driver at a wave barrier. Returns the number of staged points that
  /// tightened the staircase.
  std::size_t commit();

  /// Current committed epoch: 0 until a commit tightens something.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Folds the committed staircase into `dest` when `seen_epoch` is
  /// stale, updating `seen_epoch`; returns true when points were pulled.
  /// The cheap path (epoch unchanged) is one atomic load.
  bool snapshot(std::uint64_t& seen_epoch, ParetoFrontier& dest) const;

  /// Test-only publish-order adversary: a nonzero seed makes commit()
  /// fold staged points in a seeded-shuffled order, proving the
  /// committed staircase is independent of publish interleaving.
  static void set_commit_shuffle_for_testing(std::uint64_t seed);

 private:
  mutable std::mutex mu_;
  ParetoFrontier committed_;
  std::vector<std::pair<Cycles, Cycles>> staged_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// Incremental state of one enumeration prefix: exact aggregates of the
/// committed candidates, maintained push/pop in O(1) per step (each push
/// touches exactly one chip). Pops restore the previous values verbatim
/// (no subtraction), so the accumulators never drift.
class PrefixState {
 public:
  explicit PrefixState(std::size_t chip_count)
      : area_(chip_count), power_(chip_count) {}

  /// Commits `cand` for a partition living on `chip`. Returns false —
  /// committing nothing — when the candidate is pipelined at a rate that
  /// conflicts with an already-committed pipelined candidate: every
  /// completion of such a prefix fails rates_compatible(), so the caller
  /// can cut the subtree on the spot.
  bool push(int chip, const bad::DesignPrediction& cand);

  /// Reverts the most recent successful push.
  void pop();

  std::size_t depth() const { return frames_.size(); }
  const StatVal& area(std::size_t chip) const { return area_[chip]; }
  const StatVal& power(std::size_t chip) const { return power_[chip]; }
  Cycles max_ii() const { return max_ii_; }
  Cycles max_latency() const { return max_latency_; }
  Ns max_overhead() const { return max_overhead_; }

 private:
  struct Frame {
    int chip;
    StatVal prev_area;
    StatVal prev_power;
    Cycles prev_max_ii;
    Cycles prev_max_latency;
    Ns prev_max_overhead;
    Cycles prev_pipelined_rate;
  };

  std::vector<StatVal> area_;   ///< Committed partition area per chip.
  std::vector<StatVal> power_;  ///< Committed partition power per chip.
  Cycles max_ii_ = 0;
  Cycles max_latency_ = 0;
  Ns max_overhead_ = 0.0;
  Cycles pipelined_rate_ = 0;  ///< Common pipelined II (0: none committed).
  std::vector<Frame> frames_;
};

/// Session-owned memo for BoundTables construction across §2.7 revisions.
///
/// Rebuilding bound tables costs one O(list size) minima scan per
/// partition plus a statics pass over the transfers. After an EvalDelta
/// most of that is unchanged: a constraint edit touches no list the raw
/// family uses and no static, a single-partition edit dirties one column.
/// The cache stores the per-partition minima ("columns") and the
/// selection-independent statics, each under a caller-provided content
/// key, so the next BoundTables construction reuses every column whose
/// key still matches and rescans only the dirty ones.
///
/// Keying contract: the owner (ChopSession) calls prepare() immediately
/// before a search with one key per partition — a digest of everything
/// the partition's candidate list was computed from (prediction inputs,
/// pruning budget, list family) — plus a statics key (the context's core
/// fingerprint). Equal keys MUST imply identical list content; the
/// session derives them from the same input fingerprints that decide
/// prediction reuse, so this holds by construction. An unarmed cache (no
/// prepare() since construction) is ignored entirely — behavior is then
/// byte-identical to passing no cache.
///
/// Not thread-safe: confined to one session's research path, and
/// BoundTables construction happens before search workers fan out.
class BoundTablesCache {
 public:
  struct Stats {
    std::uint64_t cols_reused = 0;
    std::uint64_t cols_rebuilt = 0;
    std::uint64_t statics_reused = 0;
    std::uint64_t statics_rebuilt = 0;
  };

  /// Arms the cache for the next BoundTables construction: `column_keys`
  /// has one content key per partition (in partition order) and
  /// `statics_key` covers the selection-independent facts.
  void prepare(std::uint64_t statics_key,
               std::vector<std::uint64_t> column_keys);

  Stats stats() const { return stats_; }

 private:
  friend class BoundTables;

  struct Column {
    bool valid = false;
    std::uint64_t key = 0;
    bool empty = false;          ///< The list had no candidates.
    std::size_t list_size = 0;   ///< Sanity cross-check against the key.
    StatVal min_area;
    StatVal min_power;
    Cycles min_ii = 0;
    Cycles max_ii = 0;
    Cycles min_latency = 0;
    Ns min_overhead = 0.0;
  };
  struct Statics {
    bool valid = false;
    std::uint64_t key = 0;
    bool pin_infeasible = false;
    Cycles required_ii = 0;
    Ns transfer_charge = 0.0;
    std::vector<StatVal> chip_base_area;
  };

  bool armed_ = false;
  std::uint64_t statics_key_ = 0;
  std::vector<std::uint64_t> column_keys_;
  Statics statics_;
  std::vector<Column> columns_;
  Stats stats_;
};

/// Precomputed admissible bounds for one (context, candidate lists) pair:
/// the selection-independent integration facts (data-pin budgets, the
/// minimum II any crossing transfer demands, the transfer clock charge,
/// fixed memory area per chip) and, for every count `m` of remaining
/// partitions, componentwise lower bounds over partitions [0, m).
///
/// The enumeration commits partitions from the highest index downward
/// (the highest index is the slowest odometer digit), so "the first m
/// partitions are still open" is exactly the DFS frontier.
class BoundTables {
 public:
  /// `cache`, when non-null and armed (see BoundTablesCache), supplies
  /// memoized statics and per-partition minima and absorbs whatever this
  /// construction recomputes. A null or unarmed cache changes nothing.
  BoundTables(const EvalContext& ctx,
              const std::vector<std::vector<bad::DesignPrediction>>& lists,
              BoundTablesCache* cache = nullptr);

  /// True when no selection can integrate at all (e.g. a chip with no
  /// data pins left): the entire space may be skipped.
  bool space_infeasible() const { return space_infeasible_; }

  /// True when no completion of `prefix` (with partitions [0, remaining)
  /// still open) can be feasible *and* survive non-inferior filtering
  /// against `incumbent`. Admissible: never true for a prefix that
  /// completes to a design in the final set.
  bool prune(const PrefixState& prefix, std::size_t remaining,
             const ParetoFrontier& incumbent) const;

  /// Number of leaves in a subtree with `remaining` open partitions,
  /// saturated at SIZE_MAX.
  std::size_t leaves_below(std::size_t remaining) const {
    return rem_leaves_[remaining];
  }

  /// Chip index of partition `p` (cached from the partitioning).
  int chip_of(std::size_t p) const { return chip_of_[p]; }

 private:
  const EvalContext* ctx_;
  bool space_infeasible_ = false;
  Cycles required_ii_ = 0;     ///< Largest crossing-transfer duration.
  Ns transfer_charge_ = 0.0;   ///< Selection-independent clock charge.
  std::vector<int> chip_of_;
  std::vector<StatVal> chip_base_area_;  ///< On-chip memory blocks.
  std::vector<AreaMil2> chip_usable_;

  // Indexed by remaining-partition count m: aggregates over [0, m).
  std::vector<std::vector<StatVal>> rem_min_area_;   ///< [m][chip].
  std::vector<std::vector<StatVal>> rem_min_power_;  ///< [m][chip].
  std::vector<Cycles> rem_min_ii_max_;   ///< max over p<m of min candidate II.
  std::vector<Cycles> rem_max_ii_;       ///< max over p<m of max candidate II.
  std::vector<Cycles> rem_min_latency_max_;
  std::vector<Ns> rem_min_overhead_max_;
  std::vector<std::size_t> rem_leaves_;  ///< Product of list sizes, saturated.
};

}  // namespace chop::core
