// Content fingerprinting for the evaluation engine: a streaming FNV-1a
// hasher plus fingerprint() overloads for the model objects that feed an
// integration — the EvalContext tuple and the per-partition predictions.
//
// The CandidateEvaluator keys its memo on *content*, not object identity:
// two selections whose predictions carry identical characteristics yield
// identical IntegrationResults (integrate() is a pure function of its
// inputs), so a content key is reusable across sessions, restarts and
// clock sweeps without any invalidation protocol. A 64-bit digest per
// partition keeps the key compact; the cache-correctness tests assert the
// memoized results match fresh evaluations.
#pragma once

#include <cstdint>
#include <string_view>

#include "bad/prediction.hpp"
#include "bad/style.hpp"
#include "core/constraints.hpp"
#include "core/transfer.hpp"

namespace chop::core {

/// Streaming 64-bit FNV-1a. Feed plain-old-data via mix(); strings via
/// mix_bytes(). Deterministic across runs and platforms of equal widths.
class Fnv1a {
 public:
  void mix_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }

  void mix(std::uint64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(std::int32_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(double v) { mix_bytes(&v, sizeof(v)); }
  void mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    mix_bytes(s.data(), s.size());
  }
  void mix(const StatVal& v) {
    mix(v.lo());
    mix(v.likely());
    mix(v.hi());
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Digest of every field of `p` that integrate() reads (directly or via
/// the urgency schedule): style, timing, areas, clock charge, power and
/// memory-access profile.
std::uint64_t fingerprint(const bad::DesignPrediction& p);

/// Digest of one data-transfer task.
void mix_transfer(Fnv1a& h, const DataTransfer& t);

}  // namespace chop::core
