#include "core/eval/eval_delta.hpp"

#include <utility>

namespace chop::core {

const char* EvalDelta::kind_name() const {
  switch (kind) {
    case Kind::MoveOperation: return "move_operation";
    case Kind::MovePartitionToChip: return "move_partition_to_chip";
    case Kind::ReplaceChipPackage: return "replace_chip_package";
    case Kind::SetClocking: return "set_clocking";
    case Kind::SetConstraints: return "set_constraints";
  }
  return "unknown";
}

EvalDelta EvalDelta::move_operation(dfg::NodeId op, int to_partition) {
  EvalDelta d;
  d.kind = Kind::MoveOperation;
  d.op = op;
  d.to_partition = to_partition;
  return d;
}

EvalDelta EvalDelta::move_partition_to_chip(int partition, int chip) {
  EvalDelta d;
  d.kind = Kind::MovePartitionToChip;
  d.partition = partition;
  d.chip = chip;
  return d;
}

EvalDelta EvalDelta::replace_chip_package(int chip, chip::ChipPackage package) {
  EvalDelta d;
  d.kind = Kind::ReplaceChipPackage;
  d.chip = chip;
  d.package = std::move(package);
  return d;
}

EvalDelta EvalDelta::set_clocking(bad::ArchitectureStyle style,
                                  bad::ClockSpec clocks) {
  EvalDelta d;
  d.kind = Kind::SetClocking;
  d.style = style;
  d.clocks = clocks;
  return d;
}

EvalDelta EvalDelta::set_constraints(DesignConstraints constraints) {
  EvalDelta d;
  d.kind = Kind::SetConstraints;
  d.constraints = constraints;
  return d;
}

void apply_delta(const EvalDelta& delta, Partitioning& pt,
                 bad::ArchitectureStyle& style, bad::ClockSpec& clocks,
                 DesignConstraints& constraints) {
  switch (delta.kind) {
    case EvalDelta::Kind::MoveOperation:
      pt.move_operation(delta.op, delta.to_partition);
      break;
    case EvalDelta::Kind::MovePartitionToChip:
      pt.move_partition_to_chip(delta.partition, delta.chip);
      break;
    case EvalDelta::Kind::ReplaceChipPackage:
      pt.replace_chip_package(delta.chip, delta.package);
      break;
    case EvalDelta::Kind::SetClocking:
      delta.clocks.validate();
      style = delta.style;
      clocks = delta.clocks;
      break;
    case EvalDelta::Kind::SetConstraints:
      delta.constraints.validate();
      constraints = delta.constraints;
      break;
  }
}

}  // namespace chop::core
