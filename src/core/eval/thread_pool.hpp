// Work-stealing thread pool for the evaluation engine. The parallel
// enumeration submits one job per prefix unit; each worker owns a deque
// it pushes and pops LIFO, idle workers steal FIFO from a randomly
// rotated victim, and externally submitted jobs land in a shared
// injector queue (batches are scattered across the worker deques so
// there is something to steal from the first instant). The pool imposes
// no ordering — determinism lives entirely in the caller's merge step —
// so steal order is free to be random, and a test-only chaos seed makes
// it adversarially random to prove exactly that.
//
// Blocked callers can help: try_run_one() runs one pending job on the
// calling thread, which lets a search joining a wave of units drain the
// pool instead of sleeping behind it — and lets serve share one pool
// across concurrent jobs without a long search monopolizing it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace chop::core {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queues: jobs already submitted run to completion, then
  /// the workers join.
  ~ThreadPool();

  /// Enqueues `job`; the future becomes ready when it finishes (or rethrows
  /// what it threw). Called from a pool worker, the job goes on that
  /// worker's own deque (LIFO); otherwise it goes to the injector queue.
  std::future<void> submit(std::function<void()> job);

  /// Enqueues a batch, scattering the jobs round-robin across the worker
  /// deques so every worker starts with local work and stealing only
  /// balances the tail. Futures are in job order.
  std::vector<std::future<void>> submit_batch(
      std::vector<std::function<void()>> jobs);

  /// Runs one pending job on the calling thread (injector first, then a
  /// steal). Returns false when nothing was runnable — never blocks.
  bool try_run_one();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Maps a thread-count request to an actual worker count: values >= 1
  /// pass through, 0 (or negative) means "one worker per hardware
  /// thread" — the contract behind chop_cli/chopd `--threads=0`.
  static int resolve_threads(int requested);

  /// Test-only scheduler chaos: a nonzero seed perturbs victim rotation
  /// and queue preference per worker so repeated runs execute under
  /// different interleavings. 0 (the default) restores the tuned order.
  /// Applies to pools constructed after the call.
  static void set_scheduler_chaos_for_testing(std::uint64_t seed);

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool pop_own(std::size_t self, std::packaged_task<void()>& task);
  bool pop_injector(std::packaged_task<void()>& task);
  /// Steals FIFO from some other worker's deque; `self` == size() for
  /// external helpers (no deque of their own to skip).
  bool steal(std::size_t self, std::uint64_t& rng,
             std::packaged_task<void()>& task);
  void enqueue(std::size_t target, std::packaged_task<void()> task);
  void announce(std::size_t count);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  WorkerDeque injector_;
  std::uint64_t chaos_seed_ = 0;  ///< Snapshot at construction.
  std::atomic<std::size_t> next_scatter_{0};  ///< Batch scatter cursor.

  std::mutex cv_mu_;
  std::condition_variable cv_;
  /// Queued, not yet popped (under cv_mu_). Signed: a pop can observe a
  /// task between its enqueue and its announce, so the count may dip
  /// transiently negative.
  long long pending_ = 0;
  bool stop_ = false;
};

}  // namespace chop::core
