// A small fixed-size thread pool for the evaluation engine. The parallel
// enumeration submits one job per odometer chunk and joins them in chunk
// order through the returned futures — the pool itself imposes no
// ordering, so determinism lives entirely in the caller's merge step.
//
// Deliberately minimal: no work stealing, no resizing, no task priorities.
// Search chunks are coarse (hundreds-plus integrations each), so a mutex-
// guarded queue is nowhere near the bottleneck.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace chop::core {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue: jobs already submitted run to completion, then the
  /// workers join.
  ~ThreadPool();

  /// Enqueues `job`; the future becomes ready when it finishes (or rethrows
  /// what it threw).
  std::future<void> submit(std::function<void()> job);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace chop::core
