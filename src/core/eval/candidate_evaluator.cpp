#include "core/eval/candidate_evaluator.hpp"

#include "core/eval/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profile.hpp"

namespace chop::core {

namespace {

/// lock_guard that attributes time blocked on the mutex to kCacheWait
/// when profiling is on (uncontended acquisition rounds to ~0ns).
class TimedLockGuard {
 public:
  TimedLockGuard(std::mutex& mu, obs::PhaseProfile* profile) : mu_(mu) {
    if (profile != nullptr) {
      obs::ScopedPhase wait(profile, obs::SearchPhase::kCacheWait);
      mu_.lock();
    } else {
      mu_.lock();
    }
  }
  TimedLockGuard(const TimedLockGuard&) = delete;
  TimedLockGuard& operator=(const TimedLockGuard&) = delete;
  ~TimedLockGuard() { mu_.unlock(); }

 private:
  std::mutex& mu_;
};

}  // namespace

std::size_t CandidateEvaluator::KeyHash::operator()(const Key& k) const {
  Fnv1a h;
  h.mix(k.context_fp);
  h.mix(k.ii);
  for (std::uint64_t fp : k.selection_fp) h.mix(fp);
  return static_cast<std::size_t>(h.digest());
}

CandidateEvaluator::CandidateEvaluator(std::size_t max_entries)
    : max_entries_(max_entries),
      shard_cap_((max_entries_ + kShards - 1) / kShards),
      hits_counter_(obs::MetricsRegistry::global().counter("eval.cache_hits")),
      misses_counter_(
          obs::MetricsRegistry::global().counter("eval.cache_misses")),
      evictions_counter_(
          obs::MetricsRegistry::global().counter("eval.cache_evictions")),
      core_hits_counter_(
          obs::MetricsRegistry::global().counter("eval.delta_core_hits")) {}

std::shared_ptr<const IntegrationResult> CandidateEvaluator::evaluate(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    Cycles ii_main, obs::PhaseProfile* profile) {
  Key key;
  key.context_fp = ctx.fingerprint();
  key.ii = ii_main;
  key.selection_fp.reserve(selection.size());
  for (const bad::DesignPrediction* p : selection) {
    CHOP_REQUIRE(p != nullptr, "selection has an unselected partition");
    key.selection_fp.push_back(fingerprint(*p));
  }

  Shard& shard = shards_[KeyHash{}(key) % kShards];
  {
    TimedLockGuard lock(shard.mu, profile);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      hits_counter_.add();
      return it->second;
    }
    ++shard.misses;
    misses_counter_.add();
  }

  // Core-level probe: the same selection + II under the
  // constraint-independent core fingerprint. A hit means only the
  // constraint budget / criteria moved since this candidate was last
  // integrated, so the expensive half is reusable verbatim.
  Key core_key = key;
  core_key.context_fp = ctx.core_fingerprint();
  CoreShard& core_shard = core_shards_[KeyHash{}(core_key) % kShards];
  std::shared_ptr<const IntegrationCore> cached_core;
  {
    TimedLockGuard lock(core_shard.mu, profile);
    const auto it = core_shard.map.find(core_key);
    if (it != core_shard.map.end()) {
      ++core_shard.hits;
      core_hits_counter_.add();
      cached_core = it->second;
    }
  }

  // Compute outside the locks: integrations dominate the cost, and holding
  // a shard would serialize the parallel enumeration's workers.
  std::shared_ptr<const IntegrationResult> result;
  if (cached_core != nullptr) {
    obs::ScopedPhase verdict_phase(profile, obs::SearchPhase::kVerdict);
    result = std::make_shared<const IntegrationResult>(
        apply_verdict(ctx, *cached_core));
  } else {
    auto fresh_core = std::make_shared<const IntegrationCore>(
        integrate_core(ctx, selection, ii_main));
    result = std::make_shared<const IntegrationResult>(
        apply_verdict(ctx, *fresh_core));
    TimedLockGuard lock(core_shard.mu, profile);
    const auto [it, inserted] =
        core_shard.map.emplace(core_key, std::move(fresh_core));
    if (inserted) {
      core_shard.fifo.push_back(std::move(core_key));
      while (core_shard.map.size() > shard_cap_) {
        core_shard.map.erase(core_shard.fifo.front());
        core_shard.fifo.pop_front();
      }
    }
  }

  TimedLockGuard lock(shard.mu, profile);
  const auto [it, inserted] = shard.map.emplace(key, result);
  if (!inserted) return it->second;  // a concurrent miss beat us to it
  shard.fifo.push_back(std::move(key));
  while (shard.map.size() > shard_cap_) {
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
    ++shard.evictions;
    evictions_counter_.add();
  }
  return result;
}

CandidateEvaluator::Stats CandidateEvaluator::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
  }
  for (const CoreShard& shard : core_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.core_hits += shard.hits;
  }
  return out;
}

std::size_t CandidateEvaluator::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void CandidateEvaluator::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.fifo.clear();
  }
  for (CoreShard& shard : core_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.fifo.clear();
  }
}

}  // namespace chop::core
