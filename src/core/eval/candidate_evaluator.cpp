#include "core/eval/candidate_evaluator.hpp"

#include "core/eval/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profile.hpp"

namespace chop::core {

namespace {

/// lock_guard that attributes time blocked on the mutex to kCacheWait
/// when profiling is on (uncontended acquisition rounds to ~0ns).
class TimedLockGuard {
 public:
  TimedLockGuard(std::mutex& mu, obs::PhaseProfile* profile) : mu_(mu) {
    if (profile != nullptr) {
      obs::ScopedPhase wait(profile, obs::SearchPhase::kCacheWait);
      mu_.lock();
    } else {
      mu_.lock();
    }
  }
  TimedLockGuard(const TimedLockGuard&) = delete;
  TimedLockGuard& operator=(const TimedLockGuard&) = delete;
  ~TimedLockGuard() { mu_.unlock(); }

 private:
  std::mutex& mu_;
};

}  // namespace

std::size_t CandidateEvaluator::KeyHash::operator()(const Key& k) const {
  Fnv1a h;
  h.mix(k.context_fp);
  h.mix(k.ii);
  for (std::uint64_t fp : k.selection_fp) h.mix(fp);
  return static_cast<std::size_t>(h.digest());
}

CandidateEvaluator::CandidateEvaluator(std::size_t max_entries)
    : max_entries_(max_entries),
      shard_cap_((max_entries_ + kShards - 1) / kShards),
      hits_counter_(obs::MetricsRegistry::global().counter("eval.cache_hits")),
      misses_counter_(
          obs::MetricsRegistry::global().counter("eval.cache_misses")),
      evictions_counter_(
          obs::MetricsRegistry::global().counter("eval.cache_evictions")) {}

std::shared_ptr<const IntegrationResult> CandidateEvaluator::evaluate(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    Cycles ii_main, obs::PhaseProfile* profile) {
  Key key;
  key.context_fp = ctx.fingerprint();
  key.ii = ii_main;
  key.selection_fp.reserve(selection.size());
  for (const bad::DesignPrediction* p : selection) {
    CHOP_REQUIRE(p != nullptr, "selection has an unselected partition");
    key.selection_fp.push_back(fingerprint(*p));
  }

  Shard& shard = shards_[KeyHash{}(key) % kShards];
  {
    TimedLockGuard lock(shard.mu, profile);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      hits_counter_.add();
      return it->second;
    }
    ++shard.misses;
    misses_counter_.add();
  }

  // Compute outside the lock: integrations dominate the cost, and holding
  // the shard would serialize the parallel enumeration's workers.
  auto result =
      std::make_shared<const IntegrationResult>(integrate(ctx, selection,
                                                          ii_main));

  TimedLockGuard lock(shard.mu, profile);
  const auto [it, inserted] = shard.map.emplace(key, result);
  if (!inserted) return it->second;  // a concurrent miss beat us to it
  shard.fifo.push_back(std::move(key));
  while (shard.map.size() > shard_cap_) {
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
    ++shard.evictions;
    evictions_counter_.add();
  }
  return result;
}

CandidateEvaluator::Stats CandidateEvaluator::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
  }
  return out;
}

std::size_t CandidateEvaluator::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void CandidateEvaluator::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.fifo.clear();
  }
}

}  // namespace chop::core
