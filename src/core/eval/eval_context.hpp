// EvalContext — the immutable "world" of one evaluation problem: the
// partitioning, its data-transfer tasks, the clock family, the constraint
// budget, the feasibility criteria, and any extra reserved pins. Before
// this layer existed every consumer (both search heuristics, the session,
// auto_partition, the clock explorer, the memory optimizer) hand-threaded
// the same six loose arguments into integrate(); the context collapses
// those signatures to (context, selection, ii) and gives the memoizing
// CandidateEvaluator a stable identity to key on.
//
// Lifetime rules: the Partitioning is *referenced* and must outlive the
// context (it is typically owned by a ChopSession or a stack frame that
// also owns the context). The transfer tasks are *owned* (moved in), and
// the small POD bundles (clocks/constraints/criteria) are copied, so a
// context stays valid after the session's config mutates. A context never
// mutates after construction — safe to share across threads by const
// reference, which is what the parallel enumeration does.
#pragma once

#include <cstdint>
#include <vector>

#include "bad/style.hpp"
#include "core/constraints.hpp"
#include "core/transfer.hpp"

namespace chop::core {

class EvalContext {
 public:
  /// Validates the bundle once (clocks/constraints/criteria/partitioning)
  /// so per-candidate evaluation skips revalidation.
  EvalContext(const Partitioning& pt, std::vector<DataTransfer> transfers,
              const bad::ClockSpec& clocks,
              const DesignConstraints& constraints,
              const FeasibilityCriteria& criteria, Pins extra_pins = 0);

  const Partitioning& partitioning() const { return *pt_; }
  const std::vector<DataTransfer>& transfers() const { return transfers_; }
  const bad::ClockSpec& clocks() const { return clocks_; }
  const DesignConstraints& constraints() const { return constraints_; }
  const FeasibilityCriteria& criteria() const { return criteria_; }
  Pins extra_pins() const { return extra_pins_; }

  /// Content digest of the whole tuple (chips, partitions, memory,
  /// transfers, clocks, constraints, criteria, extra pins). Two contexts
  /// with equal fingerprints describe the same evaluation problem, so
  /// cached IntegrationResults are interchangeable between them.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Digest of the constraint-independent prefix of the tuple: everything
  /// fingerprint() covers except the constraint budget and the feasibility
  /// criteria. Two contexts with equal core fingerprints produce identical
  /// IntegrationCore values for any selection — only the verdict can
  /// differ — which is what lets the §2.7 tighten/loosen-constraint group
  /// reuse memoized integration cores and warm evaluator state.
  std::uint64_t core_fingerprint() const { return core_fingerprint_; }

 private:
  const Partitioning* pt_;
  std::vector<DataTransfer> transfers_;
  bad::ClockSpec clocks_;
  DesignConstraints constraints_;
  FeasibilityCriteria criteria_;
  Pins extra_pins_;
  std::uint64_t fingerprint_;
  std::uint64_t core_fingerprint_;
};

/// Content digest of one partition as integrate() sees it: name, chip
/// binding (including the chip's package geometry) and member set. The
/// session diffs these across an EvalDelta to decide which partitions'
/// predictions and bound columns are actually dirty.
std::uint64_t partition_fingerprint(const Partitioning& pt, std::size_t p);

}  // namespace chop::core
