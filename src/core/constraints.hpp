// Hard design constraints and the probabilistic feasibility criteria
// (paper §2.6): "If a predicted design has a probability of 100% of
// satisfying the performance (initiation interval) and chip area
// constraints, and a probability of 80% of satisfying the system delay
// constraint, then the predicted design is considered feasible."
#pragma once

#include "util/error.hpp"
#include "util/statval.hpp"
#include "util/units.hpp"

namespace chop::core {

/// The absolute constraint budget: initiation interval (performance) and
/// input-to-output delay, both in nanoseconds; optionally power budgets
/// (the paper's §5 extension — 0 disables a power check). Chip area and
/// pin counts are carried by the chip set itself.
struct DesignConstraints {
  Ns performance_ns = 30000.0;
  Ns delay_ns = 30000.0;

  /// Total system power budget, mW (0 = unconstrained).
  double system_power_mw = 0.0;
  /// Per-chip power budget, mW (0 = unconstrained) — package thermals.
  double chip_power_mw = 0.0;

  bool power_constrained() const {
    return system_power_mw > 0.0 || chip_power_mw > 0.0;
  }

  void validate() const {
    CHOP_REQUIRE(performance_ns > 0.0 && delay_ns > 0.0,
                 "constraints must be positive");
    CHOP_REQUIRE(system_power_mw >= 0.0 && chip_power_mw >= 0.0,
                 "power budgets cannot be negative");
  }
};

/// Probability thresholds a prediction must reach against each constraint.
/// 1.0 demands the upper bound satisfy the limit.
struct FeasibilityCriteria {
  double area_prob = 1.0;
  double performance_prob = 1.0;
  double delay_prob = 0.8;
  double power_prob = 0.9;

  void validate() const {
    CHOP_REQUIRE(area_prob > 0.0 && area_prob <= 1.0 &&
                     performance_prob > 0.0 && performance_prob <= 1.0 &&
                     delay_prob > 0.0 && delay_prob <= 1.0 &&
                     power_prob > 0.0 && power_prob <= 1.0,
                 "feasibility probabilities must lie in (0, 1]");
  }

  bool area_ok(const StatVal& area, AreaMil2 limit) const {
    return area.satisfies(limit, area_prob);
  }
  bool performance_ok(const StatVal& perf_ns, Ns limit) const {
    return perf_ns.satisfies(limit, performance_prob);
  }
  bool delay_ok(const StatVal& delay_ns, Ns limit) const {
    return delay_ns.satisfies(limit, delay_prob);
  }
  bool power_ok(const StatVal& power_mw, double limit) const {
    return limit <= 0.0 || power_mw.satisfies(limit, power_prob);
  }
};

}  // namespace chop::core
