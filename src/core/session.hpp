// ChopSession — the public facade of the partitioner, mirroring the
// designer loop of the paper's Figure 1: create/modify partitions, run
// BAD per partition (with level-1 pruning), search for feasible global
// implementations, inspect the guideline output, modify, repeat.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "bad/predictor.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/partitioning.hpp"
#include "core/search.hpp"

namespace chop::core {

/// Complete experiment configuration (paper §2.2 input group 6, plus the
/// §5 testability extension).
struct ChopConfig {
  bad::ArchitectureStyle style;
  bad::ClockSpec clocks;
  DesignConstraints constraints;
  FeasibilityCriteria criteria;
  bad::PredictorOptions predictor;
  bad::TestabilityOptions testability;
};

/// Statistics of one predict-partitions pass (Tables 3/5 rows).
struct PredictionStats {
  std::size_t total = 0;     ///< Raw predictions from BAD.
  std::size_t feasible = 0;  ///< After level-1 pruning (feasible, non-inferior).
};

/// The interactive partitioning session. Owns the partitioning state;
/// references the specification and library, which must outlive it.
class ChopSession {
 public:
  ChopSession(const lib::ComponentLibrary& library, Partitioning partitioning,
              ChopConfig config);

  /// The library is referenced, not copied — a temporary would dangle.
  ChopSession(lib::ComponentLibrary&&, Partitioning, ChopConfig) = delete;

  const Partitioning& partitioning() const { return partitioning_; }

  /// Mutable access for applying §2.7 modifications; invalidates any
  /// stored predictions so a stale search cannot follow a structural edit.
  Partitioning& mutate_partitioning() {
    predictions_valid_ = false;
    return partitioning_;
  }

  const ChopConfig& config() const { return config_; }

  /// Replaces the constraint budget (a §2.7 "Constraints" modification).
  void set_constraints(const DesignConstraints& constraints);

  /// Replaces the architecture style and clock family (§2.2 input group 6
  /// — "the clock cycle is an input to the system"). Invalidates stored
  /// predictions.
  void set_clocking(const bad::ArchitectureStyle& style,
                    const bad::ClockSpec& clocks);

  /// Runs BAD on every partition and applies level-1 pruning. Stores the
  /// lists for subsequent search() calls and returns the Table-3/5 stats.
  PredictionStats predict_partitions();

  /// Per-partition prediction lists from the last predict_partitions().
  const PartitionPredictions& predictions() const { return predictions_; }

  /// Data transfer tasks of the current partitioning.
  std::vector<DataTransfer> transfer_tasks() const;

  /// The evaluation context for the current partitioning + configuration:
  /// the (partitioning, transfers, clocks, constraints, criteria,
  /// extra-pins) tuple every integrate() needs. The returned context
  /// references this session's partitioning — keep the session alive.
  EvalContext make_eval_context() const;

  /// The session-lifetime memo cache. Every search() on this session
  /// shares it, so clock sweeps and repeated searches over unchanged
  /// state hit the cache; content-hashed keys make entries from stale
  /// configurations harmless (they simply stop matching).
  CandidateEvaluator& evaluator() const { return *evaluator_; }

  /// Runs a search over the stored predictions. predict_partitions() must
  /// have been called since the last structural modification. When
  /// options.evaluator is null the session's own evaluator is used.
  SearchResult search(const SearchOptions& options) const;

  /// Renders the designer guideline for one feasible design (the §3.1
  /// bullet-list output: per-partition style, module library, allocation,
  /// registers, muxes, plus per-transfer-module predictions).
  std::string guideline(const GlobalDesign& design) const;

 private:
  const lib::ComponentLibrary* library_;
  Partitioning partitioning_;
  ChopConfig config_;
  PartitionPredictions predictions_;
  bool predictions_valid_ = false;
  /// Session-lifetime memo cache for integrate(); behind a pointer so the
  /// session stays movable (the cache holds mutexes), mutable because
  /// caching is invisible to the session's logical state (search() stays
  /// const). Never null.
  mutable std::unique_ptr<CandidateEvaluator> evaluator_;
};

}  // namespace chop::core
