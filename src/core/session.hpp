// ChopSession — the public facade of the partitioner, mirroring the
// designer loop of the paper's Figure 1: create/modify partitions, run
// BAD per partition (with level-1 pruning), search for feasible global
// implementations, inspect the guideline output, modify, repeat.
//
// Two ways to drive the modify half of the loop:
//  * the legacy setters (mutate_partitioning / set_constraints /
//    set_clocking) followed by predict_partitions() + search(), and
//  * the revisioned incremental pipeline: apply(EvalDelta) + research().
//    apply() patches the session state through a structured §2.7 delta
//    and reports which partitions it dirtied; research() then re-runs
//    only the invalidated work — per-partition prediction reuse, the
//    session evaluator's two-level memo, and a BoundTablesCache that
//    rebuilds only dirty bound columns — while returning a result
//    byte-identical to a cold predict+search of the same state (the
//    equality oracle in chop_fuzz and tests/eval_delta_test enforce
//    this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "bad/predictor.hpp"
#include "core/eval/bound_state.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/eval/eval_delta.hpp"
#include "core/partitioning.hpp"
#include "core/search.hpp"

namespace chop::core {

/// Complete experiment configuration (paper §2.2 input group 6, plus the
/// §5 testability extension).
struct ChopConfig {
  bad::ArchitectureStyle style;
  bad::ClockSpec clocks;
  DesignConstraints constraints;
  FeasibilityCriteria criteria;
  bad::PredictorOptions predictor;
  bad::TestabilityOptions testability;
};

/// Statistics of one predict-partitions pass (Tables 3/5 rows).
struct PredictionStats {
  std::size_t total = 0;     ///< Raw predictions from BAD.
  std::size_t feasible = 0;  ///< After level-1 pruning (feasible, non-inferior).
  /// Partitions whose raw BAD run was skipped because nothing the
  /// prediction depends on changed since the last pass.
  std::size_t reused = 0;
};

/// The interactive partitioning session. Owns the partitioning state;
/// references the specification and library, which must outlive it.
class ChopSession {
 public:
  ChopSession(const lib::ComponentLibrary& library, Partitioning partitioning,
              ChopConfig config);

  /// The library is referenced, not copied — a temporary would dangle.
  ChopSession(lib::ComponentLibrary&&, Partitioning, ChopConfig) = delete;

  const Partitioning& partitioning() const { return partitioning_; }

  /// Mutable access for applying §2.7 modifications; invalidates any
  /// stored predictions so a stale search cannot follow a structural edit.
  Partitioning& mutate_partitioning() {
    predictions_valid_ = false;
    return partitioning_;
  }

  const ChopConfig& config() const { return config_; }

  /// Replaces the constraint budget (a §2.7 "Constraints" modification).
  void set_constraints(const DesignConstraints& constraints);

  /// Replaces the architecture style and clock family (§2.2 input group 6
  /// — "the clock cycle is an input to the system"). Invalidates stored
  /// predictions.
  void set_clocking(const bad::ArchitectureStyle& style,
                    const bad::ClockSpec& clocks);

  /// Monotone revision counter: 0 at construction, bumped by every
  /// apply() — including no-op deltas, so a revision id names an apply
  /// event, not a distinct state.
  std::uint64_t revision() const { return revision_; }

  /// Applies one structured §2.7 modification and reports its impact:
  /// which partitions now need fresh predictions, whether the delta was a
  /// no-op (state fingerprint unchanged), and whether it only moved the
  /// constraint budget (integration cores stay reusable). A no-op keeps
  /// every cached artifact valid, so the following research() does zero
  /// new work. Throws chop::Error (strong guarantee on config, but the
  /// partitioning may have been patched) if the delta is invalid against
  /// the current state.
  DeltaImpact apply(const EvalDelta& delta);

  /// The incremental counterpart of predict_partitions() + search():
  /// refreshes predictions if needed (reusing every partition whose
  /// inputs are unchanged), arms the session's bound-table cache, and
  /// runs the search on the session evaluator. The returned result is
  /// byte-identical to a cold session's predict+search of the same state.
  /// Plain repeated calls with unchanged state and equivalent options are
  /// answered from a one-deep result cache (skipped when options carry an
  /// observer, cancel flag, or deadline).
  SearchResult research(const SearchOptions& options);

  /// Runs BAD on every partition and applies level-1 pruning. Stores the
  /// lists for subsequent search() calls and returns the Table-3/5 stats.
  PredictionStats predict_partitions();

  /// Per-partition prediction lists from the last predict_partitions().
  const PartitionPredictions& predictions() const { return predictions_; }

  /// Data transfer tasks of the current partitioning.
  std::vector<DataTransfer> transfer_tasks() const;

  /// The evaluation context for the current partitioning + configuration:
  /// the (partitioning, transfers, clocks, constraints, criteria,
  /// extra-pins) tuple every integrate() needs. The returned context
  /// references this session's partitioning — keep the session alive.
  EvalContext make_eval_context() const;

  /// The session-lifetime memo cache. Every search() on this session
  /// shares it, so clock sweeps and repeated searches over unchanged
  /// state hit the cache; content-hashed keys make entries from stale
  /// configurations harmless (they simply stop matching).
  CandidateEvaluator& evaluator() const { return *evaluator_; }

  /// Runs a search over the stored predictions. predict_partitions() must
  /// have been called since the last structural modification. When
  /// options.evaluator is null the session's own evaluator is used.
  SearchResult search(const SearchOptions& options) const;

  /// Renders the designer guideline for one feasible design (the §3.1
  /// bullet-list output: per-partition style, module library, allocation,
  /// registers, muxes, plus per-transfer-module predictions).
  std::string guideline(const GlobalDesign& design) const;

 private:
  /// Cached content keys of one partition's prediction lists, deciding
  /// reuse across predict passes. raw_key digests everything the raw BAD
  /// run reads (clocking environment, testability, memory subsystem,
  /// predictor sweep, partition members); eligible_key additionally
  /// digests what level-1 pruning reads (the chip's usable area, the
  /// constraint budget, the feasibility criteria). Equal keys imply
  /// identical lists by construction.
  struct PartitionPredictState {
    std::uint64_t raw_key = 0;
    std::uint64_t eligible_key = 0;
    bool valid = false;
  };

  std::uint64_t predict_env_key() const;
  std::uint64_t raw_key(std::size_t p, std::uint64_t env_key) const;
  std::uint64_t eligible_key(std::size_t p, std::uint64_t raw) const;

  const lib::ComponentLibrary* library_;
  Partitioning partitioning_;
  ChopConfig config_;
  PartitionPredictions predictions_;
  bool predictions_valid_ = false;
  std::uint64_t revision_ = 0;
  std::vector<PartitionPredictState> predict_cache_;
  /// Bound-table memo armed by research() before each search; behind a
  /// pointer for the same movability reason as evaluator_.
  std::unique_ptr<BoundTablesCache> bound_cache_;
  /// One-deep research() result cache, content-keyed on the evaluation
  /// context, the prediction-list keys, and the deterministic options.
  bool last_result_valid_ = false;
  std::uint64_t last_result_key_ = 0;
  SearchResult last_result_;
  /// Session-lifetime memo cache for integrate(); behind a pointer so the
  /// session stays movable (the cache holds mutexes), mutable because
  /// caching is invisible to the session's logical state (search() stays
  /// const). Never null.
  mutable std::unique_ptr<CandidateEvaluator> evaluator_;
};

}  // namespace chop::core
