#include "core/session.hpp"

#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace chop::core {

ChopSession::ChopSession(const lib::ComponentLibrary& library,
                         Partitioning partitioning, ChopConfig config)
    : library_(&library),
      partitioning_(std::move(partitioning)),
      config_(std::move(config)),
      evaluator_(std::make_unique<CandidateEvaluator>()) {
  config_.clocks.validate();
  config_.constraints.validate();
  config_.criteria.validate();
  partitioning_.validate();
}

void ChopSession::set_constraints(const DesignConstraints& constraints) {
  constraints.validate();
  config_.constraints = constraints;
  predictions_valid_ = false;  // level-1 pruning depends on the budget
}

void ChopSession::set_clocking(const bad::ArchitectureStyle& style,
                               const bad::ClockSpec& clocks) {
  clocks.validate();
  config_.style = style;
  config_.clocks = clocks;
  predictions_valid_ = false;  // every prediction depends on the clocks
}

PredictionStats ChopSession::predict_partitions() {
  obs::TraceSpan span("session.predict");
  Timer timer;
  partitioning_.validate();
  predictions_ = PartitionPredictions{};

  const auto& partitions = partitioning_.partitions();
  const auto& chips = partitioning_.chips();

  // Cap pipelined II enumeration from the performance budget (§3.2).
  const Cycles max_ii_main = static_cast<Cycles>(
      config_.constraints.performance_ns / config_.clocks.main_clock);
  const Cycles max_ii_dp = std::max<Cycles>(
      1, max_ii_main / config_.clocks.datapath_multiplier);

  bad::Predictor predictor(config_.predictor);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    obs::TraceSpan partition_span("session.predict.partition");
    partition_span.arg("partition", partitions[p].name);
    const dfg::Subgraph sub = partitioning_.subgraph(static_cast<int>(p));

    bad::PredictionRequest request;
    request.graph = &sub.graph;
    request.library = library_;
    request.style = config_.style;
    request.clocks = config_.clocks;
    request.max_ii_dp = max_ii_dp;
    request.testability = config_.testability;
    for (std::size_t b = 0; b < partitioning_.memory().blocks.size(); ++b) {
      request.memory_ports[static_cast<int>(b)] =
          partitioning_.memory().blocks[b].ports;
      request.memory_access_time.push_back(
          partitioning_.memory().blocks[b].access_time);
    }

    std::vector<bad::DesignPrediction> raw = predictor.predict(request);
    const AreaMil2 usable =
        chips[static_cast<std::size_t>(partitions[p].chip)]
            .package.usable_area();
    std::vector<bad::DesignPrediction> eligible = prune_level1(
        raw, usable, config_.clocks, config_.constraints, config_.criteria);
    predictions_.raw.push_back(std::move(raw));
    predictions_.eligible.push_back(std::move(eligible));
  }

  predictions_valid_ = true;
  const PredictionStats stats{predictions_.raw_total(),
                              predictions_.eligible_total()};
  obs::MetricsRegistry::global()
      .histogram("session.predict_ms")
      .observe(timer.elapsed_ms());
  static obs::Counter& eligible =
      obs::MetricsRegistry::global().counter("bad.predictions_eligible");
  eligible.add(stats.feasible);
  span.arg("partitions", partitioning_.partitions().size());
  span.arg("predictions_raw", stats.total);
  span.arg("predictions_eligible", stats.feasible);
  return stats;
}

std::vector<DataTransfer> ChopSession::transfer_tasks() const {
  return create_transfer_tasks(partitioning_);
}

EvalContext ChopSession::make_eval_context() const {
  const Pins test_pins = config_.testability.scan_design
                             ? config_.testability.test_pins_per_chip
                             : 0;
  return EvalContext(partitioning_, transfer_tasks(), config_.clocks,
                     config_.constraints, config_.criteria, test_pins);
}

SearchResult ChopSession::search(const SearchOptions& options) const {
  obs::TraceSpan span("session.search");
  CHOP_REQUIRE(predictions_valid_,
               "call predict_partitions() before search()");
  SearchOptions opts = options;
  if (opts.evaluator == nullptr) opts.evaluator = evaluator_.get();
  return find_feasible_implementations(make_eval_context(), predictions_,
                                       opts);
}

std::string ChopSession::guideline(const GlobalDesign& design) const {
  CHOP_REQUIRE(predictions_valid_, "no predictions to render");
  const auto& partitions = partitioning_.partitions();
  CHOP_REQUIRE(design.choice.size() == partitions.size(),
               "design does not match the current partitioning");

  std::ostringstream os;
  os << "Feasible predicted design: II=" << design.integration.ii_main
     << " cycles, delay=" << design.integration.system_delay_main
     << " cycles, clock=" << design.integration.clock_ns() << " ns\n";
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    // Guidelines are rendered from the list the search consumed.
    const auto& list = predictions_.eligible[p].empty()
                           ? predictions_.raw[p]
                           : predictions_.eligible[p];
    CHOP_REQUIRE(design.choice[p] < list.size(),
                 "design choice index out of range");
    const bad::DesignPrediction& sel = list[design.choice[p]];
    os << "* " << partitions[p].name << " (chip "
       << partitioning_.chips()[static_cast<std::size_t>(partitions[p].chip)]
              .name
       << ")\n";
    os << "    - a " << to_string(sel.style) << " design style with "
       << sel.stages << " stages,\n";
    os << "    - module library of " << sel.module_set_label << ",\n";
    os << "    - ";
    bool first = true;
    for (const auto& [kind, count] : sel.fu_alloc) {
      if (!first) os << " and ";
      first = false;
      os << count << ' ' << dfg::to_string(kind)
         << (count == 1 ? " unit" : " units");
    }
    os << ",\n";
    os << "    - " << sel.register_bits << " bits of registers for the data "
       << "path,\n";
    os << "    - " << static_cast<long long>(std::llround(sel.mux_count_likely))
       << " 1-bit 2-to-1 multiplexers,\n";
    os << "    - predicted area " << sel.total_area << " mil^2.\n";
  }
  for (const TransferPlan& plan : design.integration.transfers) {
    if (!plan.task.crosses_pins()) continue;
    os << "* data transfer module " << plan.task.name << ": " << plan.pins
       << " pins, X=" << plan.transfer_cycles << " cycles, W="
       << plan.wait_cycles << " cycles, buffer=" << plan.buffer_bits
       << " bits, PLA " << plan.controller.inputs << "x"
       << plan.controller.outputs << "x" << plan.controller.product_terms
       << "\n";
  }
  return os.str();
}

}  // namespace chop::core
