#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/eval/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace chop::core {

namespace {

/// Family tags folded into bound-cache column keys: the cache must never
/// serve a column computed from the raw list to a search over the
/// eligible list (options.prune picks the family uniformly).
constexpr std::uint64_t kEligibleFamily = 0x454c4947u;  // "ELIG"
constexpr std::uint64_t kRawFamily = 0x52415721u;       // "RAW!"

Cycles max_ii_dp_for(const ChopConfig& config) {
  const Cycles max_ii_main = static_cast<Cycles>(
      config.constraints.performance_ns / config.clocks.main_clock);
  return std::max<Cycles>(1, max_ii_main / config.clocks.datapath_multiplier);
}

}  // namespace

ChopSession::ChopSession(const lib::ComponentLibrary& library,
                         Partitioning partitioning, ChopConfig config)
    : library_(&library),
      partitioning_(std::move(partitioning)),
      config_(std::move(config)),
      evaluator_(std::make_unique<CandidateEvaluator>()) {
  config_.clocks.validate();
  config_.constraints.validate();
  config_.criteria.validate();
  partitioning_.validate();
}

void ChopSession::set_constraints(const DesignConstraints& constraints) {
  constraints.validate();
  config_.constraints = constraints;
  predictions_valid_ = false;  // level-1 pruning depends on the budget
}

void ChopSession::set_clocking(const bad::ArchitectureStyle& style,
                               const bad::ClockSpec& clocks) {
  clocks.validate();
  config_.style = style;
  config_.clocks = clocks;
  predictions_valid_ = false;  // every prediction depends on the clocks
}

std::uint64_t ChopSession::predict_env_key() const {
  Fnv1a h;
  h.mix(static_cast<int>(config_.style.clocking));
  h.mix(config_.style.allow_pipelining ? 1 : 0);
  h.mix(config_.clocks.main_clock);
  h.mix(config_.clocks.datapath_multiplier);
  h.mix(config_.clocks.transfer_multiplier);
  h.mix(max_ii_dp_for(config_));
  h.mix(config_.testability.scan_design ? 1 : 0);
  h.mix(config_.testability.register_area_factor);
  h.mix(config_.testability.register_delay_penalty_ns);
  h.mix(config_.testability.controller_area_factor);
  h.mix(config_.testability.test_pins_per_chip);
  for (int units : config_.predictor.unit_sweep) h.mix(units);
  for (const auto& block : partitioning_.memory().blocks) {
    h.mix(block.ports);
    h.mix(block.access_time);
  }
  return h.digest();
}

std::uint64_t ChopSession::raw_key(std::size_t p,
                                   std::uint64_t env_key) const {
  Fnv1a h;
  h.mix(env_key);
  h.mix(static_cast<std::uint64_t>(p));
  for (dfg::NodeId member : partitioning_.partitions()[p].members) {
    h.mix(member);
  }
  return h.digest();
}

std::uint64_t ChopSession::eligible_key(std::size_t p,
                                        std::uint64_t raw) const {
  Fnv1a h;
  h.mix(raw);
  const Partition& part = partitioning_.partitions()[p];
  h.mix(partitioning_.chips()[static_cast<std::size_t>(part.chip)]
            .package.usable_area());
  h.mix(config_.constraints.performance_ns);
  h.mix(config_.constraints.delay_ns);
  h.mix(config_.constraints.system_power_mw);
  h.mix(config_.constraints.chip_power_mw);
  h.mix(config_.criteria.area_prob);
  h.mix(config_.criteria.performance_prob);
  h.mix(config_.criteria.delay_prob);
  h.mix(config_.criteria.power_prob);
  return h.digest();
}

PredictionStats ChopSession::predict_partitions() {
  obs::TraceSpan span("session.predict");
  Timer timer;
  partitioning_.validate();

  const auto& partitions = partitioning_.partitions();
  const auto& chips = partitioning_.chips();

  if (predictions_.raw.size() != partitions.size() ||
      predict_cache_.size() != partitions.size()) {
    predictions_ = PartitionPredictions{};
    predictions_.raw.resize(partitions.size());
    predictions_.eligible.resize(partitions.size());
    predict_cache_.assign(partitions.size(), PartitionPredictState{});
  }

  // Cap pipelined II enumeration from the performance budget (§3.2).
  const Cycles max_ii_dp = max_ii_dp_for(config_);
  const std::uint64_t env_key = predict_env_key();

  static obs::Counter& reused_counter =
      obs::MetricsRegistry::global().counter("eval.delta_predict_reused");
  static obs::Counter& recomputed_counter =
      obs::MetricsRegistry::global().counter("eval.delta_predict_recomputed");

  bad::Predictor predictor(config_.predictor);
  PredictionStats stats;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    PartitionPredictState& state = predict_cache_[p];
    const std::uint64_t rk = raw_key(p, env_key);
    const bool raw_hit = state.valid && state.raw_key == rk;
    if (raw_hit) {
      ++stats.reused;
      reused_counter.add();
    } else {
      obs::TraceSpan partition_span("session.predict.partition");
      partition_span.arg("partition", partitions[p].name);
      const dfg::Subgraph sub = partitioning_.subgraph(static_cast<int>(p));

      bad::PredictionRequest request;
      request.graph = &sub.graph;
      request.library = library_;
      request.style = config_.style;
      request.clocks = config_.clocks;
      request.max_ii_dp = max_ii_dp;
      request.testability = config_.testability;
      for (std::size_t b = 0; b < partitioning_.memory().blocks.size(); ++b) {
        request.memory_ports[static_cast<int>(b)] =
            partitioning_.memory().blocks[b].ports;
        request.memory_access_time.push_back(
            partitioning_.memory().blocks[b].access_time);
      }

      predictions_.raw[p] = predictor.predict(request);
      recomputed_counter.add();
    }
    const std::uint64_t ek = eligible_key(p, rk);
    if (!raw_hit || state.eligible_key != ek) {
      const AreaMil2 usable =
          chips[static_cast<std::size_t>(partitions[p].chip)]
              .package.usable_area();
      predictions_.eligible[p] =
          prune_level1(predictions_.raw[p], usable, config_.clocks,
                       config_.constraints, config_.criteria);
    }
    state.raw_key = rk;
    state.eligible_key = ek;
    state.valid = true;
  }

  predictions_valid_ = true;
  stats.total = predictions_.raw_total();
  stats.feasible = predictions_.eligible_total();
  obs::MetricsRegistry::global()
      .histogram("session.predict_ms")
      .observe(timer.elapsed_ms());
  static obs::Counter& eligible =
      obs::MetricsRegistry::global().counter("bad.predictions_eligible");
  eligible.add(stats.feasible);
  span.arg("partitions", partitioning_.partitions().size());
  span.arg("predictions_raw", stats.total);
  span.arg("predictions_eligible", stats.feasible);
  span.arg("predictions_reused", stats.reused);
  return stats;
}

DeltaImpact ChopSession::apply(const EvalDelta& delta) {
  obs::TraceSpan span("session.apply_delta");
  span.arg("kind", delta.kind_name());
  static obs::Counter& applied =
      obs::MetricsRegistry::global().counter("eval.delta_applied");

  const std::size_t old_nparts = partitioning_.partitions().size();
  std::uint64_t old_full = 0;
  std::uint64_t old_core = 0;
  {
    const EvalContext before = make_eval_context();
    old_full = before.fingerprint();
    old_core = before.core_fingerprint();
  }
  std::vector<std::uint64_t> old_keys(old_nparts);
  {
    const std::uint64_t env = predict_env_key();
    for (std::size_t p = 0; p < old_nparts; ++p) {
      old_keys[p] = eligible_key(p, raw_key(p, env));
    }
  }

  apply_delta(delta, partitioning_, config_.style, config_.clocks,
              config_.constraints);
  partitioning_.validate();

  DeltaImpact impact;
  impact.revision = ++revision_;
  impact.old_fingerprint = old_full;
  {
    const EvalContext after = make_eval_context();
    impact.new_fingerprint = after.fingerprint();
    impact.noop = impact.new_fingerprint == old_full;
    impact.constraints_only =
        !impact.noop && after.core_fingerprint() == old_core;
  }

  const std::size_t nparts = partitioning_.partitions().size();
  if (nparts != old_nparts) {
    impact.dirty_partitions.assign(nparts, true);
  } else {
    impact.dirty_partitions.assign(nparts, false);
    const std::uint64_t env = predict_env_key();
    for (std::size_t p = 0; p < nparts; ++p) {
      impact.dirty_partitions[p] =
          eligible_key(p, raw_key(p, env)) != old_keys[p];
    }
  }

  if (!impact.noop) {
    predictions_valid_ = false;
    last_result_valid_ = false;
  }
  applied.add();
  span.arg("noop", impact.noop ? 1 : 0);
  span.arg("constraints_only", impact.constraints_only ? 1 : 0);
  span.arg("dirty_partitions", impact.dirty_count());
  return impact;
}

SearchResult ChopSession::research(const SearchOptions& options) {
  obs::TraceSpan span("session.research");
  if (!predictions_valid_) {
    obs::ScopedPhase predict_phase(options.profile, obs::SearchPhase::kPredict);
    predict_partitions();
  }
  if (bound_cache_ == nullptr) {
    bound_cache_ = std::make_unique<BoundTablesCache>();
  }

  // The context must outlive the search (it is passed by reference).
  const EvalContext ctx = make_eval_context();

  const std::size_t nparts = partitioning_.partitions().size();
  const std::uint64_t env = predict_env_key();
  std::vector<std::uint64_t> raw_keys(nparts);
  std::vector<std::uint64_t> eligible_keys(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    raw_keys[p] = raw_key(p, env);
    eligible_keys[p] = eligible_key(p, raw_keys[p]);
  }

  // One-deep result memo, content-keyed: the context fingerprint covers
  // the integration inputs, the list keys cover the searched lists, and
  // the option fields below are exactly the ones a deterministic search
  // depends on (threads is deliberately excluded — results are identical
  // across thread counts; observer/cancel/deadline disqualify caching
  // outright because the caller observes the run itself).
  Fnv1a rk;
  rk.mix(ctx.fingerprint());
  rk.mix(static_cast<int>(options.heuristic));
  rk.mix(options.prune ? 1 : 0);
  rk.mix(options.record_all ? 1 : 0);
  rk.mix(static_cast<std::uint64_t>(options.max_trials));
  rk.mix(options.bound_pruning ? 1 : 0);
  for (std::size_t p = 0; p < nparts; ++p) {
    rk.mix(raw_keys[p]);
    rk.mix(eligible_keys[p]);
  }
  const std::uint64_t result_key = rk.digest();
  const bool cache_eligible =
      options.cancel == nullptr &&
      options.deadline == std::chrono::steady_clock::time_point{} &&
      options.observer == nullptr;

  static obs::Counter& noop_counter =
      obs::MetricsRegistry::global().counter("eval.delta_noop_research");
  if (cache_eligible && last_result_valid_ && last_result_key_ == result_key) {
    noop_counter.add();
    span.arg("cached", 1);
    return last_result_;
  }

  SearchOptions opts = options;
  if (opts.evaluator == nullptr) opts.evaluator = evaluator_.get();
  if (opts.bound_cache == nullptr) {
    std::vector<std::uint64_t> column_keys(nparts);
    for (std::size_t p = 0; p < nparts; ++p) {
      Fnv1a ch;
      ch.mix(opts.prune ? kEligibleFamily : kRawFamily);
      ch.mix(opts.prune ? eligible_keys[p] : raw_keys[p]);
      column_keys[p] = ch.digest();
    }
    bound_cache_->prepare(ctx.core_fingerprint(), std::move(column_keys));
    opts.bound_cache = bound_cache_.get();
  }

  SearchResult result = find_feasible_implementations(ctx, predictions_, opts);
  if (cache_eligible && !result.cancelled) {
    last_result_ = result;
    last_result_key_ = result_key;
    last_result_valid_ = true;
  }
  return result;
}

std::vector<DataTransfer> ChopSession::transfer_tasks() const {
  return create_transfer_tasks(partitioning_);
}

EvalContext ChopSession::make_eval_context() const {
  const Pins test_pins = config_.testability.scan_design
                             ? config_.testability.test_pins_per_chip
                             : 0;
  return EvalContext(partitioning_, transfer_tasks(), config_.clocks,
                     config_.constraints, config_.criteria, test_pins);
}

SearchResult ChopSession::search(const SearchOptions& options) const {
  obs::TraceSpan span("session.search");
  CHOP_REQUIRE(predictions_valid_,
               "call predict_partitions() before search()");
  SearchOptions opts = options;
  if (opts.evaluator == nullptr) opts.evaluator = evaluator_.get();
  return find_feasible_implementations(make_eval_context(), predictions_,
                                       opts);
}

std::string ChopSession::guideline(const GlobalDesign& design) const {
  CHOP_REQUIRE(predictions_valid_, "no predictions to render");
  const auto& partitions = partitioning_.partitions();
  CHOP_REQUIRE(design.choice.size() == partitions.size(),
               "design does not match the current partitioning");

  std::ostringstream os;
  os << "Feasible predicted design: II=" << design.integration.ii_main
     << " cycles, delay=" << design.integration.system_delay_main
     << " cycles, clock=" << design.integration.clock_ns() << " ns\n";
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    // Guidelines are rendered from the list the search consumed.
    const auto& list = predictions_.eligible[p].empty()
                           ? predictions_.raw[p]
                           : predictions_.eligible[p];
    CHOP_REQUIRE(design.choice[p] < list.size(),
                 "design choice index out of range");
    const bad::DesignPrediction& sel = list[design.choice[p]];
    os << "* " << partitions[p].name << " (chip "
       << partitioning_.chips()[static_cast<std::size_t>(partitions[p].chip)]
              .name
       << ")\n";
    os << "    - a " << to_string(sel.style) << " design style with "
       << sel.stages << " stages,\n";
    os << "    - module library of " << sel.module_set_label << ",\n";
    os << "    - ";
    bool first = true;
    for (const auto& [kind, count] : sel.fu_alloc) {
      if (!first) os << " and ";
      first = false;
      os << count << ' ' << dfg::to_string(kind)
         << (count == 1 ? " unit" : " units");
    }
    os << ",\n";
    os << "    - " << sel.register_bits << " bits of registers for the data "
       << "path,\n";
    os << "    - " << static_cast<long long>(std::llround(sel.mux_count_likely))
       << " 1-bit 2-to-1 multiplexers,\n";
    os << "    - predicted area " << sel.total_area << " mil^2.\n";
  }
  for (const TransferPlan& plan : design.integration.transfers) {
    if (!plan.task.crosses_pins()) continue;
    os << "* data transfer module " << plan.task.name << ": " << plan.pins
       << " pins, X=" << plan.transfer_cycles << " cycles, W="
       << plan.wait_cycles << " cycles, buffer=" << plan.buffer_bits
       << " bits, PLA " << plan.controller.inputs << "x"
       << plan.controller.outputs << "x" << plan.controller.product_terms
       << "\n";
  }
  return os.str();
}

}  // namespace chop::core
