// CHOP's global search: selecting one predicted implementation per
// partition such that the integrated system is feasible (paper §2.4).
//
// Two run-time selectable heuristics, per the paper: explicit enumeration
// over all combinations of per-partition implementations (with immediate
// pruning of infeasible/inferior global designs), and the iterative
// algorithm of Figure 5 that walks feasible initiation intervals from
// fastest implementations toward more serial ones, serializing partitions
// on area-violated chips by minimum incremental system delay. "Neither of
// the heuristics can be claimed to be better than the other in terms of
// the quality of results or run-time but they explore the design space
// differently."
//
// Both heuristics run on the evaluation engine (src/core/eval/): an
// immutable EvalContext carries the problem, and a memoizing
// CandidateEvaluator services every integration. The enumeration heuristic
// is a depth-first branch-and-bound walk over the odometer space: an
// incremental PrefixState plus precomputed BoundTables (src/core/eval/
// bound_state.hpp) cut whole subtrees whose admissible lower bounds
// already violate a hard constraint or are dominated by the incumbent
// Pareto front, while provably returning the identical design set as the
// exhaustive walk. The work is split on top-level digit prefixes into a
// fixed number of units; units are scheduled in deterministic waves on a
// work-stealing pool (SearchOptions::threads workers, or an external
// shared pool), publish feasible finds into a SharedFrontier committed
// at wave barriers so later units prune against every earlier unit's
// incumbents, and merge in prefix order — the SearchResult (trials,
// feasible_raw, designs, recorder contents, observer callback sequence)
// is identical across thread counts and scheduling orders.
#pragma once

#include <atomic>
#include <chrono>
#include <vector>

#include "bad/prediction.hpp"
#include "core/integration.hpp"
#include "core/recorder.hpp"
#include "obs/observer.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"

namespace chop::core {

class BoundTablesCache;
class CandidateEvaluator;
class ThreadPool;

/// Which search heuristic to run ("H" column of Tables 4/6).
enum class Heuristic { Enumeration, Iterative };

inline char to_char(Heuristic h) {
  return h == Heuristic::Enumeration ? 'E' : 'I';
}

/// Search knobs.
struct SearchOptions {
  Heuristic heuristic = Heuristic::Enumeration;
  /// Discard infeasible/inferior designs immediately (the paper's default;
  /// disabling reproduces the Figures 7/8 "keep all implementations" runs).
  bool prune = true;
  /// Record every encountered global design in the result's recorder.
  bool record_all = false;
  /// Safety cap on integration attempts (0 = unlimited). The paper's own
  /// unpruned experiment-2 run died of swap space; we fail gracefully.
  std::size_t max_trials = 0;
  /// Live-progress observer: sees every counted trial and a final
  /// summary. Not owned; may be null (the default — zero overhead).
  /// Callbacks always fire on the calling thread, in trial order, even
  /// when threads > 1 (they are serialized through the merge step).
  obs::SearchObserver* observer = nullptr;
  /// Worker threads for the enumeration heuristic. 1 (the default) is
  /// exactly the historical serial behavior; N > 1 evaluates prefix
  /// units concurrently with a deterministic in-order merge. Must be
  /// >= 1 here — the CLI/daemon layers map a user-facing `0` to the
  /// hardware thread count via ThreadPool::resolve_threads() before
  /// building these options. The iterative heuristic is inherently
  /// sequential and ignores this.
  int threads = 1;
  /// External work-stealing pool to run enumeration units on (not owned).
  /// May be shared across concurrent searches — serve passes one shared
  /// pool so a long search's units interleave with other jobs instead of
  /// monopolizing workers. Null (the default): the search spins up a
  /// private pool when threads > 1. Ignored when threads <= 1.
  ThreadPool* pool = nullptr;
  /// Cross-unit incumbent broadcast for the bounded enumeration: units
  /// publish feasible finds into a SharedFrontier committed at
  /// deterministic wave barriers, so every later unit prunes against all
  /// earlier units' incumbents instead of only the seed probes. The
  /// design set is provably unchanged (strict-dominance cuts never
  /// remove a non-inferior design) and `trials` can only shrink; all
  /// outputs stay identical across thread counts and schedules. Also
  /// switchable off at run time via CHOP_SHARED_FRONTIER=0 (the env wins
  /// over a `true` here only when set to a disabling value). Meaningless
  /// — and ignored — when bound_pruning is off.
  bool shared_frontier = true;
  /// Shared memo cache (not owned; may outlive many searches). When null,
  /// the search uses a private cache that lives for this call only —
  /// ChopSession::search() substitutes its session-lifetime evaluator.
  CandidateEvaluator* evaluator = nullptr;
  /// Cooperative cancellation: when non-null and set to true, the search
  /// stops early and returns whatever it has found so far with
  /// SearchResult::cancelled raised. The enumeration heuristic honors the
  /// flag at prefix-unit granularity (a unit is at most 1/64th of the
  /// space) and between buffered leaves of a bounded unit; the iterative
  /// heuristic checks before every trial. Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional wall-clock deadline on the steady clock (the default —
  /// time_point{} — means no deadline). Checked at the same granularity
  /// as `cancel`; an expired deadline behaves exactly like a raised
  /// cancel flag. A deadline already in the past yields an immediately
  /// cancelled, empty result — never a crash.
  std::chrono::steady_clock::time_point deadline{};
  /// Branch-and-bound subtree pruning for the enumeration heuristic.
  /// Admissible lower bounds cut subtrees that provably cannot contribute
  /// to `designs`, so the returned design set is byte-identical with the
  /// flag on or off; `trials` (visited leaves), and therefore the observer
  /// sequence and recorder contents, shrink when subtrees are cut. Also
  /// switchable off at run time via CHOP_BOUND_PRUNING=0 (env wins over a
  /// `true` here only when set to a disabling value). The iterative
  /// heuristic ignores this.
  bool bound_pruning = true;
  /// Session-owned memo for bound-table construction across §2.7
  /// revisions (see BoundTablesCache in core/eval/bound_state.hpp). Not
  /// owned; null (the default) — and an unarmed cache — leave the
  /// construction byte-identical to the cacheless path.
  BoundTablesCache* bound_cache = nullptr;
  /// Distributed-tracing context to run under: every span the search
  /// emits (including spans on pool worker threads) joins this trace as
  /// one connected tree. Inactive (the default) inherits whatever
  /// context the calling thread already has — serve installs the job's
  /// context around the whole search instead of setting this.
  obs::TraceContext trace{};
  /// Per-phase wall-clock attribution (bound tables, seed probes, leaf
  /// evals, merge, cache wait). Not owned; null (the default) disables
  /// the phase timers entirely — not even a clock read on the hot path.
  obs::PhaseProfile* profile = nullptr;
};

/// Per-partition prediction lists: BAD's raw output and the level-1-pruned
/// eligible lists the search consumes.
struct PartitionPredictions {
  std::vector<std::vector<bad::DesignPrediction>> raw;
  std::vector<std::vector<bad::DesignPrediction>> eligible;

  std::size_t raw_total() const;
  std::size_t eligible_total() const;
};

/// One feasible global implementation found by a search.
struct GlobalDesign {
  std::vector<std::size_t> choice;  ///< Index into the searched list, per partition.
  IntegrationResult integration;
};

/// Search outcome and statistics (the Tables 4/6 columns).
struct SearchResult {
  std::vector<GlobalDesign> designs;  ///< Feasible, non-inferior, II-ascending.
  std::size_t trials = 0;             ///< "Partitioning Imp. Trials".
  std::size_t feasible_raw = 0;       ///< Feasible integrations seen.
  /// Serialization-probe integrations of the iterative heuristic (the
  /// Figure-5 urgency probes). Not counted in `trials` — the paper's trial
  /// counts exclude them — but real work, also tracked by the
  /// `search.probe_integrations` metric.
  std::size_t probe_integrations = 0;
  /// Enumeration subtrees cut by branch-and-bound lower bounds, and the
  /// number of leaf evaluations those cuts skipped (saturating; a
  /// saturated odometer space reports the skipped count as SIZE_MAX).
  /// Also exported as the `search.pruned_subtrees` and
  /// `search.bound_skipped_leaves` metrics.
  std::size_t pruned_subtrees = 0;
  std::size_t bound_skipped_leaves = 0;
  /// Shared-incumbent traffic (SearchOptions::shared_frontier): feasible
  /// finds units broadcast into the shared frontier, and unit-start
  /// snapshots that actually pulled a tightened staircase. Counted from
  /// merged units only, so both are deterministic at any thread count.
  /// Also exported as the `search.frontier_broadcasts` and
  /// `search.frontier_snapshot_hits` metrics.
  std::size_t frontier_broadcasts = 0;
  std::size_t frontier_snapshot_hits = 0;
  bool truncated = false;             ///< Hit SearchOptions::max_trials.
  /// Stopped early by SearchOptions::cancel or an expired deadline. The
  /// result is a valid partial answer: every reported design was fully
  /// evaluated, but un-walked combinations may hide better ones.
  bool cancelled = false;
  DesignSpaceRecorder recorder;       ///< Populated when record_all.
};

/// Level-1 pruning (paper §2.1): drops predictions that are infeasible on
/// their own — area beyond their chip's usable area, initiation interval
/// or latency beyond the absolute constraints even before integration —
/// and then removes Pareto-inferior predictions. Drops are counted
/// separately as `search.pruned_infeasible` and `search.pruned_pareto`.
std::vector<bad::DesignPrediction> prune_level1(
    std::vector<bad::DesignPrediction> predictions, AreaMil2 chip_usable_area,
    const bad::ClockSpec& clocks, const DesignConstraints& constraints,
    const FeasibilityCriteria& criteria);

/// Runs the selected heuristic over `pred` (uses `eligible` when
/// options.prune, else `raw`) under `ctx`, which must describe the same
/// partitioning the predictions were made for.
SearchResult find_feasible_implementations(const EvalContext& ctx,
                                           const PartitionPredictions& pred,
                                           const SearchOptions& options);

}  // namespace chop::core
