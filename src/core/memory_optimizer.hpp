// Automated memory/behavior interleaving — the paper's §2.2 note: "It is
// assumed that the memory hierarchy is designed prior to partitioning
// although, in practice, designers interleave iterations of memory and
// behavior partitioning, a step we intend to automate in the future."
//
// This module automates the memory half of that loop: given a fixed
// behavioral partitioning, it enumerates placements of every memory block
// (each chip, or an off-the-shelf memory package), evaluates each
// placement through the full predict-and-search pipeline, and installs
// the best feasible placement in the session.
#pragma once

#include <vector>

#include "core/session.hpp"

namespace chop::core {

/// Knobs for optimize_memory_placement().
struct MemoryPlacementOptions {
  SearchOptions search;       ///< Search used to evaluate each placement.
  bool allow_off_the_shelf = true;
  /// Safety cap on enumerated placements (chips+1 per block multiply up).
  std::size_t max_placements = 4096;
};

/// Outcome of the placement sweep.
struct MemoryPlacementResult {
  /// Best placement found (chip index or chip::kOffTheShelfChip per
  /// block); equals the starting placement when nothing beat it.
  std::vector<int> placement;
  /// Search result at the best placement.
  SearchResult search;
  /// Placements evaluated (= predict+search pipeline runs).
  std::size_t evaluated = 0;
  /// True when the sweep hit the max_placements cap.
  bool truncated = false;
};

/// Sweeps memory placements for `session`'s current partitioning, leaves
/// the best placement installed in the session, and returns it. Placements
/// are ranked: any feasible beats any infeasible; among feasible, lower
/// best-II then lower best-delay wins; among infeasible, more
/// level-1-feasible predictions wins (a usable gradient for the designer).
MemoryPlacementResult optimize_memory_placement(
    ChopSession& session, const MemoryPlacementOptions& options = {});

}  // namespace chop::core
