// Design-space recorder (paper Figures 7/8): when the designer asks CHOP
// to keep every implementation it encounters instead of discarding
// infeasible/inferior ones, the recorder accumulates each design point so
// the explored space can be plotted and counted ("a total of 13411 (699
// unique) designs").
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.hpp"
#include "util/units.hpp"

namespace chop::core {

/// Incremental Pareto frontier over feasible (II, system-delay) points —
/// the incumbent front the branch-and-bound enumerator tests optimistic
/// subtree bounds against. Stores only the non-dominated staircase (II
/// ascending, delay strictly descending), so queries are a binary search.
class ParetoFrontier {
 public:
  /// Adds a feasible design's (ii, delay); dominated entries (either
  /// direction) are folded away. Weakly dominated inserts are no-ops.
  /// Returns true when the staircase tightened (the point was admitted) —
  /// the signal the shared-incumbent broadcast uses to decide whether a
  /// find is worth publishing.
  bool insert(Cycles ii, Cycles delay);

  /// Strict-dominance query for bound pruning: true when some inserted
  /// point (i, d) satisfies (i <= ii && d < delay) or (i < ii && d <=
  /// delay). Any design whose coordinates are componentwise >= (ii,
  /// delay) is then guaranteed to be dropped by non-inferior filtering,
  /// so a subtree whose *lower bounds* are (ii, delay) can be cut without
  /// changing the final design set.
  bool dominates_strictly(Cycles ii, Cycles delay) const;

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// The staircase, II ascending / delay strictly descending.
  const std::vector<std::pair<Cycles, Cycles>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<Cycles, Cycles>> points_;
};

/// One recorded design point: the axes of the paper's scatter plots.
struct DesignPoint {
  Cycles ii_main = 0;
  Cycles delay_main = 0;
  double area_likely = 0.0;
  Ns clock_ns = 0.0;
  bool feasible = false;
};

/// Accumulates design points and tracks the unique count (points rounded
/// onto the plotting grid — II, delay, and area to 3 significant digits).
class DesignSpaceRecorder {
 public:
  void record(const DesignPoint& point);

  std::size_t total() const { return points_.size(); }
  std::size_t unique() const { return unique_keys_.size(); }
  std::size_t feasible_count() const { return feasible_; }

  const std::vector<DesignPoint>& points() const { return points_; }

  /// Pareto front of the feasible points recorded so far, maintained
  /// incrementally — the dominance oracle for bound pruning.
  const ParetoFrontier& frontier() const { return frontier_; }

  /// CSV with one row per recorded point (ii, delay, area, clock,
  /// feasible) for external re-plotting.
  CsvWriter to_csv() const;

  /// Compact textual scatter of delay (rows) vs II (columns) — the shape
  /// of Figures 7/8 rendered for a terminal. `cols`/`rows` set the grid.
  std::string ascii_scatter(int cols = 64, int rows = 20) const;

 private:
  std::vector<DesignPoint> points_;
  std::set<std::string> unique_keys_;
  std::size_t feasible_ = 0;
  ParetoFrontier frontier_;
};

}  // namespace chop::core
