#include "core/transfer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "obs/metrics.hpp"

namespace chop::core {

namespace {

/// Adds `chip` to the transfer's chip list if not present.
void touch_chip(DataTransfer& t, int chip) {
  if (std::find(t.chips.begin(), t.chips.end(), chip) == t.chips.end()) {
    t.chips.push_back(chip);
  }
}

}  // namespace

std::vector<DataTransfer> create_transfer_tasks(const Partitioning& pt) {
  const dfg::Graph& g = pt.spec();
  const std::vector<int> owner = pt.partition_of_node();
  const auto& partitions = pt.partitions();

  std::vector<DataTransfer> out;

  // --- inter-partition and environment transfers, grouped per ordered
  // (src, dst) pair with distinct values counted once ------------------
  const std::size_t np = partitions.size();
  // Distinct producing nodes per (src, dst) channel; src/dst may be env.
  std::map<std::pair<int, int>, std::set<dfg::NodeId>> channel_values;

  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const dfg::Edge& edge = g.edge(static_cast<dfg::EdgeId>(e));
    const dfg::Node& src_node = g.node(edge.src);
    const dfg::Node& dst_node = g.node(edge.dst);
    const int sp = owner[static_cast<std::size_t>(edge.src)];
    const int dp = owner[static_cast<std::size_t>(edge.dst)];

    if (src_node.kind == dfg::OpKind::Input && dp >= 0) {
      if (src_node.constant) continue;  // preloaded, never transferred
      channel_values[{kEnvironment, dp}].insert(edge.src);
    } else if (dst_node.kind == dfg::OpKind::Output && sp >= 0) {
      channel_values[{sp, kEnvironment}].insert(edge.src);
    } else if (sp >= 0 && dp >= 0 && sp != dp) {
      channel_values[{sp, dp}].insert(edge.src);
    }
  }

  for (const auto& [channel, values] : channel_values) {
    const auto& [sp, dp] = channel;
    DataTransfer t;
    t.src_partition = sp;
    t.dst_partition = dp;
    for (dfg::NodeId v : values) t.bits += g.node(v).width;
    if (sp == kEnvironment) {
      t.kind = DataTransfer::Kind::InputDelivery;
      t.name = "env->" + partitions[static_cast<std::size_t>(dp)].name;
      touch_chip(t, partitions[static_cast<std::size_t>(dp)].chip);
    } else if (dp == kEnvironment) {
      t.kind = DataTransfer::Kind::OutputCollection;
      t.name = partitions[static_cast<std::size_t>(sp)].name + "->env";
      touch_chip(t, partitions[static_cast<std::size_t>(sp)].chip);
    } else {
      t.kind = DataTransfer::Kind::Interpartition;
      t.name = partitions[static_cast<std::size_t>(sp)].name + "->" +
               partitions[static_cast<std::size_t>(dp)].name;
      const int sc = partitions[static_cast<std::size_t>(sp)].chip;
      const int dc = partitions[static_cast<std::size_t>(dp)].chip;
      if (sc != dc) {
        touch_chip(t, sc);
        touch_chip(t, dc);
      }
      // Same-chip transfers keep an empty chip list: no pins crossed.
    }
    out.push_back(std::move(t));
  }

  // --- memory transfers: per (partition, block, direction) ---------------
  std::map<std::tuple<int, int, bool>, Bits> memory_traffic;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const dfg::NodeId id = static_cast<dfg::NodeId>(i);
    const dfg::Node& n = g.node(id);
    if (n.kind != dfg::OpKind::MemRead && n.kind != dfg::OpKind::MemWrite) {
      continue;
    }
    const int p = owner[i];
    CHOP_ASSERT(p >= 0, "memory operation must be assigned to a partition");
    const bool is_write = n.kind == dfg::OpKind::MemWrite;
    const Bits word =
        pt.memory().blocks[static_cast<std::size_t>(n.memory_block)].word_bits;
    memory_traffic[{p, n.memory_block, is_write}] += word;
  }
  (void)np;

  for (const auto& [key, bits] : memory_traffic) {
    const auto& [p, block, is_write] = key;
    const int part_chip = partitions[static_cast<std::size_t>(p)].chip;
    const int mem_chip = pt.memory().placement(block);

    DataTransfer t;
    t.kind = is_write ? DataTransfer::Kind::MemoryWrite
                      : DataTransfer::Kind::MemoryRead;
    t.memory_block = block;
    t.bits = bits;
    const std::string& block_name =
        pt.memory().blocks[static_cast<std::size_t>(block)].name;
    if (is_write) {
      t.src_partition = p;
      t.name = partitions[static_cast<std::size_t>(p)].name + "->" + block_name;
    } else {
      t.dst_partition = p;
      t.name = block_name + "->" + partitions[static_cast<std::size_t>(p)].name;
    }
    if (mem_chip != part_chip) {
      touch_chip(t, part_chip);
      if (mem_chip != chip::kOffTheShelfChip) touch_chip(t, mem_chip);
      // An off-the-shelf memory chip has dedicated data pins sized for its
      // word; only the partition's chip pins constrain the transfer.
    }
    out.push_back(std::move(t));
  }

  static obs::Counter& created =
      obs::MetricsRegistry::global().counter("integration.transfer_tasks");
  created.add(out.size());
  return out;
}

std::vector<Pins> reserved_control_pins(
    const Partitioning& pt, const std::vector<DataTransfer>& transfers,
    Pins handshake_pins_per_transfer) {
  std::vector<Pins> reserved;
  reserved_control_pins_into(pt, transfers, handshake_pins_per_transfer,
                             reserved);
  return reserved;
}

void reserved_control_pins_into(const Partitioning& pt,
                                const std::vector<DataTransfer>& transfers,
                                Pins handshake_pins_per_transfer,
                                std::vector<Pins>& reserved) {
  CHOP_REQUIRE(handshake_pins_per_transfer >= 0,
               "handshake pin reserve cannot be negative");
  reserved.assign(pt.chips().size(), 0);

  // Memory Select/R-W lines: a chip reserves the block's control pins when
  // it talks to a block that lives elsewhere, and when it hosts a block
  // that is accessed from elsewhere (one bundle per remote relationship).
  std::set<std::pair<int, int>> chip_block_lines;  // (chip, block)
  for (const DataTransfer& t : transfers) {
    if (t.memory_block < 0 || !t.crosses_pins()) continue;
    for (int c : t.chips) chip_block_lines.insert({c, t.memory_block});
  }
  for (const auto& [c, block] : chip_block_lines) {
    reserved[static_cast<std::size_t>(c)] +=
        pt.memory().blocks[static_cast<std::size_t>(block)].control_pins;
  }

  // Distributed-controller handshake lines per pin-crossing transfer.
  for (const DataTransfer& t : transfers) {
    for (int c : t.chips) {
      reserved[static_cast<std::size_t>(c)] += handshake_pins_per_transfer;
    }
  }
}

}  // namespace chop::core
