// Clock and architecture-style exploration — automating the sweep behind
// the paper's two experiments. §2.2 makes the clock family an *input*
// ("The clock cycle is an input to the system ... determination of the
// system clock cycle is also influenced by other design factors"), and
// §3.2 observes that "the faster the data path clock, the more design
// possibilities exist for a given set of design constraints". This module
// evaluates a list of (style, clock-family) candidates over one
// partitioning and reports the feasibility frontier, so the designer can
// pick the clocking the same way CHOP lets them pick partitions.
#pragma once

#include <string>
#include <vector>

#include "core/session.hpp"

namespace chop::core {

/// One clocking candidate to evaluate.
struct ClockCandidate {
  bad::ArchitectureStyle style;
  bad::ClockSpec clocks;

  std::string label() const;
};

/// Outcome of one candidate.
struct ClockPoint {
  ClockCandidate candidate;
  std::size_t predictions = 0;  ///< Raw BAD predictions (design richness).
  std::size_t eligible = 0;     ///< After level-1 pruning.
  bool feasible = false;
  Cycles best_ii = 0;
  Cycles best_delay = 0;
  Ns best_performance_ns = 0.0;  ///< II x adjusted clock, absolute.
  Ns best_delay_ns = 0.0;
};

/// Full sweep result. `best_index` is the feasible point with the lowest
/// absolute performance (then delay), or -1 when nothing is feasible.
struct ClockExplorationResult {
  std::vector<ClockPoint> points;
  int best_index = -1;

  const ClockPoint* best() const {
    return best_index < 0 ? nullptr
                          : &points[static_cast<std::size_t>(best_index)];
  }
};

/// The two clockings of the paper's experiments plus denser multipliers —
/// a reasonable default sweep around a main clock.
std::vector<ClockCandidate> default_clock_candidates(Ns main_clock = 300.0);

/// Evaluates every candidate on `session`'s current partitioning. Leaves
/// the session configured with the best candidate (or the last evaluated
/// when none is feasible) and its predictions installed.
ClockExplorationResult explore_clocks(
    ChopSession& session, const std::vector<ClockCandidate>& candidates,
    const SearchOptions& search = {});

}  // namespace chop::core
