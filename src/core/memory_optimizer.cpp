#include "core/memory_optimizer.hpp"

#include <limits>

#include "obs/trace.hpp"

namespace chop::core {

namespace {

/// Comparable score of one evaluated placement; smaller is better.
struct Score {
  bool feasible = false;
  Cycles ii = std::numeric_limits<Cycles>::max();
  Cycles delay = std::numeric_limits<Cycles>::max();
  std::size_t eligible = 0;  // gradient when infeasible

  bool better_than(const Score& other) const {
    if (feasible != other.feasible) return feasible;
    if (feasible) {
      if (ii != other.ii) return ii < other.ii;
      return delay < other.delay;
    }
    return eligible > other.eligible;
  }
};

Score evaluate(ChopSession& session, const SearchOptions& options,
               SearchResult& out) {
  Score score;
  const PredictionStats stats = session.predict_partitions();
  score.eligible = stats.feasible;
  out = session.search(options);
  if (!out.designs.empty()) {
    score.feasible = true;
    score.ii = out.designs.front().integration.ii_main;
    score.delay = out.designs.front().integration.system_delay_main;
  }
  return score;
}

}  // namespace

MemoryPlacementResult optimize_memory_placement(
    ChopSession& session, const MemoryPlacementOptions& options) {
  obs::TraceSpan span("memory_optimizer");
  const std::size_t blocks =
      session.partitioning().memory().blocks.size();
  const int chips = static_cast<int>(session.partitioning().chips().size());

  MemoryPlacementResult result;
  result.placement = session.partitioning().memory().chip_of_block;

  if (blocks == 0) {
    // Nothing to optimize; evaluate the current state for a uniform API.
    Score score = evaluate(session, options.search, result.search);
    (void)score;
    result.evaluated = 1;
    return result;
  }

  // Candidate locations per block.
  std::vector<int> candidates;
  for (int c = 0; c < chips; ++c) candidates.push_back(c);
  if (options.allow_off_the_shelf) {
    candidates.push_back(chip::kOffTheShelfChip);
  }
  CHOP_REQUIRE(!candidates.empty(), "no candidate memory locations");

  std::vector<std::size_t> odo(blocks, 0);
  Score best;
  bool have_best = false;
  std::vector<int> best_placement = result.placement;
  SearchResult best_search;

  bool done = false;
  while (!done) {
    if (result.evaluated >= options.max_placements) {
      result.truncated = true;
      break;
    }
    // Install this placement.
    for (std::size_t b = 0; b < blocks; ++b) {
      session.mutate_partitioning().set_memory_placement(
          static_cast<int>(b), candidates[odo[b]]);
    }
    SearchResult search;
    const Score score = evaluate(session, options.search, search);
    ++result.evaluated;
    if (!have_best || score.better_than(best)) {
      have_best = true;
      best = score;
      best_placement = session.partitioning().memory().chip_of_block;
      best_search = std::move(search);
    }

    for (std::size_t b = 0;; ++b) {
      if (b == blocks) {
        done = true;
        break;
      }
      if (++odo[b] < candidates.size()) break;
      odo[b] = 0;
    }
  }

  // Install and re-predict the winner so the session is consistent.
  for (std::size_t b = 0; b < blocks; ++b) {
    session.mutate_partitioning().set_memory_placement(static_cast<int>(b),
                                                       best_placement[b]);
  }
  session.predict_partitions();
  result.placement = std::move(best_placement);
  result.search = std::move(best_search);
  span.arg("evaluated", result.evaluated);
  span.arg("truncated", result.truncated);
  return result;
}

}  // namespace chop::core
