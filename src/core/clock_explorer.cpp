#include "core/clock_explorer.hpp"

#include <sstream>

#include "obs/trace.hpp"

namespace chop::core {

std::string ClockCandidate::label() const {
  std::ostringstream os;
  os << to_string(style.clocking) << ' ' << clocks.main_clock << "ns x"
     << clocks.datapath_multiplier << "/x" << clocks.transfer_multiplier;
  if (!style.allow_pipelining) os << " (nopipe)";
  return os.str();
}

std::vector<ClockCandidate> default_clock_candidates(Ns main_clock) {
  std::vector<ClockCandidate> out;
  auto add = [&](bad::ClockingStyle clocking, int dp_mult) {
    ClockCandidate c;
    c.style.clocking = clocking;
    c.clocks = {main_clock, dp_mult, 1};
    out.push_back(c);
  };
  // Experiment 1's style, plus intermediate datapath clocks.
  add(bad::ClockingStyle::SingleCycle, 10);
  add(bad::ClockingStyle::SingleCycle, 5);
  add(bad::ClockingStyle::SingleCycle, 2);
  // Experiment 2's style at a few datapath granularities.
  add(bad::ClockingStyle::MultiCycle, 1);
  add(bad::ClockingStyle::MultiCycle, 2);
  return out;
}

ClockExplorationResult explore_clocks(
    ChopSession& session, const std::vector<ClockCandidate>& candidates,
    const SearchOptions& search) {
  CHOP_REQUIRE(!candidates.empty(), "clock exploration needs candidates");
  obs::TraceSpan span("clock_explorer");
  span.arg("candidates", candidates.size());
  ClockExplorationResult out;
  out.points.reserve(candidates.size());

  for (const ClockCandidate& candidate : candidates) {
    obs::TraceSpan candidate_span("clock_explorer.candidate");
    candidate_span.arg("clock", candidate.label());
    session.set_clocking(candidate.style, candidate.clocks);
    ClockPoint point;
    point.candidate = candidate;
    const PredictionStats stats = session.predict_partitions();
    point.predictions = stats.total;
    point.eligible = stats.feasible;
    const SearchResult result = session.search(search);
    if (!result.designs.empty()) {
      const IntegrationResult& best = result.designs.front().integration;
      point.feasible = true;
      point.best_ii = best.ii_main;
      point.best_delay = best.system_delay_main;
      point.best_performance_ns = best.performance_ns.likely();
      point.best_delay_ns = best.delay_ns.likely();
    }
    out.points.push_back(point);

    if (point.feasible) {
      const ClockPoint* incumbent = out.best();
      if (incumbent == nullptr ||
          point.best_performance_ns < incumbent->best_performance_ns ||
          (point.best_performance_ns == incumbent->best_performance_ns &&
           point.best_delay_ns < incumbent->best_delay_ns)) {
        out.best_index = static_cast<int>(out.points.size() - 1);
      }
    }
  }

  // Leave the session on the winner so the designer can continue there.
  if (out.best_index >= 0) {
    const ClockCandidate& winner =
        out.points[static_cast<std::size_t>(out.best_index)].candidate;
    session.set_clocking(winner.style, winner.clocks);
    session.predict_partitions();
  }
  return out;
}

}  // namespace chop::core
