// Automatic constraint-driven partitioning — the paper's "immediate
// applications" (§1): "behavioral partitioning, system-level advising and
// task creation based on a custom-designed processor style." CHOP itself
// keeps the designer in the loop; this module closes that loop with the
// same moves a designer makes in §2.7 (operation migration between
// partitions), driven by the predict-and-search feedback.
//
// Algorithm: start from a level-order cut (one partition per chip),
// evaluate it, then greedily try migrating boundary operations — an
// operation with a cut edge — into the partition on the other side of the
// cut. A move is kept when it improves the score (feasibility first, then
// best II, then best delay, then level-1-feasible prediction count as a
// gradient when everything is infeasible). Stops at a local optimum or
// the iteration cap. Every accepted move is logged in designer-readable
// form — the "system-level advisor" output.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace chop::core {

/// Knobs for auto_partition().
struct AutoPartitionOptions {
  SearchOptions search;     ///< Evaluation search (iterative by default).
  int max_iterations = 64;  ///< Accepted-move budget per restart.
  /// Evaluate at most this many candidate moves per iteration (boundary
  /// operations are ordered by cut width, widest first).
  int max_candidates_per_iteration = 12;
  /// Greedy restarts from diverse seeds: the level-order cut, a repaired
  /// Kernighan-Lin cut, then repaired random cuts. Greedy migration only
  /// reaches a local optimum, so seed diversity is the escape hatch.
  int restarts = 3;
  std::uint64_t rng_seed = 1;

  AutoPartitionOptions() { search.heuristic = Heuristic::Iterative; }
};

/// Result of the automatic partitioning run.
struct AutoPartitionResult {
  /// Best member lists found, indexed by partition (= chip) index.
  std::vector<std::vector<dfg::NodeId>> members;
  /// Search result at the best partitioning.
  SearchResult search;
  int accepted_moves = 0;
  std::size_t evaluations = 0;  ///< predict+search pipeline runs.
  /// Designer-readable decision trail.
  std::vector<std::string> log;

  bool feasible() const { return !search.designs.empty(); }
};

/// Automatically partitions `spec` onto `chips` (one partition per chip)
/// under `config`, starting from a level-order cut. The memory subsystem
/// placement is taken as given (combine with optimize_memory_placement()
/// for the full interleaved loop).
AutoPartitionResult auto_partition(const dfg::Graph& spec,
                                   const lib::ComponentLibrary& library,
                                   std::vector<chip::ChipInstance> chips,
                                   chip::MemorySubsystem memory,
                                   const ChopConfig& config,
                                   const AutoPartitionOptions& options = {});

}  // namespace chop::core
