#include "core/auto_partition.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "baseline/partition_builders.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chop::core {

namespace {

/// Comparable quality of one evaluated partitioning; smaller-is-better
/// fields folded into better_than().
struct Score {
  bool feasible = false;
  Cycles ii = std::numeric_limits<Cycles>::max();
  Cycles delay = std::numeric_limits<Cycles>::max();
  std::size_t eligible = 0;
  Bits cut_bits = 0;  // infeasible-plateau gradient: thinner cut is better

  bool better_than(const Score& other) const {
    if (feasible != other.feasible) return feasible;
    if (feasible) {
      if (ii != other.ii) return ii < other.ii;
      return delay < other.delay;
    }
    if (eligible != other.eligible) return eligible > other.eligible;
    return cut_bits < other.cut_bits;
  }

  std::string describe() const {
    std::ostringstream os;
    if (feasible) {
      os << "feasible II=" << ii << "c delay=" << delay << "c";
    } else {
      os << "infeasible (" << eligible << " eligible predictions)";
    }
    return os.str();
  }
};

/// One candidate migration: move `op` from partition `from` to `to`.
struct Move {
  dfg::NodeId op = dfg::kNoNode;
  int from = -1;
  int to = -1;
  Bits cut_width = 0;  // width of the crossing edges this op touches
};

/// Builds a session over `members` (partition p -> chip p). Returns
/// nullopt when the member lists violate the structural rules (e.g. a
/// migration created a quotient cycle).
std::optional<ChopSession> make_session(
    const dfg::Graph& spec, const lib::ComponentLibrary& library,
    const std::vector<chip::ChipInstance>& chips,
    const chip::MemorySubsystem& memory, const ChopConfig& config,
    const std::vector<std::vector<dfg::NodeId>>& members) {
  try {
    Partitioning pt(spec, chips, memory);
    for (std::size_t p = 0; p < members.size(); ++p) {
      pt.add_partition("P" + std::to_string(p + 1), members[p],
                       static_cast<int>(p));
    }
    pt.validate();
    return ChopSession(library, std::move(pt), config);
  } catch (const Error&) {
    return std::nullopt;
  }
}

Score evaluate(ChopSession& session, const SearchOptions& options,
               SearchResult& out) {
  Score score;
  score.eligible = session.predict_partitions().feasible;
  for (const DataTransfer& t : session.transfer_tasks()) {
    if (t.crosses_pins()) score.cut_bits += t.bits;
  }
  out = session.search(options);
  if (!out.designs.empty()) {
    score.feasible = true;
    score.ii = out.designs.front().integration.ii_main;
    score.delay = out.designs.front().integration.system_delay_main;
  }
  return score;
}

/// Boundary operations of the current cut, widest crossing traffic first.
std::vector<Move> boundary_moves(
    const dfg::Graph& spec,
    const std::vector<std::vector<dfg::NodeId>>& members) {
  std::vector<int> owner(spec.node_count(), -1);
  for (std::size_t p = 0; p < members.size(); ++p) {
    for (dfg::NodeId id : members[p]) {
      owner[static_cast<std::size_t>(id)] = static_cast<int>(p);
    }
  }
  std::map<std::pair<dfg::NodeId, int>, Bits> crossing;  // (op, other side)
  for (std::size_t e = 0; e < spec.edge_count(); ++e) {
    const dfg::Edge& edge = spec.edge(static_cast<dfg::EdgeId>(e));
    const int a = owner[static_cast<std::size_t>(edge.src)];
    const int b = owner[static_cast<std::size_t>(edge.dst)];
    if (a < 0 || b < 0 || a == b) continue;
    crossing[{edge.src, b}] += edge.width;  // producer could move forward
    crossing[{edge.dst, a}] += edge.width;  // consumer could move backward
  }
  std::vector<Move> moves;
  for (const auto& [key, width] : crossing) {
    const auto& [op, to] = key;
    const int from = owner[static_cast<std::size_t>(op)];
    // Never empty a partition.
    if (members[static_cast<std::size_t>(from)].size() <= 1) continue;
    moves.push_back(Move{op, from, to, width});
  }
  std::sort(moves.begin(), moves.end(), [](const Move& x, const Move& y) {
    if (x.cut_width != y.cut_width) return x.cut_width > y.cut_width;
    if (x.op != y.op) return x.op < y.op;
    return x.to < y.to;
  });
  return moves;
}

std::vector<std::vector<dfg::NodeId>> apply_move(
    std::vector<std::vector<dfg::NodeId>> members, const Move& move) {
  auto& from = members[static_cast<std::size_t>(move.from)];
  from.erase(std::find(from.begin(), from.end(), move.op));
  members[static_cast<std::size_t>(move.to)].push_back(move.op);
  return members;
}

}  // namespace

AutoPartitionResult auto_partition(const dfg::Graph& spec,
                                   const lib::ComponentLibrary& library,
                                   std::vector<chip::ChipInstance> chips,
                                   chip::MemorySubsystem memory,
                                   const ChopConfig& config,
                                   const AutoPartitionOptions& options) {
  obs::TraceSpan span("auto_partition");
  static obs::Counter& evaluations =
      obs::MetricsRegistry::global().counter("auto.evaluations");
  static obs::Counter& accepted =
      obs::MetricsRegistry::global().counter("auto.moves_accepted");
  CHOP_REQUIRE(!chips.empty(), "auto_partition needs at least one chip");
  CHOP_REQUIRE(options.max_iterations >= 0 &&
                   options.max_candidates_per_iteration >= 1,
               "auto_partition option out of range");

  // Seed: level-order cut, one partition per chip.
  const std::vector<dfg::NodeId> ops = spec.partitionable_operations();
  AutoPartitionResult result;
  const int k = static_cast<int>(chips.size());
  Rng rng(options.rng_seed);

  // One memo cache across every candidate cut, seed and restart: a greedy
  // step that moves one op leaves most candidate selections content-
  // identical, and rejected moves get re-probed from later states — both
  // become cache hits. Content-hashed keys make cross-session sharing
  // safe (each candidate session would otherwise get a private cache).
  CandidateEvaluator shared_evaluator;
  SearchOptions search_options = options.search;
  if (search_options.evaluator == nullptr) {
    search_options.evaluator = &shared_evaluator;
  }

  // Diverse seeds (shared recipe with the gen portfolio); each must be
  // quotient-acyclic before use.
  const std::vector<baseline::SeedPartition> seeds =
      baseline::diverse_seed_partitions(spec, ops, k, options.restarts, rng);

  Score global_best;
  bool have_global = false;

  for (const auto& [seed_name, seed_members] : seeds) {
    if (static_cast<int>(seed_members.size()) != k) continue;  // repair merged
    obs::TraceSpan seed_span("auto_partition.seed");
    seed_span.arg("seed", seed_name);
    std::vector<std::vector<dfg::NodeId>> members = seed_members;
    auto session =
        make_session(spec, library, chips, memory, config, members);
    if (!session) continue;
    std::vector<std::string> log;
    SearchResult search;
    Score best = evaluate(*session, search_options, search);
    ++result.evaluations;
    evaluations.add();
    log.push_back("seed (" + seed_name + "): " + best.describe());
    int moves_accepted = 0;

    for (int iter = 0; iter < options.max_iterations; ++iter) {
      const std::vector<Move> moves = boundary_moves(spec, members);
      bool improved = false;
      int considered = 0;
      for (const Move& move : moves) {
        if (considered >= options.max_candidates_per_iteration) break;
        auto candidate_members = apply_move(members, move);
        auto candidate = make_session(spec, library, chips, memory, config,
                                      candidate_members);
        if (!candidate) continue;  // migration created a quotient cycle
        ++considered;
        SearchResult candidate_search;
        const Score score =
            evaluate(*candidate, search_options, candidate_search);
        ++result.evaluations;
        evaluations.add();
        if (score.better_than(best)) {
          best = score;
          members = std::move(candidate_members);
          search = std::move(candidate_search);
          ++moves_accepted;
          accepted.add();
          std::ostringstream os;
          os << "move " << spec.node(move.op).name << " (op " << move.op
             << ") P" << move.from + 1 << " -> P" << move.to + 1 << ": "
             << best.describe();
          log.push_back(os.str());
          improved = true;
          break;  // greedy: re-derive the boundary after each accepted move
        }
      }
      if (!improved) break;  // local optimum for this seed
    }

    if (!have_global || best.better_than(global_best)) {
      have_global = true;
      global_best = best;
      result.members = std::move(members);
      result.search = std::move(search);
      result.accepted_moves = moves_accepted;
      result.log = std::move(log);
    }
    // Feasible and as fast as a single datapath cycle? Nothing can beat it.
    if (global_best.feasible && global_best.ii <= 1) break;
  }

  CHOP_REQUIRE(have_global, "no valid seed partitioning could be built");
  result.log.push_back("final: " + global_best.describe());
  span.arg("evaluations", result.evaluations);
  span.arg("moves_accepted", result.accepted_moves);
  return result;
}

}  // namespace chop::core
