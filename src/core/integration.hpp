// System integration prediction (paper §2.5-§2.6): given one selected
// implementation per partition, predict the data transfer module
// characteristics, the clock-cycle overhead, the overall system
// performance and delay, and run the probabilistic feasibility analysis
// per chip-area / performance / delay constraint.
//
// The model follows the paper:
//  * each transfer uses the maximum possible bandwidth — the minimum
//    available data pins over the chips involved;
//  * transfer time X = ceil(D / pins) transfer-clock cycles, and X must not
//    exceed the initiation interval (pin counts are hard; longer would
//    cause data clashes);
//  * an urgency schedule over shared chip pins and memory ports yields the
//    system delay (the overall process is treated as pipelined, so demand
//    is folded modulo the initiation interval);
//  * buffer size B = D * (ceil(W / l) + X / l);
//  * each transfer places one module on every involved chip (output mode
//    at the source, input mode at destinations); module area = buffers +
//    pin multiplexing + a PLA controller sized from the wait/transfer
//    times by the same methods used in BAD.
#pragma once

#include <string>
#include <vector>

#include "bad/controller_model.hpp"
#include "bad/prediction.hpp"
#include "bad/style.hpp"
#include "core/constraints.hpp"
#include "core/eval/eval_context.hpp"
#include "core/transfer.hpp"
#include "util/statval.hpp"

namespace chop::core {

/// Predicted implementation of one data transfer task.
struct TransferPlan {
  DataTransfer task;
  Pins pins = 0;              ///< Bandwidth actually allocated.
  Cycles transfer_cycles = 0; ///< X, in main-clock cycles.
  Cycles wait_cycles = 0;     ///< W, from the urgency schedule.
  Bits buffer_bits = 0;       ///< B = D * (ceil(W/l) + X/l).
  bad::PlaEstimate controller;
  StatVal module_area;        ///< Per involved chip (buffers + mux + PLA).
  StatVal module_power_mw;    ///< Pads at duty X/l + support logic.
};

/// Everything the integration predicts for one global implementation.
struct IntegrationResult {
  bool feasible = false;
  std::string reason;  ///< First failure, empty when feasible.

  Cycles ii_main = 0;           ///< System initiation interval (main cycles).
  Cycles system_delay_main = 0; ///< Input-to-output makespan (main cycles).
  StatVal adjusted_clock_ns;    ///< Main clock after overhead adjustment.
  StatVal performance_ns;       ///< ii * clock.
  StatVal delay_ns;             ///< makespan * clock.

  std::vector<StatVal> chip_area;  ///< Predicted used area per chip.
  std::vector<int> violated_chips; ///< Chips whose area check failed.
  std::vector<StatVal> chip_power_mw;  ///< Predicted power per chip.
  StatVal system_power_mw;             ///< Sum over chips.
  std::vector<TransferPlan> transfers;

  /// Clock cycle column of Tables 4/6 (most-likely adjusted clock).
  Ns clock_ns() const { return adjusted_clock_ns.likely(); }
};

/// Integrates `selection` (one prediction per partition, indexed like
/// ctx.partitioning().partitions()) at system initiation interval
/// `ii_main` main-clock cycles. The context carries the partitioning, its
/// transfer tasks (from create_transfer_tasks), the clock family, the
/// constraint budget, the feasibility criteria and any extra reserved
/// pins. Pure: same context + selection + ii always yields the same
/// result, which is what lets CandidateEvaluator memoize it.
IntegrationResult integrate(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    Cycles ii_main);

/// The constraint-independent half of an integration: everything integrate()
/// derives from the partitioning, transfers, clocks and predictions alone —
/// transfer plans, the urgency schedule, buffers, per-chip areas and powers,
/// the adjusted clock and the absolute performance/delay figures. The result
/// is a pure function of EvalContext::core_fingerprint() inputs plus the
/// selection, so it can be memoized across constraint/criteria edits (the
/// §2.7 tighten/loosen-constraint group) and re-judged cheaply.
///
/// `structural_fail` marks combinations that die before the verdict —
/// rate mismatch, pin exhaustion, transfers that cannot fit the initiation
/// interval, an infeasible urgency schedule. Those carry their final reason
/// in `partial` already; apply_verdict() only accounts them.
struct IntegrationCore {
  IntegrationResult partial;
  bool structural_fail = false;
};

IntegrationCore integrate_core(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    Cycles ii_main);

/// The verdict half: checks `core` against ctx's constraints and criteria
/// (chip area, performance, delay, power) and fills violated_chips /
/// feasible / reason. integrate() == apply_verdict(ctx, integrate_core(...)).
IntegrationResult apply_verdict(const EvalContext& ctx,
                                const IntegrationCore& core);

/// The performance bound a combination implies: the slowest selected
/// implementation ("the performance of each combination is upper bounded
/// and set by the slowest partition implementation").
Cycles combination_ii(const std::vector<const bad::DesignPrediction*>& selection);

/// The paper's data-rate-mismatch rule: two or more *pipelined*
/// implementations with different initiation intervals cannot be
/// integrated. Returns true when the combination is rate-compatible.
bool rates_compatible(const std::vector<const bad::DesignPrediction*>& selection);

}  // namespace chop::core
