#include "core/partitioning.hpp"

#include <algorithm>

namespace chop::core {

Partitioning::Partitioning(const dfg::Graph& spec,
                           std::vector<chip::ChipInstance> chips,
                           chip::MemorySubsystem memory)
    : spec_(&spec), chips_(std::move(chips)), memory_(std::move(memory)) {
  CHOP_REQUIRE(!chips_.empty(), "partitioning needs at least one chip");
  for (const chip::ChipInstance& c : chips_) c.package.validate();
  memory_.validate(static_cast<int>(chips_.size()));
}

int Partitioning::add_partition(std::string name,
                                std::vector<dfg::NodeId> members, int chip) {
  CHOP_REQUIRE(chip >= 0 && static_cast<std::size_t>(chip) < chips_.size(),
               "partition assigned to a nonexistent chip");
  CHOP_REQUIRE(!members.empty(), "partition must not be empty");
  partitions_.push_back(Partition{std::move(name), std::move(members), chip});
  return static_cast<int>(partitions_.size() - 1);
}

void Partitioning::move_operation(dfg::NodeId op, int to_partition) {
  CHOP_REQUIRE(to_partition >= 0 &&
                   static_cast<std::size_t>(to_partition) < partitions_.size(),
               "destination partition does not exist");
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    auto& members = partitions_[p].members;
    auto it = std::find(members.begin(), members.end(), op);
    if (it == members.end()) continue;
    if (static_cast<int>(p) == to_partition) return;  // already there
    CHOP_REQUIRE(members.size() > 1,
                 "cannot empty a partition by migration; delete it instead");
    members.erase(it);
    partitions_[static_cast<std::size_t>(to_partition)].members.push_back(op);
    return;
  }
  throw Error("chop: operation is not assigned to any partition");
}

void Partitioning::move_partition_to_chip(int partition, int chip) {
  CHOP_REQUIRE(partition >= 0 &&
                   static_cast<std::size_t>(partition) < partitions_.size(),
               "partition does not exist");
  CHOP_REQUIRE(chip >= 0 && static_cast<std::size_t>(chip) < chips_.size(),
               "chip does not exist");
  partitions_[static_cast<std::size_t>(partition)].chip = chip;
}

void Partitioning::set_memory_placement(int block, int placement) {
  CHOP_REQUIRE(block >= 0 && static_cast<std::size_t>(block) <
                                 memory_.chip_of_block.size(),
               "memory block does not exist");
  CHOP_REQUIRE(placement == chip::kOffTheShelfChip ||
                   (placement >= 0 &&
                    static_cast<std::size_t>(placement) < chips_.size()),
               "memory placement names a nonexistent chip");
  memory_.chip_of_block[static_cast<std::size_t>(block)] = placement;
}

void Partitioning::replace_chip_package(int chip, chip::ChipPackage package) {
  CHOP_REQUIRE(chip >= 0 && static_cast<std::size_t>(chip) < chips_.size(),
               "chip does not exist");
  package.validate();
  chips_[static_cast<std::size_t>(chip)].package = std::move(package);
}

std::vector<int> Partitioning::partition_of_node() const {
  std::vector<int> owner(spec_->node_count(), -1);
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    for (dfg::NodeId id : partitions_[p].members) {
      CHOP_REQUIRE(id >= 0 &&
                       static_cast<std::size_t>(id) < spec_->node_count(),
                   "partition member id out of range");
      CHOP_REQUIRE(owner[static_cast<std::size_t>(id)] == -1,
                   "operation assigned to two partitions");
      owner[static_cast<std::size_t>(id)] = static_cast<int>(p);
    }
  }
  return owner;
}

dfg::Subgraph Partitioning::subgraph(int p) const {
  CHOP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < partitions_.size(),
               "partition index out of range");
  return dfg::induced_subgraph(*spec_,
                               partitions_[static_cast<std::size_t>(p)].members);
}

std::vector<int> Partitioning::partitions_on_chip(int chip) const {
  std::vector<int> out;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (partitions_[p].chip == chip) out.push_back(static_cast<int>(p));
  }
  return out;
}

void Partitioning::validate() const {
  CHOP_REQUIRE(!partitions_.empty(), "partitioning has no partitions");
  const std::vector<int> owner = partition_of_node();  // checks disjointness

  for (std::size_t i = 0; i < spec_->node_count(); ++i) {
    const dfg::Node& n = spec_->node(static_cast<dfg::NodeId>(i));
    if (dfg::is_partitionable(n.kind)) {
      CHOP_REQUIRE(owner[i] >= 0, "operation not assigned to any partition");
    } else {
      CHOP_REQUIRE(owner[i] == -1,
                   "graph boundary nodes cannot be partition members");
    }
  }

  for (const Partition& p : partitions_) {
    CHOP_REQUIRE(p.chip >= 0 && static_cast<std::size_t>(p.chip) < chips_.size(),
                 "partition assigned to a nonexistent chip");
  }
  memory_.validate(static_cast<int>(chips_.size()));

  // Every memory operation must reference a declared block — transfer
  // creation indexes the block table with these ids unchecked.
  for (std::size_t i = 0; i < spec_->node_count(); ++i) {
    const dfg::Node& n = spec_->node(static_cast<dfg::NodeId>(i));
    if (n.kind == dfg::OpKind::MemRead || n.kind == dfg::OpKind::MemWrite) {
      CHOP_REQUIRE(n.memory_block >= 0 &&
                       static_cast<std::size_t>(n.memory_block) <
                           memory_.blocks.size(),
                   "memory operation references an undeclared memory block");
    }
  }

  // Quotient graph acyclicity: "no two partitions should have mutual data
  // dependency" and no cycles among same-chip partitions either.
  const std::size_t n = partitions_.size();
  std::vector<std::vector<int>> succ(n);
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<bool>> seen(n, std::vector<bool>(n, false));
  for (std::size_t e = 0; e < spec_->edge_count(); ++e) {
    const dfg::Edge& edge = spec_->edge(static_cast<dfg::EdgeId>(e));
    const int a = owner[static_cast<std::size_t>(edge.src)];
    const int b = owner[static_cast<std::size_t>(edge.dst)];
    if (a < 0 || b < 0 || a == b) continue;
    if (!seen[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
      seen[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
      succ[static_cast<std::size_t>(a)].push_back(b);
      indeg[static_cast<std::size_t>(b)]++;
    }
  }
  std::vector<int> ready;
  for (std::size_t p = 0; p < n; ++p) {
    if (indeg[p] == 0) ready.push_back(static_cast<int>(p));
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const int p = ready.back();
    ready.pop_back();
    ++processed;
    for (int s : succ[static_cast<std::size_t>(p)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  CHOP_REQUIRE(processed == n,
               "partitions have mutual data dependency (quotient graph "
               "cycle); split differently");
}

}  // namespace chop::core
