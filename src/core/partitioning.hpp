// The partitioning model: partitions of the behavioral specification,
// their chip assignments, the target chip set and the memory subsystem
// (paper §2.2 input groups 3-5 and the structural rules of §2.3/§2.4):
//
//  * there can be multiple partitions assigned to a single chip;
//  * partitions on the same chip may depend on each other as long as there
//    are no cycles;
//  * no two partitions may have *mutual* data dependency (the partition
//    quotient graph must be acyclic) — predictions assume independent
//    implementation of each partition;
//  * memory blocks can share chips with partitions, or be off-the-shelf
//    memory chips.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "chip/memory.hpp"
#include "chip/package.hpp"
#include "dfg/graph.hpp"
#include "dfg/subgraph.hpp"

namespace chop::core {

/// One partition: a named set of operation nodes assigned to a chip.
struct Partition {
  std::string name;
  std::vector<dfg::NodeId> members;
  int chip = 0;  ///< Index into Partitioning::chips.
};

/// The complete tentative partitioning a designer manipulates. The
/// specification graph is referenced, not owned, and must outlive the
/// Partitioning.
class Partitioning {
 public:
  Partitioning(const dfg::Graph& spec, std::vector<chip::ChipInstance> chips,
               chip::MemorySubsystem memory = {});

  const dfg::Graph& spec() const { return *spec_; }
  const std::vector<chip::ChipInstance>& chips() const { return chips_; }
  const chip::MemorySubsystem& memory() const { return memory_; }
  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Adds a partition; returns its index. Members are validated lazily by
  /// validate().
  int add_partition(std::string name, std::vector<dfg::NodeId> members,
                    int chip);

  // --- the §2.7 modification groups -------------------------------------

  /// Behavioral modification: migrate one operation between partitions.
  void move_operation(dfg::NodeId op, int to_partition);

  /// Behavioral modification: migrate a whole partition to another chip.
  void move_partition_to_chip(int partition, int chip);

  /// Memory modification: re-place a memory block (chip index or
  /// chip::kOffTheShelfChip).
  void set_memory_placement(int block, int placement);

  /// Target-chip-set modification: swap the package of chip `chip`.
  void replace_chip_package(int chip, chip::ChipPackage package);

  // --- derived views -----------------------------------------------------

  /// Partition index per spec node (-1 for unassigned/boundary nodes).
  std::vector<int> partition_of_node() const;

  /// Standalone subgraph of partition `p` (the unit BAD predicts).
  dfg::Subgraph subgraph(int p) const;

  /// Partition indices assigned to `chip`.
  std::vector<int> partitions_on_chip(int chip) const;

  /// Checks all structural rules: members in range, disjoint, every
  /// functional operation assigned, chips in range, memory placements
  /// valid, and the partition quotient graph acyclic ("no two partitions
  /// should have mutual data dependency"). Throws chop::Error.
  void validate() const;

 private:
  const dfg::Graph* spec_;
  std::vector<chip::ChipInstance> chips_;
  chip::MemorySubsystem memory_;
  std::vector<Partition> partitions_;
};

}  // namespace chop::core
