#include "core/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace chop::core {

namespace {

/// Rounds to three significant digits for unique-point bucketing.
double round_sig3(double v) {
  if (v == 0.0) return 0.0;
  const double mag = std::pow(10.0, std::floor(std::log10(std::fabs(v))) - 2);
  return std::round(v / mag) * mag;
}

}  // namespace

bool ParetoFrontier::insert(Cycles ii, Cycles delay) {
  // First point at or right of `ii` (the staircase is II-ascending with
  // strictly descending delays, so everything left of `lo` has smaller II).
  auto lo = std::lower_bound(
      points_.begin(), points_.end(), ii,
      [](const std::pair<Cycles, Cycles>& p, Cycles v) { return p.first < v; });
  // Weakly dominated by an existing point (i <= ii, d <= delay)?
  if (lo != points_.begin() && std::prev(lo)->second <= delay) return false;
  if (lo != points_.end() && lo->first == ii && lo->second <= delay) {
    return false;
  }
  // Remove entries the new point weakly dominates (i >= ii, d >= delay).
  auto hi = lo;
  while (hi != points_.end() && hi->second >= delay) ++hi;
  points_.insert(points_.erase(lo, hi), {ii, delay});
  return true;
}

bool ParetoFrontier::dominates_strictly(Cycles ii, Cycles delay) const {
  // First point with i > ii; delays descend, so the cheapest delay among
  // points with i <= ii (resp. i < ii) sits just before the boundary.
  auto gt = std::upper_bound(
      points_.begin(), points_.end(), ii,
      [](Cycles v, const std::pair<Cycles, Cycles>& p) { return v < p.first; });
  if (gt != points_.begin() && std::prev(gt)->second < delay) return true;
  auto ge = std::lower_bound(
      points_.begin(), points_.end(), ii,
      [](const std::pair<Cycles, Cycles>& p, Cycles v) { return p.first < v; });
  return ge != points_.begin() && std::prev(ge)->second <= delay;
}

void DesignSpaceRecorder::record(const DesignPoint& point) {
  points_.push_back(point);
  if (point.feasible) {
    ++feasible_;
    frontier_.insert(point.ii_main, point.delay_main);
  }
  char key[96];
  std::snprintf(key, sizeof key, "%lld/%lld/%g",
                static_cast<long long>(point.ii_main),
                static_cast<long long>(point.delay_main),
                round_sig3(point.area_likely));
  unique_keys_.insert(key);
}

CsvWriter DesignSpaceRecorder::to_csv() const {
  CsvWriter csv({"ii_main_cycles", "delay_main_cycles", "area_mil2",
                 "clock_ns", "feasible"});
  for (const DesignPoint& p : points_) {
    csv.add_row({std::to_string(p.ii_main), std::to_string(p.delay_main),
                 std::to_string(p.area_likely), std::to_string(p.clock_ns),
                 p.feasible ? "1" : "0"});
  }
  return csv;
}

std::string DesignSpaceRecorder::ascii_scatter(int cols, int rows) const {
  if (points_.empty()) return "(no design points recorded)\n";
  Cycles max_ii = 1, max_delay = 1;
  for (const DesignPoint& p : points_) {
    max_ii = std::max(max_ii, p.ii_main);
    max_delay = std::max(max_delay, p.delay_main);
  }
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));
  for (const DesignPoint& p : points_) {
    const int x = static_cast<int>((p.ii_main * (cols - 1)) / max_ii);
    const int y = static_cast<int>((p.delay_main * (rows - 1)) / max_delay);
    char& cell = grid[static_cast<std::size_t>(rows - 1 - y)]
                     [static_cast<std::size_t>(x)];
    cell = p.feasible ? '*' : (cell == '*' ? '*' : '.');
  }
  std::string out = "delay (max " + std::to_string(max_delay) +
                    " cycles) ^  vs  II (max " + std::to_string(max_ii) +
                    " cycles) ->   '.'=considered '*'=feasible\n";
  for (const std::string& row : grid) {
    out += '|';
    out += row;
    out += '\n';
  }
  out += '+' + std::string(static_cast<std::size_t>(cols), '-') + '\n';
  return out;
}

}  // namespace chop::core
