#include "core/search.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chop::core {

std::size_t PartitionPredictions::raw_total() const {
  std::size_t total = 0;
  for (const auto& list : raw) total += list.size();
  return total;
}

std::size_t PartitionPredictions::eligible_total() const {
  std::size_t total = 0;
  for (const auto& list : eligible) total += list.size();
  return total;
}

std::vector<bad::DesignPrediction> prune_level1(
    std::vector<bad::DesignPrediction> predictions, AreaMil2 chip_usable_area,
    const bad::ClockSpec& clocks, const DesignConstraints& constraints,
    const FeasibilityCriteria& criteria) {
  constraints.validate();
  criteria.validate();

  std::vector<bad::DesignPrediction> feasible;
  for (auto& p : predictions) {
    if (!criteria.area_ok(p.total_area, chip_usable_area)) continue;
    // Optimistic clock (the partition's own overhead only — integration
    // can only make it worse, so this prune is conservative/safe).
    const Ns base = clocks.main_clock + p.clock_overhead_ns;
    const StatVal clock(clocks.main_clock + 0.9 * p.clock_overhead_ns, base,
                        clocks.main_clock + 1.15 * p.clock_overhead_ns);
    const StatVal perf = clock * static_cast<double>(p.ii_main);
    if (!criteria.performance_ok(perf, constraints.performance_ns)) continue;
    const StatVal delay = clock * static_cast<double>(p.latency_main);
    if (!criteria.delay_ok(delay, constraints.delay_ns)) continue;
    // Power: a partition alone already over a budget can never integrate.
    if (constraints.power_constrained()) {
      if (!criteria.power_ok(p.power_mw, constraints.chip_power_mw)) continue;
      if (!criteria.power_ok(p.power_mw, constraints.system_power_mw)) {
        continue;
      }
    }
    feasible.push_back(std::move(p));
  }
  const std::size_t input_count = predictions.size();
  std::vector<bad::DesignPrediction> kept =
      bad::pareto_filter(std::move(feasible));
  static obs::Counter& pruned =
      obs::MetricsRegistry::global().counter("search.pruned_level1");
  pruned.add(input_count - kept.size());
  return kept;
}

namespace {

/// Feeds the per-trial metrics counters and the optional SearchObserver
/// for both heuristics. Counter references are cached so the hot loop
/// pays one relaxed atomic add per trial.
class TrialReporter {
 public:
  explicit TrialReporter(obs::SearchObserver* observer)
      : observer_(observer),
        trials_(obs::MetricsRegistry::global().counter("search.trials")),
        feasible_(obs::MetricsRegistry::global().counter("search.feasible")) {}

  void trial(std::size_t trials_so_far, const IntegrationResult& result) {
    trials_.add();
    if (result.feasible) {
      feasible_.add();
      ++feasible_count_;
      if (best_ii_ < 0 || result.ii_main < best_ii_ ||
          (result.ii_main == best_ii_ &&
           result.system_delay_main < best_delay_)) {
        best_ii_ = result.ii_main;
        best_delay_ = result.system_delay_main;
      }
    }
    if (observer_ == nullptr) return;
    obs::SearchProgress p;
    p.trials = trials_so_far;
    p.feasible = feasible_count_;
    p.best_ii = best_ii_;
    p.best_delay = best_delay_;
    p.trial_feasible = result.feasible;
    p.reason = result.reason.c_str();
    observer_->on_trial(p);
  }

 private:
  obs::SearchObserver* observer_;
  obs::Counter& trials_;
  obs::Counter& feasible_;
  std::size_t feasible_count_ = 0;
  long long best_ii_ = -1;
  long long best_delay_ = -1;
};

/// Records an integration attempt in the recorder (record_all mode).
void record_point(DesignSpaceRecorder& recorder,
                  const std::vector<const bad::DesignPrediction*>& selection,
                  const IntegrationResult& result) {
  DesignPoint point;
  point.ii_main = result.ii_main;
  point.delay_main = result.system_delay_main;
  double area = 0.0;
  for (const bad::DesignPrediction* p : selection) {
    area += p->total_area.likely();
  }
  point.area_likely = area;
  point.clock_ns = result.clock_ns();
  point.feasible = result.feasible;
  recorder.record(point);
}

/// Keeps only Pareto-optimal (ii, delay) designs, II ascending.
std::vector<GlobalDesign> non_inferior(std::vector<GlobalDesign> designs) {
  std::sort(designs.begin(), designs.end(),
            [](const GlobalDesign& a, const GlobalDesign& b) {
              if (a.integration.ii_main != b.integration.ii_main) {
                return a.integration.ii_main < b.integration.ii_main;
              }
              return a.integration.system_delay_main <
                     b.integration.system_delay_main;
            });
  std::vector<GlobalDesign> kept;
  Cycles best_delay = std::numeric_limits<Cycles>::max();
  Cycles last_ii = -1;
  for (auto& d : designs) {
    if (d.integration.ii_main == last_ii) continue;  // same II, worse delay
    if (d.integration.system_delay_main >= best_delay) continue;  // inferior
    best_delay = d.integration.system_delay_main;
    last_ii = d.integration.ii_main;
    kept.push_back(std::move(d));
  }
  return kept;
}

const std::vector<std::vector<bad::DesignPrediction>>& search_lists(
    const PartitionPredictions& pred, const SearchOptions& options) {
  return options.prune ? pred.eligible : pred.raw;
}

SearchResult search_enumeration(
    const Partitioning& pt, const PartitionPredictions& pred,
    const std::vector<DataTransfer>& transfers, const bad::ClockSpec& clocks,
    const DesignConstraints& constraints, const FeasibilityCriteria& criteria,
    const SearchOptions& options, Pins extra_pins) {
  SearchResult out;
  const auto& lists = search_lists(pred, options);
  CHOP_REQUIRE(lists.size() == pt.partitions().size(),
               "prediction lists must match partition count");
  for (const auto& list : lists) {
    if (list.empty()) return out;  // some partition has no implementation
  }

  std::vector<GlobalDesign> feasible;
  std::vector<std::size_t> odo(lists.size(), 0);
  std::vector<const bad::DesignPrediction*> selection(lists.size());
  TrialReporter reporter(options.observer);

  bool done = false;
  while (!done) {
    if (options.max_trials > 0 && out.trials >= options.max_trials) {
      out.truncated = true;
      break;
    }
    ++out.trials;
    for (std::size_t p = 0; p < lists.size(); ++p) {
      selection[p] = &lists[p][odo[p]];
    }

    const Cycles ii = combination_ii(selection);
    const IntegrationResult result =
        integrate(pt, selection, transfers, clocks, constraints, criteria, ii,
                  extra_pins);
    if (options.record_all) record_point(out.recorder, selection, result);
    reporter.trial(out.trials, result);
    if (result.feasible) {
      ++out.feasible_raw;
      feasible.push_back(GlobalDesign{odo, result});
    }

    // Advance the odometer.
    for (std::size_t p = 0;; ++p) {
      if (p == odo.size()) {
        done = true;
        break;
      }
      if (++odo[p] < lists[p].size()) break;
      odo[p] = 0;
    }
  }

  out.designs = non_inferior(std::move(feasible));
  return out;
}

SearchResult search_iterative(
    const Partitioning& pt, const PartitionPredictions& pred,
    const std::vector<DataTransfer>& transfers, const bad::ClockSpec& clocks,
    const DesignConstraints& constraints, const FeasibilityCriteria& criteria,
    const SearchOptions& options, Pins extra_pins) {
  SearchResult out;
  const auto& input_lists = search_lists(pred, options);
  CHOP_REQUIRE(input_lists.size() == pt.partitions().size(),
               "prediction lists must match partition count");
  for (const auto& list : input_lists) {
    if (list.empty()) return out;
  }

  // "Sort all predicted implementations for all Pi in increasing order
  // first for the initiation interval and then for the circuit delay."
  std::vector<std::vector<const bad::DesignPrediction*>> lists(
      input_lists.size());
  for (std::size_t p = 0; p < input_lists.size(); ++p) {
    for (const auto& pr : input_lists[p]) lists[p].push_back(&pr);
    std::sort(lists[p].begin(), lists[p].end(),
              [](const bad::DesignPrediction* a,
                 const bad::DesignPrediction* b) {
                if (a->ii_main != b->ii_main) return a->ii_main < b->ii_main;
                return a->latency_main < b->latency_main;
              });
  }

  // Candidate initiation intervals: every distinct achievable II within
  // the performance budget (optimistically at the nominal clock).
  std::set<Cycles> candidate_iis;
  for (const auto& list : lists) {
    for (const bad::DesignPrediction* p : list) {
      if (static_cast<double>(p->ii_main) * clocks.main_clock <=
          constraints.performance_ns) {
        candidate_iis.insert(p->ii_main);
      }
    }
  }

  std::vector<GlobalDesign> feasible;
  std::vector<const bad::DesignPrediction*> selection(lists.size());
  TrialReporter reporter(options.observer);

  auto integrate_at = [&](const std::vector<std::size_t>& w) {
    for (std::size_t p = 0; p < lists.size(); ++p) {
      selection[p] = lists[p][w[p]];
    }
    const Cycles ii = combination_ii(selection);
    return integrate(pt, selection, transfers, clocks, constraints, criteria,
                     ii, extra_pins);
  };

  for (Cycles l : candidate_iis) {
    // Acceptance at rate l (Figure 5's advance condition, made rate-safe):
    // a nonpipelined implementation sustains any rate at or above its
    // latency (it idles), a pipelined one only its designed rate — the
    // data-rate-mismatch rule. Both the initial advance and every
    // serialization step move Wi to the next acceptable position, so the
    // walk stays inside rate-compatible space.
    auto acceptable = [l](const bad::DesignPrediction* cand) {
      if (cand->style == bad::DesignStyle::Nonpipelined) {
        return cand->ii_main <= l;
      }
      return cand->ii_main == l;
    };
    auto next_acceptable = [&](std::size_t p, std::size_t from) {
      while (from < lists[p].size() && !acceptable(lists[p][from])) ++from;
      return from;
    };

    // Initialize Wi to the fastest acceptable implementation.
    std::vector<std::size_t> w(lists.size(), 0);
    bool exhausted = false;
    for (std::size_t p = 0; p < lists.size(); ++p) {
      w[p] = next_acceptable(p, 0);
      if (w[p] == lists[p].size()) exhausted = true;
    }
    if (exhausted) continue;  // no implementation sustains rate l

    while (true) {
      if (options.max_trials > 0 && out.trials >= options.max_trials) {
        out.truncated = true;
        break;
      }
      ++out.trials;
      const IntegrationResult result = integrate_at(w);
      if (options.record_all) record_point(out.recorder, selection, result);
      reporter.trial(out.trials, result);

      if (result.feasible) {
        ++out.feasible_raw;
        // Map sorted positions back to indices in the searched list so
        // GlobalDesign::choice means the same thing for both heuristics.
        std::vector<std::size_t> original(w.size());
        for (std::size_t p = 0; p < w.size(); ++p) {
          original[p] = static_cast<std::size_t>(lists[p][w[p]] -
                                                 input_lists[p].data());
        }
        feasible.push_back(GlobalDesign{std::move(original), result});
        break;
      }

      // Q: partitions residing on chips whose area constraint is violated.
      std::vector<std::size_t> q;
      for (int chip : result.violated_chips) {
        for (int p : pt.partitions_on_chip(chip)) {
          q.push_back(static_cast<std::size_t>(p));
        }
      }
      if (q.empty()) break;  // not an area problem; serializing won't help

      // Pick the serialization with the minimum expected system delay
      // (urgency scheduling probes, Figure 5). A serialization step moves
      // Wi to the next rate-acceptable, more serial implementation.
      std::size_t best_partition = lists.size();
      std::size_t best_position = 0;
      Cycles best_delay = std::numeric_limits<Cycles>::max();
      for (std::size_t p : q) {
        const std::size_t next = next_acceptable(p, w[p] + 1);
        if (next >= lists[p].size()) continue;
        std::vector<std::size_t> probe = w;
        probe[p] = next;
        const IntegrationResult probed = integrate_at(probe);
        const Cycles delay = probed.system_delay_main > 0
                                 ? probed.system_delay_main
                                 : std::numeric_limits<Cycles>::max() / 2;
        if (delay < best_delay) {
          best_delay = delay;
          best_partition = p;
          best_position = next;
        }
      }
      if (best_partition == lists.size()) break;  // nothing to serialize
      w[best_partition] = best_position;
    }
    if (out.truncated) break;
  }

  out.designs = non_inferior(std::move(feasible));
  return out;
}

}  // namespace

SearchResult find_feasible_implementations(
    const Partitioning& pt, const PartitionPredictions& pred,
    const std::vector<DataTransfer>& transfers, const bad::ClockSpec& clocks,
    const DesignConstraints& constraints, const FeasibilityCriteria& criteria,
    const SearchOptions& options, Pins extra_reserved_pins_per_chip) {
  const bool enumeration = options.heuristic == Heuristic::Enumeration;
  obs::TraceSpan span(enumeration ? "search.enumeration" : "search.iterative");
  SearchResult out =
      enumeration ? search_enumeration(pt, pred, transfers, clocks,
                                       constraints, criteria, options,
                                       extra_reserved_pins_per_chip)
                  : search_iterative(pt, pred, transfers, clocks, constraints,
                                     criteria, options,
                                     extra_reserved_pins_per_chip);

  // Feasible global designs discarded as Pareto-inferior (level-2 prune).
  static obs::Counter& pruned_inferior =
      obs::MetricsRegistry::global().counter("search.pruned_inferior");
  pruned_inferior.add(out.feasible_raw - out.designs.size());
  span.arg("trials", out.trials);
  span.arg("feasible", out.feasible_raw);
  span.arg("designs", out.designs.size());
  span.arg("truncated", out.truncated);

  if (options.observer != nullptr) {
    obs::SearchProgress p;
    p.trials = out.trials;
    p.feasible = out.feasible_raw;
    if (!out.designs.empty()) {
      p.best_ii = out.designs.front().integration.ii_main;
      p.best_delay = out.designs.front().integration.system_delay_main;
      p.trial_feasible = true;
    }
    options.observer->on_done(p);
  }
  return out;
}

}  // namespace chop::core
