#include "core/search.hpp"

#include <algorithm>
#include <future>
#include <limits>
#include <set>

#include "core/eval/candidate_evaluator.hpp"
#include "core/eval/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chop::core {

std::size_t PartitionPredictions::raw_total() const {
  std::size_t total = 0;
  for (const auto& list : raw) total += list.size();
  return total;
}

std::size_t PartitionPredictions::eligible_total() const {
  std::size_t total = 0;
  for (const auto& list : eligible) total += list.size();
  return total;
}

std::vector<bad::DesignPrediction> prune_level1(
    std::vector<bad::DesignPrediction> predictions, AreaMil2 chip_usable_area,
    const bad::ClockSpec& clocks, const DesignConstraints& constraints,
    const FeasibilityCriteria& criteria) {
  constraints.validate();
  criteria.validate();

  const std::size_t input_count = predictions.size();
  std::vector<bad::DesignPrediction> feasible;
  for (auto& p : predictions) {
    if (!criteria.area_ok(p.total_area, chip_usable_area)) continue;
    // Optimistic clock (the partition's own overhead only — integration
    // can only make it worse, so this prune is conservative/safe).
    const Ns base = clocks.main_clock + p.clock_overhead_ns;
    const StatVal clock(clocks.main_clock + 0.9 * p.clock_overhead_ns, base,
                        clocks.main_clock + 1.15 * p.clock_overhead_ns);
    const StatVal perf = clock * static_cast<double>(p.ii_main);
    if (!criteria.performance_ok(perf, constraints.performance_ns)) continue;
    const StatVal delay = clock * static_cast<double>(p.latency_main);
    if (!criteria.delay_ok(delay, constraints.delay_ns)) continue;
    // Power: a partition alone already over a budget can never integrate.
    if (constraints.power_constrained()) {
      if (!criteria.power_ok(p.power_mw, constraints.chip_power_mw)) continue;
      if (!criteria.power_ok(p.power_mw, constraints.system_power_mw)) {
        continue;
      }
    }
    feasible.push_back(std::move(p));
  }
  const std::size_t feasible_count = feasible.size();
  std::vector<bad::DesignPrediction> kept =
      bad::pareto_filter(std::move(feasible));
  // Constraint-infeasible drops and Pareto-inferior drops are distinct
  // phenomena (the Tables-3/5 reconciliation needs both), so they are
  // counted separately.
  static obs::Counter& pruned_infeasible =
      obs::MetricsRegistry::global().counter("search.pruned_infeasible");
  static obs::Counter& pruned_pareto =
      obs::MetricsRegistry::global().counter("search.pruned_pareto");
  pruned_infeasible.add(input_count - feasible_count);
  pruned_pareto.add(feasible_count - kept.size());
  return kept;
}

namespace {

/// The per-trial facts the reporting/merge path needs, detached from the
/// full IntegrationResult so parallel chunks can buffer trials compactly.
struct TrialView {
  bool feasible = false;
  Cycles ii_main = 0;
  Cycles delay_main = 0;
  const char* reason = "";
};

TrialView view_of(const IntegrationResult& result) {
  return TrialView{result.feasible, result.ii_main, result.system_delay_main,
                   result.reason.c_str()};
}

/// Feeds the per-trial metrics counters and the optional SearchObserver
/// for both heuristics. Counter references are cached so the hot loop
/// pays one relaxed atomic add per trial. Always invoked on the search's
/// calling thread, in trial order — the parallel enumeration funnels
/// buffered trials through here during its in-order merge.
class TrialReporter {
 public:
  explicit TrialReporter(obs::SearchObserver* observer)
      : observer_(observer),
        trials_(obs::MetricsRegistry::global().counter("search.trials")),
        feasible_(obs::MetricsRegistry::global().counter("search.feasible")) {}

  void trial(std::size_t trials_so_far, const TrialView& result) {
    trials_.add();
    if (result.feasible) {
      feasible_.add();
      ++feasible_count_;
      if (best_ii_ < 0 || result.ii_main < best_ii_ ||
          (result.ii_main == best_ii_ && result.delay_main < best_delay_)) {
        best_ii_ = result.ii_main;
        best_delay_ = result.delay_main;
      }
    }
    if (observer_ == nullptr) return;
    obs::SearchProgress p;
    p.trials = trials_so_far;
    p.feasible = feasible_count_;
    p.best_ii = best_ii_;
    p.best_delay = best_delay_;
    p.trial_feasible = result.feasible;
    p.reason = result.reason;
    observer_->on_trial(p);
  }

 private:
  obs::SearchObserver* observer_;
  obs::Counter& trials_;
  obs::Counter& feasible_;
  std::size_t feasible_count_ = 0;
  long long best_ii_ = -1;
  long long best_delay_ = -1;
};

/// Builds the recorder point for one integration attempt.
DesignPoint make_point(const std::vector<const bad::DesignPrediction*>& selection,
                       const IntegrationResult& result) {
  DesignPoint point;
  point.ii_main = result.ii_main;
  point.delay_main = result.system_delay_main;
  double area = 0.0;
  for (const bad::DesignPrediction* p : selection) {
    area += p->total_area.likely();
  }
  point.area_likely = area;
  point.clock_ns = result.clock_ns();
  point.feasible = result.feasible;
  return point;
}

/// Keeps only Pareto-optimal (ii, delay) designs, II ascending.
std::vector<GlobalDesign> non_inferior(std::vector<GlobalDesign> designs) {
  std::sort(designs.begin(), designs.end(),
            [](const GlobalDesign& a, const GlobalDesign& b) {
              if (a.integration.ii_main != b.integration.ii_main) {
                return a.integration.ii_main < b.integration.ii_main;
              }
              return a.integration.system_delay_main <
                     b.integration.system_delay_main;
            });
  std::vector<GlobalDesign> kept;
  Cycles best_delay = std::numeric_limits<Cycles>::max();
  Cycles last_ii = -1;
  for (auto& d : designs) {
    if (d.integration.ii_main == last_ii) continue;  // same II, worse delay
    if (d.integration.system_delay_main >= best_delay) continue;  // inferior
    best_delay = d.integration.system_delay_main;
    last_ii = d.integration.ii_main;
    kept.push_back(std::move(d));
  }
  return kept;
}

const std::vector<std::vector<bad::DesignPrediction>>& search_lists(
    const PartitionPredictions& pred, const SearchOptions& options) {
  return options.prune ? pred.eligible : pred.raw;
}

// ---------------------------------------------------------------------------
// Enumeration heuristic.
//
// The combination space is a mixed-radix odometer over the per-partition
// lists, with digit 0 fastest — trial i selects lists[p][(i / stride[p]) %
// len[p]]. Serial and parallel runs both walk indices 0..limit-1 in that
// order; the parallel run merely evaluates contiguous chunks concurrently
// and merges them back in chunk order, so every observable output is
// identical.
// ---------------------------------------------------------------------------

/// One buffered enumeration trial, produced by a worker and consumed by
/// the in-order merge. Holds the reason by value (a TrialView's borrowed
/// pointer would dangle when the record moves — SSO strings relocate).
struct TrialRecord {
  DesignPoint point;
  bool feasible = false;
  Cycles ii_main = 0;
  Cycles delay_main = 0;
  std::string reason;
  std::shared_ptr<const IntegrationResult> result;  ///< Set when feasible.
  std::vector<std::size_t> choice;                  ///< Set when feasible.
};

struct OdometerSpace {
  std::vector<std::size_t> len;
  std::vector<std::size_t> stride;
  std::size_t total = 0;       ///< Product of lens, saturated at max().
  bool saturated = false;      ///< Product overflowed std::size_t.
};

OdometerSpace odometer_space(
    const std::vector<std::vector<bad::DesignPrediction>>& lists) {
  OdometerSpace space;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  space.total = 1;
  for (const auto& list : lists) {
    space.len.push_back(list.size());
    space.stride.push_back(space.total);
    if (!list.empty() && space.total > kMax / list.size()) {
      space.saturated = true;
      space.total = kMax;
    } else if (!space.saturated) {
      space.total *= list.size();
    }
  }
  return space;
}

std::vector<std::size_t> decode_odometer(const OdometerSpace& space,
                                         std::size_t index) {
  std::vector<std::size_t> odo(space.len.size());
  for (std::size_t p = 0; p < space.len.size(); ++p) {
    odo[p] = (index / space.stride[p]) % space.len[p];
  }
  return odo;
}

/// Evaluates enumeration trial `index` into a buffered record.
TrialRecord evaluate_trial(
    const EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    const OdometerSpace& space, std::size_t index,
    CandidateEvaluator& evaluator,
    std::vector<const bad::DesignPrediction*>& selection) {
  std::vector<std::size_t> odo = decode_odometer(space, index);
  for (std::size_t p = 0; p < lists.size(); ++p) {
    selection[p] = &lists[p][odo[p]];
  }
  const Cycles ii = combination_ii(selection);
  std::shared_ptr<const IntegrationResult> result =
      evaluator.evaluate(ctx, selection, ii);

  TrialRecord record;
  record.point = make_point(selection, *result);
  record.feasible = result->feasible;
  record.ii_main = result->ii_main;
  record.delay_main = result->system_delay_main;
  record.reason = result->reason;
  if (result->feasible) {
    record.result = std::move(result);
    record.choice = std::move(odo);
  }
  return record;
}

/// Merges one trial into the accumulating SearchResult, in trial order.
void merge_trial(SearchResult& out, TrialRecord record, TrialReporter& reporter,
                 const SearchOptions& options,
                 std::vector<GlobalDesign>& feasible) {
  ++out.trials;
  if (options.record_all) out.recorder.record(record.point);
  reporter.trial(out.trials,
                 TrialView{record.feasible, record.ii_main, record.delay_main,
                           record.reason.c_str()});
  if (record.feasible) {
    ++out.feasible_raw;
    feasible.push_back(
        GlobalDesign{std::move(record.choice), *record.result});
  }
}

SearchResult search_enumeration(const EvalContext& ctx,
                                const PartitionPredictions& pred,
                                const SearchOptions& options,
                                CandidateEvaluator& evaluator) {
  SearchResult out;
  const auto& lists = search_lists(pred, options);
  CHOP_REQUIRE(lists.size() == ctx.partitioning().partitions().size(),
               "prediction lists must match partition count");
  for (const auto& list : lists) {
    if (list.empty()) return out;  // some partition has no implementation
  }

  const OdometerSpace space = odometer_space(lists);
  std::size_t limit = space.total;
  if (options.max_trials > 0 && options.max_trials < space.total) {
    limit = options.max_trials;
  }

  std::vector<GlobalDesign> feasible;
  TrialReporter reporter(options.observer);

  // A saturated odometer (> 2^64 combinations) cannot be chunked by global
  // index; it also cannot finish, so the serial walk's incremental
  // truncation is the only sane mode.
  const bool parallel = options.threads > 1 && !space.saturated && limit > 1;

  if (!parallel) {
    std::vector<const bad::DesignPrediction*> selection(lists.size());
    for (std::size_t i = 0; i < limit; ++i) {
      merge_trial(out,
                  evaluate_trial(ctx, lists, space, i, evaluator, selection),
                  reporter, options, feasible);
    }
  } else {
    obs::TraceSpan span("search.parallel");
    const std::size_t chunk_count = std::min<std::size_t>(
        limit, static_cast<std::size_t>(options.threads) * 4);
    const std::size_t chunk_size = (limit + chunk_count - 1) / chunk_count;
    ThreadPool pool(std::min<int>(options.threads,
                                  static_cast<int>(chunk_count)));

    std::vector<std::vector<TrialRecord>> chunk_records(chunk_count);
    std::vector<std::future<void>> done;
    done.reserve(chunk_count);
    for (std::size_t k = 0; k < chunk_count; ++k) {
      // Ceiling-divided chunks can run past the end; trailing chunks are
      // then empty and merge as no-ops.
      const std::size_t start = std::min(limit, k * chunk_size);
      const std::size_t end = std::min(limit, start + chunk_size);
      done.push_back(pool.submit([&, k, start, end] {
        obs::TraceSpan chunk_span("search.parallel.chunk");
        chunk_span.arg("chunk", k);
        chunk_span.arg("start", start);
        chunk_span.arg("trials", end - start);
        std::vector<const bad::DesignPrediction*> selection(lists.size());
        auto& records = chunk_records[k];
        records.reserve(end - start);
        for (std::size_t i = start; i < end; ++i) {
          records.push_back(
              evaluate_trial(ctx, lists, space, i, evaluator, selection));
        }
      }));
    }

    // In-order merge: chunk k is folded in only once complete, so the
    // observer, the recorder and the result fields see exactly the serial
    // sequence. Workers keep racing ahead on later chunks meanwhile.
    for (std::size_t k = 0; k < chunk_count; ++k) {
      done[k].get();
      for (TrialRecord& record : chunk_records[k]) {
        merge_trial(out, std::move(record), reporter, options, feasible);
      }
      chunk_records[k].clear();
      chunk_records[k].shrink_to_fit();
    }
    span.arg("threads", options.threads);
    span.arg("chunks", chunk_count);
    span.arg("trials", out.trials);
  }

  out.truncated = limit < space.total;
  out.designs = non_inferior(std::move(feasible));
  return out;
}

// ---------------------------------------------------------------------------
// Iterative heuristic (Figure 5).
// ---------------------------------------------------------------------------

SearchResult search_iterative(const EvalContext& ctx,
                              const PartitionPredictions& pred,
                              const SearchOptions& options,
                              CandidateEvaluator& evaluator) {
  SearchResult out;
  const auto& input_lists = search_lists(pred, options);
  const Partitioning& pt = ctx.partitioning();
  CHOP_REQUIRE(input_lists.size() == pt.partitions().size(),
               "prediction lists must match partition count");
  for (const auto& list : input_lists) {
    if (list.empty()) return out;
  }

  // "Sort all predicted implementations for all Pi in increasing order
  // first for the initiation interval and then for the circuit delay."
  std::vector<std::vector<const bad::DesignPrediction*>> lists(
      input_lists.size());
  for (std::size_t p = 0; p < input_lists.size(); ++p) {
    for (const auto& pr : input_lists[p]) lists[p].push_back(&pr);
    std::sort(lists[p].begin(), lists[p].end(),
              [](const bad::DesignPrediction* a,
                 const bad::DesignPrediction* b) {
                if (a->ii_main != b->ii_main) return a->ii_main < b->ii_main;
                return a->latency_main < b->latency_main;
              });
  }

  // Candidate initiation intervals: every distinct achievable II within
  // the performance budget (optimistically at the nominal clock).
  std::set<Cycles> candidate_iis;
  for (const auto& list : lists) {
    for (const bad::DesignPrediction* p : list) {
      if (static_cast<double>(p->ii_main) * ctx.clocks().main_clock <=
          ctx.constraints().performance_ns) {
        candidate_iis.insert(p->ii_main);
      }
    }
  }

  std::vector<GlobalDesign> feasible;
  std::vector<const bad::DesignPrediction*> selection(lists.size());
  TrialReporter reporter(options.observer);
  // The serialization probes bypass the trial count (the paper's counts
  // exclude them) but are real integrations — surfaced via this counter
  // so --progress/metrics no longer under-report work done. The memo
  // cache also means a probe revisited by the main walk costs nothing.
  static obs::Counter& probe_counter =
      obs::MetricsRegistry::global().counter("search.probe_integrations");

  auto integrate_at = [&](const std::vector<std::size_t>& w) {
    for (std::size_t p = 0; p < lists.size(); ++p) {
      selection[p] = lists[p][w[p]];
    }
    const Cycles ii = combination_ii(selection);
    return evaluator.evaluate(ctx, selection, ii);
  };

  for (Cycles l : candidate_iis) {
    // Acceptance at rate l (Figure 5's advance condition, made rate-safe):
    // a nonpipelined implementation sustains any rate at or above its
    // latency (it idles), a pipelined one only its designed rate — the
    // data-rate-mismatch rule. Both the initial advance and every
    // serialization step move Wi to the next acceptable position, so the
    // walk stays inside rate-compatible space.
    auto acceptable = [l](const bad::DesignPrediction* cand) {
      if (cand->style == bad::DesignStyle::Nonpipelined) {
        return cand->ii_main <= l;
      }
      return cand->ii_main == l;
    };
    auto next_acceptable = [&](std::size_t p, std::size_t from) {
      while (from < lists[p].size() && !acceptable(lists[p][from])) ++from;
      return from;
    };

    // Initialize Wi to the fastest acceptable implementation.
    std::vector<std::size_t> w(lists.size(), 0);
    bool exhausted = false;
    for (std::size_t p = 0; p < lists.size(); ++p) {
      w[p] = next_acceptable(p, 0);
      if (w[p] == lists[p].size()) exhausted = true;
    }
    if (exhausted) continue;  // no implementation sustains rate l

    while (true) {
      if (options.max_trials > 0 && out.trials >= options.max_trials) {
        out.truncated = true;
        break;
      }
      ++out.trials;
      const std::shared_ptr<const IntegrationResult> result = integrate_at(w);
      if (options.record_all) {
        out.recorder.record(make_point(selection, *result));
      }
      reporter.trial(out.trials, view_of(*result));

      if (result->feasible) {
        ++out.feasible_raw;
        // Map sorted positions back to indices in the searched list so
        // GlobalDesign::choice means the same thing for both heuristics.
        std::vector<std::size_t> original(w.size());
        for (std::size_t p = 0; p < w.size(); ++p) {
          original[p] = static_cast<std::size_t>(lists[p][w[p]] -
                                                 input_lists[p].data());
        }
        feasible.push_back(GlobalDesign{std::move(original), *result});
        break;
      }

      // Q: partitions residing on chips whose area constraint is violated.
      std::vector<std::size_t> q;
      for (int chip : result->violated_chips) {
        for (int p : pt.partitions_on_chip(chip)) {
          q.push_back(static_cast<std::size_t>(p));
        }
      }
      if (q.empty()) break;  // not an area problem; serializing won't help

      // Pick the serialization with the minimum expected system delay
      // (urgency scheduling probes, Figure 5). A serialization step moves
      // Wi to the next rate-acceptable, more serial implementation.
      std::size_t best_partition = lists.size();
      std::size_t best_position = 0;
      Cycles best_delay = std::numeric_limits<Cycles>::max();
      for (std::size_t p : q) {
        const std::size_t next = next_acceptable(p, w[p] + 1);
        if (next >= lists[p].size()) continue;
        std::vector<std::size_t> probe = w;
        probe[p] = next;
        ++out.probe_integrations;
        probe_counter.add();
        const std::shared_ptr<const IntegrationResult> probed =
            integrate_at(probe);
        const Cycles delay = probed->system_delay_main > 0
                                 ? probed->system_delay_main
                                 : std::numeric_limits<Cycles>::max() / 2;
        if (delay < best_delay) {
          best_delay = delay;
          best_partition = p;
          best_position = next;
        }
      }
      if (best_partition == lists.size()) break;  // nothing to serialize
      w[best_partition] = best_position;
    }
    if (out.truncated) break;
  }

  out.designs = non_inferior(std::move(feasible));
  return out;
}

}  // namespace

SearchResult find_feasible_implementations(const EvalContext& ctx,
                                           const PartitionPredictions& pred,
                                           const SearchOptions& options) {
  const bool enumeration = options.heuristic == Heuristic::Enumeration;
  obs::TraceSpan span(enumeration ? "search.enumeration" : "search.iterative");
  CHOP_REQUIRE(options.threads >= 1, "search needs at least one thread");

  // A caller-provided evaluator carries its memo across searches (the
  // session/auto-partition/clock-sweep reuse cases); otherwise a private
  // one still serves repeats within this run.
  CandidateEvaluator local_evaluator;
  CandidateEvaluator& evaluator =
      options.evaluator != nullptr ? *options.evaluator : local_evaluator;

  SearchResult out = enumeration
                         ? search_enumeration(ctx, pred, options, evaluator)
                         : search_iterative(ctx, pred, options, evaluator);

  // Feasible global designs discarded as Pareto-inferior (level-2 prune).
  static obs::Counter& pruned_inferior =
      obs::MetricsRegistry::global().counter("search.pruned_inferior");
  pruned_inferior.add(out.feasible_raw - out.designs.size());
  span.arg("trials", out.trials);
  span.arg("feasible", out.feasible_raw);
  span.arg("designs", out.designs.size());
  span.arg("truncated", out.truncated);
  span.arg("threads", options.threads);

  if (options.observer != nullptr) {
    obs::SearchProgress p;
    p.trials = out.trials;
    p.feasible = out.feasible_raw;
    if (!out.designs.empty()) {
      p.best_ii = out.designs.front().integration.ii_main;
      p.best_delay = out.designs.front().integration.system_delay_main;
      p.trial_feasible = true;
    }
    options.observer->on_done(p);
  }
  return out;
}

}  // namespace chop::core
