#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <future>
#include <limits>
#include <memory>
#include <set>
#include <string>

#include "core/eval/bound_state.hpp"
#include "core/eval/candidate_evaluator.hpp"
#include "core/eval/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chop::core {

std::size_t PartitionPredictions::raw_total() const {
  std::size_t total = 0;
  for (const auto& list : raw) total += list.size();
  return total;
}

std::size_t PartitionPredictions::eligible_total() const {
  std::size_t total = 0;
  for (const auto& list : eligible) total += list.size();
  return total;
}

std::vector<bad::DesignPrediction> prune_level1(
    std::vector<bad::DesignPrediction> predictions, AreaMil2 chip_usable_area,
    const bad::ClockSpec& clocks, const DesignConstraints& constraints,
    const FeasibilityCriteria& criteria) {
  constraints.validate();
  criteria.validate();

  const std::size_t input_count = predictions.size();
  std::vector<bad::DesignPrediction> feasible;
  for (auto& p : predictions) {
    if (!criteria.area_ok(p.total_area, chip_usable_area)) continue;
    // Optimistic clock (the partition's own overhead only — integration
    // can only make it worse, so this prune is conservative/safe).
    const Ns base = clocks.main_clock + p.clock_overhead_ns;
    const StatVal clock(clocks.main_clock + 0.9 * p.clock_overhead_ns, base,
                        clocks.main_clock + 1.15 * p.clock_overhead_ns);
    const StatVal perf = clock * static_cast<double>(p.ii_main);
    if (!criteria.performance_ok(perf, constraints.performance_ns)) continue;
    const StatVal delay = clock * static_cast<double>(p.latency_main);
    if (!criteria.delay_ok(delay, constraints.delay_ns)) continue;
    // Power: a partition alone already over a budget can never integrate.
    if (constraints.power_constrained()) {
      if (!criteria.power_ok(p.power_mw, constraints.chip_power_mw)) continue;
      if (!criteria.power_ok(p.power_mw, constraints.system_power_mw)) {
        continue;
      }
    }
    feasible.push_back(std::move(p));
  }
  const std::size_t feasible_count = feasible.size();
  std::vector<bad::DesignPrediction> kept =
      bad::pareto_filter(std::move(feasible));
  // Constraint-infeasible drops and Pareto-inferior drops are distinct
  // phenomena (the Tables-3/5 reconciliation needs both), so they are
  // counted separately.
  static obs::Counter& pruned_infeasible =
      obs::MetricsRegistry::global().counter("search.pruned_infeasible");
  static obs::Counter& pruned_pareto =
      obs::MetricsRegistry::global().counter("search.pruned_pareto");
  pruned_infeasible.add(input_count - feasible_count);
  pruned_pareto.add(feasible_count - kept.size());
  return kept;
}

namespace {

/// Cooperative cancellation state shared by both heuristics: a borrowed
/// flag plus an optional steady-clock deadline, both from SearchOptions.
/// triggered() is cheap relative to one integrate() call, so walkers may
/// consult it per leaf/trial.
struct CancelState {
  const std::atomic<bool>* flag = nullptr;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;

  explicit CancelState(const SearchOptions& options)
      : flag(options.cancel),
        deadline(options.deadline),
        has_deadline(options.deadline !=
                     std::chrono::steady_clock::time_point{}) {}

  bool armed() const { return flag != nullptr || has_deadline; }

  bool triggered() const {
    if (flag != nullptr && flag->load(std::memory_order_relaxed)) return true;
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }
};

/// The per-trial facts the reporting/merge path needs, detached from the
/// full IntegrationResult so parallel chunks can buffer trials compactly.
struct TrialView {
  bool feasible = false;
  Cycles ii_main = 0;
  Cycles delay_main = 0;
  const char* reason = "";
};

TrialView view_of(const IntegrationResult& result) {
  return TrialView{result.feasible, result.ii_main, result.system_delay_main,
                   result.reason.c_str()};
}

/// Feeds the per-trial metrics counters and the optional SearchObserver
/// for both heuristics. Counter references are cached so the hot loop
/// pays one relaxed atomic add per trial. Always invoked on the search's
/// calling thread, in trial order — the parallel enumeration funnels
/// buffered trials through here during its in-order merge.
class TrialReporter {
 public:
  explicit TrialReporter(obs::SearchObserver* observer)
      : observer_(observer),
        trials_(obs::MetricsRegistry::global().counter("search.trials")),
        feasible_(obs::MetricsRegistry::global().counter("search.feasible")) {}

  void trial(std::size_t trials_so_far, const TrialView& result) {
    trials_.add();
    if (result.feasible) {
      feasible_.add();
      ++feasible_count_;
      if (best_ii_ < 0 || result.ii_main < best_ii_ ||
          (result.ii_main == best_ii_ && result.delay_main < best_delay_)) {
        best_ii_ = result.ii_main;
        best_delay_ = result.delay_main;
      }
    }
    if (observer_ == nullptr) return;
    obs::SearchProgress p;
    p.trials = trials_so_far;
    p.feasible = feasible_count_;
    p.best_ii = best_ii_;
    p.best_delay = best_delay_;
    p.trial_feasible = result.feasible;
    p.reason = result.reason;
    observer_->on_trial(p);
  }

 private:
  obs::SearchObserver* observer_;
  obs::Counter& trials_;
  obs::Counter& feasible_;
  std::size_t feasible_count_ = 0;
  long long best_ii_ = -1;
  long long best_delay_ = -1;
};

/// Builds the recorder point for one integration attempt.
DesignPoint make_point(const std::vector<const bad::DesignPrediction*>& selection,
                       const IntegrationResult& result) {
  DesignPoint point;
  point.ii_main = result.ii_main;
  point.delay_main = result.system_delay_main;
  double area = 0.0;
  for (const bad::DesignPrediction* p : selection) {
    area += p->total_area.likely();
  }
  point.area_likely = area;
  point.clock_ns = result.clock_ns();
  point.feasible = result.feasible;
  return point;
}

/// Keeps only Pareto-optimal (ii, delay) designs, II ascending. The sort
/// must be stable: among designs with equal (ii, delay) the first found
/// wins, and branch-and-bound pruning relies on that tie-break being
/// insertion order (pruning removes only strictly-dominated designs, which
/// can never be the first of an equal group's survivors).
std::vector<GlobalDesign> non_inferior(std::vector<GlobalDesign> designs) {
  std::stable_sort(designs.begin(), designs.end(),
            [](const GlobalDesign& a, const GlobalDesign& b) {
              if (a.integration.ii_main != b.integration.ii_main) {
                return a.integration.ii_main < b.integration.ii_main;
              }
              return a.integration.system_delay_main <
                     b.integration.system_delay_main;
            });
  std::vector<GlobalDesign> kept;
  Cycles best_delay = std::numeric_limits<Cycles>::max();
  Cycles last_ii = -1;
  for (auto& d : designs) {
    if (d.integration.ii_main == last_ii) continue;  // same II, worse delay
    if (d.integration.system_delay_main >= best_delay) continue;  // inferior
    best_delay = d.integration.system_delay_main;
    last_ii = d.integration.ii_main;
    kept.push_back(std::move(d));
  }
  return kept;
}

const std::vector<std::vector<bad::DesignPrediction>>& search_lists(
    const PartitionPredictions& pred, const SearchOptions& options) {
  return options.prune ? pred.eligible : pred.raw;
}

// ---------------------------------------------------------------------------
// Enumeration heuristic: depth-first branch-and-bound.
//
// The combination space is a mixed-radix odometer over the per-partition
// lists, with digit 0 fastest — trial i selects lists[p][(i / stride[p]) %
// len[p]]. The walk is organised as a DFS that commits partitions from the
// highest index (the slowest digit) downward, so its leaf order IS the
// odometer order. With bound pruning on, an incremental PrefixState plus
// the precomputed BoundTables cut subtrees whose admissible lower bounds
// already violate a hard constraint or are strictly dominated by the
// incumbent Pareto frontier; the surviving leaf sequence is a subsequence
// of the exhaustive order and the final design set is provably identical.
//
// Work is split on the outermost digits into a fixed number of units —
// the split depth grows until at least kMinUnits units exist, independent
// of the thread count, so the unit boundaries (and therefore every
// observable output) are identical at any SearchOptions::threads. Units
// evaluate concurrently on a work-stealing pool and merge strictly in
// unit order. Each unit's frontier starts from deterministic seed probes
// (greedy per-partition picks, evaluated up front) and grows with the
// unit's own feasible finds; with SearchOptions::shared_frontier it also
// pulls every *committed* cross-unit find. Commits happen only at wave
// barriers — units are grouped into deterministic waves, and a wave's
// feasible finds become visible exactly when the next wave starts — so
// pruning decisions depend on the wave structure, never on timing, and
// every output stays byte-identical across thread counts and schedules.
// ---------------------------------------------------------------------------

/// One buffered enumeration trial, produced by a worker and consumed by
/// the in-order merge. Holds the reason by value (a TrialView's borrowed
/// pointer would dangle when the record moves — SSO strings relocate).
struct TrialRecord {
  DesignPoint point;
  bool feasible = false;
  Cycles ii_main = 0;
  Cycles delay_main = 0;
  std::string reason;
  std::shared_ptr<const IntegrationResult> result;  ///< Set when feasible.
  std::vector<std::size_t> choice;                  ///< Set when feasible.
};

struct OdometerSpace {
  std::vector<std::size_t> len;
  std::size_t total = 0;       ///< Product of lens, saturated at max().
  bool saturated = false;      ///< Product overflowed std::size_t.
};

OdometerSpace odometer_space(
    const std::vector<std::vector<bad::DesignPrediction>>& lists) {
  OdometerSpace space;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  space.total = 1;
  for (const auto& list : lists) {
    space.len.push_back(list.size());
    if (!list.empty() && space.total > kMax / list.size()) {
      space.saturated = true;
      space.total = kMax;
    } else if (!space.saturated) {
      space.total *= list.size();
    }
  }
  return space;
}

std::size_t sat_mul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::size_t>::max() / b) {
    return std::numeric_limits<std::size_t>::max();
  }
  return a * b;
}

std::size_t sat_add(std::size_t a, std::size_t b) {
  return a > std::numeric_limits<std::size_t>::max() - b
             ? std::numeric_limits<std::size_t>::max()
             : a + b;
}

/// Minimum number of work units the outermost-digit split must produce.
/// A constant (never derived from the thread count) so unit boundaries —
/// and with them the per-unit incumbent frontiers of the bounded walk —
/// are identical at every thread count.
constexpr std::size_t kMinUnits = 64;

/// The outermost-digit split: partitions [inner_count, P) are fixed per
/// unit (unit index u decodes to their digits, digit `inner_count`
/// fastest), partitions [0, inner_count) are walked within the unit. Unit
/// u covers global odometer indices [u * leaves_per_unit,
/// (u + 1) * leaves_per_unit) — no global index is ever materialised, so
/// spaces beyond 2^64 combinations split exactly like small ones.
struct UnitPlan {
  std::size_t inner_count = 0;
  std::size_t unit_count = 1;
  std::size_t leaves_per_unit = 1;  ///< Saturated product of inner lens.
};

/// Wave sizes for the shared-frontier schedule: units are grouped into
/// consecutive index ranges, and every unit of wave k finishes (and
/// publishes) before any unit of wave k+1 starts. A short geometric ramp
/// commits the first incumbents after only a few units, then wide waves
/// keep the pool saturated between barriers. Without sharing there are
/// no barriers to honor, so a single wave covers everything.
std::vector<std::size_t> plan_waves(std::size_t unit_count, bool share) {
  std::vector<std::size_t> sizes;
  if (!share || unit_count == 0) {
    sizes.push_back(unit_count);
    return sizes;
  }
  std::size_t placed = 0;
  std::size_t next = 4;
  while (placed < unit_count) {
    const std::size_t size = std::min(next, unit_count - placed);
    sizes.push_back(size);
    placed += size;
    if (next < 32) next *= 2;
  }
  return sizes;
}

UnitPlan plan_units(const OdometerSpace& space) {
  UnitPlan plan;
  const std::size_t nparts = space.len.size();
  std::size_t split = 0;
  while (split < nparts && plan.unit_count < kMinUnits) {
    plan.unit_count = sat_mul(plan.unit_count, space.len[nparts - 1 - split]);
    ++split;
  }
  plan.inner_count = nparts - split;
  for (std::size_t p = 0; p < plan.inner_count; ++p) {
    plan.leaves_per_unit = sat_mul(plan.leaves_per_unit, space.len[p]);
  }
  return plan;
}

/// Decodes unit `u` into the outer digits of `digits` (digits[p] for p in
/// [inner_count, P)) and points `selection` at them.
void decode_unit(const std::vector<std::vector<bad::DesignPrediction>>& lists,
                 const UnitPlan& plan, std::size_t u,
                 std::vector<std::size_t>& digits,
                 std::vector<const bad::DesignPrediction*>& selection) {
  std::size_t rest = u;
  for (std::size_t p = plan.inner_count; p < lists.size(); ++p) {
    digits[p] = rest % lists[p].size();
    rest /= lists[p].size();
    selection[p] = &lists[p][digits[p]];
  }
}

/// Evaluates the current selection into a buffered record. Attributed to
/// the leaf_eval phase when profiling (cache-wait time inside the
/// evaluator is additionally broken out as cache_wait).
TrialRecord evaluate_leaf(
    const EvalContext& ctx,
    const std::vector<const bad::DesignPrediction*>& selection,
    const std::vector<std::size_t>& digits, CandidateEvaluator& evaluator,
    obs::PhaseProfile* profile) {
  obs::ScopedPhase phase(profile, obs::SearchPhase::kLeafEval);
  const Cycles ii = combination_ii(selection);
  std::shared_ptr<const IntegrationResult> result =
      evaluator.evaluate(ctx, selection, ii, profile);

  TrialRecord record;
  record.point = make_point(selection, *result);
  record.feasible = result->feasible;
  record.ii_main = result->ii_main;
  record.delay_main = result->system_delay_main;
  record.reason = result->reason;
  if (result->feasible) {
    record.result = std::move(result);
    record.choice = digits;
  }
  return record;
}

/// Everything one unit produces. Records from a unit the merge never
/// consumed (because the trial cap was already reached) may be incomplete
/// — workers abort via the shared stop flag — and are discarded unseen.
struct UnitOutcome {
  std::vector<TrialRecord> records;
  std::size_t pruned_subtrees = 0;
  std::size_t skipped_leaves = 0;  ///< Saturating.
  /// Shared-incumbent traffic: feasible finds this unit published, and
  /// whether its unit-start snapshot pulled a tightened staircase.
  std::size_t frontier_broadcasts = 0;
  std::size_t frontier_snapshot_hits = 0;
  bool capped = false;  ///< Stopped at the per-unit record budget.
  /// The walk observed a raised cancel flag / expired deadline mid-unit.
  /// Collected records are complete evaluations and stay mergeable.
  bool cancelled = false;
};

/// Exhaustive unit walk (bound pruning off): visits the unit's global
/// index range [u*B, u*B + B) clipped to `limit`, in odometer order — the
/// exact historical serial walk, sliced per unit. Units wholly past
/// `limit` come out empty (saturating start arithmetic keeps that correct
/// for > 2^64 spaces: a saturated start is provably >= any limit).
UnitOutcome run_unit_unbounded(
    const EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    const UnitPlan& plan, std::size_t u, std::size_t limit,
    const CancelState& cancel, CandidateEvaluator& evaluator,
    obs::PhaseProfile* profile) {
  UnitOutcome out;
  const std::size_t start = sat_mul(u, plan.leaves_per_unit);
  if (start >= limit) return out;
  std::size_t count = limit - start;
  if (plan.leaves_per_unit < count) count = plan.leaves_per_unit;

  std::vector<std::size_t> digits(lists.size(), 0);
  std::vector<const bad::DesignPrediction*> selection(lists.size());
  decode_unit(lists, plan, u, digits, selection);
  for (std::size_t p = 0; p < plan.inner_count; ++p) {
    selection[p] = &lists[p].front();
  }
  if (count < (std::size_t{1} << 20)) out.records.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    if (cancel.armed() && cancel.triggered()) {
      out.cancelled = true;
      return out;
    }
    out.records.push_back(
        evaluate_leaf(ctx, selection, digits, evaluator, profile));
    for (std::size_t p = 0; p < plan.inner_count; ++p) {
      if (++digits[p] < lists[p].size()) {
        selection[p] = &lists[p][digits[p]];
        break;
      }
      digits[p] = 0;
      selection[p] = &lists[p].front();
    }
  }
  return out;
}

/// Branch-and-bound unit walk. Commits the unit's outer digits first
/// (pruning the whole unit if the bound already fails), then DFS-walks the
/// inner digits, innermost fastest. `remaining` open partitions are always
/// [0, remaining), matching BoundTables' suffix indexing.
class BoundedWalker {
 public:
  BoundedWalker(const EvalContext& ctx,
                const std::vector<std::vector<bad::DesignPrediction>>& lists,
                const UnitPlan& plan, const BoundTables& tables,
                const ParetoFrontier& seed, std::size_t record_cap,
                SharedFrontier* shared, const std::atomic<bool>* stop,
                const CancelState& cancel, CandidateEvaluator& evaluator,
                obs::PhaseProfile* profile)
      : ctx_(ctx),
        lists_(lists),
        plan_(plan),
        tables_(tables),
        record_cap_(record_cap),
        shared_(shared),
        stop_(stop),
        cancel_(cancel),
        evaluator_(evaluator),
        profile_(profile),
        frontier_(seed),
        prefix_(ctx.partitioning().chips().size()),
        digits_(lists.size(), 0),
        selection_(lists.size(), nullptr) {}

  UnitOutcome run(std::size_t u) {
    if (shared_ != nullptr) {
      // One snapshot per unit suffices: the shared frontier commits only
      // at wave barriers, and every unit of a wave completes before the
      // next commit — the staircase cannot tighten mid-unit.
      obs::ScopedPhase sync(profile_, obs::SearchPhase::kFrontierSync);
      std::uint64_t seen = 0;
      if (shared_->snapshot(seen, frontier_)) ++out_.frontier_snapshot_hits;
    }
    decode_unit(lists_, plan_, u, digits_, selection_);
    const std::size_t nparts = lists_.size();
    for (std::size_t p = nparts; p-- > plan_.inner_count;) {
      if (!prefix_.push(tables_.chip_of(p), *selection_[p]) ||
          tables_.prune(prefix_, p, frontier_)) {
        ++out_.pruned_subtrees;
        out_.skipped_leaves =
            sat_add(out_.skipped_leaves, plan_.leaves_per_unit);
        return std::move(out_);
      }
    }
    walk(plan_.inner_count);
    return std::move(out_);
  }

 private:
  void walk(std::size_t remaining) {
    if (remaining == 0) {
      leaf();
      return;
    }
    const std::size_t p = remaining - 1;
    for (std::size_t d = 0; d < lists_[p].size(); ++d) {
      digits_[p] = d;
      selection_[p] = &lists_[p][d];
      if (!prefix_.push(tables_.chip_of(p), *selection_[p])) {
        // Pipelined-rate conflict: an exact prune, nothing was committed.
        ++out_.pruned_subtrees;
        out_.skipped_leaves =
            sat_add(out_.skipped_leaves, tables_.leaves_below(p));
        continue;
      }
      if (tables_.prune(prefix_, p, frontier_)) {
        prefix_.pop();
        ++out_.pruned_subtrees;
        out_.skipped_leaves =
            sat_add(out_.skipped_leaves, tables_.leaves_below(p));
        continue;
      }
      walk(p);
      prefix_.pop();
      if (stopped_) return;
    }
  }

  void leaf() {
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
      stopped_ = true;  // partial outcome; the merge will never read it
      return;
    }
    if (record_cap_ > 0 && out_.records.size() >= record_cap_) {
      // The in-order merge can consume at most record_cap_ records from
      // this unit (the global cap minus everything earlier waves already
      // collected), so stop *before* evaluating this leaf instead of
      // over-collecting records the merge would only truncate.
      out_.capped = true;
      stopped_ = true;
      return;
    }
    if (cancel_.armed() && cancel_.triggered()) {
      // Unlike a stop-flag abort, a cancelled unit's collected records are
      // complete evaluations — the merge consumes them as a valid prefix.
      out_.cancelled = true;
      stopped_ = true;
      return;
    }
    TrialRecord record =
        evaluate_leaf(ctx_, selection_, digits_, evaluator_, profile_);
    if (record.feasible) {
      // Publish only staircase-tightening finds: a point the unit's own
      // frontier already dominates cannot tighten the shared one either.
      const bool tightened =
          frontier_.insert(record.ii_main, record.delay_main);
      if (tightened && shared_ != nullptr) {
        shared_->publish(record.ii_main, record.delay_main);
        ++out_.frontier_broadcasts;
      }
    }
    out_.records.push_back(std::move(record));
  }

  const EvalContext& ctx_;
  const std::vector<std::vector<bad::DesignPrediction>>& lists_;
  const UnitPlan& plan_;
  const BoundTables& tables_;
  const std::size_t record_cap_;
  SharedFrontier* shared_;
  const std::atomic<bool>* stop_;
  const CancelState& cancel_;
  CandidateEvaluator& evaluator_;
  obs::PhaseProfile* profile_;
  ParetoFrontier frontier_;
  PrefixState prefix_;
  std::vector<std::size_t> digits_;
  std::vector<const bad::DesignPrediction*> selection_;
  UnitOutcome out_;
  bool stopped_ = false;
};

/// True unless CHOP_BOUND_PRUNING is set to 0/false/off — the run-time
/// escape hatch that disables branch-and-bound without a rebuild.
/// Re-read on every search (one getenv per search, never per trial) so
/// tests can toggle the variable within one process.
bool bound_pruning_env_enabled() {
  const char* env = std::getenv("CHOP_BOUND_PRUNING");
  if (env == nullptr) return true;
  std::string v(env);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return !(v == "0" || v == "false" || v == "off");
}

/// True unless CHOP_SHARED_FRONTIER is set to 0/false/off — the run-time
/// ablation switch for the cross-unit incumbent broadcast. Same contract
/// and re-read cadence as CHOP_BOUND_PRUNING.
bool shared_frontier_env_enabled() {
  const char* env = std::getenv("CHOP_SHARED_FRONTIER");
  if (env == nullptr) return true;
  std::string v(env);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return !(v == "0" || v == "false" || v == "off");
}

/// Greedy seed probes: per-partition argmin by (ii, latency) and by
/// (latency, ii). Real integrations (counted as probe_integrations, not
/// trials) whose feasible results seed every unit's incumbent frontier, so
/// dominance pruning bites from the first unit. Each seed is a leaf the
/// walk itself would visit: a feasible seed can never be pruned along its
/// own path (the bounds there are lower bounds of its own exact values),
/// so every design the seeds dominate away stays dominated by a design in
/// the merged result.
ParetoFrontier seed_frontier(
    const EvalContext& ctx,
    const std::vector<std::vector<bad::DesignPrediction>>& lists,
    CandidateEvaluator& evaluator, SearchResult& out,
    obs::Counter& probe_counter, obs::PhaseProfile* profile) {
  obs::ScopedPhase phase(profile, obs::SearchPhase::kSeedProbes);
  ParetoFrontier seed;
  const std::size_t nparts = lists.size();
  if (nparts == 0) return seed;
  std::vector<const bad::DesignPrediction*> by_ii(nparts);
  std::vector<const bad::DesignPrediction*> by_latency(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    by_ii[p] = by_latency[p] = &lists[p].front();
    for (const bad::DesignPrediction& cand : lists[p]) {
      if (cand.ii_main < by_ii[p]->ii_main ||
          (cand.ii_main == by_ii[p]->ii_main &&
           cand.latency_main < by_ii[p]->latency_main)) {
        by_ii[p] = &cand;
      }
      if (cand.latency_main < by_latency[p]->latency_main ||
          (cand.latency_main == by_latency[p]->latency_main &&
           cand.ii_main < by_latency[p]->ii_main)) {
        by_latency[p] = &cand;
      }
    }
  }
  const auto probe = [&](const std::vector<const bad::DesignPrediction*>& s) {
    ++out.probe_integrations;
    probe_counter.add();
    const std::shared_ptr<const IntegrationResult> result =
        evaluator.evaluate(ctx, s, combination_ii(s), profile);
    if (result->feasible) {
      seed.insert(result->ii_main, result->system_delay_main);
    }
  };
  probe(by_ii);
  if (by_latency != by_ii) probe(by_latency);
  return seed;
}

/// Merges one trial into the accumulating SearchResult, in trial order.
void merge_trial(SearchResult& out, TrialRecord record, TrialReporter& reporter,
                 const SearchOptions& options,
                 std::vector<GlobalDesign>& feasible) {
  ++out.trials;
  if (options.record_all) out.recorder.record(record.point);
  reporter.trial(out.trials,
                 TrialView{record.feasible, record.ii_main, record.delay_main,
                           record.reason.c_str()});
  if (record.feasible) {
    ++out.feasible_raw;
    feasible.push_back(
        GlobalDesign{std::move(record.choice), *record.result});
  }
}

SearchResult search_enumeration(const EvalContext& ctx,
                                const PartitionPredictions& pred,
                                const SearchOptions& options,
                                CandidateEvaluator& evaluator) {
  SearchResult out;
  const auto& lists = search_lists(pred, options);
  CHOP_REQUIRE(lists.size() == ctx.partitioning().partitions().size(),
               "prediction lists must match partition count");
  for (const auto& list : lists) {
    if (list.empty()) return out;  // some partition has no implementation
  }

  const CancelState cancel(options);
  if (cancel.armed() && cancel.triggered()) {
    out.cancelled = true;  // already cancelled / deadline in the past
    return out;
  }

  static obs::Counter& pruned_counter =
      obs::MetricsRegistry::global().counter("search.pruned_subtrees");
  static obs::Counter& skipped_counter =
      obs::MetricsRegistry::global().counter("search.bound_skipped_leaves");
  static obs::Counter& probe_counter =
      obs::MetricsRegistry::global().counter("search.probe_integrations");
  static obs::Counter& broadcast_counter =
      obs::MetricsRegistry::global().counter("search.frontier_broadcasts");
  static obs::Counter& snapshot_counter =
      obs::MetricsRegistry::global().counter("search.frontier_snapshot_hits");

  const OdometerSpace space = odometer_space(lists);
  std::size_t limit = space.total;
  if (options.max_trials > 0 && options.max_trials < space.total) {
    limit = options.max_trials;
  }

  const bool bounded = options.bound_pruning && bound_pruning_env_enabled();
  const UnitPlan plan = plan_units(space);

  obs::PhaseProfile* profile = options.profile;
  std::unique_ptr<BoundTables> tables;
  ParetoFrontier seed;
  if (bounded) {
    obs::TraceSpan tables_span("search.bound_tables");
    {
      obs::ScopedPhase phase(profile, obs::SearchPhase::kBoundTables);
      tables = std::make_unique<BoundTables>(ctx, lists, options.bound_cache);
    }
    seed = seed_frontier(ctx, lists, evaluator, out, probe_counter, profile);
    tables_span.arg("partitions", lists.size());
    tables_span.arg("units", plan.unit_count);
    tables_span.arg("seed_points", seed.size());
    if (tables->space_infeasible()) {
      // No selection can integrate (e.g. a chip with no data pins left):
      // the historical walk would have visited every leaf only to fail it.
      out.pruned_subtrees = 1;
      out.bound_skipped_leaves = space.total;
      pruned_counter.add(out.pruned_subtrees);
      skipped_counter.add(out.bound_skipped_leaves);
      return out;
    }
  }

  std::vector<GlobalDesign> feasible;
  TrialReporter reporter(options.observer);
  std::atomic<bool> stop{false};

  // Cross-unit incumbent broadcast (see SharedFrontier): bounded walks
  // only — the unbounded walk keeps no frontier — and pointless for a
  // single unit.
  const bool share = bounded && options.shared_frontier &&
                     shared_frontier_env_enabled() && plan.unit_count > 1;
  SharedFrontier shared;

  // Deterministic wave schedule: with sharing, a wave's finds commit at
  // its barrier and the next wave prunes against them; without sharing
  // one wave covers everything (no barriers to honor).
  const std::vector<std::size_t> waves = plan_waves(plan.unit_count, share);
  std::vector<std::size_t> wave_first(waves.size());
  for (std::size_t k = 0, first = 0; k < waves.size(); ++k) {
    wave_first[k] = first;
    first += waves[k];
  }

  // Per-unit record budget for a wave starting after `records_before`
  // records were collected by earlier waves: the in-order merge consumes
  // at most max_trials records total and folds every earlier wave's
  // records in first, so one unit can never contribute more than the
  // difference — collecting past it would be over-collection the merge
  // only truncates. Computed from completed waves only, so budgets are
  // identical at any thread count and schedule.
  constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();
  const auto budget_for = [&](std::size_t records_before) -> std::size_t {
    if (!bounded || options.max_trials == 0) return kUnlimited;
    return options.max_trials > records_before
               ? options.max_trials - records_before
               : 0;
  };

  const auto run_unit = [&](std::size_t u, std::size_t budget) -> UnitOutcome {
    if (budget == 0) {
      // Earlier waves already filled the cap: the merge is guaranteed to
      // stop before reaching this unit, so there is nothing to collect.
      UnitOutcome out;
      out.capped = true;
      return out;
    }
    if (bounded) {
      return BoundedWalker(ctx, lists, plan, *tables, seed,
                           budget == kUnlimited ? 0 : budget,
                           share ? &shared : nullptr, &stop, cancel, evaluator,
                           profile)
          .run(u);
    }
    return run_unit_unbounded(ctx, lists, plan, u, limit, cancel, evaluator,
                              profile);
  };

  // In-order merge state. `reached_cap`/`more_after_cap` are computed only
  // from units the merge actually consumed, which all completed before the
  // stop flag could have been raised — deterministic at any thread count.
  // `cancel_hit` is the one timing-dependent stop: the merge folds in the
  // cancelled unit's complete prefix of records, then stops consuming.
  bool reached_cap = false;
  bool more_after_cap = false;
  bool cancel_hit = false;
  const std::size_t unit_count = plan.unit_count;
  const auto consume = [&](std::size_t u, UnitOutcome&& unit) {
    obs::ScopedPhase phase(profile, obs::SearchPhase::kMerge);
    out.pruned_subtrees = sat_add(out.pruned_subtrees, unit.pruned_subtrees);
    out.bound_skipped_leaves =
        sat_add(out.bound_skipped_leaves, unit.skipped_leaves);
    out.frontier_broadcasts += unit.frontier_broadcasts;
    out.frontier_snapshot_hits += unit.frontier_snapshot_hits;
    for (std::size_t i = 0; i < unit.records.size(); ++i) {
      merge_trial(out, std::move(unit.records[i]), reporter, options,
                  feasible);
      if (options.max_trials > 0 && out.trials >= options.max_trials) {
        reached_cap = true;
        more_after_cap = (i + 1 < unit.records.size()) || unit.capped ||
                         (u + 1 < unit_count);
        stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
    if (unit.cancelled) {
      cancel_hit = true;
      stop.store(true, std::memory_order_relaxed);
    }
  };

  if (options.threads <= 1 || unit_count <= 1) {
    std::size_t records_before = 0;
    for (std::size_t k = 0; k < waves.size() && !reached_cap && !cancel_hit;
         ++k) {
      const std::size_t budget = budget_for(records_before);
      for (std::size_t u = wave_first[k]; u < wave_first[k] + waves[k]; ++u) {
        if (reached_cap || cancel_hit) break;
        if (cancel.armed() && cancel.triggered()) {
          cancel_hit = true;
          break;
        }
        UnitOutcome outcome = run_unit(u, budget);
        records_before += outcome.records.size();
        consume(u, std::move(outcome));
      }
      if (share && !reached_cap && !cancel_hit) {
        obs::ScopedPhase sync(profile, obs::SearchPhase::kFrontierSync);
        shared.commit();
      }
    }
  } else {
    obs::TraceSpan span("search.parallel");
    // An external pool (serve's, shared across jobs) schedules this
    // search's units interleaved with everyone else's; otherwise spin up
    // a private work-stealing pool for this search only.
    ThreadPool* pool = options.pool;
    std::unique_ptr<ThreadPool> private_pool;
    if (pool == nullptr) {
      private_pool = std::make_unique<ThreadPool>(
          std::min<int>(options.threads, static_cast<int>(unit_count)));
      pool = private_pool.get();
    }

    // Pool threads have no ambient trace context; hand them this span's
    // so unit spans join the job's trace tree instead of floating free.
    const obs::TraceContext unit_ctx = span.context();
    std::vector<UnitOutcome> outcomes(unit_count);
    std::vector<std::vector<std::future<void>>> inflight(waves.size());

    // On any exit — including an exception thrown out of a unit — stop
    // stragglers and drain every scheduled future, so no task outlives
    // `outcomes` (essential when running on serve's shared pool).
    struct Drain {
      std::atomic<bool>& stop;
      std::vector<std::vector<std::future<void>>>& inflight;
      ~Drain() {
        stop.store(true, std::memory_order_relaxed);
        for (auto& wave : inflight) {
          for (auto& f : wave) {
            if (f.valid()) f.wait();
          }
        }
      }
    } drain{stop, inflight};

    const auto schedule_wave = [&](std::size_t k, std::size_t budget) {
      std::vector<std::function<void()>> jobs;
      jobs.reserve(waves[k]);
      for (std::size_t u = wave_first[k]; u < wave_first[k] + waves[k]; ++u) {
        jobs.push_back([&, u, k, budget] {
          if (stop.load(std::memory_order_relaxed)) return;
          obs::TraceContextScope ctx_scope(unit_ctx);
          obs::TraceSpan unit_span("search.parallel.unit");
          unit_span.arg("unit", u);
          unit_span.arg("wave", k);
          outcomes[u] = run_unit(u, budget);
        });
      }
      inflight[k] = pool->submit_batch(std::move(jobs));
    };

    // Joining a wave helps run queued tasks instead of idling at the
    // barrier — on a shared pool that may be other jobs' units.
    const auto join_wave = [&](std::size_t k) {
      for (auto& f : inflight[k]) {
        while (f.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
          if (!pool->try_run_one()) f.wait();
        }
        f.get();  // rethrows a unit's exception
      }
    };

    std::size_t records_before = 0;
    schedule_wave(0, budget_for(0));
    for (std::size_t k = 0; k < waves.size(); ++k) {
      join_wave(k);
      // Wave barrier: every unit of wave k is complete. Commit its finds
      // and schedule wave k+1 *before* merging wave k, so the next wave
      // executes while this thread merges — the barrier never idles the
      // pool. Budgets use pre-truncation record counts (deterministic);
      // if the merge below stops at the cap or a cancellation, wave k+1's
      // outcomes are simply never consumed.
      for (std::size_t u = wave_first[k]; u < wave_first[k] + waves[k]; ++u) {
        records_before += outcomes[u].records.size();
      }
      if (share) {
        obs::ScopedPhase sync(profile, obs::SearchPhase::kFrontierSync);
        shared.commit();
      }
      if (k + 1 < waves.size()) {
        schedule_wave(k + 1, budget_for(records_before));
      }
      for (std::size_t u = wave_first[k];
           u < wave_first[k] + waves[k] && !reached_cap && !cancel_hit; ++u) {
        consume(u, std::move(outcomes[u]));
      }
      if (reached_cap || cancel_hit) break;  // Drain stops wave k+1
    }
    span.arg("threads", options.threads);
    span.arg("units", unit_count);
    span.arg("waves", waves.size());
    span.arg("shared_frontier", share);
    span.arg("trials", out.trials);
  }

  pruned_counter.add(out.pruned_subtrees);
  skipped_counter.add(out.bound_skipped_leaves);
  broadcast_counter.add(out.frontier_broadcasts);
  snapshot_counter.add(out.frontier_snapshot_hits);

  // Unbounded truncation is exact (the walk stops at a known global
  // index); bounded truncation is deterministically pessimistic — the
  // un-walked tail might have contained no further survivors.
  out.truncated =
      bounded ? (reached_cap && more_after_cap) : (limit < space.total);
  out.cancelled = cancel_hit;
  out.designs = non_inferior(std::move(feasible));
  return out;
}

// ---------------------------------------------------------------------------
// Iterative heuristic (Figure 5).
// ---------------------------------------------------------------------------

SearchResult search_iterative(const EvalContext& ctx,
                              const PartitionPredictions& pred,
                              const SearchOptions& options,
                              CandidateEvaluator& evaluator) {
  SearchResult out;
  const auto& input_lists = search_lists(pred, options);
  const Partitioning& pt = ctx.partitioning();
  CHOP_REQUIRE(input_lists.size() == pt.partitions().size(),
               "prediction lists must match partition count");
  for (const auto& list : input_lists) {
    if (list.empty()) return out;
  }

  // "Sort all predicted implementations for all Pi in increasing order
  // first for the initiation interval and then for the circuit delay."
  std::vector<std::vector<const bad::DesignPrediction*>> lists(
      input_lists.size());
  for (std::size_t p = 0; p < input_lists.size(); ++p) {
    for (const auto& pr : input_lists[p]) lists[p].push_back(&pr);
    std::sort(lists[p].begin(), lists[p].end(),
              [](const bad::DesignPrediction* a,
                 const bad::DesignPrediction* b) {
                if (a->ii_main != b->ii_main) return a->ii_main < b->ii_main;
                return a->latency_main < b->latency_main;
              });
  }

  // Candidate initiation intervals: every distinct achievable II within
  // the performance budget (optimistically at the nominal clock).
  std::set<Cycles> candidate_iis;
  for (const auto& list : lists) {
    for (const bad::DesignPrediction* p : list) {
      if (static_cast<double>(p->ii_main) * ctx.clocks().main_clock <=
          ctx.constraints().performance_ns) {
        candidate_iis.insert(p->ii_main);
      }
    }
  }

  std::vector<GlobalDesign> feasible;
  std::vector<const bad::DesignPrediction*> selection(lists.size());
  TrialReporter reporter(options.observer);
  const CancelState cancel(options);
  // The serialization probes bypass the trial count (the paper's counts
  // exclude them) but are real integrations — surfaced via this counter
  // so --progress/metrics no longer under-report work done. The memo
  // cache also means a probe revisited by the main walk costs nothing.
  static obs::Counter& probe_counter =
      obs::MetricsRegistry::global().counter("search.probe_integrations");

  obs::PhaseProfile* profile = options.profile;
  auto integrate_at = [&](const std::vector<std::size_t>& w) {
    for (std::size_t p = 0; p < lists.size(); ++p) {
      selection[p] = lists[p][w[p]];
    }
    const Cycles ii = combination_ii(selection);
    return evaluator.evaluate(ctx, selection, ii, profile);
  };

  for (Cycles l : candidate_iis) {
    // Acceptance at rate l (Figure 5's advance condition, made rate-safe):
    // a nonpipelined implementation sustains any rate at or above its
    // latency (it idles), a pipelined one only its designed rate — the
    // data-rate-mismatch rule. Both the initial advance and every
    // serialization step move Wi to the next acceptable position, so the
    // walk stays inside rate-compatible space.
    auto acceptable = [l](const bad::DesignPrediction* cand) {
      if (cand->style == bad::DesignStyle::Nonpipelined) {
        return cand->ii_main <= l;
      }
      return cand->ii_main == l;
    };
    auto next_acceptable = [&](std::size_t p, std::size_t from) {
      while (from < lists[p].size() && !acceptable(lists[p][from])) ++from;
      return from;
    };

    // Initialize Wi to the fastest acceptable implementation.
    std::vector<std::size_t> w(lists.size(), 0);
    bool exhausted = false;
    for (std::size_t p = 0; p < lists.size(); ++p) {
      w[p] = next_acceptable(p, 0);
      if (w[p] == lists[p].size()) exhausted = true;
    }
    if (exhausted) continue;  // no implementation sustains rate l

    while (true) {
      if (options.max_trials > 0 && out.trials >= options.max_trials) {
        out.truncated = true;
        break;
      }
      if (cancel.armed() && cancel.triggered()) {
        out.cancelled = true;
        break;
      }
      ++out.trials;
      std::shared_ptr<const IntegrationResult> result;
      {
        obs::ScopedPhase phase(profile, obs::SearchPhase::kLeafEval);
        result = integrate_at(w);
      }
      if (options.record_all) {
        out.recorder.record(make_point(selection, *result));
      }
      reporter.trial(out.trials, view_of(*result));

      if (result->feasible) {
        ++out.feasible_raw;
        // Map sorted positions back to indices in the searched list so
        // GlobalDesign::choice means the same thing for both heuristics.
        std::vector<std::size_t> original(w.size());
        for (std::size_t p = 0; p < w.size(); ++p) {
          original[p] = static_cast<std::size_t>(lists[p][w[p]] -
                                                 input_lists[p].data());
        }
        feasible.push_back(GlobalDesign{std::move(original), *result});
        break;
      }

      // Q: partitions residing on chips whose area constraint is violated.
      std::vector<std::size_t> q;
      for (int chip : result->violated_chips) {
        for (int p : pt.partitions_on_chip(chip)) {
          q.push_back(static_cast<std::size_t>(p));
        }
      }
      if (q.empty()) break;  // not an area problem; serializing won't help

      // Pick the serialization with the minimum expected system delay
      // (urgency scheduling probes, Figure 5). A serialization step moves
      // Wi to the next rate-acceptable, more serial implementation.
      std::size_t best_partition = lists.size();
      std::size_t best_position = 0;
      Cycles best_delay = std::numeric_limits<Cycles>::max();
      for (std::size_t p : q) {
        const std::size_t next = next_acceptable(p, w[p] + 1);
        if (next >= lists[p].size()) continue;
        std::vector<std::size_t> probe = w;
        probe[p] = next;
        ++out.probe_integrations;
        probe_counter.add();
        std::shared_ptr<const IntegrationResult> probed;
        {
          // The Figure-5 urgency probes are the iterative heuristic's
          // analogue of the enumerator's seed probes.
          obs::ScopedPhase phase2(profile, obs::SearchPhase::kSeedProbes);
          probed = integrate_at(probe);
        }
        const Cycles delay = probed->system_delay_main > 0
                                 ? probed->system_delay_main
                                 : std::numeric_limits<Cycles>::max() / 2;
        if (delay < best_delay) {
          best_delay = delay;
          best_partition = p;
          best_position = next;
        }
      }
      if (best_partition == lists.size()) break;  // nothing to serialize
      w[best_partition] = best_position;
    }
    if (out.truncated || out.cancelled) break;
  }

  out.designs = non_inferior(std::move(feasible));
  return out;
}

}  // namespace

SearchResult find_feasible_implementations(const EvalContext& ctx,
                                           const PartitionPredictions& pred,
                                           const SearchOptions& options) {
  const bool enumeration = options.heuristic == Heuristic::Enumeration;
  // An explicit trace context (serve hands the job's) makes this search's
  // spans — including pool-thread chunks — one connected tree; inactive
  // contexts inherit whatever the calling thread already runs under.
  obs::TraceContextScope trace_scope(options.trace);
  obs::TraceSpan span(enumeration ? "search.enumeration" : "search.iterative");
  CHOP_REQUIRE(options.threads >= 1, "search needs at least one thread");
  if (options.profile != nullptr) options.profile->add_search();

  // A caller-provided evaluator carries its memo across searches (the
  // session/auto-partition/clock-sweep reuse cases); otherwise a private
  // one still serves repeats within this run.
  CandidateEvaluator local_evaluator;
  CandidateEvaluator& evaluator =
      options.evaluator != nullptr ? *options.evaluator : local_evaluator;

  SearchResult out = enumeration
                         ? search_enumeration(ctx, pred, options, evaluator)
                         : search_iterative(ctx, pred, options, evaluator);

  // Feasible global designs discarded as Pareto-inferior (level-2 prune).
  static obs::Counter& pruned_inferior =
      obs::MetricsRegistry::global().counter("search.pruned_inferior");
  pruned_inferior.add(out.feasible_raw - out.designs.size());
  if (out.cancelled) {
    static obs::Counter& cancelled_counter =
        obs::MetricsRegistry::global().counter("search.cancelled");
    cancelled_counter.add();
  }
  span.arg("trials", out.trials);
  span.arg("feasible", out.feasible_raw);
  span.arg("designs", out.designs.size());
  span.arg("truncated", out.truncated);
  span.arg("cancelled", out.cancelled);
  span.arg("threads", options.threads);
  if (enumeration) {
    span.arg("pruned_subtrees", out.pruned_subtrees);
    span.arg("bound_skipped_leaves", out.bound_skipped_leaves);
  }

  if (options.observer != nullptr) {
    obs::SearchProgress p;
    p.trials = out.trials;
    p.feasible = out.feasible_raw;
    if (!out.designs.empty()) {
      p.best_ii = out.designs.front().integration.ii_main;
      p.best_delay = out.designs.front().integration.system_delay_main;
      p.trial_feasible = true;
    }
    options.observer->on_done(p);
  }
  return out;
}

}  // namespace chop::core
