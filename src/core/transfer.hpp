// Data transfer task creation (paper §2.4 / Figure 3): "When the
// information about partition and memory block assignments is available,
// data transfer tasks are created by CHOP to transfer data among
// partitions ... determining the manner and the amount of data to be
// transferred, reserving enough pins for control signals ... and also for
// other necessary signal pins which are not shared (Select, R/W lines for
// memory blocks)."
//
// Four transfer flavours exist: environment -> partition (primary inputs),
// partition -> partition (cut values), partition -> environment (primary
// outputs), and partition <-> memory when the block lives off the
// partition's chip. Same-chip transfers move no pins but still appear as
// tasks (zero pin demand) so precedence is uniform.
#pragma once

#include <string>
#include <vector>

#include "core/partitioning.hpp"

namespace chop::core {

/// Endpoint marker for environment-side transfers.
inline constexpr int kEnvironment = -1;

/// One data transfer task.
struct DataTransfer {
  enum class Kind { InputDelivery, Interpartition, OutputCollection,
                    MemoryRead, MemoryWrite };

  Kind kind = Kind::Interpartition;
  std::string name;
  int src_partition = kEnvironment;  ///< Producing partition (or environment).
  int dst_partition = kEnvironment;  ///< Consuming partition (or environment).
  int memory_block = -1;             ///< For memory transfers.
  Bits bits = 0;                     ///< D: data moved per iteration.

  /// Chips whose pins the transfer crosses (empty for same-chip traffic).
  std::vector<int> chips;

  /// True when the transfer crosses chip pins at all.
  bool crosses_pins() const { return !chips.empty(); }
};

/// Derives every data transfer task implied by the partitioning. The
/// partitioning must validate() cleanly first.
std::vector<DataTransfer> create_transfer_tasks(const Partitioning& pt);

/// Unshared control pins each chip must reserve: the Select/R-W lines of
/// every memory block it accesses remotely or serves remotely, plus
/// `handshake_pins_per_transfer` distributed-control lines per
/// pin-crossing transfer touching the chip. Indexed by chip.
std::vector<Pins> reserved_control_pins(
    const Partitioning& pt, const std::vector<DataTransfer>& transfers,
    Pins handshake_pins_per_transfer = 2);

/// Allocation-reusing variant for the evaluation hot path: writes the same
/// per-chip reserves into `out` (resized to the chip count) instead of
/// returning a fresh vector per call.
void reserved_control_pins_into(const Partitioning& pt,
                                const std::vector<DataTransfer>& transfers,
                                Pins handshake_pins_per_transfer,
                                std::vector<Pins>& out);

}  // namespace chop::core
