#include "serve/uds.hpp"

#if CHOP_SERVE_HAVE_UDS

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "serve/service.hpp"

namespace chop::serve {

namespace {

bool fill_address(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes): " + path;
    }
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// write(2) until everything is out; EINTR-safe. A dead peer produces
/// EPIPE (SIGPIPE is suppressed via MSG_NOSIGNAL on send).
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  return send_all(fd, framed.data(), framed.size());
}

/// Reads one '\n'-terminated line into `*line`, carrying partial bytes in
/// `*buffer` across calls. max_line guards against unbounded growth: an
/// overlong line returns -2 so the caller can reject it and close.
/// Returns 1 on a line, 0 on orderly EOF, -1 on error, -2 on oversize.
int recv_line(int fd, std::string* buffer, std::string* line,
              std::size_t max_line) {
  for (;;) {
    const std::size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return 1;
    }
    if (buffer->size() > max_line) return -2;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return 0;
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

UdsServer::UdsServer(ChopServer& server, std::string socket_path,
                     ProtocolLimits limits)
    : server_(server), socket_path_(std::move(socket_path)), limits_(limits) {}

UdsServer::~UdsServer() { stop(); }

bool UdsServer::start(std::string* error) {
  sockaddr_un addr;
  if (!fill_address(socket_path_, &addr, error)) return false;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(socket_path_.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void UdsServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    live_fds_.insert(fd);
    connection_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void UdsServer::handle_connection(int fd) {
  Service service(server_, limits_);
  std::string buffer;
  std::string line;
  for (;;) {
    const int status = recv_line(fd, &buffer, &line, limits_.max_line_bytes);
    if (status == -2) {
      send_line(fd, error_response("payload_too_large",
                                   "request line exceeds " +
                                       std::to_string(limits_.max_line_bytes) +
                                       " bytes"));
      break;
    }
    if (status <= 0) break;  // EOF, error, or fd shut down by stop()
    if (line.empty()) continue;
    if (!send_line(fd, service.handle_line(line))) break;
    if (service.shutdown_requested()) {
      note_shutdown_request(service.drain());
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  live_fds_.erase(fd);
}

void UdsServer::note_shutdown_request(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_requested_) {
      shutdown_requested_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
}

bool UdsServer::wait_for_shutdown_request() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
  return shutdown_requested_;
}

bool UdsServer::drain() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drain_;
}

void UdsServer::stop() {
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && listen_fd_ < 0 && connection_threads_.empty()) {
      cv_.notify_all();
      // fall through to join accept_thread_ (idempotent second call)
    }
    stopping_ = true;
    // Unblock every connection thread stuck in recv.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connection_threads_);
  }
  cv_.notify_all();
  if (listen_fd_ >= 0) {
    // shutdown() alone does not wake accept() on all platforms; closing
    // the fd does. The accept loop never touches listen_fd_ after a
    // failed accept, so the close is safe.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  ::unlink(socket_path_.c_str());
}

UdsClient::UdsClient(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

UdsClient::~UdsClient() { close(); }

bool UdsClient::connect(std::string* error) {
  sockaddr_un addr;
  if (!fill_address(socket_path_, &addr, error)) return false;
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool UdsClient::request(const std::string& line, std::string* response,
                        std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  if (!send_line(fd_, line)) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  // Responses are bounded like requests; a cooperating server never sends
  // more than one line per request.
  const int status =
      recv_line(fd_, &buffer_, response, ProtocolLimits{}.max_line_bytes);
  if (status == 1) return true;
  if (error != nullptr) {
    *error = status == 0 ? "server closed connection" : std::strerror(errno);
  }
  return false;
}

void UdsClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace chop::serve

#endif  // CHOP_SERVE_HAVE_UDS
