// The chop_serve wire protocol: newline-delimited JSON request/response
// pairs, transport-agnostic (the same bytes travel over a Unix-domain
// socket, a pipe, or an in-process test harness).
//
// Requests (one object per line, strict keys — unknown keys are errors):
//
//   {"op":"submit","spec":"<.chop text>",...}   accept a partitioning job
//       optional: "id" (client-chosen, must be unique), "spec_path"
//       (server-side file instead of inline text), "heuristic" ("E"|"I"),
//       "threads", "priority", "deadline_ms", "max_trials", "keep_all",
//       "bound_pruning"
//   {"op":"revise","id":"<base>","delta":{...}} resubmit a finished job
//       with one structured §2.7 modification applied to its project;
//       optional "new_id" names the revised job (server-assigned when
//       omitted). The delta object carries a "kind" plus kind-specific
//       fields (strict keys):
//         {"kind":"move_op","op":"<node>","to":"<partition>"}
//         {"kind":"retarget_chip","partition":"<name>","chip":"<name>"}
//         {"kind":"replace_package","chip":"<name>",
//          "package":"mosis64"|"mosis84"}
//         {"kind":"set_clock","main_clock_ns":N,
//          "datapath_multiplier":N,"transfer_multiplier":N}
//         {"kind":"set_constraints", any of "performance_ns","delay_ns",
//          "system_power_mw","chip_power_mw"} (omitted = keep base value)
//   {"op":"status","id":"<job>"}                lifecycle state poll
//   {"op":"result","id":"<job>","wait":true}    fetch result (optionally
//                                               blocking until terminal)
//   {"op":"cancel","id":"<job>"}                cancel queued/running job
//   {"op":"stats"}                              queue/cache/worker stats
//   {"op":"metrics"}                            full metrics registry
//       optional: "format" ("json"|"prometheus"; prometheus returns the
//       text exposition inside the "text" field)
//   {"op":"healthz"}                            liveness: uptime, queue
//                                               depth, busy workers,
//                                               overload/accepting state
//   {"op":"profile"}                            per-phase search time
//       optional: "id" (one job's attribution instead of the server sum)
//   {"op":"shutdown","drain":true}              graceful drain + stop
//
// Every response about a specific job (submit/status/result/cancel)
// echoes its distributed-tracing id as 16 hex digits in "trace".
//
// Responses always carry "ok"; failures add {"error":{"code","message"}}.
// Error codes: parse_error, invalid_request, payload_too_large,
// invalid_spec, spec_unreadable, invalid_delta, overload, shutting_down,
// duplicate_id, not_found, timeout, unknown_op.
//
// The `search` fragment of a result response is rendered by
// render_search_result(), which tests also apply to direct
// ChopSession::search() output — byte equality of the two strings is the
// serving layer's correctness oracle.
#pragma once

#include <string>

#include "core/search.hpp"
#include "gen/generate.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"

namespace chop::serve {

/// Thrown by parse_request for every malformed request; the service layer
/// renders it as a structured error response.
class ProtocolError : public Error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : Error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Hard input limits enforced before any parsing work happens.
struct ProtocolLimits {
  std::size_t max_line_bytes = 4u << 20;  ///< One request line.
  std::size_t max_spec_bytes = 2u << 20;  ///< Inline or on-disk spec text.
  std::size_t max_json_depth = 64;
};

enum class RequestOp {
  Submit,
  Generate,  ///< Submit a generation job: the engine invents the cut.
  Revise,
  Status,
  Result,
  Cancel,
  Stats,
  Metrics,
  Healthz,
  Profile,
  Shutdown,
};

/// One name-based §2.7 modification carried by a `revise` request. Names
/// (node, partition, chip) are resolved against the base job's project at
/// apply time; unresolvable names are `not_found` errors, structurally
/// invalid edits are `invalid_delta`.
struct DeltaSpec {
  enum class Kind {
    MoveOp,          ///< Move one operation to another partition.
    RetargetChip,    ///< Migrate a whole partition to another chip.
    ReplacePackage,  ///< Swap a chip's package (MOSIS 64 <-> 84).
    SetClock,        ///< Replace the clock family.
    SetConstraints,  ///< Patch the constraint budget.
  };
  Kind kind = Kind::SetConstraints;
  std::string op_name;    ///< MoveOp: node name.
  std::string partition;  ///< MoveOp destination / RetargetChip subject.
  std::string chip;       ///< RetargetChip destination / ReplacePackage.
  std::string package;    ///< ReplacePackage: "mosis64" | "mosis84".
  double main_clock_ns = 0.0;   ///< SetClock (all three required).
  int datapath_multiplier = 1;
  int transfer_multiplier = 1;
  /// SetConstraints: negative = keep the base project's value.
  double performance_ns = -1.0;
  double delay_ns = -1.0;
  double system_power_mw = -1.0;
  double chip_power_mw = -1.0;
};

/// One parsed, validated request.
struct Request {
  RequestOp op = RequestOp::Stats;
  std::string id;         ///< Job id (submit: optional client-chosen;
                          ///< profile: optional scope; revise: base job).
  std::string new_id;     ///< revise: optional client-chosen revised id.
  std::string spec;       ///< Inline `.chop` text (submit).
  std::string spec_path;  ///< Server-side spec file (submit).
  JobOptions options;     ///< Submit knobs.
  DeltaSpec delta;        ///< revise: the modification to apply.
  bool wait = false;      ///< result: block until terminal.
  bool drain = true;      ///< shutdown: drain accepted jobs first.
  bool prometheus = false;  ///< metrics: text exposition instead of JSON.
};

/// Parses and validates one request line. Throws ProtocolError (with a
/// machine-readable code) on anything malformed: oversized payloads,
/// broken JSON, wrong types, unknown ops or keys, out-of-range values.
Request parse_request(const std::string& line, const ProtocolLimits& limits);

/// `{"ok":false,...,"error":{"code":...,"message":...}}`. The id is
/// echoed when known.
std::string error_response(const std::string& code, const std::string& message,
                           const std::string& id = "");

/// The deterministic `search` fragment shared by the daemon and by tests
/// replaying the same project directly: designs (choice/ii/delay/clock/
/// performance/delay ns), trials, feasible_raw, probe_integrations,
/// truncated, cancelled. Timing and identity fields deliberately live
/// outside this fragment so it is byte-comparable across processes.
JsonValue render_search_result(const core::SearchResult& result);

/// The `generate` fragment of a generation job's result: portfolio stats
/// (starts/killed/evaluations/gated), the (area, II, delay) frontier, and
/// the best cut as partition member-name lists (resolvable against the
/// submitted spec, e.g. to write a `partitions` section). Deterministic
/// like the search fragment.
JsonValue render_generate_result(const gen::GenerateResult& result,
                                 const dfg::Graph& spec);

/// Applies one DeltaSpec to a project, returning the patched copy. Name
/// resolution happens here; the move semantics mirror
/// core::Partitioning::move_operation exactly (moving a node to the
/// partition it already lives in is a no-op; emptying a partition is an
/// error). Throws ProtocolError — `not_found` for unresolvable names,
/// `invalid_delta` for structurally invalid edits.
io::Project apply_delta(const io::Project& base, const DeltaSpec& delta);

}  // namespace chop::serve
