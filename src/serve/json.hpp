// Minimal JSON value model for the chop_serve wire protocol: parse one
// NDJSON request line into a tree, render one response line back out.
//
// Deliberately small and strict — this parser faces untrusted client
// bytes (and the protocol fuzzer), so it enforces hard limits instead of
// trusting the input: bounded nesting depth, finite numbers only, valid
// UTF-16 escapes, no trailing garbage. Every rejection is a JsonError
// carrying the byte offset, which the service layer converts into a
// structured `parse_error` response; nothing here ever terminates the
// process.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace chop::serve {

/// Parse failure with the 0-based byte offset where it was detected.
class JsonError : public Error {
 public:
  JsonError(std::size_t offset, const std::string& message)
      : Error("json offset " + std::to_string(offset) + ": " + message),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One JSON value. Objects preserve insertion order (deterministic
/// serialization) and are looked up linearly — protocol objects hold a
/// handful of keys.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::Null) {}
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::Number), number_(n) {}
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::String), string_(s) {}
  JsonValue(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  JsonValue(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Appends a member (objects) / element (arrays).
  void set(std::string key, JsonValue value);
  void push(JsonValue value);

  /// Serializes to a single line (no newline). Numbers that hold exact
  /// integers print without a decimal point; everything else uses
  /// round-trippable shortest-form formatting.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses exactly one JSON document; throws JsonError on malformed
  /// input, non-finite numbers, nesting beyond `max_depth`, or trailing
  /// non-whitespace.
  static JsonValue parse(std::string_view text, std::size_t max_depth = 64);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Renders `s` as a quoted JSON string literal (escapes quotes,
/// backslashes and control characters).
std::string json_quote(std::string_view s);

/// Deterministic number rendering shared by every protocol writer:
/// exact integers without a decimal point, otherwise %.17g.
std::string json_number(double v);

}  // namespace chop::serve
