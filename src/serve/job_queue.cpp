#include "serve/job_queue.hpp"

#include "obs/metrics.hpp"

namespace chop::serve {

namespace {

obs::Gauge& depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("serve.queue_depth");
  return g;
}

}  // namespace

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

JobQueue::PushResult JobQueue::push(std::shared_ptr<Job> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::Closed;
    if (size_ >= capacity_) return PushResult::Overloaded;
    lanes_[job->options.priority].push_back(std::move(job));
    ++size_;
    depth_gauge().set(static_cast<double>(size_));
  }
  cv_.notify_one();
  return PushResult::Accepted;
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return size_ > 0 || closed_; });
  if (size_ == 0) return nullptr;  // closed and drained
  auto lane = lanes_.begin();     // highest priority with work
  while (lane->second.empty()) ++lane;
  std::shared_ptr<Job> job = std::move(lane->second.front());
  lane->second.pop_front();
  if (lane->second.empty()) lanes_.erase(lane);
  --size_;
  depth_gauge().set(static_cast<double>(size_));
  return job;
}

std::shared_ptr<Job> JobQueue::remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto lane = lanes_.begin(); lane != lanes_.end(); ++lane) {
    for (auto it = lane->second.begin(); it != lane->second.end(); ++it) {
      if ((*it)->id != id) continue;
      std::shared_ptr<Job> job = std::move(*it);
      lane->second.erase(it);
      if (lane->second.empty()) lanes_.erase(lane);
      --size_;
      depth_gauge().set(static_cast<double>(size_));
      return job;
    }
  }
  return nullptr;
}

std::vector<std::shared_ptr<Job>> JobQueue::drain_now() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Job>> removed;
  removed.reserve(size_);
  for (auto& [priority, lane] : lanes_) {
    (void)priority;
    for (std::shared_ptr<Job>& job : lane) removed.push_back(std::move(job));
  }
  lanes_.clear();
  size_ = 0;
  depth_gauge().set(0.0);
  return removed;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace chop::serve
