#include "serve/server.hpp"

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace chop::serve {

namespace {

using Millis = std::chrono::milliseconds;

double ms_between(Job::Clock::time_point from, Job::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Safety cap for exhaustive keep-all jobs, mirroring `chop_cli
/// --keep-all` (the paper's own unpruned run died of swap space).
constexpr std::size_t kKeepAllTrialCap = 500000;

}  // namespace

ChopServer::ChopServer(ServerOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      evaluator_pool_(options.evaluator_pool_capacity,
                      options.cache_entries_per_context) {
  // 0 means auto-detect for both pools — the same contract as
  // chop_cli --threads=0.
  options_.workers = core::ThreadPool::resolve_threads(options_.workers);
  options_.search_threads =
      core::ThreadPool::resolve_threads(options_.search_threads);
  obs::MetricsRegistry::global()
      .gauge("serve.workers")
      .set(static_cast<double>(options_.workers));
  obs::MetricsRegistry::global()
      .gauge("serve.search_pool_threads")
      .set(static_cast<double>(options_.search_threads));
  search_pool_ = std::make_unique<core::ThreadPool>(options_.search_threads);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ChopServer::~ChopServer() { shutdown(true); }

SubmitOutcome ChopServer::submit(io::Project project, JobOptions options,
                                 std::string id) {
  static obs::Counter& submitted_counter =
      obs::MetricsRegistry::global().counter("serve.submitted");
  static obs::Counter& rejected_counter =
      obs::MetricsRegistry::global().counter("serve.rejected_overload");

  std::lock_guard<std::mutex> lock(jobs_mu_);
  if (!accepting_) return {SubmitStatus::ShuttingDown, std::move(id)};
  if (id.empty()) {
    do {
      id = "job-" + std::to_string(++next_auto_id_);
    } while (jobs_.count(id) != 0);
  } else if (jobs_.count(id) != 0) {
    return {SubmitStatus::DuplicateId, std::move(id)};
  }

  auto job = std::make_shared<Job>();
  job->id = id;
  job->project = std::move(project);
  job->options = options;
  job->sequence = ++next_sequence_;
  job->submitted_at = Job::Clock::now();
  job->trace_id = obs::next_trace_id();
  job->submitted_ts_us = obs::trace_now_us();
  if (options.deadline_ms > 0) {
    job->deadline = job->submitted_at + Millis(options.deadline_ms);
  }

  const std::uint64_t trace_id = job->trace_id;
  switch (queue_.push(job)) {
    case JobQueue::PushResult::Accepted:
      jobs_.emplace(id, std::move(job));
      ++submitted_;
      submitted_counter.add();
      return {SubmitStatus::Accepted, std::move(id), trace_id};
    case JobQueue::PushResult::Overloaded:
      ++rejected_overload_;
      rejected_counter.add();
      return {SubmitStatus::Overloaded, std::move(id)};
    case JobQueue::PushResult::Closed:
      break;
  }
  return {SubmitStatus::ShuttingDown, std::move(id)};
}

ReviseOutcome ChopServer::revise(const std::string& base_id,
                                 const DeltaSpec& delta, std::string new_id) {
  static obs::Counter& revised_counter =
      obs::MetricsRegistry::global().counter("serve.revised");

  io::Project base_project;
  JobOptions base_options;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(base_id);
    if (it == jobs_.end()) return {ReviseStatus::NotFound, {}};
    if (it->second->state != JobState::Done) {
      return {ReviseStatus::NotDone, {}};
    }
    base_project = it->second->project;
    base_options = it->second->options;
  }

  // Outside the lock: name resolution walks the project and may throw
  // ProtocolError, which the service renders as a structured error.
  io::Project revised = apply_delta(base_project, delta);

  ReviseOutcome outcome;
  outcome.submit =
      submit(std::move(revised), base_options, std::move(new_id));
  switch (outcome.submit.status) {
    case SubmitStatus::Accepted:
      outcome.status = ReviseStatus::Accepted;
      break;
    case SubmitStatus::Overloaded:
      outcome.status = ReviseStatus::Overloaded;
      return outcome;
    case SubmitStatus::ShuttingDown:
      outcome.status = ReviseStatus::ShuttingDown;
      return outcome;
    case SubmitStatus::DuplicateId:
      outcome.status = ReviseStatus::DuplicateId;
      return outcome;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(outcome.submit.id);
    if (it != jobs_.end()) it->second->revised_from = base_id;
    ++revised_;
  }
  revised_counter.add();
  return outcome;
}

void ChopServer::worker_loop() {
  while (std::shared_ptr<Job> job = queue_.pop()) {
    run_job(job);
  }
}

void ChopServer::run_job(const std::shared_ptr<Job>& job) {
  static obs::Histogram& queue_wait_ms =
      obs::MetricsRegistry::global().histogram("serve.queue_wait_ms");
  const Job::Clock::time_point start = Job::Clock::now();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->started_at = start;
    job->state = JobState::Running;
    ++running_;
    obs::MetricsRegistry::global()
        .gauge("serve.running")
        .set(static_cast<double>(running_));
  }
  queue_wait_ms.observe(ms_between(job->submitted_at, start));

  // Root of the job's trace tree: install the context minted at submit,
  // then open serve.job under it. The queue-wait span is back-dated to
  // the submit timestamp so the tree starts when the client did.
  obs::TraceContextScope trace_scope(
      obs::TraceContext{job->trace_id, /*span_id=*/0});
  obs::TraceSpan span("serve.job");
  span.arg("id", job->id);
  span.arg("priority", job->options.priority);
  {
    obs::TraceContextScope wait_parent(span.context());
    obs::trace_complete("serve.queue_wait", job->submitted_ts_us,
                        obs::trace_now_us());
  }

  // Budget already spent / cancel raced in while queued: don't start work.
  if (job->cancel_requested.load(std::memory_order_relaxed)) {
    finish_job(job, JobState::Cancelled);
    return;
  }
  if (job->deadline != Job::Clock::time_point{} && start >= job->deadline) {
    finish_job(job, JobState::DeadlineExceeded);
    return;
  }

  try {
    if (job->options.generate) {
      run_generate_job(job, span);
      return;
    }
    core::ChopSession session = job->project.make_session();
    const core::PredictionStats stats = session.predict_partitions();

    core::SearchOptions search;
    search.heuristic = job->options.heuristic;
    // threads: 0 = auto-detect; > 1 runs the job's enumeration units on
    // the server-wide work-stealing pool, interleaved with other jobs'.
    search.threads = core::ThreadPool::resolve_threads(job->options.threads);
    search.pool = search_pool_.get();
    search.prune = !job->options.keep_all;
    search.bound_pruning =
        job->options.bound_pruning && !job->options.keep_all;
    search.max_trials = job->options.max_trials;
    if (job->options.keep_all && search.max_trials == 0) {
      search.max_trials = kKeepAllTrialCap;
    }
    search.cancel = &job->cancel_requested;
    search.deadline = job->deadline;
    search.profile = &job->profile;

    // The cross-request warm cache, keyed on the *core* fingerprint so a
    // revised job that only moved the constraint budget shares its base
    // job's evaluator: full-key entries from the base keep matching where
    // the constraints agree, and the core-level memo answers the rest
    // with verdict-only re-evaluations instead of fresh integrations.
    std::shared_ptr<core::CandidateEvaluator> shared_evaluator;
    if (options_.share_evaluators) {
      obs::TraceSpan acquire_span("serve.evaluator_pool.acquire");
      const std::uint64_t fingerprint =
          session.make_eval_context().core_fingerprint();
      shared_evaluator = evaluator_pool_.acquire(fingerprint);
      search.evaluator = shared_evaluator.get();
      span.arg("fingerprint", fingerprint);
    }

    const core::SearchResult result = session.search(search);
    std::string rendered;
    {
      obs::ScopedPhase render_phase(&job->profile, obs::SearchPhase::kRender);
      obs::TraceSpan render_span("serve.render");
      rendered = render_search_result(result).dump();
    }

    JobState state = JobState::Done;
    if (result.cancelled) {
      state = job->cancel_requested.load(std::memory_order_relaxed)
                  ? JobState::Cancelled
                  : JobState::DeadlineExceeded;
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      job->result_json = std::move(rendered);
      job->prediction_stats = stats;
      job->designs = result.designs.size();
    }
    span.arg("trials", result.trials);
    span.arg("designs", result.designs.size());
    span.arg("state", to_string(state));
    finish_job(job, state);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      job->error = e.what();
    }
    span.arg("state", "failed");
    finish_job(job, JobState::Failed);
  }
}

void ChopServer::run_generate_job(const std::shared_ptr<Job>& job,
                                  obs::TraceSpan& span) {
  gen::GenerateOptions options;
  options.num_starts = job->options.num_starts;
  options.coarsening_ratio = job->options.coarsening_ratio;
  options.seed = job->options.gen_seed;
  options.threads = core::ThreadPool::resolve_threads(job->options.threads);
  // Starts interleave with other jobs' work on the server-wide pool; the
  // per-candidate searches stay single-threaded (the portfolio is the
  // parallelism). The engine brings its own cross-start evaluator, so the
  // fingerprint-keyed pool (which needs a session to key off) is not used.
  options.pool = search_pool_.get();
  options.search.threads = 1;
  options.search.bound_pruning = job->options.bound_pruning;
  options.cancel = &job->cancel_requested;
  options.deadline = job->deadline;
  options.profile = &job->profile;

  const gen::GenerateResult result = gen::generate_partitions(
      job->project.graph, job->project.library, job->project.chips,
      job->project.memory, job->project.config, options);

  std::string rendered;
  {
    obs::ScopedPhase render_phase(&job->profile, obs::SearchPhase::kRender);
    obs::TraceSpan render_span("serve.render");
    JsonValue fragment = render_search_result(result.search);
    fragment.set("generate",
                 render_generate_result(result, job->project.graph));
    rendered = fragment.dump();
  }

  JobState state = JobState::Done;
  if (result.cancelled) {
    state = job->cancel_requested.load(std::memory_order_relaxed)
                ? JobState::Cancelled
                : JobState::DeadlineExceeded;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->result_json = std::move(rendered);
    job->designs = result.frontier.size();
  }
  span.arg("starts", result.starts_run);
  span.arg("evaluations", result.evaluations);
  span.arg("designs", result.frontier.size());
  span.arg("state", to_string(state));
  finish_job(job, state);
}

void ChopServer::finish_job(const std::shared_ptr<Job>& job, JobState state) {
  static obs::Counter& completed_counter =
      obs::MetricsRegistry::global().counter("serve.completed");
  static obs::Counter& cancelled_counter =
      obs::MetricsRegistry::global().counter("serve.cancelled");
  static obs::Counter& deadline_counter =
      obs::MetricsRegistry::global().counter("serve.deadline_exceeded");
  static obs::Counter& failed_counter =
      obs::MetricsRegistry::global().counter("serve.failed");
  static obs::Histogram& run_ms =
      obs::MetricsRegistry::global().histogram("serve.run_ms");
  static obs::Histogram& e2e_ms =
      obs::MetricsRegistry::global().histogram("serve.e2e_ms");

  const Job::Clock::time_point now = Job::Clock::now();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (is_terminal(job->state)) return;  // cancel/shutdown race: first wins
    const bool was_running = job->state == JobState::Running;
    job->state = state;
    job->finished_at = now;
    if (was_running) {
      --running_;
      obs::MetricsRegistry::global()
          .gauge("serve.running")
          .set(static_cast<double>(running_));
      run_ms.observe(ms_between(job->started_at, now));
    }
    e2e_ms.observe(ms_between(job->submitted_at, now));
    switch (state) {
      case JobState::Done:
        ++completed_;
        completed_counter.add();
        break;
      case JobState::Cancelled:
        ++cancelled_;
        cancelled_counter.add();
        break;
      case JobState::DeadlineExceeded:
        ++deadline_exceeded_;
        deadline_counter.add();
        break;
      case JobState::Failed:
        ++failed_;
        failed_counter.add();
        break;
      case JobState::Queued:
      case JobState::Running:
        break;  // not terminal; unreachable
    }
  }
  jobs_cv_.notify_all();
}

JobView ChopServer::view(const std::string& id, bool wait_terminal,
                         std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(jobs_mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return {};
  const std::shared_ptr<Job>& job = it->second;
  if (wait_terminal && !is_terminal(job->state)) {
    jobs_cv_.wait_for(lock, timeout, [&] { return is_terminal(job->state); });
  }
  JobView view;
  view.found = true;
  view.id = job->id;
  view.state = job->state;
  view.result_json = job->result_json;
  view.error = job->error;
  view.designs = job->designs;
  view.prediction_stats = job->prediction_stats;
  view.trace_id = job->trace_id;
  view.profile = job->profile.data();
  if (job->started_at != Job::Clock::time_point{}) {
    view.queue_wait_ms = ms_between(job->submitted_at, job->started_at);
    if (job->finished_at != Job::Clock::time_point{}) {
      view.run_ms = ms_between(job->started_at, job->finished_at);
    }
  }
  return view;
}

CancelOutcome ChopServer::cancel(const std::string& id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return CancelOutcome::NotFound;
    job = it->second;
    if (is_terminal(job->state)) return CancelOutcome::AlreadyTerminal;
    job->cancel_requested.store(true, std::memory_order_relaxed);
    if (job->state == JobState::Running) {
      return CancelOutcome::CancellingRunning;
    }
  }
  // Still queued: pull it out before a worker gets it. Losing the race is
  // fine — the raised flag stops the search at its next check.
  if (std::shared_ptr<Job> removed = queue_.remove(id)) {
    finish_job(removed, JobState::Cancelled);
    return CancelOutcome::CancelledQueued;
  }
  return CancelOutcome::CancellingRunning;
}

std::uint64_t ChopServer::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
}

obs::PhaseProfileData ChopServer::total_profile() const {
  obs::PhaseProfileData out;
  std::lock_guard<std::mutex> lock(jobs_mu_);
  for (const auto& [id, job] : jobs_) {
    (void)id;
    out += job->profile.data();
  }
  return out;
}

ServerStats ChopServer::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    stats.workers = workers_.size();
    stats.running = running_;
    stats.submitted = submitted_;
    stats.revised = revised_;
    stats.rejected_overload = rejected_overload_;
    stats.completed = completed_;
    stats.cancelled = cancelled_;
    stats.deadline_exceeded = deadline_exceeded_;
    stats.failed = failed_;
  }
  stats.queue_depth = queue_.depth();
  stats.queue_capacity = queue_.capacity();
  stats.evaluator_pool = evaluator_pool_.stats();
  stats.eval_cache = evaluator_pool_.cache_stats();
  return stats;
}

void ChopServer::shutdown(bool drain) {
  // Serialized: the first caller performs the drain and joins the
  // workers; later callers (including the destructor) block until it is
  // complete, then return — nobody observes a half-dead server.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (shut_down_) return;
    accepting_ = false;
  }
  if (!drain) {
    for (const std::shared_ptr<Job>& job : queue_.drain_now()) {
      finish_job(job, JobState::Cancelled);
    }
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (const auto& [id, job] : jobs_) {
      (void)id;
      if (!is_terminal(job->state)) {
        job->cancel_requested.store(true, std::memory_order_relaxed);
      }
    }
  }
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(jobs_mu_);
  shut_down_ = true;
}

bool ChopServer::accepting() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return accepting_;
}

}  // namespace chop::serve
