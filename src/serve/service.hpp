// Service — the transport-free request dispatcher between the NDJSON
// protocol and a ChopServer. Both transports (the Unix-socket acceptor in
// uds.cpp and the pipe/stdin loop below) feed raw request lines into
// handle_line() and write back whatever single-line response it returns.
//
// handle_line() never throws and never returns malformed output: every
// failure path — oversized line, broken JSON, bad op, unreadable spec,
// internal error — folds into a structured error_response(). That
// property is what the protocol fuzzer (src/testing/serve_fuzz) hammers.
//
// A `shutdown` request is answered first and acted on by the caller:
// handle_line records the request (shutdown_requested()/drain()), the
// transport writes the response, then stops its loop and calls
// ChopServer::shutdown(drain). This ordering guarantees the client sees
// the acknowledgement before the daemon exits.
#pragma once

#include <iosfwd>
#include <string>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace chop::serve {

class Service {
 public:
  explicit Service(ChopServer& server, ProtocolLimits limits = {});

  /// Handles one request line; always returns exactly one line of valid
  /// JSON (no trailing newline). Never throws.
  std::string handle_line(const std::string& line);

  bool shutdown_requested() const { return shutdown_requested_; }
  bool drain() const { return drain_; }

  const ProtocolLimits& limits() const { return limits_; }

 private:
  std::string dispatch(const Request& request);
  std::string handle_submit(const Request& request);
  std::string handle_revise(const Request& request);
  std::string handle_status(const Request& request);
  std::string handle_result(const Request& request);
  std::string handle_cancel(const Request& request);
  std::string handle_stats();
  std::string handle_metrics(const Request& request);
  std::string handle_healthz();
  std::string handle_profile(const Request& request);
  std::string handle_shutdown(const Request& request);

  ChopServer& server_;
  ProtocolLimits limits_;
  bool shutdown_requested_ = false;
  bool drain_ = true;
};

/// The pipe/stdin transport: reads request lines from `in`, writes one
/// response line per request to `out` (flushed per line so a driving
/// process can interleave), and stops on EOF or a `shutdown` request —
/// both trigger ChopServer::shutdown (EOF drains; `shutdown` honors its
/// "drain" flag). Returns the number of requests handled.
std::size_t run_pipe_service(ChopServer& server, std::istream& in,
                             std::ostream& out, ProtocolLimits limits = {});

}  // namespace chop::serve
