#include "serve/evaluator_pool.hpp"

#include "obs/metrics.hpp"

namespace chop::serve {

EvaluatorPool::EvaluatorPool(std::size_t max_evaluators,
                             std::size_t entries_per_evaluator)
    : max_evaluators_(max_evaluators == 0 ? 1 : max_evaluators),
      entries_per_evaluator_(entries_per_evaluator) {}

std::shared_ptr<core::CandidateEvaluator> EvaluatorPool::acquire(
    std::uint64_t fingerprint) {
  static obs::Counter& reuse_counter =
      obs::MetricsRegistry::global().counter("serve.evaluator_reuse");
  static obs::Counter& create_counter =
      obs::MetricsRegistry::global().counter("serve.evaluator_create");

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = evaluators_.find(fingerprint); it != evaluators_.end()) {
    ++stats_.reused;
    reuse_counter.add();
    return it->second;
  }
  while (evaluators_.size() >= max_evaluators_) {
    evaluators_.erase(fifo_.front());
    fifo_.pop_front();
    ++stats_.evicted;
  }
  auto evaluator =
      std::make_shared<core::CandidateEvaluator>(entries_per_evaluator_);
  evaluators_.emplace(fingerprint, evaluator);
  fifo_.push_back(fingerprint);
  ++stats_.created;
  create_counter.add();
  return evaluator;
}

EvaluatorPool::Stats EvaluatorPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

core::CandidateEvaluator::Stats EvaluatorPool::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  core::CandidateEvaluator::Stats total;
  for (const auto& [fingerprint, evaluator] : evaluators_) {
    (void)fingerprint;
    const core::CandidateEvaluator::Stats s = evaluator->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

std::size_t EvaluatorPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluators_.size();
}

}  // namespace chop::serve
