#include "serve/protocol.hpp"

#include <cmath>
#include <set>
#include <string>

namespace chop::serve {

namespace {

[[noreturn]] void invalid(const std::string& message) {
  throw ProtocolError("invalid_request", message);
}

/// A finite JSON number that must be an integer in [lo, hi].
long long int_field(const JsonValue& v, const std::string& key, long long lo,
                    long long hi) {
  if (!v.is_number()) invalid("field '" + key + "' must be a number");
  const double n = v.as_number();
  if (std::nearbyint(n) != n) invalid("field '" + key + "' must be integral");
  if (n < static_cast<double>(lo) || n > static_cast<double>(hi)) {
    invalid("field '" + key + "' out of range");
  }
  return static_cast<long long>(n);
}

const std::string& string_field(const JsonValue& v, const std::string& key) {
  if (!v.is_string()) invalid("field '" + key + "' must be a string");
  return v.as_string();
}

bool bool_field(const JsonValue& v, const std::string& key) {
  if (!v.is_bool()) invalid("field '" + key + "' must be a boolean");
  return v.as_bool();
}

RequestOp parse_op(const std::string& op) {
  if (op == "submit") return RequestOp::Submit;
  if (op == "status") return RequestOp::Status;
  if (op == "result") return RequestOp::Result;
  if (op == "cancel") return RequestOp::Cancel;
  if (op == "stats") return RequestOp::Stats;
  if (op == "metrics") return RequestOp::Metrics;
  if (op == "healthz") return RequestOp::Healthz;
  if (op == "profile") return RequestOp::Profile;
  if (op == "shutdown") return RequestOp::Shutdown;
  throw ProtocolError("unknown_op", "unknown op '" + op + "'");
}

/// The keys each op accepts; anything else is rejected so client typos
/// (and fuzzers) surface as errors instead of silently-ignored knobs.
const std::set<std::string>& allowed_keys(RequestOp op) {
  static const std::set<std::string> submit{
      "op",          "id",         "spec",       "spec_path",
      "heuristic",   "threads",    "priority",   "deadline_ms",
      "max_trials",  "keep_all",   "bound_pruning"};
  static const std::set<std::string> by_id{"op", "id"};
  static const std::set<std::string> result{"op", "id", "wait"};
  static const std::set<std::string> bare{"op"};
  static const std::set<std::string> metrics{"op", "format"};
  static const std::set<std::string> profile{"op", "id"};
  static const std::set<std::string> shutdown{"op", "drain"};
  switch (op) {
    case RequestOp::Submit: return submit;
    case RequestOp::Result: return result;
    case RequestOp::Status:
    case RequestOp::Cancel: return by_id;
    case RequestOp::Metrics: return metrics;
    case RequestOp::Profile: return profile;
    case RequestOp::Shutdown: return shutdown;
    case RequestOp::Stats:
    case RequestOp::Healthz: return bare;
  }
  return bare;
}

}  // namespace

Request parse_request(const std::string& line, const ProtocolLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    throw ProtocolError("payload_too_large",
                        "request line exceeds " +
                            std::to_string(limits.max_line_bytes) + " bytes");
  }

  JsonValue doc;
  try {
    doc = JsonValue::parse(line, limits.max_json_depth);
  } catch (const JsonError& e) {
    throw ProtocolError("parse_error", e.what());
  }
  if (!doc.is_object()) invalid("request must be a JSON object");

  const JsonValue* op_field = doc.find("op");
  if (op_field == nullptr) invalid("missing 'op'");
  Request request;
  request.op = parse_op(string_field(*op_field, "op"));

  const std::set<std::string>& keys = allowed_keys(request.op);
  std::set<std::string> seen;
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (!keys.count(key)) {
      invalid("unknown field '" + key + "' for op");
    }
    if (!seen.insert(key).second) invalid("duplicate field '" + key + "'");
  }

  if (const JsonValue* id = doc.find("id")) {
    request.id = string_field(*id, "id");
    if (request.id.empty()) invalid("field 'id' must be non-empty");
    if (request.id.size() > 256) invalid("field 'id' too long");
  }

  switch (request.op) {
    case RequestOp::Submit: {
      if (const JsonValue* spec = doc.find("spec")) {
        request.spec = string_field(*spec, "spec");
        if (request.spec.size() > limits.max_spec_bytes) {
          throw ProtocolError("payload_too_large", "spec text too large");
        }
      }
      if (const JsonValue* path = doc.find("spec_path")) {
        request.spec_path = string_field(*path, "spec_path");
      }
      if (request.spec.empty() == request.spec_path.empty()) {
        invalid("submit needs exactly one of 'spec' or 'spec_path'");
      }
      if (const JsonValue* h = doc.find("heuristic")) {
        const std::string& value = string_field(*h, "heuristic");
        if (value == "E") {
          request.options.heuristic = core::Heuristic::Enumeration;
        } else if (value == "I") {
          request.options.heuristic = core::Heuristic::Iterative;
        } else {
          invalid("field 'heuristic' must be \"E\" or \"I\"");
        }
      }
      if (const JsonValue* t = doc.find("threads")) {
        request.options.threads =
            static_cast<int>(int_field(*t, "threads", 1, 256));
      }
      if (const JsonValue* p = doc.find("priority")) {
        request.options.priority =
            static_cast<int>(int_field(*p, "priority", -1000, 1000));
      }
      if (const JsonValue* d = doc.find("deadline_ms")) {
        request.options.deadline_ms =
            int_field(*d, "deadline_ms", 0, 86400000);
      }
      if (const JsonValue* m = doc.find("max_trials")) {
        request.options.max_trials = static_cast<std::size_t>(
            int_field(*m, "max_trials", 0, 1000000000));
      }
      if (const JsonValue* k = doc.find("keep_all")) {
        request.options.keep_all = bool_field(*k, "keep_all");
      }
      if (const JsonValue* b = doc.find("bound_pruning")) {
        request.options.bound_pruning = bool_field(*b, "bound_pruning");
      }
      break;
    }
    case RequestOp::Status:
    case RequestOp::Cancel:
      if (request.id.empty()) invalid("missing 'id'");
      break;
    case RequestOp::Result:
      if (request.id.empty()) invalid("missing 'id'");
      if (const JsonValue* w = doc.find("wait")) {
        request.wait = bool_field(*w, "wait");
      }
      break;
    case RequestOp::Metrics:
      if (const JsonValue* f = doc.find("format")) {
        const std::string& value = string_field(*f, "format");
        if (value == "prometheus") {
          request.prometheus = true;
        } else if (value != "json") {
          invalid("field 'format' must be \"json\" or \"prometheus\"");
        }
      }
      break;
    case RequestOp::Shutdown:
      if (const JsonValue* d = doc.find("drain")) {
        request.drain = bool_field(*d, "drain");
      }
      break;
    case RequestOp::Stats:
    case RequestOp::Healthz:
    case RequestOp::Profile:
      break;
  }
  return request;
}

std::string error_response(const std::string& code, const std::string& message,
                           const std::string& id) {
  JsonValue error;
  error.set("code", JsonValue(code));
  error.set("message", JsonValue(message));
  JsonValue response;
  response.set("ok", JsonValue(false));
  if (!id.empty()) response.set("id", JsonValue(id));
  response.set("error", std::move(error));
  return response.dump();
}

JsonValue render_search_result(const core::SearchResult& result) {
  JsonValue designs((JsonValue::Array()));
  for (const core::GlobalDesign& d : result.designs) {
    JsonValue choice(JsonValue::Array{});
    for (const std::size_t c : d.choice) {
      choice.push(JsonValue(static_cast<double>(c)));
    }
    JsonValue design;
    design.set("choice", std::move(choice));
    design.set("ii", JsonValue(static_cast<double>(d.integration.ii_main)));
    design.set("delay",
               JsonValue(static_cast<double>(d.integration.system_delay_main)));
    design.set("clock_ns", JsonValue(d.integration.clock_ns()));
    design.set("performance_ns",
               JsonValue(d.integration.performance_ns.likely()));
    design.set("delay_ns", JsonValue(d.integration.delay_ns.likely()));
    designs.push(std::move(design));
  }
  JsonValue search;
  search.set("designs", std::move(designs));
  search.set("trials", JsonValue(static_cast<double>(result.trials)));
  search.set("feasible_raw",
             JsonValue(static_cast<double>(result.feasible_raw)));
  search.set("probe_integrations",
             JsonValue(static_cast<double>(result.probe_integrations)));
  search.set("truncated", JsonValue(result.truncated));
  search.set("cancelled", JsonValue(result.cancelled));
  return search;
}

}  // namespace chop::serve
