#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <set>
#include <string>

#include "chip/mosis_packages.hpp"

namespace chop::serve {

namespace {

[[noreturn]] void invalid(const std::string& message) {
  throw ProtocolError("invalid_request", message);
}

/// A finite JSON number that must be an integer in [lo, hi].
long long int_field(const JsonValue& v, const std::string& key, long long lo,
                    long long hi) {
  if (!v.is_number()) invalid("field '" + key + "' must be a number");
  const double n = v.as_number();
  if (std::nearbyint(n) != n) invalid("field '" + key + "' must be integral");
  if (n < static_cast<double>(lo) || n > static_cast<double>(hi)) {
    invalid("field '" + key + "' out of range");
  }
  return static_cast<long long>(n);
}

const std::string& string_field(const JsonValue& v, const std::string& key) {
  if (!v.is_string()) invalid("field '" + key + "' must be a string");
  return v.as_string();
}

bool bool_field(const JsonValue& v, const std::string& key) {
  if (!v.is_bool()) invalid("field '" + key + "' must be a boolean");
  return v.as_bool();
}

RequestOp parse_op(const std::string& op) {
  if (op == "submit") return RequestOp::Submit;
  if (op == "generate") return RequestOp::Generate;
  if (op == "revise") return RequestOp::Revise;
  if (op == "status") return RequestOp::Status;
  if (op == "result") return RequestOp::Result;
  if (op == "cancel") return RequestOp::Cancel;
  if (op == "stats") return RequestOp::Stats;
  if (op == "metrics") return RequestOp::Metrics;
  if (op == "healthz") return RequestOp::Healthz;
  if (op == "profile") return RequestOp::Profile;
  if (op == "shutdown") return RequestOp::Shutdown;
  throw ProtocolError("unknown_op", "unknown op '" + op + "'");
}

/// The keys each op accepts; anything else is rejected so client typos
/// (and fuzzers) surface as errors instead of silently-ignored knobs.
const std::set<std::string>& allowed_keys(RequestOp op) {
  static const std::set<std::string> submit{
      "op",          "id",         "spec",       "spec_path",
      "heuristic",   "threads",    "priority",   "deadline_ms",
      "max_trials",  "keep_all",   "bound_pruning"};
  static const std::set<std::string> generate{
      "op",          "id",         "spec",       "spec_path",
      "threads",     "priority",   "deadline_ms",
      "bound_pruning",
      "num_starts",  "coarsening_ratio",         "gen_seed"};
  static const std::set<std::string> revise{"op", "id", "new_id", "delta"};
  static const std::set<std::string> by_id{"op", "id"};
  static const std::set<std::string> result{"op", "id", "wait"};
  static const std::set<std::string> bare{"op"};
  static const std::set<std::string> metrics{"op", "format"};
  static const std::set<std::string> profile{"op", "id"};
  static const std::set<std::string> shutdown{"op", "drain"};
  switch (op) {
    case RequestOp::Submit: return submit;
    case RequestOp::Generate: return generate;
    case RequestOp::Revise: return revise;
    case RequestOp::Result: return result;
    case RequestOp::Status:
    case RequestOp::Cancel: return by_id;
    case RequestOp::Metrics: return metrics;
    case RequestOp::Profile: return profile;
    case RequestOp::Shutdown: return shutdown;
    case RequestOp::Stats:
    case RequestOp::Healthz: return bare;
  }
  return bare;
}

[[noreturn]] void bad_delta(const std::string& message) {
  throw ProtocolError("invalid_delta", message);
}

/// Strict per-kind key check: the delta object may carry exactly the
/// fields its kind defines, so typos surface instead of silently keeping
/// the base value.
void check_delta_keys(const JsonValue& delta, const std::string& kind,
                      std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : delta.as_object()) {
    (void)value;
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      bad_delta("unknown delta field '" + key + "' for kind '" + kind + "'");
    }
  }
}

const std::string& delta_string(const JsonValue& delta, const char* key) {
  const JsonValue* v = delta.find(key);
  if (v == nullptr) bad_delta(std::string("delta misses field '") + key + "'");
  if (!v->is_string() || v->as_string().empty()) {
    bad_delta(std::string("delta field '") + key +
              "' must be a non-empty string");
  }
  return v->as_string();
}

double delta_number(const JsonValue& delta, const char* key, double lo,
                    double hi) {
  const JsonValue* v = delta.find(key);
  if (v == nullptr) bad_delta(std::string("delta misses field '") + key + "'");
  if (!v->is_number()) {
    bad_delta(std::string("delta field '") + key + "' must be a number");
  }
  const double n = v->as_number();
  if (!(n >= lo && n <= hi)) {
    bad_delta(std::string("delta field '") + key + "' out of range");
  }
  return n;
}

DeltaSpec parse_delta_spec(const JsonValue& delta) {
  if (!delta.is_object()) bad_delta("'delta' must be an object");
  const JsonValue* kind_field = delta.find("kind");
  if (kind_field == nullptr || !kind_field->is_string()) {
    bad_delta("delta needs a string 'kind'");
  }
  const std::string& kind = kind_field->as_string();

  DeltaSpec spec;
  if (kind == "move_op") {
    spec.kind = DeltaSpec::Kind::MoveOp;
    check_delta_keys(delta, kind, {"kind", "op", "to"});
    spec.op_name = delta_string(delta, "op");
    spec.partition = delta_string(delta, "to");
  } else if (kind == "retarget_chip") {
    spec.kind = DeltaSpec::Kind::RetargetChip;
    check_delta_keys(delta, kind, {"kind", "partition", "chip"});
    spec.partition = delta_string(delta, "partition");
    spec.chip = delta_string(delta, "chip");
  } else if (kind == "replace_package") {
    spec.kind = DeltaSpec::Kind::ReplacePackage;
    check_delta_keys(delta, kind, {"kind", "chip", "package"});
    spec.chip = delta_string(delta, "chip");
    spec.package = delta_string(delta, "package");
    if (spec.package != "mosis64" && spec.package != "mosis84") {
      bad_delta("delta field 'package' must be \"mosis64\" or \"mosis84\"");
    }
  } else if (kind == "set_clock") {
    spec.kind = DeltaSpec::Kind::SetClock;
    check_delta_keys(delta, kind,
                     {"kind", "main_clock_ns", "datapath_multiplier",
                      "transfer_multiplier"});
    spec.main_clock_ns = delta_number(delta, "main_clock_ns", 1e-3, 1e9);
    spec.datapath_multiplier = static_cast<int>(
        delta_number(delta, "datapath_multiplier", 1, 1024));
    spec.transfer_multiplier = static_cast<int>(
        delta_number(delta, "transfer_multiplier", 1, 1024));
  } else if (kind == "set_constraints") {
    spec.kind = DeltaSpec::Kind::SetConstraints;
    check_delta_keys(delta, kind,
                     {"kind", "performance_ns", "delay_ns", "system_power_mw",
                      "chip_power_mw"});
    if (delta.find("performance_ns") != nullptr) {
      spec.performance_ns = delta_number(delta, "performance_ns", 1e-3, 1e12);
    }
    if (delta.find("delay_ns") != nullptr) {
      spec.delay_ns = delta_number(delta, "delay_ns", 1e-3, 1e12);
    }
    if (delta.find("system_power_mw") != nullptr) {
      spec.system_power_mw = delta_number(delta, "system_power_mw", 0, 1e12);
    }
    if (delta.find("chip_power_mw") != nullptr) {
      spec.chip_power_mw = delta_number(delta, "chip_power_mw", 0, 1e12);
    }
  } else {
    bad_delta("unknown delta kind '" + kind + "'");
  }
  return spec;
}

}  // namespace

Request parse_request(const std::string& line, const ProtocolLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    throw ProtocolError("payload_too_large",
                        "request line exceeds " +
                            std::to_string(limits.max_line_bytes) + " bytes");
  }

  JsonValue doc;
  try {
    doc = JsonValue::parse(line, limits.max_json_depth);
  } catch (const JsonError& e) {
    throw ProtocolError("parse_error", e.what());
  }
  if (!doc.is_object()) invalid("request must be a JSON object");

  const JsonValue* op_field = doc.find("op");
  if (op_field == nullptr) invalid("missing 'op'");
  Request request;
  request.op = parse_op(string_field(*op_field, "op"));

  const std::set<std::string>& keys = allowed_keys(request.op);
  std::set<std::string> seen;
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (!keys.count(key)) {
      invalid("unknown field '" + key + "' for op");
    }
    if (!seen.insert(key).second) invalid("duplicate field '" + key + "'");
  }

  if (const JsonValue* id = doc.find("id")) {
    request.id = string_field(*id, "id");
    if (request.id.empty()) invalid("field 'id' must be non-empty");
    if (request.id.size() > 256) invalid("field 'id' too long");
  }

  switch (request.op) {
    // generate shares submit's spec/threads/priority/deadline plumbing;
    // the strict key filter above already rejected the submit-only knobs
    // (heuristic, keep_all, max_trials) for it.
    case RequestOp::Generate:
    case RequestOp::Submit: {
      if (const JsonValue* spec = doc.find("spec")) {
        request.spec = string_field(*spec, "spec");
        if (request.spec.size() > limits.max_spec_bytes) {
          throw ProtocolError("payload_too_large", "spec text too large");
        }
      }
      if (const JsonValue* path = doc.find("spec_path")) {
        request.spec_path = string_field(*path, "spec_path");
      }
      if (request.spec.empty() == request.spec_path.empty()) {
        invalid("submit needs exactly one of 'spec' or 'spec_path'");
      }
      if (const JsonValue* h = doc.find("heuristic")) {
        const std::string& value = string_field(*h, "heuristic");
        if (value == "E") {
          request.options.heuristic = core::Heuristic::Enumeration;
        } else if (value == "I") {
          request.options.heuristic = core::Heuristic::Iterative;
        } else {
          invalid("field 'heuristic' must be \"E\" or \"I\"");
        }
      }
      if (const JsonValue* t = doc.find("threads")) {
        // 0 = auto-detect (one enumeration worker per hardware thread),
        // matching chop_cli --threads=0 and chopd --workers=0.
        request.options.threads =
            static_cast<int>(int_field(*t, "threads", 0, 256));
      }
      if (const JsonValue* p = doc.find("priority")) {
        request.options.priority =
            static_cast<int>(int_field(*p, "priority", -1000, 1000));
      }
      if (const JsonValue* d = doc.find("deadline_ms")) {
        request.options.deadline_ms =
            int_field(*d, "deadline_ms", 0, 86400000);
      }
      if (const JsonValue* m = doc.find("max_trials")) {
        request.options.max_trials = static_cast<std::size_t>(
            int_field(*m, "max_trials", 0, 1000000000));
      }
      if (const JsonValue* k = doc.find("keep_all")) {
        request.options.keep_all = bool_field(*k, "keep_all");
      }
      if (const JsonValue* b = doc.find("bound_pruning")) {
        request.options.bound_pruning = bool_field(*b, "bound_pruning");
      }
      if (request.op == RequestOp::Generate) {
        request.options.generate = true;
        if (const JsonValue* n = doc.find("num_starts")) {
          request.options.num_starts =
              static_cast<int>(int_field(*n, "num_starts", 1, 256));
        }
        if (const JsonValue* r = doc.find("coarsening_ratio")) {
          if (!r->is_number()) {
            invalid("field 'coarsening_ratio' must be a number");
          }
          const double ratio = r->as_number();
          if (!(ratio > 0.0 && ratio < 1.0)) {
            invalid("field 'coarsening_ratio' must lie in (0, 1)");
          }
          request.options.coarsening_ratio = ratio;
        }
        if (const JsonValue* s = doc.find("gen_seed")) {
          request.options.gen_seed = static_cast<std::uint64_t>(
              int_field(*s, "gen_seed", 0, 1000000000));
        }
      }
      break;
    }
    case RequestOp::Revise: {
      if (request.id.empty()) invalid("missing 'id'");
      if (const JsonValue* n = doc.find("new_id")) {
        request.new_id = string_field(*n, "new_id");
        if (request.new_id.empty()) invalid("field 'new_id' must be non-empty");
        if (request.new_id.size() > 256) invalid("field 'new_id' too long");
      }
      const JsonValue* delta = doc.find("delta");
      if (delta == nullptr) invalid("missing 'delta'");
      request.delta = parse_delta_spec(*delta);
      break;
    }
    case RequestOp::Status:
    case RequestOp::Cancel:
      if (request.id.empty()) invalid("missing 'id'");
      break;
    case RequestOp::Result:
      if (request.id.empty()) invalid("missing 'id'");
      if (const JsonValue* w = doc.find("wait")) {
        request.wait = bool_field(*w, "wait");
      }
      break;
    case RequestOp::Metrics:
      if (const JsonValue* f = doc.find("format")) {
        const std::string& value = string_field(*f, "format");
        if (value == "prometheus") {
          request.prometheus = true;
        } else if (value != "json") {
          invalid("field 'format' must be \"json\" or \"prometheus\"");
        }
      }
      break;
    case RequestOp::Shutdown:
      if (const JsonValue* d = doc.find("drain")) {
        request.drain = bool_field(*d, "drain");
      }
      break;
    case RequestOp::Stats:
    case RequestOp::Healthz:
    case RequestOp::Profile:
      break;
  }
  return request;
}

std::string error_response(const std::string& code, const std::string& message,
                           const std::string& id) {
  JsonValue error;
  error.set("code", JsonValue(code));
  error.set("message", JsonValue(message));
  JsonValue response;
  response.set("ok", JsonValue(false));
  if (!id.empty()) response.set("id", JsonValue(id));
  response.set("error", std::move(error));
  return response.dump();
}

JsonValue render_search_result(const core::SearchResult& result) {
  JsonValue designs((JsonValue::Array()));
  for (const core::GlobalDesign& d : result.designs) {
    JsonValue choice(JsonValue::Array{});
    for (const std::size_t c : d.choice) {
      choice.push(JsonValue(static_cast<double>(c)));
    }
    JsonValue design;
    design.set("choice", std::move(choice));
    design.set("ii", JsonValue(static_cast<double>(d.integration.ii_main)));
    design.set("delay",
               JsonValue(static_cast<double>(d.integration.system_delay_main)));
    design.set("clock_ns", JsonValue(d.integration.clock_ns()));
    design.set("performance_ns",
               JsonValue(d.integration.performance_ns.likely()));
    design.set("delay_ns", JsonValue(d.integration.delay_ns.likely()));
    designs.push(std::move(design));
  }
  JsonValue search;
  search.set("designs", std::move(designs));
  search.set("trials", JsonValue(static_cast<double>(result.trials)));
  search.set("feasible_raw",
             JsonValue(static_cast<double>(result.feasible_raw)));
  search.set("probe_integrations",
             JsonValue(static_cast<double>(result.probe_integrations)));
  search.set("truncated", JsonValue(result.truncated));
  search.set("cancelled", JsonValue(result.cancelled));
  return search;
}

JsonValue render_generate_result(const gen::GenerateResult& result,
                                 const dfg::Graph& spec) {
  JsonValue frontier((JsonValue::Array()));
  for (const gen::FrontierPoint& p : result.frontier) {
    JsonValue point;
    point.set("ii", JsonValue(static_cast<double>(p.ii)));
    point.set("delay", JsonValue(static_cast<double>(p.delay)));
    point.set("area_mil2", JsonValue(p.area));
    point.set("start", JsonValue(static_cast<double>(p.start)));
    frontier.push(std::move(point));
  }
  JsonValue partitions((JsonValue::Array()));
  for (const auto& members : result.members) {
    JsonValue names((JsonValue::Array()));
    for (const dfg::NodeId id : members) {
      names.push(JsonValue(spec.node(id).name));
    }
    partitions.push(std::move(names));
  }
  JsonValue out;
  out.set("frontier", std::move(frontier));
  out.set("partitions", std::move(partitions));
  out.set("starts", JsonValue(static_cast<double>(result.starts_run)));
  out.set("starts_killed",
          JsonValue(static_cast<double>(result.starts_killed)));
  out.set("evaluations", JsonValue(static_cast<double>(result.evaluations)));
  out.set("gated", JsonValue(static_cast<double>(result.gated)));
  out.set("levels", JsonValue(static_cast<double>(result.levels)));
  out.set("coarsest_vertices",
          JsonValue(static_cast<double>(result.coarsest_vertices)));
  out.set("cancelled", JsonValue(result.cancelled));
  return out;
}

namespace {

int partition_index(const io::Project& project, const std::string& name) {
  for (std::size_t p = 0; p < project.partitions.size(); ++p) {
    if (project.partitions[p].name == name) return static_cast<int>(p);
  }
  throw ProtocolError("not_found", "no partition named '" + name + "'");
}

int chip_index(const io::Project& project, const std::string& name) {
  for (std::size_t c = 0; c < project.chips.size(); ++c) {
    if (project.chips[c].name == name) return static_cast<int>(c);
  }
  throw ProtocolError("not_found", "no chip named '" + name + "'");
}

}  // namespace

io::Project apply_delta(const io::Project& base, const DeltaSpec& delta) {
  io::Project out = base;
  switch (delta.kind) {
    case DeltaSpec::Kind::MoveOp: {
      dfg::NodeId op = dfg::kNoNode;
      for (dfg::NodeId id = 0;
           id < static_cast<dfg::NodeId>(out.graph.node_count()); ++id) {
        if (out.graph.node(id).name == delta.op_name) {
          op = id;
          break;
        }
      }
      if (op == dfg::kNoNode) {
        throw ProtocolError("not_found",
                            "no node named '" + delta.op_name + "'");
      }
      const int dest = partition_index(out, delta.partition);
      int src = -1;
      for (std::size_t p = 0; p < out.partitions.size(); ++p) {
        const auto& members = out.partitions[p].members;
        if (std::find(members.begin(), members.end(), op) != members.end()) {
          src = static_cast<int>(p);
          break;
        }
      }
      if (src == -1) {
        bad_delta("node '" + delta.op_name + "' is not in any partition");
      }
      // Mirror core::Partitioning::move_operation: already there is a
      // no-op; a migration may never empty its source partition; member
      // order is preserved on both sides.
      if (src == dest) break;
      auto& src_members = out.partitions[static_cast<std::size_t>(src)].members;
      if (src_members.size() <= 1) {
        bad_delta("cannot empty partition '" +
                  out.partitions[static_cast<std::size_t>(src)].name +
                  "' by migration");
      }
      src_members.erase(std::find(src_members.begin(), src_members.end(), op));
      out.partitions[static_cast<std::size_t>(dest)].members.push_back(op);
      break;
    }
    case DeltaSpec::Kind::RetargetChip: {
      const int p = partition_index(out, delta.partition);
      out.partitions[static_cast<std::size_t>(p)].chip =
          chip_index(out, delta.chip);
      break;
    }
    case DeltaSpec::Kind::ReplacePackage: {
      const int c = chip_index(out, delta.chip);
      out.chips[static_cast<std::size_t>(c)].package =
          delta.package == "mosis64" ? chip::mosis_package_64()
                                     : chip::mosis_package_84();
      break;
    }
    case DeltaSpec::Kind::SetClock:
      out.config.clocks.main_clock = delta.main_clock_ns;
      out.config.clocks.datapath_multiplier = delta.datapath_multiplier;
      out.config.clocks.transfer_multiplier = delta.transfer_multiplier;
      break;
    case DeltaSpec::Kind::SetConstraints:
      if (delta.performance_ns >= 0.0) {
        out.config.constraints.performance_ns = delta.performance_ns;
      }
      if (delta.delay_ns >= 0.0) {
        out.config.constraints.delay_ns = delta.delay_ns;
      }
      if (delta.system_power_mw >= 0.0) {
        out.config.constraints.system_power_mw = delta.system_power_mw;
      }
      if (delta.chip_power_mw >= 0.0) {
        out.config.constraints.chip_power_mw = delta.chip_power_mw;
      }
      break;
  }
  return out;
}

}  // namespace chop::serve
