// Unix-domain socket transport for chop_serve: a listener that accepts
// concurrent client connections, runs one NDJSON Service conversation per
// connection, and a small blocking client used by chop_submit and the
// tests. POSIX-only (guarded by CHOP_SERVE_HAVE_UDS); the pipe transport
// in service.hpp covers platforms without AF_UNIX.
//
// Threading model: one accept thread, one thread per live connection.
// Each connection gets its own Service (so a `shutdown` request is
// attributed to the connection that sent it); the first shutdown request
// wins and wakes wait_for_shutdown_request() in the daemon main loop,
// which then drains the ChopServer and stops the listener. stop() forces
// every blocked read/accept to return by shutting the fds down, so no
// thread outlives the object.
#pragma once

#if defined(__unix__) || defined(__APPLE__)
#define CHOP_SERVE_HAVE_UDS 1
#else
#define CHOP_SERVE_HAVE_UDS 0
#endif

#if CHOP_SERVE_HAVE_UDS

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace chop::serve {

class UdsServer {
 public:
  UdsServer(ChopServer& server, std::string socket_path,
            ProtocolLimits limits = {});
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens and spawns the accept thread. Returns false (with
  /// `*error` set) if the socket cannot be created; an existing socket
  /// file at the path is unlinked first (stale daemon leftovers).
  bool start(std::string* error);

  /// Blocks until some connection issues a `shutdown` request or stop()
  /// is called. Returns true if shutdown was requested by a client.
  bool wait_for_shutdown_request();

  /// Whether the pending client shutdown asked for a drain.
  bool drain() const;

  /// Closes the listener and every live connection, joins all threads,
  /// and unlinks the socket file. Idempotent. Does NOT shut down the
  /// ChopServer — the daemon decides drain semantics.
  void stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  void note_shutdown_request(bool drain);

  ChopServer& server_;
  std::string socket_path_;
  ProtocolLimits limits_;

  int listen_fd_ = -1;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> connection_threads_;
  std::unordered_set<int> live_fds_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  bool drain_ = true;
};

/// Blocking NDJSON client: one request line out, one response line back.
class UdsClient {
 public:
  explicit UdsClient(std::string socket_path);
  ~UdsClient();

  UdsClient(const UdsClient&) = delete;
  UdsClient& operator=(const UdsClient&) = delete;

  bool connect(std::string* error);

  /// Sends `line` (newline appended) and reads one response line. Returns
  /// false with `*error` set on any I/O failure or server disconnect.
  bool request(const std::string& line, std::string* response,
               std::string* error);

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  std::string socket_path_;
  int fd_ = -1;
  std::string buffer_;  ///< Bytes received past the last returned line.
};

}  // namespace chop::serve

#endif  // CHOP_SERVE_HAVE_UDS
