// ChopServer — the long-lived partitioning service the paper's Figure-1
// designer loop wants to talk to: many concurrent what-if evaluations
// multiplexed over shared warm state.
//
//   submit ──▶ [bounded priority JobQueue] ──▶ worker pool ──▶ result store
//                       │ (overload → reject)        │
//                       └── cancel/deadline ─────────┘
//
// Components: a bounded priority queue with explicit overload rejection,
// N worker threads each running predict_partitions()+search() per job, a
// persistent in-process result store with status polling and blocking
// waits, per-job cooperative cancellation and wall-clock deadlines
// (threaded into SearchOptions), and an EvaluatorPool sharing one
// memoizing CandidateEvaluator between all jobs whose EvalContext
// fingerprints match. Transport-free — the NDJSON protocol, pipe loop and
// Unix-socket acceptors live in service.{hpp,cpp}/uds.{hpp,cpp}; tests
// drive this class directly from many threads.
//
// Every job gets its own `serve.job` trace span; the queue, latency and
// outcome metrics are listed in docs/OBSERVABILITY.md under `serve.*`.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/eval/thread_pool.hpp"
#include "obs/trace.hpp"
#include "serve/evaluator_pool.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"

namespace chop::serve {

struct ServerOptions {
  /// Job worker threads; 0 = one per hardware thread.
  int workers = 2;
  /// Size of the shared search pool enumeration units run on when a
  /// job's SearchOptions ask for threads > 1. Shared by every job, so a
  /// long search's units interleave with other jobs' units instead of
  /// monopolizing workers. 0 (the default) = one per hardware thread.
  int search_threads = 0;
  /// Hard bound on queued (not yet running) jobs; submissions beyond it
  /// are rejected with SubmitStatus::Overloaded.
  std::size_t queue_capacity = 64;
  /// Share CandidateEvaluators across jobs with equal context
  /// fingerprints. Off = every job evaluates with a private cold cache
  /// (the reference behavior the differential tests compare against).
  bool share_evaluators = true;
  std::size_t evaluator_pool_capacity = 8;
  std::size_t cache_entries_per_context =
      core::CandidateEvaluator::kDefaultMaxEntries;
};

enum class SubmitStatus { Accepted, Overloaded, ShuttingDown, DuplicateId };

struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::Accepted;
  std::string id;  ///< Assigned (or echoed) job id when accepted.
  std::uint64_t trace_id = 0;  ///< Minted at acceptance; 0 when rejected.
};

enum class ReviseStatus {
  Accepted,
  NotFound,      ///< No base job with that id.
  NotDone,       ///< Base job exists but is not in JobState::Done.
  Overloaded,    ///< The revised submission was rejected by the queue.
  ShuttingDown,
  DuplicateId,   ///< The requested new id already exists.
};

struct ReviseOutcome {
  ReviseStatus status = ReviseStatus::Accepted;
  SubmitOutcome submit;  ///< The revised job's submission (when accepted).
};

enum class CancelOutcome {
  NotFound,
  CancelledQueued,    ///< Removed from the queue before it ever ran.
  CancellingRunning,  ///< Cooperative flag raised; the search will stop.
  AlreadyTerminal,
};

/// A point-in-time copy of one job's externally visible state.
struct JobView {
  bool found = false;
  std::string id;
  JobState state = JobState::Queued;
  std::string result_json;  ///< render_search_result fragment (terminal).
  std::string error;        ///< Failure message (JobState::Failed).
  std::size_t designs = 0;
  core::PredictionStats prediction_stats{};
  double queue_wait_ms = 0.0;  ///< submit → start (terminal or running).
  double run_ms = 0.0;         ///< start → finish (terminal only).
  std::uint64_t trace_id = 0;  ///< The job's distributed-tracing id.
  /// Phase attribution so far (live for running jobs, final afterwards).
  obs::PhaseProfileData profile{};
};

struct ServerStats {
  std::size_t workers = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t running = 0;
  std::uint64_t submitted = 0;
  std::uint64_t revised = 0;  ///< Jobs created through revise().
  std::uint64_t rejected_overload = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;
  EvaluatorPool::Stats evaluator_pool{};
  core::CandidateEvaluator::Stats eval_cache{};
};

class ChopServer {
 public:
  explicit ChopServer(ServerOptions options = {});

  ChopServer(const ChopServer&) = delete;
  ChopServer& operator=(const ChopServer&) = delete;

  /// Drains and joins (shutdown(true)) if the owner never shut down.
  ~ChopServer();

  /// Accepts a job. `id` empty = server-assigned ("job-<n>"). The project
  /// is validated by construction (callers parse specs first); rejection
  /// never allocates a job record.
  SubmitOutcome submit(io::Project project, JobOptions options,
                       std::string id = {});

  /// Resubmits a finished job's project with one DeltaSpec applied: the
  /// base must be terminal-Done, the revised job inherits the base's
  /// options and queues like any submission. Because the evaluator pool
  /// keys on the *core* context fingerprint, a constraints-only revision
  /// lands on the same warm evaluator as its base and re-verdicts
  /// memoized integration cores instead of re-integrating. Throws
  /// ProtocolError (not_found / invalid_delta) when the delta does not
  /// apply to the base project.
  ReviseOutcome revise(const std::string& base_id, const DeltaSpec& delta,
                       std::string new_id = {});

  /// Lifecycle snapshot; `wait_terminal` blocks until the job reaches a
  /// terminal state or `timeout` elapses (view.found stays true — check
  /// is_terminal(view.state) for success).
  JobView view(const std::string& id, bool wait_terminal = false,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(60000)) const;

  CancelOutcome cancel(const std::string& id);

  ServerStats stats() const;

  /// Milliseconds since this server was constructed (healthz uptime).
  std::uint64_t uptime_ms() const;

  /// Server-wide phase attribution: the sum of every job's profile,
  /// including jobs still running (their atomics are readable live).
  obs::PhaseProfileData total_profile() const;

  /// Stops accepting submissions; with `drain` every already-accepted job
  /// still runs to a terminal state, without it queued jobs are marked
  /// cancelled and running searches are cooperatively stopped. Joins the
  /// workers; idempotent; safe from any thread (including a transport
  /// thread handling a `shutdown` request).
  void shutdown(bool drain = true);

  bool accepting() const;

  const ServerOptions& options() const { return options_; }

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  /// The generation path of run_job (JobOptions::generate): runs the
  /// multilevel engine on the server pool and renders a result fragment
  /// that carries both the search and the `generate` portfolio outcome.
  void run_generate_job(const std::shared_ptr<Job>& job, obs::TraceSpan& span);
  /// Marks `job` terminal under jobs_mu_, stamps finished_at, bumps the
  /// outcome counters/histograms, and wakes waiters.
  void finish_job(const std::shared_ptr<Job>& job, JobState state);

  ServerOptions options_;
  JobQueue queue_;
  EvaluatorPool evaluator_pool_;
  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();

  mutable std::mutex jobs_mu_;
  mutable std::condition_variable jobs_cv_;
  std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_auto_id_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t revised_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t failed_ = 0;
  std::size_t running_ = 0;
  bool accepting_ = true;
  bool shut_down_ = false;
  /// Serializes shutdown(); later callers block until the first completes.
  std::mutex shutdown_mu_;

  /// Work-stealing pool shared by every job's parallel enumeration
  /// (SearchOptions::pool). Declared before the job workers — its only
  /// submitters — so it outlives them.
  std::unique_ptr<core::ThreadPool> search_pool_;
  std::vector<std::thread> workers_;
};

}  // namespace chop::serve
