#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace chop::serve {

namespace {

/// Recursive-descent parser over a bounded string view. Depth is enforced
/// on every container entry so hostile inputs cannot blow the stack.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      throw JsonError(pos_, "trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(pos_, message);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(std::string_view word) {
    for (char c : word) {
      if (eof() || peek() != c) fail("invalid literal");
      ++pos_;
    }
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue(true);
      case 'f':
        expect_literal("false");
        return JsonValue(false);
      case 'n':
        expect_literal("null");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array(std::size_t depth) {
    ++pos_;  // '['
    JsonValue::Array elements;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      skip_ws();
      elements.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(elements));
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (next() != '\\' || next() != 'u') fail("lone high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string literal(text_.substr(start, pos_ - start));
    const double value = std::strtod(literal.c_str(), nullptr);
    // JSON has no inf/nan literals, but "1e999" overflows to +inf — a
    // non-finite value must never enter the protocol layer.
    if (!std::isfinite(value)) fail("number out of range");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  kind_ = Kind::Object;
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push(JsonValue value) {
  kind_ = Kind::Array;
  array_.push_back(std::move(value));
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  // Exact integers (the common protocol case: counts, ids, cycles) render
  // without a decimal point so responses are stable and greppable.
  if (v == 0.0) return "0";
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Number:
      out += json_number(number_);
      return;
    case Kind::String:
      out += json_quote(string_);
      return;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key);
        out += ':';
        value.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

JsonValue JsonValue::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace chop::serve
