// DaemonTelemetry — the bundle of observability outputs a long-running
// chopd owns, with the lifecycle guarantees a daemon needs:
//
//   * Chrome trace-event sink (--trace): installed process-wide; flush()
//     pushes every buffered span to disk WITHOUT closing the JSON array
//     (trace viewers tolerate the missing terminator), so a dump can be
//     taken mid-run and tracing continues; finalize() writes the
//     terminator exactly once.
//   * End-of-run metrics snapshot (--metrics): also written by flush(),
//     so an abortive exit still leaves a current snapshot behind.
//   * Periodic SnapshotExporter (--metrics-jsonl / --prom): registry
//     snapshots appended as JSONL and rendered as Prometheus text
//     exposition on an interval.
//   * Signal watcher (opt-in): SIGUSR1 = flush everything and keep
//     running; SIGTERM/SIGINT = finalize everything, then re-raise with
//     the default disposition so the process still dies with the
//     conventional status. Handlers only set an atomic; all file work
//     happens on the watcher thread.
//
// finalize() is idempotent and runs from the destructor, so every exit
// path — clean drain, exception unwind, signal — leaves valid files.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/exporter.hpp"
#include "obs/trace.hpp"

namespace chop::serve {

struct TelemetryOptions {
  std::string trace_path;        ///< Chrome trace JSON; empty = off.
  std::string metrics_path;      ///< Snapshot JSON on flush/exit; empty = off.
  std::string metrics_jsonl_path;  ///< Periodic snapshot JSONL; empty = off.
  std::string prom_path;  ///< Periodic Prometheus text file; empty = off.
  /// Exporter tick interval.
  std::chrono::milliseconds interval{1000};
  /// Install SIGUSR1/SIGTERM/SIGINT handlers + watcher thread. Only one
  /// live DaemonTelemetry may enable this.
  bool handle_signals = false;
};

class DaemonTelemetry {
 public:
  explicit DaemonTelemetry(TelemetryOptions options);

  DaemonTelemetry(const DaemonTelemetry&) = delete;
  DaemonTelemetry& operator=(const DaemonTelemetry&) = delete;

  /// Finalizes (idempotent) — no exit path loses telemetry.
  ~DaemonTelemetry();

  /// Opens outputs, installs the trace sink, starts the exporter and (if
  /// requested) the signal watcher. False + *error on unopenable files.
  bool start(std::string* error);

  /// Dumps everything now without stopping: trace bytes to disk (array
  /// left open), metrics snapshot rewritten, exporter ticked. Safe to
  /// call repeatedly; this is the SIGUSR1 action.
  void flush();

  /// Closes the trace array, writes the final metrics snapshot, stops
  /// the exporter and the watcher. Idempotent.
  void finalize();

  /// Queues the same action the signal handler would: the watcher thread
  /// performs a flush(). Lets tests cover the watcher path without
  /// raising a real signal.
  void request_flush();

  /// Number of flushes the watcher has completed.
  std::uint64_t watcher_flushes() const {
    return watcher_flushes_.load(std::memory_order_acquire);
  }

  /// Blocks until the watcher has completed at least `n` flushes or
  /// `timeout` elapses; returns whether the count was reached. The
  /// flake-free replacement for sleep-polling watcher_flushes().
  bool wait_for_flushes(std::uint64_t n, std::chrono::milliseconds timeout);

  const TelemetryOptions& options() const { return options_; }

 private:
  void watcher_loop();
  void write_metrics_snapshot();

  TelemetryOptions options_;
  std::ofstream trace_stream_;
  std::unique_ptr<obs::ChromeTraceSink> trace_sink_;
  obs::SnapshotExporter exporter_;

  std::mutex mu_;  ///< Serializes flush()/finalize() bodies.
  bool started_ = false;
  bool finalized_ = false;

  std::atomic<bool> watcher_stop_{false};
  std::atomic<std::uint64_t> watcher_flushes_{0};
  /// Wakes the watcher on request_flush()/finalize() and waiters on a
  /// completed flush. Signal handlers never touch it (not async-signal-
  /// safe); the watcher's bounded wait covers signal-delivered work.
  std::mutex watcher_mu_;
  std::condition_variable watcher_cv_;
  std::thread watcher_;
  bool signals_installed_ = false;
};

}  // namespace chop::serve
