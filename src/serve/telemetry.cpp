#include "serve/telemetry.hpp"

#include <csignal>
#include <iostream>

#include "obs/metrics.hpp"

namespace chop::serve {

namespace {

// Signal handlers may only touch lock-free atomics: the handler records
// the signal number, the watcher thread does the file work.
std::atomic<int> g_pending_signal{0};
std::atomic<bool> g_flush_requested{false};

extern "C" void telemetry_signal_handler(int sig) {
#ifdef SIGUSR1
  if (sig == SIGUSR1) {
    g_flush_requested.store(true, std::memory_order_release);
    return;
  }
#endif
  g_pending_signal.store(sig, std::memory_order_release);
}

}  // namespace

DaemonTelemetry::DaemonTelemetry(TelemetryOptions options)
    : options_(std::move(options)),
      exporter_(obs::ExporterOptions{options_.metrics_jsonl_path,
                                     options_.prom_path, options_.interval,
                                     "chop"}) {}

DaemonTelemetry::~DaemonTelemetry() { finalize(); }

bool DaemonTelemetry::start(std::string* error) {
  if (started_) return true;
  if (!options_.trace_path.empty()) {
    trace_stream_.open(options_.trace_path);
    if (!trace_stream_.good()) {
      if (error != nullptr) {
        *error = "cannot open trace output: " + options_.trace_path;
      }
      return false;
    }
    trace_sink_ = std::make_unique<obs::ChromeTraceSink>(trace_stream_);
    obs::install_trace_sink(trace_sink_.get());
  }
  if (!options_.metrics_path.empty()) {
    std::ofstream probe(options_.metrics_path);
    if (!probe.good()) {
      if (error != nullptr) {
        *error = "cannot open metrics output: " + options_.metrics_path;
      }
      return false;
    }
  }
  if (!exporter_.start(error)) return false;

  if (options_.handle_signals) {
    g_pending_signal.store(0, std::memory_order_release);
    g_flush_requested.store(false, std::memory_order_release);
#ifdef SIGUSR1
    std::signal(SIGUSR1, telemetry_signal_handler);
#endif
    std::signal(SIGTERM, telemetry_signal_handler);
    std::signal(SIGINT, telemetry_signal_handler);
    signals_installed_ = true;
  }
  // The watcher also serves request_flush(), so it always runs.
  watcher_stop_.store(false, std::memory_order_release);
  watcher_ = std::thread([this] { watcher_loop(); });
  started_ = true;
  return true;
}

void DaemonTelemetry::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  if (trace_sink_) trace_sink_->flush();
  write_metrics_snapshot();
  exporter_.flush_now();
}

void DaemonTelemetry::finalize() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) return;
    finalized_ = true;
    if (trace_sink_) {
      obs::install_trace_sink(nullptr);
      trace_sink_->close();
    }
    write_metrics_snapshot();
  }
  exporter_.stop();
  watcher_stop_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(watcher_mu_); }
  watcher_cv_.notify_all();
  if (watcher_.joinable()) {
    if (watcher_.get_id() == std::this_thread::get_id()) {
      // Signal path: the watcher is finalizing and will re-raise to die;
      // it cannot join itself.
      watcher_.detach();
    } else {
      watcher_.join();
    }
  }
  if (signals_installed_) {
#ifdef SIGUSR1
    std::signal(SIGUSR1, SIG_DFL);
#endif
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    signals_installed_ = false;
  }
}

void DaemonTelemetry::request_flush() {
  g_flush_requested.store(true, std::memory_order_release);
  // Wake the watcher immediately. Only reachable from normal contexts
  // (tests, control channel) — the signal handler sets the atomic alone
  // and relies on the watcher's bounded wait below.
  { std::lock_guard<std::mutex> lock(watcher_mu_); }
  watcher_cv_.notify_all();
}

bool DaemonTelemetry::wait_for_flushes(std::uint64_t n,
                                       std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(watcher_mu_);
  return watcher_cv_.wait_for(lock, timeout, [this, n] {
    return watcher_flushes_.load(std::memory_order_acquire) >= n;
  });
}

void DaemonTelemetry::watcher_loop() {
  while (!watcher_stop_.load(std::memory_order_acquire)) {
    if (g_flush_requested.exchange(false, std::memory_order_acq_rel)) {
      flush();
      watcher_flushes_.fetch_add(1, std::memory_order_release);
      { std::lock_guard<std::mutex> lock(watcher_mu_); }
      watcher_cv_.notify_all();
      std::cerr << "chopd: telemetry flushed (exporter ticks: "
                << exporter_.ticks() << ")\n";
    }
    const int sig = g_pending_signal.exchange(0, std::memory_order_acq_rel);
    if (sig != 0) {
      // Abortive shutdown: make the files whole, then die conventionally.
      std::cerr << "chopd: signal " << sig
                << " received; finalizing telemetry\n";
      finalize();
      std::signal(sig, SIG_DFL);
      std::raise(sig);
      return;
    }
    // Bounded wait, not a fixed sleep: request_flush()/finalize() wake it
    // instantly; the 20ms ceiling covers atomics set by signal handlers,
    // which cannot notify a condition variable.
    std::unique_lock<std::mutex> lock(watcher_mu_);
    watcher_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
      return watcher_stop_.load(std::memory_order_acquire) ||
             g_flush_requested.load(std::memory_order_acquire) ||
             g_pending_signal.load(std::memory_order_acquire) != 0;
    });
  }
}

void DaemonTelemetry::write_metrics_snapshot() {
  if (options_.metrics_path.empty()) return;
  std::ofstream os(options_.metrics_path);
  if (os.good()) {
    os << obs::MetricsRegistry::global().snapshot().to_json() << "\n";
  }
}

}  // namespace chop::serve
